//! An application from the paper's introduction: travel-time estimation.
//!
//! Sparse trajectories give poor per-segment speed estimates because most
//! segments are never observed. Recovering high-sampling trajectories first
//! (TRMMA) densifies the coverage and tightens the estimates — the reason
//! data quality matters for downstream analytics.
//!
//! ```sh
//! cargo run --release --example travel_time
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use trmma::core::{Mma, MmaConfig, Trmma, TrmmaConfig, TrmmaPipeline};
use trmma::roadnet::RoutePlanner;
use trmma::traj::dataset::{build_dataset, DatasetConfig, Split};
use trmma::traj::types::MatchedTrajectory;
use trmma::traj::TrajectoryRecovery;

/// Per-segment mean traversal speed (m/s) estimated from consecutive
/// same-segment matched points.
fn estimate_speeds(
    net: &trmma::roadnet::RoadNetwork,
    trajs: &[MatchedTrajectory],
) -> HashMap<u32, f64> {
    let mut sums: HashMap<u32, (f64, f64)> = HashMap::new();
    for t in trajs {
        for w in t.points.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if a.seg == b.seg && b.t > a.t && b.ratio > a.ratio {
                let dist = (b.ratio - a.ratio) * net.segment(a.seg).length;
                let speed = dist / (b.t - a.t);
                if speed > 0.3 {
                    let e = sums.entry(a.seg.0).or_insert((0.0, 0.0));
                    e.0 += speed;
                    e.1 += 1.0;
                }
            }
        }
    }
    sums.into_iter().map(|(k, (s, n))| (k, s / n)).collect()
}

fn coverage_and_error(
    net: &trmma::roadnet::RoadNetwork,
    est: &HashMap<u32, f64>,
    truth: &HashMap<u32, f64>,
) -> (f64, f64) {
    let covered = est.len() as f64 / net.num_segments() as f64;
    let mut err = 0.0;
    let mut n = 0.0;
    for (seg, v) in est {
        if let Some(t) = truth.get(seg) {
            err += (v - t).abs() / t;
            n += 1.0;
        }
    }
    (covered, if n > 0.0 { err / n } else { f64::NAN })
}

fn main() {
    let ds = build_dataset(&DatasetConfig::tiny());
    let net = Arc::new(ds.net.clone());
    let train = ds.samples(Split::Train, 0.2, 1);
    let test = ds.samples(Split::Test, 0.3, 2);
    let mut planner = RoutePlanner::untrained(&net);
    for s in &train {
        planner.observe(&s.route.segs);
    }
    let planner = Arc::new(planner);

    // Ground-truth speeds from the dense trajectories.
    let dense: Vec<MatchedTrajectory> = test.iter().map(|s| s.dense_truth.clone()).collect();
    let truth_speeds = estimate_speeds(&net, &dense);

    // (a) Estimates from the raw sparse observations only.
    let sparse: Vec<MatchedTrajectory> =
        test.iter().map(|s| MatchedTrajectory::new(s.sparse_truth.clone())).collect();
    let sparse_speeds = estimate_speeds(&net, &sparse);

    // (b) Estimates from TRMMA-recovered ε-trajectories.
    let mut mma = Mma::new(net.clone(), planner, None, MmaConfig::small());
    mma.train(&train, 8);
    let mut model = Trmma::new(net.clone(), TrmmaConfig::small());
    model.train(&train, 8);
    let pipeline = TrmmaPipeline::new(Box::new(mma), model, "TRMMA");
    let recovered: Vec<MatchedTrajectory> =
        test.iter().map(|s| pipeline.recover(&s.sparse, ds.epsilon_s)).collect();
    let recovered_speeds = estimate_speeds(&net, &recovered);

    let (c_sparse, e_sparse) = coverage_and_error(&net, &sparse_speeds, &truth_speeds);
    let (c_rec, e_rec) = coverage_and_error(&net, &recovered_speeds, &truth_speeds);
    println!("segment speed estimation ({} test trajectories):", test.len());
    println!(
        "  from sparse points:    {:>5.1}% of segments covered, {:>5.1}% mean speed error",
        100.0 * c_sparse,
        100.0 * e_sparse
    );
    println!(
        "  from TRMMA recovery:   {:>5.1}% of segments covered, {:>5.1}% mean speed error",
        100.0 * c_rec,
        100.0 * e_rec
    );
    println!("\nRecovery multiplies usable observations per segment — the paper's");
    println!("motivation for high-quality trajectory data in traffic analytics.");
}
