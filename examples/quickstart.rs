//! Quickstart: generate a synthetic city + trajectories, train MMA and
//! TRMMA briefly, then map-match and recover one sparse trajectory.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use trmma::core::{Mma, MmaConfig, Trmma, TrmmaConfig, TrmmaPipeline};
use trmma::roadnet::RoutePlanner;
use trmma::traj::dataset::{build_dataset, DatasetConfig, Split};
use trmma::traj::{recovery_metrics, MapMatcher, TrajectoryRecovery};

fn main() {
    // 1. A small synthetic dataset: road network + high-sampling
    //    trajectories with exact ground truth, split 40/30/30.
    let ds = build_dataset(&DatasetConfig::tiny());
    let net = Arc::new(ds.net.clone());
    println!(
        "network: {} segments, {} intersections; {} trajectories (ε = {} s)",
        net.num_segments(),
        net.num_nodes(),
        ds.all_raws().len(),
        ds.epsilon_s
    );

    // 2. Sparse samples at γ = 0.2 (inputs have 5× longer intervals).
    let train = ds.samples(Split::Train, 0.2, 1);
    let test = ds.samples(Split::Test, 0.2, 2);

    // 3. The shared route planner, fitted on historical training routes.
    let mut planner = RoutePlanner::untrained(&net);
    for s in &train {
        planner.observe(&s.route.segs);
    }
    let planner = Arc::new(planner);

    // 4. Train MMA (map matching) and TRMMA (recovery) briefly.
    let mut mma = Mma::new(net.clone(), planner, None, MmaConfig::small());
    let report = mma.train(&train, 8);
    println!("MMA trained: final BCE loss {:.4}", report.final_loss());
    let mut model = Trmma::new(net.clone(), TrmmaConfig::small());
    let report = model.train(&train, 8);
    println!("TRMMA trained: final loss {:.4}", report.final_loss());

    // 5. Match + recover one test trajectory to show the shapes involved.
    let sample = &test[0];
    let matched = mma.match_trajectory(&sample.sparse);
    println!(
        "\ninput: {} sparse GPS points -> matched route of {} segments",
        sample.sparse.len(),
        matched.route.len()
    );
    let pipeline = TrmmaPipeline::new(Box::new(mma), model, "TRMMA");
    let recovered = pipeline.recover(&sample.sparse, ds.epsilon_s);
    println!(
        "recovered {} points at ε = {} s (ground truth has {})",
        recovered.len(),
        ds.epsilon_s,
        sample.dense_truth.len()
    );

    // 6. Score the whole test split against the ground truth.
    let mut sums = (0.0, 0.0, 0.0, 0.0);
    for s in &test {
        let rec = pipeline.recover(&s.sparse, ds.epsilon_s);
        let m = recovery_metrics(&net, &rec, &s.dense_truth, None);
        sums.0 += m.recall;
        sums.1 += m.precision;
        sums.2 += m.accuracy;
        sums.3 += m.mae;
    }
    let n = test.len() as f64;
    println!(
        "\nmean over {} test trajectories: recall {:.1}%, precision {:.1}%, accuracy {:.1}%, MAE {:.1} m",
        test.len(),
        100.0 * sums.0 / n,
        100.0 * sums.1 / n,
        100.0 * sums.2 / n,
        sums.3 / n
    );
    println!("(toy-sized data and training — the bench harness in crates/bench runs the paper-shaped experiments)");
}
