//! Map matching on sparse trajectories: compare the classic matchers
//! (Nearest, HMM, FMM) against the learned MMA on one synthetic dataset.
//!
//! ```sh
//! cargo run --release --example map_matching
//! ```

use std::sync::Arc;
use std::time::Instant;

use trmma::baselines::{FmmMatcher, HmmConfig, HmmMatcher, NearestMatcher};
use trmma::core::{Mma, MmaConfig};
use trmma::roadnet::RoutePlanner;
use trmma::traj::dataset::{build_dataset, DatasetConfig, Split};
use trmma::traj::metrics::MetricAverager;
use trmma::traj::{matching_metrics, MapMatcher};

fn main() {
    let ds = build_dataset(&DatasetConfig::tiny());
    let net = Arc::new(ds.net.clone());
    let train = ds.samples(Split::Train, 0.2, 1);
    let test = ds.samples(Split::Test, 0.2, 2);
    let mut planner = RoutePlanner::untrained(&net);
    for s in &train {
        planner.observe(&s.route.segs);
    }
    let planner = Arc::new(planner);

    let nearest = NearestMatcher::new(net.clone(), planner.clone());
    let hmm = HmmMatcher::new(net.clone(), planner.clone(), HmmConfig::default());
    let fmm = FmmMatcher::new(net.clone(), planner.clone(), HmmConfig::default());
    println!("FMM UBODT: {} node pairs precomputed in {:.2} s", fmm.table_len(), fmm.precompute_s);
    let mut mma = Mma::new(net.clone(), planner, None, MmaConfig::small());
    mma.train(&train, 6);

    println!(
        "\n{:<10} {:>10} {:>10} {:>8} {:>8} {:>10}",
        "method", "precision", "recall", "F1", "jaccard", "ms/traj"
    );
    let matchers: Vec<&dyn MapMatcher> = vec![&nearest, &hmm, &fmm, &mma];
    for m in matchers {
        let mut avg = MetricAverager::new();
        let start = Instant::now();
        for s in &test {
            let res = m.match_trajectory(&s.sparse);
            avg.add_matching(matching_metrics(&res.route, &s.route));
        }
        let per_traj_ms = start.elapsed().as_secs_f64() / test.len() as f64 * 1e3;
        let mm = avg.mean_matching();
        println!(
            "{:<10} {:>9.1}% {:>9.1}% {:>7.1}% {:>7.1}% {:>10.2}",
            m.name(),
            100.0 * mm.precision,
            100.0 * mm.recall,
            100.0 * mm.f1,
            100.0 * mm.jaccard,
            per_traj_ms
        );
    }
}
