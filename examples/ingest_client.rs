//! Network ingest end to end: an in-process `trmma_core::serve::Server`
//! (the same server `trmma-serve` binds) speaks the length-prefixed "TRMP"
//! protocol over real loopback TCP sockets, and a `ServeClient` streams
//! three devices' GPS points into it under a bounded inflight window. Each
//! point is acked with its provisional match and stabilized-prefix
//! watermark; `Finalize` returns the full route — bitwise-identical to the
//! offline decode of the same points.
//!
//! A second act performs a **rolling restart**: mid-stream, a `Snapshot`
//! frame drains every live session off server A as versioned snapshot
//! bytes, server A stops, and `Restore` frames rehydrate the sessions into
//! a fresh server B where the trips continue — zero sessions lost, finals
//! still identical to the uninterrupted decode.
//!
//! ```sh
//! cargo run --release --example ingest_client
//! ```

use std::sync::Arc;

use trmma::baselines::{HmmConfig, HmmMatcher};
use trmma::core::{Reply, ServeClient, ServeConfig, Server, StreamOptions};
use trmma::traj::dataset::{build_dataset, DatasetConfig, Split};
use trmma::traj::types::Trajectory;
use trmma::traj::MapMatcher;

fn main() {
    let ds = build_dataset(&DatasetConfig::tiny());
    let net = Arc::new(ds.net.clone());
    let planner = Arc::new(trmma::roadnet::RoutePlanner::untrained(&net));
    let hmm = Arc::new(HmmMatcher::new(net, planner, HmmConfig::default()));

    let trips: Vec<Trajectory> =
        ds.samples(Split::Test, 0.2, 5).into_iter().take(3).map(|s| s.sparse).collect();

    // Act one: stream every trip over a real socket and finalize.
    let cfg = ServeConfig::default().stream(StreamOptions::with_threads(2).idle_timeout_s(0.0));
    let server = Server::start(hmm.clone(), cfg.clone()).expect("bind loopback");
    println!("server A listening on {}", server.local_addr());
    let tenant = 42;
    let mut client = ServeClient::connect(server.local_addr(), tenant).expect("connect");
    for device in 0..trips.len() as u64 {
        client.open(device).expect("open session");
    }
    println!("\nacks (device 0):");
    for (device, trip) in trips.iter().enumerate() {
        for &p in &trip.points {
            let reply = client.push_wait(device as u64, p).expect("acked push");
            if device == 0 {
                if let Reply::Ack { seq, stable_prefix, provisional, .. } = reply {
                    let seg = provisional.map_or_else(|| "-".to_string(), |m| m.seg.0.to_string());
                    println!(
                        "seq {seq:>3} | provisional seg {seg:>5} | stable prefix {stable_prefix}"
                    );
                }
            }
        }
    }
    println!("\nfinalized trips:");
    for (device, trip) in trips.iter().enumerate() {
        let (points, result) = client.finalize(device as u64).expect("finalize");
        let offline = hmm.match_trajectory(trip);
        println!(
            "device {device}: {points} points, route of {} segments; identical to offline: {}",
            result.route.len(),
            result == offline
        );
    }
    let stats = client.stats().expect("stats");
    println!(
        "\nserver A stats: {} points acked over {} sessions | {} frames in, {} out | {} bytes in, {} out",
        stats.points_accepted,
        stats.sessions_finalized,
        stats.frames_in,
        stats.frames_out,
        stats.bytes_in,
        stats.bytes_out
    );
    server.stop();

    // Act two: rolling restart. Stream half of each trip into server A,
    // drain A's live sessions as snapshot bytes, stop A, restore into a
    // fresh server B, stream the rest there and finalize.
    println!("\n== rolling restart: Snapshot -> stop A -> Restore into B ==");
    let a = Server::start(hmm.clone(), cfg.clone()).expect("bind server A");
    let mut ca = ServeClient::connect(a.local_addr(), tenant).expect("connect A");
    for (device, trip) in trips.iter().enumerate() {
        ca.open(device as u64).expect("open on A");
        let half = trip.len() / 2;
        for &p in &trip.points[..half] {
            ca.push_wait(device as u64, p).expect("push first half");
        }
    }
    let snaps = ca.snapshot_all().expect("drain server A");
    println!("drained {} session snapshots off A", snaps.len());
    a.stop();

    let b = Server::start(hmm.clone(), cfg).expect("bind server B");
    let mut cb = ServeClient::connect(b.local_addr(), tenant).expect("connect B");
    for (owner, snap) in &snaps {
        cb.restore(*owner, snap).expect("restore into B");
    }
    for (device, trip) in trips.iter().enumerate() {
        let half = trip.len() / 2;
        for &p in &trip.points[half..] {
            cb.push_wait(device as u64, p).expect("push second half");
        }
        let (points, result) = cb.finalize(device as u64).expect("finalize on B");
        let offline = hmm.match_trajectory(trip);
        println!(
            "device {device}: {points} points across both servers; identical to uninterrupted decode: {}",
            result == offline
        );
    }
    let stats = cb.stats().expect("stats B");
    println!(
        "server B stats: {} sessions restored, {} finalized — zero dropped across the restart",
        stats.sessions_restored, stats.sessions_finalized
    );
    b.stop();
}
