//! Sparse trajectory recovery: compare linear interpolation against TRMMA
//! across sparsity levels, on one synthetic dataset.
//!
//! ```sh
//! cargo run --release --example trajectory_recovery
//! ```

use std::sync::Arc;

use trmma::baselines::{FmmMatcher, HmmConfig, LinearRecovery};
use trmma::core::{Mma, MmaConfig, Trmma, TrmmaConfig, TrmmaPipeline};
use trmma::roadnet::RoutePlanner;
use trmma::traj::dataset::{build_dataset, DatasetConfig, Split};
use trmma::traj::{recovery_metrics, TrajectoryRecovery};

fn main() {
    let ds = build_dataset(&DatasetConfig::tiny());
    let net = Arc::new(ds.net.clone());
    let train = ds.samples(Split::Train, 0.2, 1);
    let mut planner = RoutePlanner::untrained(&net);
    for s in &train {
        planner.observe(&s.route.segs);
    }
    let planner = Arc::new(planner);

    // Baseline: FMM matching + linear interpolation along the route.
    let fmm = FmmMatcher::new(net.clone(), planner.clone(), HmmConfig::default());
    let linear = LinearRecovery::new(net.clone(), fmm, "Linear");

    // Ours: MMA matching + TRMMA route-restricted decoding.
    let mut mma = Mma::new(net.clone(), planner, None, MmaConfig::small());
    mma.train(&train, 6);
    let mut model = Trmma::new(net.clone(), TrmmaConfig::small());
    model.train(&train, 6);
    let trmma = TrmmaPipeline::new(Box::new(mma), model, "TRMMA");

    println!("{:>6} {:>12} {:>10} {:>10} {:>10}", "gamma", "method", "accuracy", "F1", "MAE(m)");
    for gamma in [0.1, 0.3, 0.5] {
        let test = ds.samples(Split::Test, gamma, 2);
        for method in [&linear as &dyn TrajectoryRecovery, &trmma] {
            let mut acc = 0.0;
            let mut f1 = 0.0;
            let mut mae = 0.0;
            for s in &test {
                let rec = method.recover(&s.sparse, ds.epsilon_s);
                let m = recovery_metrics(&net, &rec, &s.dense_truth, None);
                acc += m.accuracy;
                f1 += m.f1;
                mae += m.mae;
            }
            let n = test.len() as f64;
            println!(
                "{:>6.1} {:>12} {:>9.1}% {:>9.1}% {:>10.1}",
                gamma,
                method.name(),
                100.0 * acc / n,
                100.0 * f1 / n,
                mae / n
            );
        }
    }
    println!("\nSparser inputs (smaller gamma) are harder for every method;");
    println!("the learned decoder holds up better than interpolation.");
}
