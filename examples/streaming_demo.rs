//! Streaming map matching: live GPS points from several concurrent devices
//! flow through the `StreamEngine`, which answers each point with a
//! provisional match plus a stabilized-prefix watermark and emits the final
//! route when a trip ends — identical to the offline decode of the same
//! points. The engine's load-aware router places each device by
//! power-of-two-choices and reports per-worker telemetry.
//!
//! A second act replays the same trips with seeded worker panics injected
//! mid-stream: the supervisor respawns the dead workers and rebuilds every
//! session from its checkpoint + journal, so nothing is lost and the final
//! routes are still bitwise-identical to the offline decode.
//!
//! ```sh
//! cargo run --release --example streaming_demo
//! ```

use std::sync::Arc;

use trmma::baselines::{HmmConfig, HmmMatcher};
use trmma::core::{FaultPlan, SessionId, StreamEngine, StreamEvent, StreamOptions};
use trmma::traj::dataset::{build_dataset, DatasetConfig, Split};
use trmma::traj::types::Trajectory;
use trmma::traj::MapMatcher;

fn main() {
    let ds = build_dataset(&DatasetConfig::tiny());
    let net = Arc::new(ds.net.clone());
    let planner = Arc::new(trmma::roadnet::RoutePlanner::untrained(&net));
    let hmm = Arc::new(HmmMatcher::new(net, planner, HmmConfig::default()));

    // Three "devices", each mid-trip.
    let trips: Vec<Trajectory> =
        ds.samples(Split::Test, 0.2, 5).into_iter().take(3).map(|s| s.sparse).collect();

    let engine =
        StreamEngine::new(hmm.clone(), StreamOptions::with_threads(2).idle_timeout_s(10.0));

    // Interleave the devices round-robin, as live traffic would arrive.
    let longest = trips.iter().map(Trajectory::len).max().unwrap_or(0);
    for i in 0..longest {
        for (device, trip) in trips.iter().enumerate() {
            if let Some(&p) = trip.points.get(i) {
                engine.push(device as SessionId, p);
            }
        }
    }
    for device in 0..trips.len() {
        engine.finish(device as SessionId);
    }
    // Let the workers drain so the worker-side telemetry (points decoded,
    // migrations) is complete before we snapshot it.
    engine.quiesce(std::time::Duration::from_secs(10));
    let router = engine.router_stats();
    let (events, stats) = engine.shutdown();

    println!("per-point updates (device 0):");
    println!(
        "{:>5} {:>12} {:>8} {:>14} {:>12}",
        "seq", "prov. seg", "ratio", "stable prefix", "decode µs"
    );
    for e in &events {
        if let StreamEvent::Update { session: 0, seq, update, proc_s } = e {
            let m = update.provisional.expect("candidate exists");
            println!(
                "{:>5} {:>12} {:>8.3} {:>11}/{:<2} {:>12.1}",
                seq,
                m.seg.0,
                m.ratio,
                update.stable_prefix,
                seq + 1,
                proc_s * 1e6
            );
        }
    }

    println!("\nfinalized trips:");
    for e in &events {
        if let StreamEvent::Finalized { session, reason, points, result } = e {
            let offline = hmm.match_trajectory(&trips[*session as usize]);
            println!(
                "device {session}: {points} points, route of {} segments ({reason:?}); identical to offline decode: {}",
                result.route.len(),
                *result == offline
            );
        }
    }
    println!(
        "\nstats: {} points over {} sessions ({} finalized explicitly, {} idle-evicted, {} at shutdown)",
        stats.points,
        stats.sessions_opened,
        stats.finalized_explicit,
        stats.finalized_idle,
        stats.finalized_shutdown
    );

    println!("\nrouter ({:?}): per-worker telemetry", router.policy);
    for (w, t) in router.workers.iter().enumerate() {
        println!(
            "worker {w}: {} sessions placed, {} points decoded, queue-depth high-water {}, {} migrated in / {} out",
            t.sessions_placed, t.points, t.queue_depth_hwm, t.migrated_in, t.migrated_out
        );
    }
    println!(
        "migrations: {} completed, {} refused (not watermark-stable) of {} requested",
        router.migrations_completed, router.migrations_refused, router.migrations_requested
    );

    // Act two: the same trips under injected worker panics. The supervisor
    // respawns each dead worker and rebuilds its sessions from the latest
    // checkpoint plus the journaled point tail — zero sessions lost,
    // finals bitwise-identical to the fault-free decode above.
    println!("\n== chaos replay: seeded worker panics mid-stream ==");
    FaultPlan::silence_injected_panics();
    let chaotic = StreamEngine::with_faults(
        hmm.clone(),
        StreamOptions::with_threads(2).idle_timeout_s(10.0).checkpoint_every(4),
        FaultPlan::panics(0xC4A05, 200, 3),
    );
    for i in 0..longest {
        for (device, trip) in trips.iter().enumerate() {
            if let Some(&p) = trip.points.get(i) {
                chaotic.push(device as SessionId, p);
            }
        }
    }
    for device in 0..trips.len() {
        chaotic.finish(device as SessionId);
    }
    chaotic.quiesce(std::time::Duration::from_secs(10));
    let recovery = chaotic.router_stats();
    let (events, _) = chaotic.shutdown();
    for e in &events {
        if let StreamEvent::Finalized { session, result, .. } = e {
            let offline = hmm.match_trajectory(&trips[*session as usize]);
            println!(
                "device {session}: recovered route identical to offline decode: {}",
                *result == offline
            );
        }
    }
    println!(
        "recovery: {} worker restarts, {} sessions recovered, {} journaled points replayed, {} sessions lost ({:.3} ms mean recovery per crash)",
        recovery.worker_restarts,
        recovery.sessions_recovered,
        recovery.points_replayed,
        recovery.sessions_lost,
        if recovery.worker_restarts > 0 {
            recovery.recovery_time_s * 1e3 / recovery.worker_restarts as f64
        } else {
            0.0
        }
    );
}
