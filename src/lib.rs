//! # trmma — sparse trajectory recovery and map matching
//!
//! A Rust reproduction of *“Efficient Methods for Accurate Sparse Trajectory
//! Recovery and Map Matching”* (ICDE 2025): the **MMA** map matcher and the
//! **TRMMA** trajectory-recovery model, together with every substrate they
//! depend on (spatial index, road network, neural network stack, Node2Vec,
//! classic baselines, data pipeline, benchmark harness).
//!
//! This facade crate re-exports the full public API so downstream users can
//! depend on a single crate:
//!
//! ```
//! use trmma::roadnet::{generate_city, NetworkConfig};
//!
//! let net = generate_city(&NetworkConfig::with_size(8, 8, 42));
//! assert!(net.num_segments() > 0);
//! ```
//!
//! See the `examples/` directory for end-to-end pipelines (quickstart, map
//! matching, trajectory recovery, travel-time estimation) and `DESIGN.md`
//! for the system inventory.

pub use trmma_baselines as baselines;
pub use trmma_core as core;
pub use trmma_geom as geom;
pub use trmma_nn as nn;
pub use trmma_node2vec as node2vec;
pub use trmma_roadnet as roadnet;
pub use trmma_rtree as rtree;
pub use trmma_traj as traj;

/// Library version, matching the workspace version.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
