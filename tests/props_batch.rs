//! Property tests for the batched inference engine: output must be
//! bitwise-identical to the sequential API for every thread count and every
//! input order (results keyed by trajectory).

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use trmma::core::{BatchMatcher, BatchOptions, BatchRecovery, Mma, MmaConfig, Trmma, TrmmaConfig};
use trmma::roadnet::RoutePlanner;
use trmma::traj::dataset::{build_dataset, DatasetConfig, Split};
use trmma::traj::types::{MatchedTrajectory, Trajectory};
use trmma::traj::{MapMatcher, MatchResult};

/// Shared fixture: trained models, a batch, and the sequential reference
/// outputs. Built once — property cases only vary threads and order.
struct Fixture {
    mma: Arc<Mma>,
    trmma: Arc<Trmma>,
    batch: Vec<Trajectory>,
    match_ref: Vec<MatchResult>,
    recover_ref: Vec<MatchedTrajectory>,
    eps: f64,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ds = build_dataset(&DatasetConfig::tiny());
        let net = Arc::new(ds.net.clone());
        let planner = Arc::new(RoutePlanner::untrained(&net));
        let train: Vec<_> = ds.samples(Split::Train, 0.2, 21).into_iter().take(6).collect();
        let mut mma = Mma::new(net.clone(), planner, None, MmaConfig::small());
        mma.train(&train, 2);
        let mut trmma = Trmma::new(net, TrmmaConfig::small());
        trmma.train(&train, 2);
        let batch: Vec<Trajectory> =
            ds.samples(Split::Test, 0.2, 22).into_iter().take(10).map(|s| s.sparse).collect();
        let match_ref: Vec<MatchResult> = batch.iter().map(|t| mma.match_trajectory(t)).collect();
        let recover_ref: Vec<MatchedTrajectory> = batch
            .iter()
            .zip(&match_ref)
            .map(|(t, r)| trmma.recover_from_match(t, &r.matched, &r.route, ds.epsilon_s))
            .collect();
        Fixture {
            mma: Arc::new(mma),
            trmma: Arc::new(trmma),
            batch,
            match_ref,
            recover_ref,
            eps: ds.epsilon_s,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn batch_matcher_deterministic_across_threads_and_order(
        threads in 1usize..6,
        shuffle_seed in 0u64..1_000,
    ) {
        let fx = fixture();
        let engine = BatchMatcher::new(fx.mma.clone(), BatchOptions::with_threads(threads));

        // Same order: identical to the sequential reference.
        let got = engine.match_batch(&fx.batch);
        prop_assert_eq!(&got, &fx.match_ref);

        // Shuffled order: each trajectory keeps its result.
        let mut order: Vec<usize> = (0..fx.batch.len()).collect();
        order.shuffle(&mut StdRng::seed_from_u64(shuffle_seed));
        let shuffled: Vec<Trajectory> = order.iter().map(|&i| fx.batch[i].clone()).collect();
        let got_shuffled = engine.match_batch(&shuffled);
        for (slot, &src) in order.iter().enumerate() {
            prop_assert_eq!(&got_shuffled[slot], &fx.match_ref[src]);
        }
    }

    #[test]
    fn batch_recovery_deterministic_across_threads_and_order(
        threads in 1usize..6,
        shuffle_seed in 0u64..1_000,
    ) {
        let fx = fixture();
        let engine = BatchRecovery::new(
            fx.mma.clone(),
            fx.trmma.clone(),
            BatchOptions::with_threads(threads),
        );

        let got = engine.recover_batch(&fx.batch, fx.eps);
        prop_assert_eq!(&got, &fx.recover_ref);

        let mut order: Vec<usize> = (0..fx.batch.len()).collect();
        order.shuffle(&mut StdRng::seed_from_u64(shuffle_seed));
        let shuffled: Vec<Trajectory> = order.iter().map(|&i| fx.batch[i].clone()).collect();
        let got_shuffled = engine.recover_batch(&shuffled, fx.eps);
        for (slot, &src) in order.iter().enumerate() {
            prop_assert_eq!(&got_shuffled[slot], &fx.recover_ref[src]);
        }
    }
}
