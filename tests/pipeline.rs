//! End-to-end integration tests spanning all crates: dataset generation →
//! training → map matching → recovery → metrics.

use std::sync::Arc;

use trmma::baselines::{FmmMatcher, HmmConfig, HmmMatcher, LinearRecovery, NearestMatcher};
use trmma::core::{Mma, MmaConfig, Trmma, TrmmaConfig, TrmmaPipeline};
use trmma::roadnet::RoutePlanner;
use trmma::traj::dataset::{build_dataset, Dataset, DatasetConfig, Split};
use trmma::traj::{matching_metrics, recovery_metrics, MapMatcher, Sample, TrajectoryRecovery};

fn fixture(
) -> (Dataset, Arc<trmma::roadnet::RoadNetwork>, Arc<RoutePlanner>, Vec<Sample>, Vec<Sample>) {
    let ds = build_dataset(&DatasetConfig::tiny());
    let net = Arc::new(ds.net.clone());
    let train = ds.samples(Split::Train, 0.2, 11);
    let test = ds.samples(Split::Test, 0.2, 12);
    let mut planner = RoutePlanner::untrained(&net);
    for s in &train {
        planner.observe(&s.route.segs);
    }
    (ds, net, Arc::new(planner), train, test)
}

#[test]
fn every_matcher_produces_valid_routes_on_every_test_sample() {
    let (_ds, net, planner, train, test) = fixture();
    let nearest = NearestMatcher::new(net.clone(), planner.clone());
    let hmm = HmmMatcher::new(net.clone(), planner.clone(), HmmConfig::default());
    let fmm = FmmMatcher::new(net.clone(), planner.clone(), HmmConfig::default());
    let mut mma = Mma::new(net.clone(), planner.clone(), None, MmaConfig::small());
    mma.train(&train[..train.len().min(8)], 2);
    let matchers: Vec<&dyn MapMatcher> = vec![&nearest, &hmm, &fmm, &mma];
    for m in matchers {
        for s in &test {
            let res = m.match_trajectory(&s.sparse);
            assert_eq!(res.matched.len(), s.sparse.len(), "{}", m.name());
            assert!(res.route.is_valid(&net), "{} route invalid", m.name());
            let q = matching_metrics(&res.route, &s.route);
            assert!((0.0..=1.0).contains(&q.f1));
        }
    }
}

#[test]
fn hmm_beats_nearest_on_route_quality() {
    let (_ds, net, planner, _train, test) = fixture();
    let nearest = NearestMatcher::new(net.clone(), planner.clone());
    let hmm = HmmMatcher::new(net.clone(), planner, HmmConfig::default());
    let mean_f1 = |m: &dyn MapMatcher| -> f64 {
        test.iter()
            .map(|s| matching_metrics(&m.match_trajectory(&s.sparse).route, &s.route).f1)
            .sum::<f64>()
            / test.len() as f64
    };
    let f1_nearest = mean_f1(&nearest);
    let f1_hmm = mean_f1(&hmm);
    assert!(f1_hmm > f1_nearest, "HMM ({f1_hmm:.3}) should beat Nearest ({f1_nearest:.3})");
}

#[test]
fn recovery_pipeline_outputs_align_with_epsilon_grid() {
    let (ds, net, planner, train, test) = fixture();
    let mut mma = Mma::new(net.clone(), planner.clone(), None, MmaConfig::small());
    mma.train(&train[..train.len().min(8)], 2);
    let mut model = Trmma::new(net.clone(), TrmmaConfig::small());
    model.train(&train[..train.len().min(8)], 2);
    let pipeline = TrmmaPipeline::new(Box::new(mma), model, "TRMMA");
    for s in &test {
        let rec = pipeline.recover(&s.sparse, ds.epsilon_s);
        assert_eq!(rec.len(), s.dense_truth.len(), "ε-grid length");
        assert!(rec.satisfies_epsilon(ds.epsilon_s, 1e-6));
        for p in &rec.points {
            assert!((0.0..=1.0).contains(&p.ratio));
            assert!(p.seg.idx() < net.num_segments());
        }
    }
}

#[test]
fn linear_recovery_over_any_matcher_is_well_formed() {
    let (ds, net, planner, _train, test) = fixture();
    let fmm = FmmMatcher::new(net.clone(), planner, HmmConfig::default());
    let rec = LinearRecovery::new(net.clone(), fmm, "Linear");
    let cache = trmma::roadnet::shortest::DistCache::new();
    for s in &test {
        let out = rec.recover(&s.sparse, ds.epsilon_s);
        assert_eq!(out.len(), s.dense_truth.len());
        let m = recovery_metrics(&net, &out, &s.dense_truth, Some(&cache));
        assert!(m.mae.is_finite());
        assert!(m.rmse >= m.mae);
        assert!((0.0..=1.0).contains(&m.accuracy));
    }
}

#[test]
fn training_is_deterministic_under_fixed_seeds() {
    let (_ds, net, planner, train, test) = fixture();
    let subset = &train[..train.len().min(6)];
    let run = || -> Vec<u32> {
        let mut mma = Mma::new(net.clone(), planner.clone(), None, MmaConfig::small());
        mma.train(subset, 2);
        test.iter().flat_map(|s| mma.match_points(&s.sparse)).map(|p| p.seg.0).collect()
    };
    assert_eq!(run(), run(), "same seed, same data → same predictions");
}

#[test]
fn trained_models_persist_and_reload() {
    let (ds, net, planner, train, test) = fixture();
    let subset = &train[..train.len().min(6)];
    let mut mma = Mma::new(net.clone(), planner.clone(), None, MmaConfig::small());
    mma.train(subset, 2);
    let mut model = Trmma::new(net.clone(), TrmmaConfig::small());
    model.train(subset, 2);

    let mma_blob = mma.save_weights();
    let trmma_blob = model.save_weights();

    let mut mma2 = Mma::new(net.clone(), planner.clone(), None, MmaConfig::small());
    mma2.load_weights(&mma_blob).expect("same-config load");
    let mut model2 = Trmma::new(net.clone(), TrmmaConfig::small());
    model2.load_weights(&trmma_blob).expect("same-config load");

    let p1 = TrmmaPipeline::new(Box::new(mma), model, "TRMMA");
    let p2 = TrmmaPipeline::new(Box::new(mma2), model2, "TRMMA");
    for s in test.iter().take(4) {
        let a = p1.recover(&s.sparse, ds.epsilon_s);
        let b = p2.recover(&s.sparse, ds.epsilon_s);
        assert_eq!(a, b, "reloaded pipeline must reproduce the original");
    }

    // Cross-config loads must fail cleanly.
    let mut wrong = Trmma::new(net, TrmmaConfig { dh: 16, ..TrmmaConfig::small() });
    assert!(wrong.load_weights(&trmma_blob).is_err());
}

#[test]
fn early_stopping_never_worse_than_final_epoch_on_val() {
    let (_ds, net, planner, train, _test) = fixture();
    let subset = &train[..train.len().min(8)];
    let val = &train[train.len().min(8)..];
    if val.is_empty() {
        return;
    }
    let mut a = Mma::new(net.clone(), planner.clone(), None, MmaConfig::small());
    a.train(subset, 5);
    let plain_val = a.validation_loss(val);
    let mut b = Mma::new(net, planner, None, MmaConfig::small());
    b.train_early_stop(subset, val, 5, 1);
    let early_val = b.validation_loss(val);
    assert!(
        early_val <= plain_val + 1e-9,
        "early stopping kept a worse epoch: {early_val} vs {plain_val}"
    );
}

#[test]
fn facade_reexports_work() {
    // The facade crate must expose the full stack.
    let net = trmma::roadnet::generate_city(&trmma::roadnet::NetworkConfig::with_size(4, 4, 1));
    assert!(net.num_segments() > 0);
    let tree = net.build_rtree();
    assert_eq!(tree.len(), net.num_segments());
    assert!(!trmma::VERSION.is_empty());
}
