//! Property tests for the network ingest front-end (`trmma_core::serve`):
//!
//! * **Wire codec soundness** — arbitrary frames (any version byte, any
//!   kind byte, arbitrary tenant/session ids and payload bytes) round-trip
//!   bitwise through `Frame::encode`/`Frame::decode`; truncating the
//!   encoding at *every* cut point and flipping seeded single bits are
//!   rejected with typed `SnapshotError`s — never a panic, never a
//!   silently-corrupted frame (CRC-32 detects every single-bit error);
//! * **Loopback identity** — for every `OnlineMatcher` in the repository
//!   (Nearest, HMM, FMM, LHMM, MMA), trajectories pushed through a real
//!   loopback TCP socket — arbitrary cross-session interleavings, chunk
//!   sizes and inflight windows — finalize to results bitwise-identical to
//!   the offline `match_trajectory_with` decode of the same points, over
//!   arbitrary generated road networks.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use trmma::baselines::{FmmMatcher, HmmConfig, HmmMatcher, LhmmMatcher, NearestMatcher};
use trmma::core::serve::VERSION;
use trmma::core::{Frame, Mma, MmaConfig, Reply, ServeClient, ServeConfig, Server, StreamOptions};
use trmma::roadnet::{generate_city, NetworkConfig, RoadNetwork, RoutePlanner};
use trmma::traj::gen::{generate_trajectory, sparsify, TrajConfig};
use trmma::traj::types::Trajectory;
use trmma::traj::{OnlineMatcher, Sample};

/// Generates a city plus a handful of sparse samples from a seed pair
/// (the `props_streaming` world generator).
fn arbitrary_world(net_seed: u64, traj_seed: u64) -> (Arc<RoadNetwork>, Vec<Sample>) {
    let side = 6 + (net_seed % 3) as usize; // 6x6 .. 8x8 grids
    let net = Arc::new(generate_city(&NetworkConfig::with_size(side, side, net_seed)));
    let cfg = TrajConfig { min_points: 8, ..TrajConfig::default() };
    let mut rng = StdRng::seed_from_u64(traj_seed);
    let mut samples = Vec::new();
    for _ in 0..10 {
        if samples.len() == 3 {
            break;
        }
        if let Some(raw) = generate_trajectory(&net, &cfg, &mut rng) {
            samples.push(sparsify(&raw, 0.3, &mut rng));
        }
    }
    (net, samples)
}

/// An arbitrary frame from a seed: version usually current (sometimes
/// random), kind any byte in the request/reply/unknown space, arbitrary
/// ids and payload.
fn arbitrary_frame(seed: u64) -> Frame {
    let mut rng = StdRng::seed_from_u64(seed);
    let version = if rng.gen_range(0..4) == 0 {
        rng.gen_range(0..u32::from(u16::MAX)) as u16
    } else {
        VERSION
    };
    let kind = rng.gen_range(0..32) as u8;
    let tenant = rng.gen_range(0..u64::MAX);
    let session = rng.gen_range(0..u64::MAX);
    let len = rng.gen_range(0..64) as usize;
    let payload: Vec<u8> = (0..len).map(|_| rng.gen_range(0..256) as u8).collect();
    Frame { version, kind, tenant, session, payload }
}

/// Streams `trips` into a loopback server under an arbitrary interleaving
/// (seeded session choice and chunk length) with a bounded inflight
/// window, then asserts every `Final` equals the offline scratch decode.
fn assert_loopback_identical<M: OnlineMatcher + 'static>(
    matcher: &Arc<M>,
    trips: &[Trajectory],
    stream_seed: u64,
) {
    let cfg = ServeConfig::default().stream(StreamOptions::with_threads(2).idle_timeout_s(0.0));
    let server = Server::start(matcher.clone(), cfg).expect("loopback server starts");
    let mut client = ServeClient::connect(server.local_addr(), 9).expect("loopback connect");
    let mut rng = StdRng::seed_from_u64(stream_seed);
    let window = 1 + rng.gen_range(0..8usize);
    // Arbitrary (but collision-free) client session ids.
    let ids: Vec<u64> = (0..trips.len()).map(|i| 1000 + 17 * i as u64).collect();
    for (i, t) in trips.iter().enumerate() {
        if !t.is_empty() {
            client.open(ids[i]).expect("open session");
        }
    }
    let mut cursors = vec![0usize; trips.len()];
    let mut open: Vec<usize> = (0..trips.len()).filter(|&i| !trips[i].is_empty()).collect();
    let mut inflight = 0usize;
    let drain_one = |client: &mut ServeClient, inflight: &mut usize| match client
        .recv_reply()
        .expect("reply mid-stream")
    {
        Reply::Ack { .. } => *inflight -= 1,
        r => panic!("{}: unexpected reply mid-stream: {r:?}", matcher.name()),
    };
    while !open.is_empty() {
        let pick = rng.gen_range(0..open.len());
        let t = open[pick];
        let chunk = 1 + rng.gen_range(0..3);
        for _ in 0..chunk {
            if cursors[t] == trips[t].len() {
                break;
            }
            while inflight >= window {
                drain_one(&mut client, &mut inflight);
            }
            client.push(ids[t], trips[t].points[cursors[t]]).expect("push frame");
            cursors[t] += 1;
            inflight += 1;
        }
        if cursors[t] == trips[t].len() {
            open.swap_remove(pick);
        }
    }
    while inflight > 0 {
        drain_one(&mut client, &mut inflight);
    }
    let mut finals: HashMap<u64, trmma::traj::MatchResult> = HashMap::new();
    // Finalize in a different arbitrary order than the streaming order.
    let mut order: Vec<usize> = (0..trips.len()).filter(|&i| !trips[i].is_empty()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..i + 1));
    }
    for &t in &order {
        let (points, result) = client.finalize(ids[t]).expect("finalize session");
        assert_eq!(points as usize, trips[t].len(), "{}: ack count", matcher.name());
        finals.insert(ids[t], result);
    }
    let mut scratch = matcher.make_scratch();
    for (i, t) in trips.iter().enumerate() {
        if t.is_empty() {
            continue;
        }
        let offline = matcher.match_trajectory_with(&mut scratch, t);
        assert_eq!(
            finals.get(&ids[i]),
            Some(&offline),
            "{}: socket decode of session {i} diverged from offline (window {window})",
            matcher.name()
        );
    }
    server.stop();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn wire_codec_round_trips_and_rejects_corruption(frame_seed in 0u64..100_000) {
        let frame = arbitrary_frame(frame_seed);
        let bytes = frame.encode().expect("small frames encode");
        let back = Frame::decode(&bytes).expect("encoded frames decode");
        prop_assert_eq!(&back, &frame, "decode must invert encode");
        prop_assert_eq!(
            back.encode().expect("re-encode"),
            bytes.clone(),
            "round trip must be bitwise"
        );
        // Truncation at every cut point is a typed error, never a panic.
        for cut in 0..bytes.len() {
            prop_assert!(
                Frame::decode(&bytes[..cut]).is_err(),
                "truncation at {} of {} must fail",
                cut,
                bytes.len()
            );
        }
        // Seeded single-bit flips: CRC-32 detects every single-bit error,
        // so a flipped frame must be rejected, not silently mis-decoded.
        let mut rng = StdRng::seed_from_u64(frame_seed ^ 0xF11F);
        for _ in 0..16 {
            let pos = rng.gen_range(0..bytes.len());
            let bit = rng.gen_range(0..8) as u8;
            let mut flipped = bytes.clone();
            flipped[pos] ^= 1 << bit;
            prop_assert!(
                Frame::decode(&flipped).is_err(),
                "bit {} of byte {} flipped undetected",
                bit,
                pos
            );
        }
    }

    #[test]
    fn loopback_socket_decode_is_identical_to_offline_for_every_matcher(
        net_seed in 0u64..1_000,
        traj_seed in 0u64..1_000,
        stream_seed in 0u64..1_000,
    ) {
        let (net, samples) = arbitrary_world(net_seed, traj_seed);
        if samples.is_empty() {
            // A barren seed pair (all OD draws too short) proves nothing;
            // skip rather than fail — other cases cover the property.
            return Ok(());
        }
        let trips: Vec<Trajectory> = samples.iter().map(|s| s.sparse.clone()).collect();
        let planner = Arc::new(RoutePlanner::untrained(&net));
        let cfg = HmmConfig::default();
        let nearest = Arc::new(NearestMatcher::new(net.clone(), planner.clone()));
        let hmm = Arc::new(HmmMatcher::new(net.clone(), planner.clone(), cfg.clone()));
        let fmm = Arc::new(FmmMatcher::new(net.clone(), planner.clone(), cfg.clone()));
        let lhmm = Arc::new(LhmmMatcher::fit(net.clone(), planner.clone(), cfg, &samples));
        let mma = Arc::new(Mma::new(net.clone(), planner, None, MmaConfig::small()));
        assert_loopback_identical(&nearest, &trips, stream_seed);
        assert_loopback_identical(&hmm, &trips, stream_seed);
        assert_loopback_identical(&fmm, &trips, stream_seed);
        assert_loopback_identical(&lhmm, &trips, stream_seed);
        assert_loopback_identical(&mma, &trips, stream_seed);
    }
}
