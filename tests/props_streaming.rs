//! Property tests for the streaming inference path:
//!
//! * **Replay equivalence** — for *every* `OnlineMatcher` in the repository
//!   (Nearest, HMM, FMM, LHMM, MMA), opening a session, pushing a
//!   trajectory's points one at a time and finalizing yields output
//!   bitwise-identical to the offline `match_trajectory`, over arbitrary
//!   generated road networks and trajectories;
//! * **Watermark soundness** — the stabilized-prefix watermark is monotone,
//!   never exceeds the pushed count, agrees with the
//!   `session_len`/`session_watermark` introspection API, and the decode
//!   prefix it pins never changes as more points arrive (checked against a
//!   decode of every longer prefix, including the final one);
//! * **Engine equivalence** — replaying many sessions through
//!   `StreamEngine` under arbitrary cross-session interleavings, chunk
//!   sizes, thread counts *and router policies* finalizes every session to
//!   exactly the offline decode, with per-update provisional matches and
//!   watermarks consistent with the direct session API;
//! * **Migration safety** — forcing sessions to migrate between workers at
//!   arbitrary points in the stream changes nothing: the finalized output
//!   of every `OnlineMatcher` stays bitwise-identical to the offline
//!   decode, sessions are never split or duplicated, and the router's
//!   migration counters balance.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use trmma::baselines::{FmmMatcher, HmmConfig, HmmMatcher, LhmmMatcher, NearestMatcher};
use trmma::core::{
    FinalizeReason, Mma, MmaConfig, RouterPolicy, SessionId, StreamEngine, StreamEvent,
    StreamOptions,
};
use trmma::roadnet::{generate_city, NetworkConfig, RoadNetwork, RoutePlanner};
use trmma::traj::gen::{generate_trajectory, sparsify, TrajConfig};
use trmma::traj::types::Trajectory;
use trmma::traj::{OnlineMatcher, Sample};

/// Generates a city plus a handful of sparse samples from a seed pair.
fn arbitrary_world(net_seed: u64, traj_seed: u64) -> (Arc<RoadNetwork>, Vec<Sample>) {
    let side = 6 + (net_seed % 3) as usize; // 6x6 .. 8x8 grids
    let net = Arc::new(generate_city(&NetworkConfig::with_size(side, side, net_seed)));
    let cfg = TrajConfig { min_points: 8, ..TrajConfig::default() };
    let mut rng = StdRng::seed_from_u64(traj_seed);
    let mut samples = Vec::new();
    for _ in 0..10 {
        if samples.len() == 4 {
            break;
        }
        if let Some(raw) = generate_trajectory(&net, &cfg, &mut rng) {
            samples.push(sparsify(&raw, 0.3, &mut rng));
        }
    }
    (net, samples)
}

/// Asserts the replay-equivalence contract: session push-all + finalize
/// equals the offline decode, and every update's watermark is sound.
fn assert_replay_identical<M: OnlineMatcher>(matcher: &M, traj: &Trajectory)
where
    M::Session: Clone,
{
    let offline = matcher.match_trajectory(traj);
    let mut scratch = matcher.make_scratch();
    let mut session = matcher.begin_session();
    let mut prev_watermark = 0usize;
    // Decodes of every prefix, to check watermark pins against.
    let mut prefix_decodes = Vec::with_capacity(traj.len());
    let mut watermarks = Vec::with_capacity(traj.len());
    for (i, &p) in traj.points.iter().enumerate() {
        let update = matcher.push_point(&mut scratch, &mut session, p);
        let provisional = update.provisional.expect("non-empty network yields a candidate");
        assert_eq!(
            provisional.t,
            p.t,
            "{}: provisional must match the pushed point",
            matcher.name()
        );
        assert!(
            update.stable_prefix >= prev_watermark,
            "{}: watermark regressed at point {i}",
            matcher.name()
        );
        assert!(
            update.stable_prefix <= i + 1,
            "{}: watermark beyond pushed count at point {i}",
            matcher.name()
        );
        // The introspection API (what the engine's migration policy reads)
        // must agree with what push_point just reported.
        assert_eq!(matcher.session_len(&session), i + 1, "{}: session_len", matcher.name());
        assert_eq!(
            matcher.session_watermark(&session),
            update.stable_prefix,
            "{}: session_watermark",
            matcher.name()
        );
        assert_eq!(
            matcher.session_stable(&session),
            update.stable_prefix == i + 1,
            "{}: session_stable",
            matcher.name()
        );
        prev_watermark = update.stable_prefix;
        watermarks.push(update.stable_prefix);
        prefix_decodes.push(matcher.finalize(&mut scratch, session.clone()).matched);
    }
    let online = matcher.finalize(&mut scratch, session);
    assert_eq!(online, offline, "{}: online finalize != offline decode", matcher.name());
    // Watermark soundness: the prefix pinned at time i is byte-identical in
    // every longer decode, including the final one.
    for (i, &w) in watermarks.iter().enumerate() {
        for later in prefix_decodes.iter().skip(i) {
            assert_eq!(
                &prefix_decodes[i][..w],
                &later[..w],
                "{}: stabilized prefix changed after point {i}",
                matcher.name()
            );
        }
        assert_eq!(
            &prefix_decodes[i][..w],
            &offline.matched[..w],
            "{}: final decode contradicts watermark at point {i}",
            matcher.name()
        );
    }
}

/// Replays sessions through a `StreamEngine` under an arbitrary
/// interleaving (random session choice, random chunk length) and asserts
/// every finalized result equals the offline decode. With
/// `force_migrations`, a random force-migrate is issued after every chunk,
/// so session state crosses workers at arbitrary stream positions.
fn assert_engine_identical<M: OnlineMatcher + 'static>(
    matcher: &Arc<M>,
    batch: &[Trajectory],
    threads: usize,
    interleave_seed: u64,
    max_chunk: usize,
    policy: RouterPolicy,
    force_migrations: bool,
) {
    // Automatic rebalancing off: it issues stable-only detaches that a
    // lagging decoder may legitimately refuse, which would trip the
    // forced-migration counter asserts below. Forced `migrate()` calls
    // are unaffected by the threshold.
    let engine = StreamEngine::new(
        matcher.clone(),
        StreamOptions::with_threads(threads)
            .idle_timeout_s(0.0)
            .router_policy(policy)
            .rebalance_threshold(0),
    );
    let mut rng = StdRng::seed_from_u64(interleave_seed);
    let mut cursors = vec![0usize; batch.len()];
    let mut open: Vec<usize> = (0..batch.len()).filter(|&i| !batch[i].is_empty()).collect();
    let non_empty = open.len();
    while !open.is_empty() {
        let pick = rng.gen_range(0..open.len());
        let sid = open[pick];
        let chunk = 1 + rng.gen_range(0..max_chunk);
        for _ in 0..chunk {
            if cursors[sid] == batch[sid].len() {
                break;
            }
            assert!(engine.push(sid as SessionId, batch[sid].points[cursors[sid]]));
            cursors[sid] += 1;
        }
        if force_migrations {
            engine.migrate(sid as SessionId, rng.gen_range(0..threads));
        }
        if cursors[sid] == batch[sid].len() {
            open.swap_remove(pick);
        }
    }
    for sid in 0..batch.len() {
        engine.finish(sid as SessionId);
    }
    // Let in-flight migrations resolve so the counters can be checked
    // (polling router_stats also drives the resolution).
    let deadline = Instant::now() + Duration::from_secs(10);
    let rs = loop {
        let rs = engine.router_stats();
        if rs.migrations_requested
            == rs.migrations_completed + rs.migrations_refused + rs.migrations_missed
            || Instant::now() >= deadline
        {
            break rs;
        }
        std::thread::sleep(Duration::from_millis(1));
    };
    assert_eq!(
        rs.migrations_requested,
        rs.migrations_completed + rs.migrations_refused + rs.migrations_missed,
        "{}: migrations never settled",
        matcher.name()
    );
    assert_eq!(rs.migrations_missed, 0, "forced migrations target live sessions only");
    assert_eq!(rs.migrations_refused, 0, "forced migrations must not consult stability");
    let placed: u64 = rs.workers.iter().map(|w| w.sessions_placed).sum();
    assert_eq!(placed, non_empty as u64, "{}: placement per session", matcher.name());
    let migrated_out: u64 = rs.workers.iter().map(|w| w.migrated_out).sum();
    assert_eq!(migrated_out, rs.migrations_completed, "{}: detach counter", matcher.name());
    let (events, stats) = engine.shutdown();
    let finals: HashMap<SessionId, _> = events
        .iter()
        .filter_map(|e| match e {
            StreamEvent::Finalized { session, reason, result, .. } => {
                assert_eq!(*reason, FinalizeReason::Explicit);
                Some((*session, result.clone()))
            }
            StreamEvent::Update { .. } => None,
        })
        .collect();
    let total: u64 = batch.iter().map(|t| t.len() as u64).sum();
    assert_eq!(stats.points, total, "every streamed point must be decoded");
    assert_eq!(stats.late_dropped, 0);
    assert_eq!(
        stats.sessions_opened,
        non_empty as u64,
        "{}: a migration must never split a session",
        matcher.name()
    );
    for (sid, t) in batch.iter().enumerate() {
        if t.is_empty() {
            continue;
        }
        assert_eq!(
            finals.get(&(sid as SessionId)),
            Some(&matcher.match_trajectory(t)),
            "{} session {sid} diverged at {threads} threads ({policy:?})",
            matcher.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn online_finalize_equals_offline_for_every_matcher(
        net_seed in 0u64..1_000,
        traj_seed in 0u64..1_000,
    ) {
        let (net, samples) = arbitrary_world(net_seed, traj_seed);
        if samples.is_empty() {
            // A barren seed pair (all OD draws too short) proves nothing;
            // skip rather than fail — other cases cover the property.
            return Ok(());
        }
        let planner = Arc::new(RoutePlanner::untrained(&net));
        let cfg = HmmConfig::default();
        let nearest = NearestMatcher::new(net.clone(), planner.clone());
        let hmm = HmmMatcher::new(net.clone(), planner.clone(), cfg.clone());
        let fmm = FmmMatcher::new(net.clone(), planner.clone(), cfg.clone());
        let lhmm = LhmmMatcher::fit(net.clone(), planner.clone(), cfg, &samples);
        let mma = Mma::new(net.clone(), planner, None, MmaConfig::small());
        for s in &samples {
            assert_replay_identical(&nearest, &s.sparse);
            assert_replay_identical(&hmm, &s.sparse);
            assert_replay_identical(&fmm, &s.sparse);
            assert_replay_identical(&lhmm, &s.sparse);
            assert_replay_identical(&mma, &s.sparse);
        }
    }

    #[test]
    fn stream_engine_finalizes_to_offline_for_arbitrary_interleavings(
        net_seed in 0u64..1_000,
        traj_seed in 0u64..1_000,
        threads in 1usize..5,
        interleave_seed in 0u64..1_000,
        max_chunk in 1usize..6,
    ) {
        let (net, samples) = arbitrary_world(net_seed, traj_seed);
        if samples.is_empty() {
            return Ok(());
        }
        let batch: Vec<Trajectory> = samples.iter().map(|s| s.sparse.clone()).collect();
        let planner = Arc::new(RoutePlanner::untrained(&net));
        let cfg = HmmConfig::default();
        // Both router policies must satisfy the identity; derive the policy
        // from the seed so the case budget covers each.
        let policy = if net_seed % 2 == 0 { RouterPolicy::PowerOfTwo } else { RouterPolicy::HashMod };
        // One global-attention decoder (MMA) and one lattice decoder (HMM)
        // cover both session shapes; FMM/LHMM share HMM's session type.
        let hmm = Arc::new(HmmMatcher::new(net.clone(), planner.clone(), cfg));
        let mma = Arc::new(Mma::new(net.clone(), planner, None, MmaConfig::small()));
        assert_engine_identical(&hmm, &batch, threads, interleave_seed, max_chunk, policy, false);
        assert_engine_identical(&mma, &batch, threads, interleave_seed, max_chunk, policy, false);
    }

    #[test]
    fn forced_migrations_preserve_offline_identity(
        net_seed in 0u64..1_000,
        traj_seed in 0u64..1_000,
        threads in 2usize..5,
        interleave_seed in 0u64..1_000,
        max_chunk in 1usize..6,
    ) {
        let (net, samples) = arbitrary_world(net_seed, traj_seed);
        if samples.is_empty() {
            return Ok(());
        }
        let batch: Vec<Trajectory> = samples.iter().map(|s| s.sparse.clone()).collect();
        let planner = Arc::new(RoutePlanner::untrained(&net));
        let cfg = HmmConfig::default();
        let hmm = Arc::new(HmmMatcher::new(net.clone(), planner.clone(), cfg));
        let mma = Arc::new(Mma::new(net.clone(), planner, None, MmaConfig::small()));
        assert_engine_identical(
            &hmm, &batch, threads, interleave_seed, max_chunk, RouterPolicy::PowerOfTwo, true,
        );
        assert_engine_identical(
            &mma, &batch, threads, interleave_seed, max_chunk, RouterPolicy::PowerOfTwo, true,
        );
    }
}

/// Pushing a trajectory in one session and in several id-distinct sessions
/// through one engine must not cross-contaminate: per-worker scratch is
/// shared between sessions, per-session decoder state must not be.
#[test]
fn sessions_sharing_a_worker_do_not_interfere() {
    let (net, samples) = arbitrary_world(3, 5);
    assert!(!samples.is_empty());
    let planner = Arc::new(RoutePlanner::untrained(&net));
    let hmm = Arc::new(HmmMatcher::new(net, planner, HmmConfig::default()));
    let batch: Vec<Trajectory> = samples.iter().map(|s| s.sparse.clone()).collect();
    // One worker → every session lands on the same scratch.
    assert_engine_identical(&hmm, &batch, 1, 17, 3, RouterPolicy::PowerOfTwo, false);
}

/// The acceptance bar of the migration feature: every `OnlineMatcher` in
/// the repository survives forced migrations at arbitrary stream positions
/// with bitwise-identical output — including the decoders whose sessions
/// carry a full Viterbi lattice (HMM/FMM/LHMM) and accumulated candidate
/// sets (MMA).
#[test]
fn every_matcher_survives_forced_migrations() {
    let (net, samples) = arbitrary_world(6, 11);
    assert!(!samples.is_empty());
    let planner = Arc::new(RoutePlanner::untrained(&net));
    let cfg = HmmConfig::default();
    let batch: Vec<Trajectory> = samples.iter().map(|s| s.sparse.clone()).collect();
    let nearest = Arc::new(NearestMatcher::new(net.clone(), planner.clone()));
    let hmm = Arc::new(HmmMatcher::new(net.clone(), planner.clone(), cfg.clone()));
    let fmm = Arc::new(FmmMatcher::new(net.clone(), planner.clone(), cfg.clone()));
    let lhmm = Arc::new(LhmmMatcher::fit(net.clone(), planner.clone(), cfg, &samples));
    let mma = Arc::new(Mma::new(net.clone(), planner, None, MmaConfig::small()));
    assert_engine_identical(&nearest, &batch, 3, 23, 4, RouterPolicy::PowerOfTwo, true);
    assert_engine_identical(&hmm, &batch, 3, 23, 4, RouterPolicy::PowerOfTwo, true);
    assert_engine_identical(&fmm, &batch, 3, 23, 4, RouterPolicy::PowerOfTwo, true);
    assert_engine_identical(&lhmm, &batch, 3, 23, 4, RouterPolicy::PowerOfTwo, true);
    assert_engine_identical(&mma, &batch, 3, 23, 4, RouterPolicy::PowerOfTwo, true);
}
