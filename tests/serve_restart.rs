//! Integration tests for the ingest service's operational story:
//!
//! * **Rolling restart** — sessions stream into server A mid-trip, a
//!   `Snapshot` frame drains every live session, A is stopped, `Restore`
//!   frames rehydrate them into a fresh server B where the trips finish —
//!   zero sessions lost, finals bitwise-identical to the uninterrupted
//!   offline decode, with `FaultPlan` stalls injected on both sides of the
//!   handover (the PR 6 chaos machinery);
//! * **Adversarial input** — oversized length prefixes, unknown frame
//!   kinds, wrong versions, wrong-tenant session touches and a slow-loris
//!   client each get a *typed* refusal and never stall other tenants,
//!   asserted via the `ServeStats` fairness counters.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use trmma::baselines::{HmmConfig, HmmMatcher};
use trmma::core::serve::{HEADER_LEN, MAGIC, VERSION};
use trmma::core::{
    BusyCode, ClientError, FaultPlan, Frame, FrameKind, RefuseCode, Reply, ServeClient,
    ServeConfig, Server, StreamOptions,
};
use trmma::roadnet::RoutePlanner;
use trmma::traj::dataset::{build_dataset, DatasetConfig, Split};
use trmma::traj::types::Trajectory;
use trmma::traj::MapMatcher;

fn world() -> (Arc<HmmMatcher>, Vec<Trajectory>) {
    let ds = build_dataset(&DatasetConfig::tiny());
    let net = Arc::new(ds.net.clone());
    let planner = Arc::new(RoutePlanner::untrained(&net));
    let hmm = Arc::new(HmmMatcher::new(net, planner, HmmConfig::default()));
    let trips: Vec<Trajectory> =
        ds.samples(Split::Test, 0.2, 40).into_iter().take(4).map(|s| s.sparse).collect();
    (hmm, trips)
}

fn base_cfg() -> ServeConfig {
    ServeConfig::default().stream(StreamOptions::with_threads(2).idle_timeout_s(0.0))
}

#[test]
fn rolling_restart_loses_no_sessions_and_finals_match_offline() {
    let (hmm, trips) = world();
    // Stalls on both servers: the drain and the restore replay must hold
    // under worker-side chaos, not just on a quiet engine.
    let stalls = FaultPlan {
        seed: 0xB0_0CE5,
        stall_per_mille: 250,
        stall: Duration::from_millis(2),
        ..FaultPlan::default()
    };
    let tenant = 3;
    let a = Server::start(hmm.clone(), base_cfg().faults(stalls)).expect("server A");
    let mut ca = ServeClient::connect(a.local_addr(), tenant).expect("connect A");
    for (i, t) in trips.iter().enumerate() {
        ca.open(i as u64).expect("open on A");
        let half = t.len() / 2;
        let acked = ca.stream_points(i as u64, &t.points[..half], 4).expect("stream first half");
        assert_eq!(acked as usize, half);
    }
    let snaps = ca.snapshot_all().expect("drain A");
    assert_eq!(snaps.len(), trips.len(), "every mid-stream session must drain");
    assert!(snaps.iter().all(|(owner, _)| *owner == tenant));
    let stats_a = a.stats();
    assert_eq!(stats_a.snapshots_out, trips.len() as u64);
    assert_eq!(stats_a.sessions_finalized, 0, "a drain is not a finalize");
    a.stop(); // "kill" server A

    let b = Server::start(hmm.clone(), base_cfg().faults(stalls)).expect("server B");
    let mut cb = ServeClient::connect(b.local_addr(), tenant).expect("connect B");
    for (owner, snap) in &snaps {
        cb.restore(*owner, snap).expect("restore into B");
    }
    for (i, t) in trips.iter().enumerate() {
        let half = t.len() / 2;
        let acked = cb.stream_points(i as u64, &t.points[half..], 4).expect("stream second half");
        assert_eq!(acked as usize, t.len() - half);
        let (points, result) = cb.finalize(i as u64).expect("finalize on B");
        assert_eq!(points as usize, t.len(), "point count must span both servers");
        assert_eq!(
            result,
            hmm.match_trajectory(t),
            "restarted session {i} diverged from the uninterrupted decode"
        );
    }
    let stats_b = b.stats();
    assert_eq!(stats_b.sessions_restored, trips.len() as u64, "zero sessions lost");
    assert_eq!(stats_b.sessions_finalized, trips.len() as u64);
    b.stop();
}

#[test]
fn oversized_length_prefix_gets_typed_refusal_without_stalling_others() {
    let (hmm, trips) = world();
    let server = Server::start(hmm.clone(), base_cfg().max_payload(1 << 16)).expect("server");

    // A hand-built header claiming a 256 MB payload: the server must refuse
    // on the prefix alone (never attempting to read or allocate the body)
    // and close the connection.
    let mut evil = ServeClient::connect(server.local_addr(), 66).expect("connect");
    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.push(FrameKind::Push as u8);
    header.extend_from_slice(&66u64.to_le_bytes());
    header.extend_from_slice(&1u64.to_le_bytes());
    header.extend_from_slice(&(256u32 << 20).to_le_bytes());
    evil.send_bytes(&header).expect("send oversized prefix");
    match evil.recv_reply().expect("typed refusal") {
        Reply::Refused { code, detail, .. } => {
            assert_eq!(code, RefuseCode::Oversize);
            assert_eq!(detail, 256 << 20);
        }
        r => panic!("expected Oversize refusal, got {r:?}"),
    }

    // Another tenant streams through unaffected, on a fresh connection.
    let mut client = ServeClient::connect(server.local_addr(), 7).expect("connect");
    client.open(10).expect("open");
    client.stream_points(10, &trips[0].points, 4).expect("stream");
    let (_, result) = client.finalize(10).expect("finalize");
    assert_eq!(result, hmm.match_trajectory(&trips[0]));

    let stats = server.stats();
    assert_eq!(stats.oversize_rejected, 1);
    assert_eq!(stats.points_accepted, trips[0].len() as u64, "victim tenant lost nothing");
    server.stop();
}

#[test]
fn unknown_kind_and_bad_version_get_typed_refusals_and_conversation_continues() {
    let (hmm, trips) = world();
    let server = Server::start(hmm.clone(), base_cfg()).expect("server");
    let mut client = ServeClient::connect(server.local_addr(), 5).expect("connect");

    // Unknown frame kind: refused with the kind byte as detail.
    client
        .send_frame(&Frame { version: VERSION, kind: 77, tenant: 5, session: 1, payload: vec![] })
        .expect("send unknown kind");
    match client.recv_reply().expect("reply") {
        Reply::Refused { code, detail, .. } => {
            assert_eq!(code, RefuseCode::UnknownKind);
            assert_eq!(detail, 77);
        }
        r => panic!("expected UnknownKind refusal, got {r:?}"),
    }

    // Reply kinds are not requests: sending one is equally refused.
    client
        .send_frame(&Frame {
            version: VERSION,
            kind: FrameKind::Ack as u8,
            tenant: 5,
            session: 1,
            payload: vec![],
        })
        .expect("send reply kind");
    match client.recv_reply().expect("reply") {
        Reply::Refused { code, .. } => assert_eq!(code, RefuseCode::UnknownKind),
        r => panic!("expected UnknownKind refusal, got {r:?}"),
    }

    // Wrong protocol version: refused with the version as detail.
    client
        .send_frame(&Frame {
            version: 9,
            kind: FrameKind::Open as u8,
            tenant: 5,
            session: 1,
            payload: vec![],
        })
        .expect("send bad version");
    match client.recv_reply().expect("reply") {
        Reply::Refused { code, detail, .. } => {
            assert_eq!(code, RefuseCode::BadVersion);
            assert_eq!(detail, 9);
        }
        r => panic!("expected BadVersion refusal, got {r:?}"),
    }

    // Dispatch-level refusals do not poison the connection: the same
    // socket still speaks the protocol.
    client.open(1).expect("open after refusals");
    client.stream_points(1, &trips[0].points, 4).expect("stream");
    let (_, result) = client.finalize(1).expect("finalize");
    assert_eq!(result, hmm.match_trajectory(&trips[0]));

    let stats = server.stats();
    assert_eq!(stats.unknown_kind, 2);
    assert_eq!(stats.bad_version, 1);
    server.stop();
}

#[test]
fn wrong_tenant_touch_is_refused_and_owner_is_unaffected() {
    let (hmm, trips) = world();
    let server = Server::start(hmm.clone(), base_cfg()).expect("server");
    let mut owner = ServeClient::connect(server.local_addr(), 1).expect("owner connect");
    let mut thief = ServeClient::connect(server.local_addr(), 2).expect("thief connect");

    owner.open(100).expect("owner opens");
    let half = trips[0].len() / 2;
    owner.stream_points(100, &trips[0].points[..half], 4).expect("owner streams");

    // A different tenant touching the session gets WrongTenant, for both
    // push and finalize — the probe leaks nothing and mutates nothing.
    match thief.push_wait(100, trips[0].points[half]) {
        Err(ClientError::Refused { code, .. }) => assert_eq!(code, RefuseCode::WrongTenant),
        r => panic!("expected WrongTenant on push, got {r:?}"),
    }
    match thief.finalize(100) {
        Err(ClientError::Refused { code, .. }) => assert_eq!(code, RefuseCode::WrongTenant),
        r => panic!("expected WrongTenant on finalize, got {r:?}"),
    }

    // Tenant ids are client-asserted: a probe from a tenant that never
    // opened anything must not mint registry state, or one connection
    // could grow the tenant map (and the ServeStats payload) without
    // bound by scanning ids.
    let stats = server.stats();
    assert_eq!(stats.wrong_tenant, 2);
    assert!(stats.tenant(2).is_none(), "probing must not create tenant state");

    // Once the thief is a real tenant (it opened a session of its own),
    // further probes do land in its fairness row.
    thief.open(200).expect("thief opens its own session");
    match thief.push_wait(100, trips[0].points[half]) {
        Err(ClientError::Refused { code, .. }) => assert_eq!(code, RefuseCode::WrongTenant),
        r => panic!("expected WrongTenant on push, got {r:?}"),
    }

    // The owner's stream continues bit-exact.
    owner.stream_points(100, &trips[0].points[half..], 4).expect("owner continues");
    let (points, result) = owner.finalize(100).expect("owner finalizes");
    assert_eq!(points as usize, trips[0].len());
    assert_eq!(result, hmm.match_trajectory(&trips[0]));

    let stats = server.stats();
    assert_eq!(stats.wrong_tenant, 3);
    let thief_load = stats.tenant(2).expect("an open tenant is accounted");
    assert_eq!(thief_load.refused, 1, "only post-open probes hit the row");
    assert_eq!(thief_load.points, 0, "no stolen point was admitted");
    assert_eq!(thief_load.live_sessions, 1);
    server.stop();
}

#[test]
fn slow_loris_is_reaped_and_never_stalls_other_tenants() {
    let (hmm, trips) = world();
    // Aggressive header deadline so the test turns around quickly.
    let server = Server::start(hmm.clone(), base_cfg().read_timeout_s(0.3)).expect("server");

    // The loris: half a header, then silence.
    let mut loris = TcpStream::connect(server.local_addr()).expect("loris connect");
    loris.write_all(&MAGIC).expect("partial header");
    loris.write_all(&[0x01]).expect("one more byte");

    // Meanwhile a well-behaved tenant streams a whole trip to completion —
    // the loris holds no lock and no worker.
    let mut client = ServeClient::connect(server.local_addr(), 4).expect("connect");
    client.open(8).expect("open");
    client.stream_points(8, &trips[1].points, 4).expect("stream");
    let (_, result) = client.finalize(8).expect("finalize");
    assert_eq!(result, hmm.match_trajectory(&trips[1]));

    // The server reaps the stalled connection at the read deadline: the
    // loris sees EOF, and the fairness counter records the kill.
    loris.set_read_timeout(Some(Duration::from_secs(5))).expect("read timeout");
    let mut buf = [0u8; 1];
    let n = loris.read(&mut buf).expect("loris socket closes cleanly");
    assert_eq!(n, 0, "server must close the slow-loris connection");
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = server.stats();
        if stats.slow_loris_closed >= 1 {
            assert_eq!(stats.slow_loris_closed, 1);
            assert_eq!(stats.points_accepted, trips[1].len() as u64);
            break;
        }
        assert!(Instant::now() < deadline, "slow_loris_closed never counted: {stats:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.stop();
}

#[test]
fn push_timeout_is_retryable_not_a_permanent_late_point() {
    let (hmm, trips) = world();
    // One worker whose every command stalls far past the push deadline,
    // behind a single-slot queue: the third concurrent push must hit the
    // engine's push_timeout_s and come back as Busy(PushTimeout).
    let stalls = FaultPlan {
        seed: 0x051A_11ED,
        stall_per_mille: 1000,
        stall: Duration::from_millis(300),
        ..FaultPlan::default()
    };
    let cfg = ServeConfig::default()
        .stream(
            StreamOptions::with_threads(1)
                .idle_timeout_s(0.0)
                .queue_capacity(1)
                .push_timeout_s(0.05),
        )
        .faults(stalls);
    let server = Server::start(hmm.clone(), cfg).expect("server");
    let mut client = ServeClient::connect(server.local_addr(), 1).expect("connect");
    client.open(1).expect("open");
    let points = &trips[0].points[..4];
    client.push_wait(1, points[0]).expect("first point acked on a quiet engine");
    // Stage the jam deterministically: the worker stalls on the second
    // point, the third fills the one-slot queue, so delivering the fourth
    // must hit push_timeout_s. The sleeps only widen the margins (the
    // stall is 6x the push deadline).
    client.push(1, points[1]).expect("send");
    std::thread::sleep(Duration::from_millis(50));
    client.push(1, points[2]).expect("send");
    std::thread::sleep(Duration::from_millis(50));
    client.push(1, points[3]).expect("send");
    let mut acked = 0usize;
    let mut timeouts = 0usize;
    while acked < 2 || timeouts == 0 {
        match client.recv_reply().expect("reply") {
            Reply::Ack { .. } => acked += 1,
            Reply::Busy { code, .. } => {
                assert_eq!(code, BusyCode::PushTimeout, "only the engine deadline fires here");
                timeouts += 1;
            }
            r => panic!("a timed-out push must surface as Busy, got {r:?}"),
        }
    }
    assert_eq!((acked, timeouts), (2, 1), "two stalled acks and one engine push timeout");
    // A PushTimeout is documented as retryable: with the jam cleared,
    // resending the *identical* point must be acked, never refused as a
    // LatePoint — the admission watermark rolled back when the engine
    // refused delivery.
    match client.push_wait(1, points[3]) {
        Ok(Reply::Ack { .. }) => {}
        r => panic!("retry of a timed-out push must succeed, got {r:?}"),
    }
    let (count, result) = client.finalize(1).expect("finalize");
    assert_eq!(count as usize, points.len(), "every point, including the retried one, decoded");
    let prefix = Trajectory { points: points.to_vec() };
    assert_eq!(result, hmm.match_trajectory(&prefix), "retry path stays bitwise-identical");
    server.stop();
}

#[test]
fn busy_window_is_typed_backpressure_not_silent_drop() {
    let (hmm, trips) = world();
    // A server-side inflight window of 1: the second unacked push must be
    // answered with a typed Busy(Window), and after draining the ack the
    // stream resumes exactly where it left off.
    let server = Server::start(hmm.clone(), base_cfg().inflight_window(1)).expect("server");
    let mut client = ServeClient::connect(server.local_addr(), 11).expect("connect");
    client.open(1).expect("open");
    let t = &trips[2];
    assert!(t.len() >= 3, "tiny corpus trip long enough to overfill a 1-window");
    client.push(1, t.points[0]).expect("first push");
    client.push(1, t.points[1]).expect("second push");
    let mut saw_busy = false;
    let mut acked = 0usize;
    while acked < 2 {
        match client.recv_reply().expect("reply") {
            Reply::Ack { .. } => acked += 1,
            Reply::Busy { code, .. } => {
                assert_eq!(code, BusyCode::Window);
                saw_busy = true;
                // Retry the refused point once its predecessor is acked.
                while acked < 1 {
                    match client.recv_reply().expect("reply") {
                        Reply::Ack { .. } => acked += 1,
                        r => panic!("expected ack before retry, got {r:?}"),
                    }
                }
                client.push(1, t.points[1]).expect("retry");
            }
            r => panic!("unexpected reply: {r:?}"),
        }
    }
    // The window refusal is typed and non-destructive: the rest of the
    // trip (strictly in order) still decodes bit-exact.
    for &p in &t.points[2..] {
        client.push_wait(1, p).expect("in-window push");
    }
    let (points, result) = client.finalize(1).expect("finalize");
    assert_eq!(points as usize, t.len());
    assert_eq!(result, hmm.match_trajectory(t));
    if saw_busy {
        assert!(server.stats().busy >= 1, "busy counter must record the refusal");
    }
    server.stop();
}
