//! Property tests for the sharded network (`trmma_roadnet::shard`):
//!
//! * **Decode identity** — for *every* `OnlineMatcher` in the repository
//!   (Nearest, HMM, FMM, LHMM, MMA), matching on a `ShardedNetwork` is
//!   bitwise-identical to the monolithic matcher — offline decode, online
//!   push/finalize replay and per-update watermarks — over arbitrary
//!   generated road networks, tile counts and cut seeds, for both the
//!   locality-preserving grid cut and the adversarial hash cut;
//! * **Overlay soundness** — `ShardedNetwork::node_dist` (intra-shard hop +
//!   boundary overlay + intra-shard hop, minimized over border pairs)
//!   answers bitwise-identically to a whole-graph `DistTable::build` at the
//!   same bound, for every node pair, within and across shards;
//! * **Border crossing** — the identity holds on trajectories whose matched
//!   route provably crosses a shard border, and the merged per-shard
//!   candidate search returns the exact canonical candidate list even for
//!   points whose candidate set straddles the boundary;
//! * a hand-computed pinned two-shard chain built through the public API.
//!
//! Networks are generated with zero coordinate jitter and no diagonals so
//! every edge length is an exact multiple of the grid spacing: path sums
//! are then exact in `f64` regardless of summation grouping, which is what
//! lets the decomposed (prefix + overlay + suffix) distances reproduce the
//! monolithic Dijkstra sums *bitwise* rather than approximately.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use trmma::baselines::{FmmMatcher, HmmConfig, HmmMatcher, LhmmMatcher, NearestMatcher};
use trmma::core::{Mma, MmaConfig};
use trmma::geom::Vec2;
use trmma::roadnet::{
    generate_city, DistTable, GridCut, HashCut, NetworkConfig, NodeId, RoadClass, RoadNetwork,
    RoutePlanner, ShardPlan, ShardedNetwork,
};
use trmma::traj::gen::{generate_trajectory, sparsify, TrajConfig};
use trmma::traj::types::Trajectory;
use trmma::traj::{CandidateFinder, MapMatcher, MatchResult, OnlineMatcher, Sample};

/// A city with *integer* geometry (no jitter, no diagonals — every edge an
/// exact multiple of the spacing) plus a handful of sparse samples.
fn integer_world(net_seed: u64, traj_seed: u64) -> (Arc<RoadNetwork>, Vec<Sample>) {
    let side = 6 + (net_seed % 3) as usize; // 6x6 .. 8x8 grids
    let net = Arc::new(generate_city(&NetworkConfig {
        jitter_frac: 0.0,
        p_diagonal: 0.0,
        ..NetworkConfig::with_size(side, side, net_seed)
    }));
    let cfg = TrajConfig { min_points: 8, ..TrajConfig::default() };
    let mut rng = StdRng::seed_from_u64(traj_seed);
    let mut samples = Vec::new();
    for _ in 0..10 {
        if samples.len() == 4 {
            break;
        }
        if let Some(raw) = generate_trajectory(&net, &cfg, &mut rng) {
            samples.push(sparsify(&raw, 0.3, &mut rng));
        }
    }
    (net, samples)
}

/// Cuts `net` into `tiles` shards: grid cut (the deployment shape) or hash
/// cut (adversarial — almost every edge crosses, the overlay carries
/// essentially all traffic).
fn cut(net: &RoadNetwork, tiles: usize, seed: u64, hash: bool) -> ShardPlan {
    if hash {
        ShardPlan::new(net, &HashCut { num_shards: tiles, seed })
    } else {
        ShardPlan::new(net, &GridCut::square(tiles, seed))
    }
}

/// Bit-level equality of two match results: `PartialEq` plus explicit bit
/// checks on the float fields (`==` would also accept `0.0 == -0.0`).
fn assert_bitwise(a: &MatchResult, b: &MatchResult, who: &str) {
    assert_eq!(a, b, "{who}: decode diverged");
    for (x, y) in a.matched.iter().zip(&b.matched) {
        assert_eq!(x.ratio.to_bits(), y.ratio.to_bits(), "{who}: ratio bits diverged");
        assert_eq!(x.t.to_bits(), y.t.to_bits(), "{who}: timestamp bits diverged");
    }
}

/// Asserts the full decode-identity contract between a monolithic matcher
/// and its sharded twin: offline decode, lock-step online updates
/// (provisional match + watermark) and the finalized replay all bitwise
/// equal, and replay equals offline on both sides.
fn assert_sharded_identical<M: OnlineMatcher>(mono: &M, sh: &M, batch: &[Trajectory]) {
    for traj in batch {
        let offline = mono.match_trajectory(traj);
        let offline_sh = sh.match_trajectory(traj);
        assert_bitwise(&offline, &offline_sh, mono.name());

        let (mut mscratch, mut msession) = (mono.make_scratch(), mono.begin_session());
        let (mut sscratch, mut ssession) = (sh.make_scratch(), sh.begin_session());
        for (i, &p) in traj.points.iter().enumerate() {
            let a = mono.push_point(&mut mscratch, &mut msession, p);
            let b = sh.push_point(&mut sscratch, &mut ssession, p);
            assert_eq!(a, b, "{}: online update diverged at point {i}", mono.name());
        }
        let fin = mono.finalize(&mut mscratch, msession);
        let fin_sh = sh.finalize(&mut sscratch, ssession);
        assert_bitwise(&fin, &fin_sh, mono.name());
        assert_bitwise(&fin, &offline, mono.name());
    }
}

/// How many consecutive matched-route segment pairs sit in different
/// shards — `> 0` means the decode genuinely exercised the overlay.
fn route_crossings(net: &RoadNetwork, plan: &ShardPlan, r: &MatchResult) -> usize {
    r.route
        .segs
        .windows(2)
        .filter(|w| {
            let a = plan.shard_of(net.segments()[w[0].idx()].from);
            let b = plan.shard_of(net.segments()[w[1].idx()].from);
            a != b
        })
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Every `OnlineMatcher` decodes bitwise-identically on a sharded
    /// network, for arbitrary worlds, tile counts, cut seeds and both cut
    /// strategies — offline and online paths.
    #[test]
    fn every_matcher_decodes_identically_sharded(
        net_seed in 0u64..1_000,
        traj_seed in 0u64..1_000,
        tiles in 2usize..7,
        cut_seed in 0u64..1_000,
        cut_kind in 0u64..2,
    ) {
        let hash_cut = cut_kind == 1;
        let (net, samples) = integer_world(net_seed, traj_seed);
        if samples.is_empty() {
            // A barren seed pair (all OD draws too short) proves nothing;
            // skip rather than fail — other cases cover the property.
            return Ok(());
        }
        let batch: Vec<Trajectory> = samples.iter().map(|s| s.sparse.clone()).collect();
        let cfg = HmmConfig::default();
        let plan = cut(&net, tiles, cut_seed, hash_cut);
        let sharded = Arc::new(ShardedNetwork::build(net.clone(), plan, cfg.max_route_m));
        let planner = Arc::new(RoutePlanner::untrained(&net));

        let near = NearestMatcher::new(net.clone(), planner.clone());
        let near_sh = NearestMatcher::sharded(sharded.clone(), planner.clone());
        assert_sharded_identical(&near, &near_sh, &batch);

        let hmm = HmmMatcher::new(net.clone(), planner.clone(), cfg.clone());
        let hmm_sh = HmmMatcher::sharded(sharded.clone(), planner.clone(), cfg.clone());
        assert_sharded_identical(&hmm, &hmm_sh, &batch);

        let fmm = FmmMatcher::new(net.clone(), planner.clone(), cfg.clone());
        let fmm_sh = FmmMatcher::sharded(sharded.clone(), planner.clone(), cfg.clone());
        assert_sharded_identical(&fmm, &fmm_sh, &batch);

        let lhmm = LhmmMatcher::fit(net.clone(), planner.clone(), cfg.clone(), &samples);
        let lhmm_sh =
            LhmmMatcher::fit_sharded(sharded.clone(), planner.clone(), cfg, &samples);
        assert_sharded_identical(&lhmm, &lhmm_sh, &batch);

        // The RNG draws in `Mma::new` precede the finder swap, so the two
        // instances carry bitwise-identical (untrained) weights.
        let mma = Mma::new(net.clone(), planner.clone(), None, MmaConfig::small());
        let mma_sh = Mma::sharded(sharded, planner, None, MmaConfig::small());
        assert_sharded_identical(&mma, &mma_sh, &batch);
    }

    /// Overlay soundness: the decomposed distance (intra + overlay + intra,
    /// minimized over border pairs) answers bitwise-identically to a
    /// whole-graph `DistTable` at the same bound, for *every* node pair —
    /// same reachability set, same distance bits.
    #[test]
    fn sharded_node_dist_equals_whole_graph_table(
        net_seed in 0u64..1_000,
        tiles in 2usize..9,
        cut_seed in 0u64..1_000,
        cut_kind in 0u64..2,
        delta in 300.0f64..2_500.0,
    ) {
        let hash_cut = cut_kind == 1;
        let side = 5 + (net_seed % 3) as usize;
        let net = Arc::new(generate_city(&NetworkConfig {
            jitter_frac: 0.0,
            p_diagonal: 0.0,
            ..NetworkConfig::with_size(side, side, net_seed)
        }));
        let plan = cut(&net, tiles, cut_seed, hash_cut);
        let sh = ShardedNetwork::build(net.clone(), plan, delta);
        let mono = DistTable::build(&net, delta);
        for s in 0..net.num_nodes() as u32 {
            for d in 0..net.num_nodes() as u32 {
                prop_assert_eq!(
                    sh.node_dist(NodeId(s), NodeId(d)).map(f64::to_bits),
                    mono.query(NodeId(s), NodeId(d)).map(f64::to_bits),
                    "distance diverged for {}->{}", s, d
                );
            }
        }
    }
}

/// Finds a world where an HMM-matched route provably crosses a shard
/// border and a GPS point whose candidate set straddles the boundary, then
/// checks the identity there: the interesting case is pinned, not left to
/// the proptest sampler's luck.
#[test]
fn border_crossing_decode_and_straddling_candidates_identical() {
    let cfg = HmmConfig::default();
    let mut crossing_seen = false;
    let mut straddle_seen = false;
    for seed in 0..24u64 {
        let (net, samples) = integer_world(seed, seed.wrapping_mul(31).wrapping_add(7));
        if samples.is_empty() {
            continue;
        }
        let plan = cut(&net, 4, seed, false);
        let sharded = Arc::new(ShardedNetwork::build(net.clone(), plan, cfg.max_route_m));
        let planner = Arc::new(RoutePlanner::untrained(&net));
        let hmm = HmmMatcher::new(net.clone(), planner.clone(), cfg.clone());
        let hmm_sh = HmmMatcher::sharded(sharded.clone(), planner.clone(), cfg.clone());
        let finder = CandidateFinder::new(&net, cfg.k_candidates);
        let finder_sh = CandidateFinder::sharded(sharded.clone(), cfg.k_candidates);

        for s in &samples {
            let mono = hmm.match_trajectory(&s.sparse);
            if route_crossings(&net, sharded.plan(), &mono) == 0 {
                continue;
            }
            crossing_seen = true;
            assert_bitwise(&mono, &hmm_sh.match_trajectory(&s.sparse), "HMM across a border");

            // Candidate identity at every point of the crossing trajectory;
            // a point whose candidates span ≥ 2 shards is the straddler.
            for p in &s.sparse.points {
                let want = finder.candidates(p.pos);
                let got = finder_sh.candidates(p.pos);
                assert_eq!(got.len(), want.len(), "candidate count diverged");
                let mut shards_hit = std::collections::HashSet::new();
                for (a, b) in want.iter().zip(&got) {
                    assert_eq!(a.seg, b.seg, "candidate ranking diverged");
                    assert_eq!(a.dist_m.to_bits(), b.dist_m.to_bits(), "candidate dist bits");
                    assert_eq!(a.ratio.to_bits(), b.ratio.to_bits(), "candidate ratio bits");
                    shards_hit.insert(sharded.plan().shard_of(net.segments()[a.seg.idx()].from));
                }
                straddle_seen |= shards_hit.len() >= 2;
            }
        }
        if crossing_seen && straddle_seen {
            return;
        }
    }
    panic!("fixture too weak: crossing={crossing_seen}, straddle={straddle_seen} after 24 seeds");
}

/// The hand-computed pinned case, built through the public API: a one-way
/// five-node chain 0 →100m→ 1 →100m→ 2 →100m→ 3 →100m→ 4 cut into
/// {0,1,2} | {3,4} at delta 250 m. One cross edge (2→3), so the overlay is
/// the single record 2→3 = 100, and every cross-shard answer decomposes as
/// intra + overlay + intra by hand.
#[test]
fn pinned_two_shard_chain_matches_hand_computation() {
    let pos: Vec<Vec2> = (0..5).map(|i| Vec2::new(100.0 * f64::from(i), 0.0)).collect();
    let edges: Vec<(NodeId, NodeId, RoadClass)> =
        (0..4).map(|i| (NodeId(i), NodeId(i + 1), RoadClass::Local)).collect();
    let net = Arc::new(RoadNetwork::new(pos, edges));
    let plan = ShardPlan::from_assignment(2, vec![0, 0, 0, 1, 1], 5);
    let sh = ShardedNetwork::build(net.clone(), plan, 250.0);

    assert_eq!(sh.num_shards(), 2);
    assert_eq!(sh.overlay().len(), 1);
    assert_eq!(sh.overlay().query(NodeId(2), NodeId(3)), Some(100.0));
    // 2→4 = intra(2,2)=0 + overlay(2,3)=100 + intra(3,4)=100.
    assert_eq!(sh.node_dist(NodeId(2), NodeId(4)), Some(200.0));
    // 1→3 = intra(1,2)=100 + overlay(2,3)=100 + intra(3,3)=0.
    assert_eq!(sh.node_dist(NodeId(1), NodeId(3)), Some(200.0));
    // 1→4 would be 300 m — beyond delta, so unreachable, same as monolithic.
    assert_eq!(sh.node_dist(NodeId(1), NodeId(4)), None);
    // Same-shard answers come straight from the intra tables.
    assert_eq!(sh.node_dist(NodeId(0), NodeId(2)), Some(200.0));
    assert_eq!(sh.node_dist(NodeId(3), NodeId(4)), Some(100.0));
    // One-way chain: nothing goes backwards.
    assert_eq!(sh.node_dist(NodeId(4), NodeId(0)), None);

    // And the whole-graph table agrees pair-for-pair, bit-for-bit.
    let mono = DistTable::build(&net, 250.0);
    for s in 0..5u32 {
        for d in 0..5u32 {
            assert_eq!(
                sh.node_dist(NodeId(s), NodeId(d)).map(f64::to_bits),
                mono.query(NodeId(s), NodeId(d)).map(f64::to_bits),
                "{s}->{d}"
            );
        }
    }
}
