//! Property-based tests over the spatial and graph substrates.

use proptest::prelude::*;

use trmma::geom::{cosine_similarity, BBox, SegLine, Vec2};
use trmma::roadnet::shortest::{matched_dist, node_dist, NetPos, Weight};
use trmma::roadnet::{generate_city, NetworkConfig, NodeId, RoutePlanner, SegmentId};
use trmma::rtree::RTree;

fn vec2_strategy() -> impl Strategy<Value = Vec2> {
    (-5_000.0..5_000.0f64, -5_000.0..5_000.0f64).prop_map(|(x, y)| Vec2::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn knn_matches_brute_force(
        points in prop::collection::vec(vec2_strategy(), 1..120),
        query in vec2_strategy(),
        k in 1usize..12,
    ) {
        let tree = RTree::bulk_load(points.clone());
        let got = tree.knn(query, k);
        let mut brute: Vec<f64> = points.iter().map(|p| p.dist(query)).collect();
        brute.sort_by(|a, b| a.partial_cmp(b).unwrap());
        brute.truncate(k);
        prop_assert_eq!(got.len(), brute.len());
        for (n, want) in got.iter().zip(brute.iter()) {
            prop_assert!((n.dist - want).abs() < 1e-9);
        }
    }

    #[test]
    fn knn_distances_sorted_and_bboxes_consistent(
        points in prop::collection::vec(vec2_strategy(), 1..80),
        query in vec2_strategy(),
    ) {
        let tree = RTree::bulk_load(points.clone());
        let res = tree.knn(query, points.len());
        for w in res.windows(2) {
            prop_assert!(w[0].dist <= w[1].dist + 1e-9);
        }
        let bb = BBox::of_points(&points);
        let hits = tree.query_bbox(&bb);
        prop_assert_eq!(hits.len(), points.len(), "whole-extent query returns all");
    }

    #[test]
    fn projection_ratio_in_unit_interval(
        a in vec2_strategy(),
        b in vec2_strategy(),
        p in vec2_strategy(),
    ) {
        let seg = SegLine::new(a, b);
        let r = seg.project_ratio(p);
        prop_assert!((0.0..=1.0).contains(&r));
        // The projected point is never farther than either endpoint.
        let d = seg.distance_to(p);
        prop_assert!(d <= p.dist(a) + 1e-9);
        prop_assert!(d <= p.dist(b) + 1e-9);
    }

    #[test]
    fn cosine_similarity_bounded(a in vec2_strategy(), b in vec2_strategy()) {
        let c = cosine_similarity(a, b);
        prop_assert!((-1.0..=1.0).contains(&c));
        // Symmetry.
        prop_assert!((c - cosine_similarity(b, a)).abs() < 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn network_distance_is_nonnegative_and_symmetric_as_specified(
        seed in 0u64..500,
        sa in 0u32..80,
        ra in 0.0..1.0f64,
        sb in 0u32..80,
        rb in 0.0..1.0f64,
    ) {
        let net = generate_city(&NetworkConfig::with_size(6, 6, seed));
        let n = net.num_segments() as u32;
        let a = NetPos::new(SegmentId(sa % n), ra);
        let b = NetPos::new(SegmentId(sb % n), rb);
        let d_ab = matched_dist(&net, a, b, 1e9, None);
        let d_ba = matched_dist(&net, b, a, 1e9, None);
        prop_assert!(d_ab >= 0.0);
        // `matched_dist` is min(directed, reverse-directed) → symmetric.
        prop_assert!((d_ab - d_ba).abs() < 1e-9);
        // Identity.
        prop_assert!(matched_dist(&net, a, a, 1e9, None).abs() < 1e-9);
    }

    #[test]
    fn planner_routes_are_paths_with_correct_endpoints(
        seed in 0u64..500,
        src in 0u32..500,
        dst in 0u32..500,
    ) {
        let net = generate_city(&NetworkConfig::with_size(6, 6, seed));
        let planner = RoutePlanner::untrained(&net);
        let n = net.num_segments() as u32;
        let (s, d) = (SegmentId(src % n), SegmentId(dst % n));
        let route = planner.plan(&net, s, d).expect("SCC network is routable");
        prop_assert_eq!(*route.first().unwrap(), s);
        prop_assert_eq!(*route.last().unwrap(), d);
        prop_assert!(net.is_path(&route));
    }

    #[test]
    fn dijkstra_satisfies_triangle_inequality(
        seed in 0u64..200,
        x in 0u32..200,
        y in 0u32..200,
        z in 0u32..200,
    ) {
        let net = generate_city(&NetworkConfig::with_size(5, 5, seed));
        let m = net.num_nodes() as u32;
        let (a, b, c) = (NodeId(x % m), NodeId(y % m), NodeId(z % m));
        let d = |u, v| node_dist(&net, u, v, Weight::Length, f64::INFINITY).unwrap();
        prop_assert!(d(a, c) <= d(a, b) + d(b, c) + 1e-9);
        prop_assert!(d(a, a).abs() < 1e-12);
    }
}
