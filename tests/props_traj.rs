//! Property-based tests over the data pipeline and the metrics.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use trmma::roadnet::{generate_city, NetworkConfig, SegmentId};
use trmma::traj::gen::{generate_trajectory, sparsify, TrajConfig};
use trmma::traj::types::{MatchedPoint, MatchedTrajectory, Route};
use trmma::traj::{matching_metrics, recovery_metrics};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sparsify_preserves_endpoints_order_and_truth_alignment(
        seed in 0u64..1_000,
        gamma in 0.05..1.0f64,
    ) {
        let net = generate_city(&NetworkConfig::with_size(8, 8, 3));
        let cfg = TrajConfig { min_points: 8, ..TrajConfig::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        let Some(raw) = generate_trajectory(&net, &cfg, &mut rng) else {
            return Ok(());
        };
        let s = sparsify(&raw, gamma, &mut rng);
        // Endpoints kept.
        prop_assert_eq!(s.dense_indices[0], 0);
        prop_assert_eq!(*s.dense_indices.last().unwrap(), raw.dense_truth.len() - 1);
        // Strictly increasing indices; aligned truth.
        prop_assert!(s.dense_indices.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(s.sparse.len(), s.sparse_truth.len());
        for (i, &di) in s.dense_indices.iter().enumerate() {
            prop_assert_eq!(s.sparse_truth[i].seg, raw.dense_truth.points[di].seg);
            prop_assert!((s.sparse_truth[i].t - s.sparse.points[i].t).abs() < 1e-9);
        }
    }

    #[test]
    fn generated_truth_is_on_route_and_monotone(seed in 0u64..1_000) {
        let net = generate_city(&NetworkConfig::with_size(8, 8, 3));
        let cfg = TrajConfig { min_points: 8, ..TrajConfig::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        let Some(raw) = generate_trajectory(&net, &cfg, &mut rng) else {
            return Ok(());
        };
        prop_assert!(raw.route.is_valid(&net));
        let mut cursor = 0usize;
        for p in &raw.dense_truth.points {
            let pos = raw.route.segs[cursor..].iter().position(|&s| s == p.seg);
            prop_assert!(pos.is_some(), "dense truth leaves the route");
            cursor += pos.unwrap();
            prop_assert!((0.0..=1.0).contains(&p.ratio));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn matching_metrics_bounded_and_self_perfect(
        pred in prop::collection::vec(0u32..50, 1..30),
        truth in prop::collection::vec(0u32..50, 1..30),
    ) {
        let p = Route::new(pred.iter().map(|&s| SegmentId(s)).collect());
        let t = Route::new(truth.iter().map(|&s| SegmentId(s)).collect());
        let m = matching_metrics(&p, &t);
        for v in [m.precision, m.recall, m.f1, m.jaccard] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        // Self-comparison is perfect.
        let selfm = matching_metrics(&p, &p);
        prop_assert!((selfm.f1 - 1.0).abs() < 1e-12);
        prop_assert!((selfm.jaccard - 1.0).abs() < 1e-12);
        // Symmetry of F1/Jaccard.
        let rev = matching_metrics(&t, &p);
        prop_assert!((m.f1 - rev.f1).abs() < 1e-12);
        prop_assert!((m.jaccard - rev.jaccard).abs() < 1e-12);
    }

    #[test]
    fn recovery_metrics_bounded(
        seed in 0u64..50,
        segs in prop::collection::vec((0u32..80, 0.0..1.0f64), 2..20),
    ) {
        let net = generate_city(&NetworkConfig::with_size(6, 6, seed));
        let n = net.num_segments() as u32;
        let mk = |shift: u32| -> MatchedTrajectory {
            MatchedTrajectory::new(
                segs.iter()
                    .enumerate()
                    .map(|(i, &(s, r))| {
                        MatchedPoint::new(SegmentId((s + shift) % n), r, 15.0 * i as f64)
                    })
                    .collect(),
            )
        };
        let pred = mk(1);
        let truth = mk(0);
        let m = recovery_metrics(&net, &pred, &truth, None);
        for v in [m.precision, m.recall, m.f1, m.accuracy] {
            prop_assert!((0.0..=1.0).contains(&v), "metric out of range: {v}");
        }
        prop_assert!(m.mae >= 0.0);
        prop_assert!(m.rmse + 1e-9 >= m.mae);
        // Perfect prediction scores perfectly.
        let perfect = recovery_metrics(&net, &truth, &truth, None);
        prop_assert!((perfect.accuracy - 1.0).abs() < 1e-12);
        prop_assert!(perfect.mae.abs() < 1e-9);
    }
}
