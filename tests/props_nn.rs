//! Property-based tests over the neural substrate: gradient correctness on
//! random shapes, probabilistic invariants of the activation functions.

use proptest::prelude::*;

use trmma::nn::{Graph, Matrix};

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0..2.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Central-difference check of d loss / d x for a composed computation.
fn grad_matches_numeric(
    input: &Matrix,
    f: impl Fn(&mut Graph, trmma::nn::NodeId) -> trmma::nn::NodeId,
) -> bool {
    let mut g = Graph::new();
    let x = g.leaf(input.clone());
    let loss = f(&mut g, x);
    g.backward(loss);
    let analytic = g.grad(x);
    let eps = 1e-5;
    for i in 0..input.len() {
        let eval = |v: f64| -> f64 {
            let mut m = input.clone();
            m.data_mut()[i] = v;
            let mut g = Graph::new();
            let x = g.leaf(m);
            let loss = f(&mut g, x);
            g.value(loss).get(0, 0)
        };
        let numeric = (eval(input.data()[i] + eps) - eval(input.data()[i] - eps)) / (2.0 * eps);
        let a = analytic.data()[i];
        if (a - numeric).abs() / a.abs().max(numeric.abs()).max(1.0) > 1e-4 {
            return false;
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn softmax_rows_form_distributions(m in matrix_strategy(3, 5)) {
        let mut g = Graph::new();
        let x = g.input(m);
        let s = g.softmax_rows(x);
        for r in 0..3 {
            let row = g.value(s).row(r).to_vec();
            let sum: f64 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn sigmoid_tanh_bounded(m in matrix_strategy(2, 6)) {
        let mut g = Graph::new();
        let x = g.input(m);
        let s = g.sigmoid(x);
        let t = g.tanh(x);
        prop_assert!(g.value(s).data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        prop_assert!(g.value(t).data().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn gradients_correct_on_random_composition(
        m in matrix_strategy(2, 4),
        w in matrix_strategy(4, 3),
    ) {
        // softmax(x·W) weighted-sum loss: exercises matmul, softmax, mul.
        let ok = grad_matches_numeric(&m, move |g, x| {
            let wn = g.input(w.clone());
            let y = g.matmul(x, wn);
            let s = g.softmax_rows(y);
            let sq = g.mul(s, s);
            g.sum_all(sq)
        });
        prop_assert!(ok);
    }

    #[test]
    fn gradients_correct_through_layer_norm(m in matrix_strategy(2, 6)) {
        let ok = grad_matches_numeric(&m, |g, x| {
            let y = g.layer_norm_rows(x);
            let s = g.sigmoid(y);
            g.sum_all(s)
        });
        prop_assert!(ok);
    }

    #[test]
    fn gradients_correct_through_concat_and_slice(m in matrix_strategy(4, 3)) {
        let ok = grad_matches_numeric(&m, |g, x| {
            let top = g.slice_rows(x, 0, 2);
            let bottom = g.slice_rows(x, 2, 2);
            let cat = g.concat_cols(&[top, bottom]);
            let t = g.tanh(cat);
            g.sum_all(t)
        });
        prop_assert!(ok);
    }

    #[test]
    fn bce_loss_nonnegative_and_grad_correct(
        m in matrix_strategy(1, 5),
        bits in prop::collection::vec(0u8..2, 5),
    ) {
        let targets = Matrix::row_vec(bits.iter().map(|&b| f64::from(b)).collect());
        let mut g = Graph::new();
        let x = g.input(m.clone());
        let loss = g.bce_with_logits(x, targets.clone());
        prop_assert!(g.value(loss).get(0, 0) >= 0.0);
        let ok = grad_matches_numeric(&m, move |g, x| g.bce_with_logits(x, targets.clone()));
        prop_assert!(ok);
    }
}
