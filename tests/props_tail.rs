//! Property tests for the tail-latency machinery: every fast path on the
//! hot inference loop must be *bitwise-identical* to the slow path it
//! replaces.
//!
//! * warm-start / budgeted SSSP: `node_dist_warm` after an arbitrary query
//!   history, under an arbitrary work budget, with prefetches interleaved,
//!   equals the cold allocating Dijkstra on every query;
//! * bounded `DistCache`: a capacity-capped cache answers every lookup
//!   identically to the uncapped cache and the cold search, while never
//!   holding more than `cap` pairs;
//! * arena-backed Viterbi: `advance_scored_in` through a dirty recycled
//!   [`LatticeArena`] decodes identically to the fresh-allocation
//!   `advance` path;
//! * vectorized kernels: the chunked emission kernel, the zero-skipping
//!   matvec and `argmax` reproduce their scalar references bit for bit.

use proptest::prelude::*;

use trmma::baselines::decoder::{LatticeArena, ViterbiState};
use trmma::geom::Vec2;
use trmma::nn::kernels::{argmax, gather_rows_into, gaussian_log_emission_into, matvec_skip_zero};
use trmma::roadnet::shortest::{node_dist, DistCache, SsspPool, Weight};
use trmma::roadnet::{generate_city, NetworkConfig, NodeId, SegmentId};
use trmma::traj::types::GpsPoint;
use trmma::traj::Candidate;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A pool with retained warm frontiers, an arbitrary per-query budget
    /// and interleaved speculative prefetches answers every query exactly
    /// like the cold allocating Dijkstra — the core warm-start identity.
    #[test]
    fn warm_budgeted_sssp_identical_to_cold(
        net_seed in 0u64..1_000,
        queries in prop::collection::vec((0u32..10_000, 0u32..10_000), 1usize..25),
        budget_pick in 0usize..5,
        bound in 150.0f64..4_000.0,
        prefetch_extra in 0u64..96,
    ) {
        // Pin the interesting budget regimes: disabled, single-step, tiny,
        // moderate, and effectively unbounded.
        let budget = [0u64, 1, 7, 63, 50_000][budget_pick];
        let net = generate_city(&NetworkConfig::with_size(6, 6, net_seed));
        let m = net.num_nodes() as u32;
        let mut pool = SsspPool::new();
        pool.set_warm_budget(budget);
        for (i, &(s, d)) in queries.iter().enumerate() {
            let (src, dst) = (NodeId(s % m), NodeId(d % m));
            let warm = pool.node_dist_warm(&net, src, dst, Weight::Length, bound);
            let cold = node_dist(&net, src, dst, Weight::Length, bound);
            prop_assert_eq!(
                warm.map(f64::to_bits), cold.map(f64::to_bits),
                "warm query {} diverged (budget {}): {:?} vs {:?}", i, budget, warm, cold
            );
            // Speculative growth between queries must never change answers.
            if i % 3 == 0 {
                pool.prefetch(&net, src, Weight::Length, bound, prefetch_extra);
            }
        }
    }

    /// A capacity-capped cache under eviction pressure stays bounded and
    /// answers bitwise like both an uncapped cache and the cold search.
    #[test]
    fn bounded_cache_identical_and_bounded(
        net_seed in 0u64..1_000,
        queries in prop::collection::vec((0u32..10_000, 0u32..10_000), 1usize..40),
        cap in 1usize..12,
        bound in 150.0f64..4_000.0,
    ) {
        let net = generate_city(&NetworkConfig::with_size(6, 6, net_seed));
        let m = net.num_nodes() as u32;
        let capped = DistCache::with_capacity(cap);
        let unbounded = DistCache::new();
        for &(s, d) in &queries {
            let (src, dst) = (NodeId(s % m), NodeId(d % m));
            let a = capped.node_dist(&net, src, dst, bound);
            let b = unbounded.node_dist(&net, src, dst, bound);
            let cold = node_dist(&net, src, dst, Weight::Length, bound);
            prop_assert_eq!(a.map(f64::to_bits), cold.map(f64::to_bits));
            prop_assert_eq!(b.map(f64::to_bits), cold.map(f64::to_bits));
            prop_assert!(capped.len() <= cap, "cache grew past its cap: {} > {}", capped.len(), cap);
        }
        let stats = capped.stats();
        prop_assert_eq!(stats.total(), queries.len() as u64, "every lookup counted once");
    }

    /// The arena-backed scored advance (recycled rows, precomputed
    /// emissions) decodes identically to the historical fresh-allocation
    /// `advance` path, even when the arena is dirty from a previous
    /// decoded-and-recycled lattice.
    #[test]
    fn arena_viterbi_identical_to_fresh(
        layers in prop::collection::vec(
            prop::collection::vec((0u32..50, 0.0f64..80.0, 0.0f64..1.0), 1usize..6),
            1usize..8,
        ),
        warmup_layers in 0usize..4,
        sigma in 1.0f64..30.0,
    ) {
        let point = |i: usize| GpsPoint { pos: Vec2::new(i as f64 * 35.0, (i % 3) as f64 * 20.0), t: i as f64 };
        let cand_row = |layer: &[(u32, f64, f64)]| -> Vec<Candidate> {
            layer.iter().map(|&(seg, dist_m, ratio)| Candidate { seg: SegmentId(seg), dist_m, ratio }).collect()
        };
        // Deterministic scores shared by both paths.
        let emission = |c: &Candidate| -> f64 { let z = c.dist_m / sigma; -0.5 * z * z };
        let transition = |from: &Candidate, to: &Candidate, straight: f64| -> f64 {
            -((from.seg.0 as f64 - to.seg.0 as f64).abs() + (straight - 10.0).abs() * 0.01)
        };

        // Fresh path: closure emissions, throwaway arenas.
        let mut fresh = ViterbiState::new();
        for (i, layer) in layers.iter().enumerate() {
            fresh.advance(point(i), cand_row(layer), emission, transition);
        }

        // Arena path: dirty the arena with a decoded-and-recycled warmup
        // lattice first, then feed kernel-style precomputed emission rows.
        let mut arena = LatticeArena::new();
        let mut warmup = ViterbiState::new();
        for i in 0..warmup_layers {
            let layer = &layers[i % layers.len()];
            warmup.advance_in(&mut arena, point(i), cand_row(layer), emission, transition);
        }
        let _ = warmup.decode();
        arena.recycle(warmup);

        let mut pooled = ViterbiState::new();
        for (i, layer) in layers.iter().enumerate() {
            let cands = cand_row(layer);
            let em: Vec<f64> = cands.iter().map(emission).collect();
            pooled.advance_scored_in(&mut arena, point(i), cands, &em, transition);
        }

        prop_assert_eq!(fresh.decode(), pooled.decode(), "arena path changed the decode");
        prop_assert_eq!(fresh.len(), pooled.len());
        if warmup_layers > 0 {
            prop_assert!(arena.allocs_avoided() > 0, "dirty arena served nothing from its pools");
        }
    }

    /// The chunked Gaussian log-emission kernel is bit-identical to its
    /// scalar definition for every length (covering all remainder shapes).
    #[test]
    fn emission_kernel_bitwise_matches_scalar(
        dists in prop::collection::vec(0.0f64..500.0, 0usize..33),
        sigma in 0.5f64..50.0,
    ) {
        let mut out = Vec::new();
        gaussian_log_emission_into(&dists, sigma, &mut out);
        prop_assert_eq!(out.len(), dists.len());
        for (i, (&d, &got)) in dists.iter().zip(&out).enumerate() {
            let z = d / sigma;
            let want = -0.5 * z * z;
            prop_assert_eq!(got.to_bits(), want.to_bits(), "lane {} diverged", i);
        }
    }

    /// The zero-skipping matvec reproduces the generic inner-product loop
    /// bit for bit (same op order, same skip rule), and `argmax` picks the
    /// first strict maximum like the scalar scan it replaced.
    #[test]
    fn matvec_and_argmax_bitwise_match_reference(
        rows in 1usize..8,
        cols in 1usize..8,
        seed_cells in prop::collection::vec(-4.0f64..4.0, 64),
        zero_mask in prop::collection::vec(0u32..2, 64),
        xs in prop::collection::vec(-3.0f64..3.0, 1usize..12),
    ) {
        let lhs: Vec<f64> = (0..rows * cols)
            .map(|i| if zero_mask[i % zero_mask.len()] == 1 { 0.0 } else { seed_cells[i % seed_cells.len()] })
            .collect();
        let x: Vec<f64> = (0..cols).map(|j| seed_cells[(j * 7 + 3) % seed_cells.len()]).collect();
        let mut got = vec![0.0f64; rows];
        matvec_skip_zero(&lhs, &x, &mut got);
        for i in 0..rows {
            // The kernel's contract: accumulate onto the existing output,
            // skipping exact-zero lhs entries, in column order.
            let mut want = 0.0f64;
            for (a, b) in lhs[i * cols..(i + 1) * cols].iter().zip(&x) {
                if *a == 0.0 {
                    continue;
                }
                want += a * b;
            }
            prop_assert_eq!(got[i].to_bits(), want.to_bits(), "row {} diverged", i);
        }

        let mut best = 0usize;
        for (j, &v) in xs.iter().enumerate() {
            if v > xs[best] {
                best = j;
            }
        }
        prop_assert_eq!(argmax(&xs), best);
    }

    /// Row gathering through the kernel equals per-row slicing for every
    /// (rows, cols, ids) shape, including repeated and out-of-order ids.
    #[test]
    fn gather_kernel_matches_slicing(
        rows in 1usize..7,
        cols in 0usize..6,
        cells in prop::collection::vec(-9.0f64..9.0, 42),
        ids in prop::collection::vec(0usize..7, 0usize..9),
    ) {
        let src: Vec<f64> = (0..rows * cols).map(|i| cells[i % cells.len()]).collect();
        let ids: Vec<usize> = ids.into_iter().map(|i| i % rows).collect();
        let mut out = Vec::new();
        gather_rows_into(&src, rows, cols, &ids, &mut out);
        let mut want = Vec::new();
        for &ix in &ids {
            want.extend_from_slice(&src[ix * cols..(ix + 1) * cols]);
        }
        let got_bits: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
        let want_bits: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(got_bits, want_bits);
    }
}

/// Budget exhaustion mid-resume must leave the paused frontier valid: the
/// fallback cold answer and every later warm answer still match the cold
/// reference. (Deterministic companion to the proptests above, pinning the
/// tiny-budget edge across a far → near → far query pattern.)
#[test]
fn budget_exhaustion_falls_back_without_corruption() {
    let net = generate_city(&NetworkConfig::with_size(8, 8, 7));
    let m = net.num_nodes() as u32;
    let mut pool = SsspPool::new();
    pool.set_warm_budget(2);
    let src = NodeId(0);
    let bound = 5_000.0;
    for dst in [m - 1, 1, m / 2, m - 2, 2, m / 3] {
        let dst = NodeId(dst);
        let warm = pool.node_dist_warm(&net, src, dst, Weight::Length, bound);
        let cold = node_dist(&net, src, dst, Weight::Length, bound);
        assert_eq!(
            warm.map(f64::to_bits),
            cold.map(f64::to_bits),
            "budget-2 warm query to {dst:?} diverged"
        );
    }
}
