//! Property tests for the binary artifact store:
//!
//! * **Section round-trip** — packing an arbitrary generated network, its
//!   distance table, random weight blobs and an embedding matrix into an
//!   image and decoding it back yields every section bitwise-identical;
//! * **Served table ≡ built table** — the distance table served zero-copy
//!   from the image answers every node-pair query identically to the
//!   freshly built one (same `Some`/`None` shape, same distance bits);
//! * **Corruption rejection** — flipping any single seeded bit anywhere in
//!   the image is caught: either `Artifact::decode` fails (header bytes)
//!   or materializing the owning section fails (payload bytes, lazy CRC);
//! * **Truncation rejection** — every strict prefix of an image, and any
//!   extension of it, is rejected at decode; never a panic.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use trmma::core::{Artifact, ArtifactBuilder, ArtifactError};
use trmma::nn::Matrix;
use trmma::roadnet::{generate_city, DistTable, NetworkConfig, NodeId, RoadNetwork};

/// Generates a small city from a seed, like `props_snapshot.rs`.
fn arbitrary_net(net_seed: u64) -> Arc<RoadNetwork> {
    let side = 6 + (net_seed % 3) as usize; // 6x6 .. 8x8 grids
    Arc::new(generate_city(&NetworkConfig::with_size(side, side, net_seed)))
}

/// Everything that went into an image, kept for bitwise comparison.
struct World {
    net: Arc<RoadNetwork>,
    table: DistTable,
    params: Vec<(String, Vec<u8>)>,
    embeddings: Matrix,
    image: Vec<u8>,
}

/// Packs a full four-section artifact from seeds: the generated network,
/// its distance table at `delta`, 1–3 random weight blobs (one of them
/// possibly empty) and a random embedding matrix with one row per
/// segment.
fn arbitrary_world(net_seed: u64, blob_seed: u64, delta: f64) -> World {
    let net = arbitrary_net(net_seed);
    let table = DistTable::build(&net, delta);
    let mut rng = StdRng::seed_from_u64(blob_seed);
    let mut params = Vec::new();
    for i in 0..1 + (blob_seed % 3) as usize {
        let len = if i == 0 { rng.gen_range(0..300) } else { rng.gen_range(1..300) };
        #[allow(clippy::cast_possible_truncation)]
        let blob: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect();
        params.push((format!("w{i}"), blob));
    }
    let cols = 4 + (blob_seed % 5) as usize;
    let data: Vec<f64> = (0..net.num_segments() * cols).map(|_| rng.gen::<f64>() - 0.5).collect();
    let embeddings = Matrix::from_vec(net.num_segments(), cols, data);
    let mut b = ArtifactBuilder::new();
    b.graph(&net);
    b.dist_table(&table);
    for (name, blob) in &params {
        b.params(name, blob);
    }
    b.embeddings(&embeddings);
    let image = b.finish();
    World { net, table, params, embeddings, image }
}

/// Serves every section of a decoded artifact, propagating the first
/// error. This is the "startup path" a corrupted payload byte must fail.
fn materialize(art: &Artifact) -> Result<(), ArtifactError> {
    art.graph()?;
    art.dist_table()?;
    art.embeddings()?;
    for name in art.param_names()? {
        art.params_blob(&name)?;
    }
    Ok(())
}

fn assert_same_network(a: &RoadNetwork, b: &RoadNetwork) {
    assert_eq!(a.num_nodes(), b.num_nodes());
    assert_eq!(a.num_segments(), b.num_segments());
    for i in 0..a.num_nodes() {
        #[allow(clippy::cast_possible_truncation)]
        let id = NodeId(i as u32);
        let (p, q) = (a.node_pos(id), b.node_pos(id));
        assert_eq!(p.x.to_bits(), q.x.to_bits(), "node {i} x differs");
        assert_eq!(p.y.to_bits(), q.y.to_bits(), "node {i} y differs");
    }
    for (i, (s, t)) in a.segments().iter().zip(b.segments()).enumerate() {
        assert_eq!((s.from, s.to, s.class), (t.from, t.to, t.class), "segment {i} differs");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Every section survives the encode/decode round trip bitwise.
    #[test]
    fn every_section_round_trips_on_arbitrary_nets(
        net_seed in 0u64..1_000,
        blob_seed in 0u64..1_000,
        delta in 300.0f64..4_000.0,
    ) {
        let w = arbitrary_world(net_seed, blob_seed, delta);
        let art = Artifact::decode(w.image.clone()).expect("built image decodes");

        assert_same_network(&w.net, &art.graph().expect("graph section serves"));

        let loaded = art.dist_table().expect("dist table section serves");
        prop_assert_eq!(loaded.len(), w.table.len());
        prop_assert_eq!(loaded.delta().to_bits(), w.table.delta().to_bits());
        let mut built_pairs = Vec::new();
        w.table.for_each_pair(|s, d, m| built_pairs.push((s, d, m.to_bits())));
        built_pairs.sort_unstable();
        let mut loaded_pairs = Vec::new();
        loaded.for_each_pair(|s, d, m| loaded_pairs.push((s, d, m.to_bits())));
        loaded_pairs.sort_unstable();
        prop_assert_eq!(built_pairs, loaded_pairs);

        let emb = art.embeddings().expect("embeddings section serves");
        prop_assert_eq!(emb.shape(), w.embeddings.shape());
        for (a, b) in emb.data().iter().zip(w.embeddings.data()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }

        let names = art.param_names().expect("params section serves");
        let want: Vec<String> = w.params.iter().map(|(n, _)| n.clone()).collect();
        prop_assert_eq!(names, want);
        for (name, blob) in &w.params {
            prop_assert_eq!(art.params_blob(name).expect("blob serves"), &blob[..]);
        }
    }

    /// The zero-copy table answers every node-pair query exactly like the
    /// freshly built one — same hit/miss shape, same distance bits. This
    /// is the correctness bar behind the cold-start benchmark's
    /// `identical_to_built` column.
    #[test]
    fn loaded_dist_table_answers_identically_to_built(
        net_seed in 0u64..1_000,
        delta in 300.0f64..4_000.0,
    ) {
        let net = arbitrary_net(net_seed);
        let built = DistTable::build(&net, delta);
        let mut b = ArtifactBuilder::new();
        b.dist_table(&built);
        let art = Artifact::decode(b.finish()).expect("image decodes");
        let loaded = art.dist_table().expect("table serves");
        prop_assert_eq!(loaded.len(), built.len());
        #[allow(clippy::cast_possible_truncation)]
        let n = net.num_nodes() as u32;
        for s in 0..n {
            for d in 0..n {
                let (a, b) = (built.query(NodeId(s), NodeId(d)), loaded.query(NodeId(s), NodeId(d)));
                prop_assert_eq!(
                    a.map(f64::to_bits),
                    b.map(f64::to_bits),
                    "pair ({}, {}) diverged: built {:?} vs loaded {:?}",
                    s, d, a, b
                );
            }
        }
    }

    /// No flipped bit goes unnoticed: header bytes fail `decode`, payload
    /// bytes fail the accessor that owns the section (lazy per-section
    /// CRC). Either way the corruption never reaches a caller silently.
    #[test]
    fn any_seeded_bit_flip_is_rejected(
        net_seed in 0u64..1_000,
        blob_seed in 0u64..1_000,
        corrupt_seed in 0u64..1_000,
    ) {
        let w = arbitrary_world(net_seed, blob_seed, 1_500.0);
        let mut rng = StdRng::seed_from_u64(corrupt_seed);
        for _ in 0..16 {
            let pos = rng.gen_range(0..w.image.len());
            let bit = 1u8 << rng.gen_range(0..8u8);
            let mut bad = w.image.clone();
            bad[pos] ^= bit;
            let caught = match Artifact::decode(bad) {
                Err(_) => true,
                Ok(art) => materialize(&art).is_err(),
            };
            prop_assert!(caught, "flip of bit {bit:#04x} at byte {pos} went unnoticed");
        }
    }

    /// Every strict prefix — and any extension — of an image is rejected
    /// at decode, with an error rather than a panic.
    #[test]
    fn truncation_and_padding_are_rejected(
        net_seed in 0u64..1_000,
        blob_seed in 0u64..1_000,
        cut_seed in 0u64..1_000,
    ) {
        let w = arbitrary_world(net_seed, blob_seed, 1_500.0);
        let mut rng = StdRng::seed_from_u64(cut_seed);
        let mut cuts = vec![0, 1, w.image.len() - 1];
        cuts.extend((0..8).map(|_| rng.gen_range(0..w.image.len())));
        for cut in cuts {
            prop_assert!(
                Artifact::decode(w.image[..cut].to_vec()).is_err(),
                "truncation to {cut} of {} bytes accepted",
                w.image.len()
            );
        }
        let mut padded = w.image.clone();
        padded.push(0);
        prop_assert!(Artifact::decode(padded).is_err(), "trailing byte accepted");
    }
}
