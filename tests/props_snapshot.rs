//! Property tests for session snapshot/restore and crash recovery:
//!
//! * **Snapshot transparency** — for *every* `OnlineMatcher` in the
//!   repository (Nearest, HMM, FMM, LHMM, MMA), freezing a session to
//!   bytes at an arbitrary stream position and thawing it yields a session
//!   whose remaining updates, watermarks and finalize are bitwise-identical
//!   to the uninterrupted original (and to the offline decode);
//! * **Envelope integrity** — the versioned/checksummed envelope
//!   round-trips exactly, and any single corrupted byte or truncation is
//!   rejected with an error, never a panic or a silent wrong decode;
//! * **Engine handoff** — draining a live engine to snapshots at an
//!   arbitrary cut point (including sessions snapshotted mid-migration)
//!   and restoring onto a successor engine finalizes every session
//!   bitwise-identical to the offline decode;
//! * **Chaos zero-loss** — with seeded fault injection (worker panics,
//!   stalls, reply delays) the supervisor rebuilds every session from its
//!   checkpoint + journal: nothing is lost and every final match equals
//!   the fault-free decode.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use trmma::baselines::{FmmMatcher, HmmConfig, HmmMatcher, LhmmMatcher, NearestMatcher};
use trmma::core::{
    FaultPlan, FinalizeReason, Mma, MmaConfig, SessionId, SessionSnapshot, StreamEngine,
    StreamEvent, StreamOptions,
};
use trmma::roadnet::{generate_city, NetworkConfig, RoadNetwork, RoutePlanner};
use trmma::traj::gen::{generate_trajectory, sparsify, TrajConfig};
use trmma::traj::types::Trajectory;
use trmma::traj::{MapMatcher, OnlineMatcher, Sample};

/// Generates a city plus a handful of sparse samples from a seed pair.
fn arbitrary_world(net_seed: u64, traj_seed: u64) -> (Arc<RoadNetwork>, Vec<Sample>) {
    let side = 6 + (net_seed % 3) as usize; // 6x6 .. 8x8 grids
    let net = Arc::new(generate_city(&NetworkConfig::with_size(side, side, net_seed)));
    let cfg = TrajConfig { min_points: 8, ..TrajConfig::default() };
    let mut rng = StdRng::seed_from_u64(traj_seed);
    let mut samples = Vec::new();
    for _ in 0..10 {
        if samples.len() == 4 {
            break;
        }
        if let Some(raw) = generate_trajectory(&net, &cfg, &mut rng) {
            samples.push(sparsify(&raw, 0.3, &mut rng));
        }
    }
    (net, samples)
}

/// Pushes `cut` points, freezes the session through the full byte
/// envelope, thaws it, and runs the original and the restored session
/// side by side over the remaining points: every update and the finalize
/// must be bitwise-identical (and equal to the offline decode).
fn assert_snapshot_transparent<M: OnlineMatcher>(matcher: &M, traj: &Trajectory, cut: usize) {
    let offline = matcher.match_trajectory(traj);
    let mut scratch = matcher.make_scratch();
    let mut original = matcher.begin_session();
    let mut last_t = f64::NEG_INFINITY;
    for &p in &traj.points[..cut] {
        matcher.push_point(&mut scratch, &mut original, p);
        last_t = p.t;
    }
    let mut payload = Vec::new();
    matcher.snapshot_session(&original, &mut payload);
    let envelope = SessionSnapshot {
        session: 42,
        matcher: matcher.name().to_string(),
        seq: cut as u64,
        last_t,
        payload,
    };
    let bytes = envelope.encode().expect("envelope encodes");
    // Any single corrupted byte is caught (CRC-32 detects all bursts of
    // up to 32 bits), and any truncation errors out instead of panicking.
    let mid = bytes.len() / 2;
    for i in [0, mid, bytes.len() - 1] {
        let mut bad = bytes.clone();
        bad[i] ^= 0x10;
        assert!(
            SessionSnapshot::decode(&bad).is_err(),
            "{}: corrupt byte {i} accepted",
            matcher.name()
        );
        assert!(
            SessionSnapshot::decode(&bytes[..i]).is_err(),
            "{}: truncation accepted",
            matcher.name()
        );
    }
    let decoded = SessionSnapshot::decode(&bytes).expect("envelope round-trips");
    assert_eq!(decoded, envelope, "{}: envelope not bitwise-stable", matcher.name());
    decoded.expect_matcher(matcher.name()).expect("matcher name preserved");
    let mut restored =
        matcher.restore_session(&decoded.payload).expect("snapshot payload restores");
    assert_eq!(
        matcher.session_len(&restored),
        matcher.session_len(&original),
        "{}: restored length differs at cut {cut}",
        matcher.name()
    );
    assert_eq!(
        matcher.session_watermark(&restored),
        matcher.session_watermark(&original),
        "{}: restored watermark differs at cut {cut}",
        matcher.name()
    );
    for (i, &p) in traj.points[cut..].iter().enumerate() {
        let a = matcher.push_point(&mut scratch, &mut original, p);
        let b = matcher.push_point(&mut scratch, &mut restored, p);
        assert_eq!(a, b, "{}: update {i} after restore diverged (cut {cut})", matcher.name());
    }
    let a = matcher.finalize(&mut scratch, original);
    let b = matcher.finalize(&mut scratch, restored);
    assert_eq!(a, b, "{}: finalize diverged after restore (cut {cut})", matcher.name());
    assert_eq!(b, offline, "{}: restored session diverged from offline", matcher.name());
}

/// Streams a prefix of every session into one engine, drains it to
/// snapshots (optionally with a forced migration in flight), restores on
/// a successor engine, streams the rest, and asserts every final equals
/// the offline decode of the full trajectory.
fn assert_handoff_identical<M: OnlineMatcher + 'static>(
    matcher: &Arc<M>,
    batch: &[Trajectory],
    threads: usize,
    cut_seed: u64,
    migrate_in_flight: bool,
) {
    let opts = || StreamOptions::with_threads(threads).idle_timeout_s(0.0).rebalance_threshold(0);
    let first = StreamEngine::new(matcher.clone(), opts());
    let mut rng = StdRng::seed_from_u64(cut_seed);
    let mut cuts = Vec::with_capacity(batch.len());
    for (sid, t) in batch.iter().enumerate() {
        // Cut anywhere, including 0 (nothing streamed yet → nothing to
        // drain for that session) and len (fully streamed, not finished).
        let cut = rng.gen_range(0..t.len() + 1);
        cuts.push(cut);
        for &p in &t.points[..cut] {
            assert!(first.push(sid as SessionId, p));
        }
    }
    if migrate_in_flight && threads > 1 {
        for sid in 0..batch.len() {
            first.migrate(sid as SessionId, rng.gen_range(0..threads));
        }
    }
    let snaps = first.drain_snapshots(Duration::from_secs(30));
    let expected: usize = cuts.iter().filter(|&&c| c > 0).count();
    assert_eq!(snaps.len(), expected, "one snapshot per session that saw points");
    let _ = first.shutdown();
    let second = StreamEngine::new(matcher.clone(), opts());
    let restored = second.restore(&snaps).expect("snapshots restore onto the successor");
    assert_eq!(restored, expected);
    for (sid, t) in batch.iter().enumerate() {
        for &p in &t.points[cuts[sid]..] {
            assert!(second.push(sid as SessionId, p));
        }
        assert!(second.finish(sid as SessionId));
    }
    let (events, _) = second.shutdown();
    let finals: HashMap<SessionId, _> = events
        .iter()
        .filter_map(|e| match e {
            StreamEvent::Finalized { session, result, .. } => Some((*session, result.clone())),
            StreamEvent::Update { .. } => None,
        })
        .collect();
    for (sid, t) in batch.iter().enumerate() {
        if t.is_empty() {
            continue;
        }
        assert_eq!(
            finals.get(&(sid as SessionId)),
            Some(&matcher.match_trajectory(t)),
            "{} session {sid} diverged across handoff (cut {})",
            matcher.name(),
            cuts[sid]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn snapshot_restore_is_transparent_for_every_matcher(
        net_seed in 0u64..1_000,
        traj_seed in 0u64..1_000,
        cut_frac in 0.0f64..1.0,
    ) {
        let (net, samples) = arbitrary_world(net_seed, traj_seed);
        if samples.is_empty() {
            return Ok(());
        }
        let planner = Arc::new(RoutePlanner::untrained(&net));
        let cfg = HmmConfig::default();
        let nearest = NearestMatcher::new(net.clone(), planner.clone());
        let hmm = HmmMatcher::new(net.clone(), planner.clone(), cfg.clone());
        let fmm = FmmMatcher::new(net.clone(), planner.clone(), cfg.clone());
        let lhmm = LhmmMatcher::fit(net.clone(), planner.clone(), cfg, &samples);
        let mma = Mma::new(net.clone(), planner, None, MmaConfig::small());
        for s in &samples {
            #[allow(clippy::cast_possible_truncation, clippy::cast_precision_loss)]
            #[allow(clippy::cast_sign_loss)]
            let cut = ((s.sparse.len() as f64) * cut_frac) as usize;
            assert_snapshot_transparent(&nearest, &s.sparse, cut);
            assert_snapshot_transparent(&hmm, &s.sparse, cut);
            assert_snapshot_transparent(&fmm, &s.sparse, cut);
            assert_snapshot_transparent(&lhmm, &s.sparse, cut);
            assert_snapshot_transparent(&mma, &s.sparse, cut);
        }
    }

    #[test]
    fn engine_handoff_preserves_offline_identity(
        net_seed in 0u64..1_000,
        traj_seed in 0u64..1_000,
        threads in 1usize..4,
        cut_seed in 0u64..1_000,
        migrate in 0u8..2,
    ) {
        let (net, samples) = arbitrary_world(net_seed, traj_seed);
        if samples.is_empty() {
            return Ok(());
        }
        let batch: Vec<Trajectory> = samples.iter().map(|s| s.sparse.clone()).collect();
        let planner = Arc::new(RoutePlanner::untrained(&net));
        let hmm = Arc::new(HmmMatcher::new(net.clone(), planner.clone(), HmmConfig::default()));
        let mma = Arc::new(Mma::new(net.clone(), planner, None, MmaConfig::small()));
        assert_handoff_identical(&hmm, &batch, threads, cut_seed, migrate == 1);
        assert_handoff_identical(&mma, &batch, threads, cut_seed, migrate == 1);
    }

    /// The acceptance bar of the supervision feature, as a property:
    /// injected worker panics at seeded stream positions lose zero
    /// sessions and change zero output bits.
    #[test]
    fn chaos_engine_loses_nothing_and_changes_nothing(
        net_seed in 0u64..1_000,
        traj_seed in 0u64..1_000,
        fault_seed in 0u64..1_000,
        threads in 1usize..4,
    ) {
        FaultPlan::silence_injected_panics();
        let (net, samples) = arbitrary_world(net_seed, traj_seed);
        if samples.is_empty() {
            return Ok(());
        }
        let batch: Vec<Trajectory> = samples.iter().map(|s| s.sparse.clone()).collect();
        let planner = Arc::new(RoutePlanner::untrained(&net));
        let hmm = Arc::new(HmmMatcher::new(net.clone(), planner.clone(), HmmConfig::default()));
        let plan = FaultPlan {
            seed: fault_seed,
            panic_per_mille: 120,
            max_panics: 4,
            stall_per_mille: 30,
            stall: Duration::from_millis(1),
            reply_delay_per_mille: 50,
            reply_delay: Duration::from_millis(1),
        };
        let engine = StreamEngine::with_faults(
            hmm.clone(),
            StreamOptions::with_threads(threads).idle_timeout_s(0.0).checkpoint_every(4),
            plan,
        );
        for (sid, t) in batch.iter().enumerate() {
            for &p in &t.points {
                prop_assert!(engine.push(sid as SessionId, p));
            }
        }
        for sid in 0..batch.len() {
            prop_assert!(engine.finish(sid as SessionId));
        }
        prop_assert!(engine.quiesce(Duration::from_secs(30)));
        let rs = engine.router_stats();
        prop_assert_eq!(rs.sessions_lost, 0, "supervision lost sessions: {:?}", rs);
        let (events, _) = engine.shutdown();
        let finals: HashMap<SessionId, _> = events
            .iter()
            .filter_map(|e| match e {
                StreamEvent::Finalized { session, reason, result, .. } => {
                    assert_eq!(*reason, FinalizeReason::Explicit);
                    Some((*session, result.clone()))
                }
                StreamEvent::Update { .. } => None,
            })
            .collect();
        for (sid, t) in batch.iter().enumerate() {
            prop_assert_eq!(
                finals.get(&(sid as SessionId)),
                Some(&hmm.match_trajectory(t)),
                "session {} diverged under chaos (restarts {})",
                sid,
                rs.worker_restarts
            );
        }
    }
}
