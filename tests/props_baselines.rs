//! Property tests for the pooled baseline matchers and their shortest-path
//! substrate:
//!
//! * pooled HMM / LHMM / FMM output through `par_match_pooled` is
//!   bitwise-identical to the sequential per-call API for arbitrary
//!   generated road networks, trajectories, thread counts and input orders
//!   (mirrors `tests/props_batch.rs` for the MMA engine);
//! * `SsspPool` reuse across interleaved sources never leaks state — a
//!   pooled query after N arbitrary prior queries equals a fresh-pool
//!   query;
//! * `DistCache` read-through stays consistent under concurrent hammering
//!   from scoped threads (hit/miss counters add up, every answer is the
//!   true distance).

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use trmma::baselines::{FmmMatcher, HmmConfig, HmmMatcher, LhmmMatcher};
use trmma::core::{par_match_pooled, BatchOptions};
use trmma::roadnet::shortest::{node_dist, DistCache, SsspPool, Weight};
use trmma::roadnet::{generate_city, NetworkConfig, NodeId, RoadNetwork, RoutePlanner};
use trmma::traj::gen::{generate_trajectory, sparsify, TrajConfig};
use trmma::traj::types::Trajectory;
use trmma::traj::{MatchResult, Sample, ScratchMatcher};

/// Generates a city plus a handful of sparse samples from a seed pair.
fn arbitrary_world(net_seed: u64, traj_seed: u64) -> (Arc<RoadNetwork>, Vec<Sample>) {
    let side = 6 + (net_seed % 3) as usize; // 6x6 .. 8x8 grids
    let net = Arc::new(generate_city(&NetworkConfig::with_size(side, side, net_seed)));
    let cfg = TrajConfig { min_points: 8, ..TrajConfig::default() };
    let mut rng = StdRng::seed_from_u64(traj_seed);
    let mut samples = Vec::new();
    for _ in 0..10 {
        if samples.len() == 4 {
            break;
        }
        if let Some(raw) = generate_trajectory(&net, &cfg, &mut rng) {
            samples.push(sparsify(&raw, 0.3, &mut rng));
        }
    }
    (net, samples)
}

/// Asserts that the pooled parallel fan-out reproduces the sequential
/// per-call output exactly, in the given order and in a shuffled order.
fn assert_pooled_identical<M: ScratchMatcher + Sync>(
    matcher: &M,
    batch: &[Trajectory],
    threads: usize,
    order: &[usize],
) {
    let reference: Vec<MatchResult> = batch.iter().map(|t| matcher.match_trajectory(t)).collect();
    let opts = BatchOptions::with_threads(threads);
    let (got, _) = par_match_pooled(matcher, batch, opts);
    assert_eq!(got, reference, "{} diverged at {threads} threads", matcher.name());
    let shuffled: Vec<Trajectory> = order.iter().map(|&i| batch[i].clone()).collect();
    let (got_shuffled, _) = par_match_pooled(matcher, &shuffled, opts);
    for (slot, &src) in order.iter().enumerate() {
        assert_eq!(
            got_shuffled[slot],
            reference[src],
            "{} shuffle broke keying at {threads} threads",
            matcher.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn pooled_baselines_identical_to_sequential_for_arbitrary_worlds(
        net_seed in 0u64..1_000,
        traj_seed in 0u64..1_000,
        threads in 1usize..5,
        shuffle_seed in 0u64..1_000,
    ) {
        let (net, samples) = arbitrary_world(net_seed, traj_seed);
        if samples.is_empty() {
            // A barren seed pair (all OD draws too short) proves nothing;
            // skip rather than fail — other cases cover the property.
            return Ok(());
        }
        let batch: Vec<Trajectory> = samples.iter().map(|s| s.sparse.clone()).collect();
        let mut order: Vec<usize> = (0..batch.len()).collect();
        order.shuffle(&mut StdRng::seed_from_u64(shuffle_seed));

        let planner = Arc::new(RoutePlanner::untrained(&net));
        let cfg = HmmConfig::default();
        let hmm = HmmMatcher::new(net.clone(), planner.clone(), cfg.clone());
        let fmm = FmmMatcher::new(net.clone(), planner.clone(), cfg.clone());
        let lhmm = LhmmMatcher::fit(net.clone(), planner, cfg, &samples);
        assert_pooled_identical(&hmm, &batch, threads, &order);
        assert_pooled_identical(&fmm, &batch, threads, &order);
        assert_pooled_identical(&lhmm, &batch, threads, &order);
    }

    #[test]
    fn sssp_pool_reuse_never_leaks_state(
        net_seed in 0u64..1_000,
        priors in prop::collection::vec((0u32..10_000, 0u32..10_000, 150.0f64..4_000.0), 0usize..12),
        last in (0u32..10_000, 0u32..10_000),
        bound in 150.0f64..4_000.0,
    ) {
        let net = generate_city(&NetworkConfig::with_size(6, 6, net_seed));
        let m = net.num_nodes() as u32;
        let mut pool = SsspPool::new();
        let mut sweep = Vec::new();
        // Arbitrary interleaved history: point-to-point queries and bounded
        // sweeps, each leaving whatever state they leave.
        for (i, &(s, d, b)) in priors.iter().enumerate() {
            let _ = pool.node_dist(&net, NodeId(s % m), NodeId(d % m), Weight::Length, b);
            if i % 3 == 1 {
                pool.bounded_sssp_into(&net, NodeId(s % m), Weight::Length, b, &mut sweep);
            }
        }
        let (src, dst) = (NodeId(last.0 % m), NodeId(last.1 % m));
        let warm = pool.node_dist(&net, src, dst, Weight::Length, bound);
        let fresh = SsspPool::new().node_dist(&net, src, dst, Weight::Length, bound);
        let plain = node_dist(&net, src, dst, Weight::Length, bound);
        prop_assert_eq!(warm, fresh, "warm pool diverged from fresh pool after {} priors", priors.len());
        prop_assert_eq!(warm, plain, "pooled query diverged from allocating Dijkstra");
    }
}

/// Hammer one shared `DistCache` from several scoped threads, each reading
/// through its own `SsspPool`, and check: every answer is the true
/// distance, the hit/miss counters account for every lookup, and exactly
/// the queried pairs are cached.
#[test]
fn dist_cache_concurrent_read_through_is_consistent() {
    let net = generate_city(&NetworkConfig::with_size(7, 7, 77));
    let m = net.num_nodes() as u32;
    let pairs: Vec<(NodeId, NodeId)> =
        (0..24).map(|i| (NodeId((i * 5) % m), NodeId((i * 11 + 3) % m))).collect();
    let cache = DistCache::new();
    let threads = 4;
    let passes = 6;
    let answers: Vec<Vec<Option<f64>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let net = &net;
                let cache = &cache;
                let pairs = &pairs;
                scope.spawn(move || {
                    let mut pool = SsspPool::new();
                    let mut got = Vec::new();
                    // Each worker walks the pair list from a different
                    // offset so lookups interleave hit/miss differently.
                    for pass in 0..passes {
                        for i in 0..pairs.len() {
                            let (src, dst) = pairs[(i + w * 7 + pass) % pairs.len()];
                            got.push(cache.node_dist_pooled(
                                net,
                                src,
                                dst,
                                f64::INFINITY,
                                &mut pool,
                            ));
                        }
                    }
                    got
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("cache hammer worker panicked")).collect()
    });

    // Every returned distance equals a fresh Dijkstra run: no entry was
    // ever served with a wrong (e.g. torn or cross-keyed) value.
    for (w, got) in answers.iter().enumerate() {
        assert_eq!(got.len(), passes * pairs.len());
        for (i, &d) in got.iter().enumerate() {
            let (src, dst) = pairs[(i % pairs.len() + w * 7 + i / pairs.len()) % pairs.len()];
            let truth = node_dist(&net, src, dst, Weight::Length, f64::INFINITY);
            assert_eq!(d, truth, "worker {w} lookup {i}: wrong distance for {src:?}->{dst:?}");
        }
    }

    // Counter consistency: every lookup is exactly one hit or one miss;
    // racing first lookups may each count a miss for the same pair, so
    // misses is bounded below by the distinct pairs and above by the total.
    let stats = cache.stats();
    let total = (threads * passes * pairs.len()) as u64;
    let distinct: std::collections::HashSet<_> = pairs.iter().collect();
    assert_eq!(stats.total(), total, "hits {} + misses {} != lookups", stats.hits, stats.misses);
    assert!(stats.misses >= distinct.len() as u64, "first lookup of each pair must miss");
    assert!(stats.misses <= total, "misses cannot exceed lookups");
    assert_eq!(cache.len(), distinct.len(), "exactly the queried pairs are cached");
}
