//! The HMM-family Viterbi decoder as an explicit, resumable state machine.
//!
//! The whole-trajectory `viterbi` loops of [`HmmMatcher`] / `FMM` / `LHMM`
//! used to be closed: candidate search, the per-layer transition/emission
//! update and the backtrack were fused into one pass over a complete
//! trajectory. [`ViterbiState`] pulls the per-step update out: it holds the
//! beam of survivors (per-layer scores), the backpointers and the pushed
//! points, and is advanced one GPS point at a time by [`ViterbiState::
//! advance`]. The offline decode is now literally a replay — push every
//! point, then [`ViterbiState::decode`] — so the batch path and the
//! streaming path share one decoder and cannot drift.
//!
//! **Stabilized prefix (watermark).** In online decoding the newest match is
//! provisional, but prefixes *converge*: once every surviving candidate's
//! backpointer chain passes through a single candidate at layer `i`, the
//! decode of layers `0..=i` can never change again, no matter what arrives
//! later (future layers only connect through the current survivors, and an
//! HMM break restarts from an argmax over already-frozen scores).
//! [`ViterbiState::refresh_watermark`] computes that convergence point; the
//! watermark is monotone and `tests/props_streaming.rs` property-tests that
//! finalized output never contradicts it.
//!
//! [`HmmMatcher`]: crate::hmm::HmmMatcher

use trmma_traj::api::Candidate;
use trmma_traj::snapshot::{self, Reader, SnapshotError};
use trmma_traj::types::{GpsPoint, MatchedPoint};

/// Index of the maximum score (first wins ties), mirroring the historical
/// backtrack tie-breaking exactly.
pub(crate) fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// Rows a [`LatticeArena`] keeps per pool before letting recycled rows
/// drop. Bounds arena memory to the longest trajectory a scratch has seen,
/// capped; beyond this, recycling degrades gracefully to plain allocation.
const ARENA_ROWS_MAX: usize = 4096;

/// Recycled row storage for Viterbi lattices.
///
/// A lattice grows one candidate row, one score row and one backpointer row
/// per GPS point, and drops them all when the trajectory is decoded. The
/// arena closes that loop: a finished state is [`LatticeArena::recycle`]d
/// back into per-type row pools, and the next trajectory's
/// [`ViterbiState::advance_in`] calls take rows (with their capacity) from
/// the pools instead of the allocator. In steady state — any batch or
/// stream past its first trajectory — the per-point advance path performs
/// zero heap allocation. Purely a storage strategy: taken rows are cleared
/// and refilled by exactly the code that previously filled fresh `Vec`s, so
/// decoded output is bitwise-unchanged (`tests/props_tail.rs`).
#[derive(Debug, Default)]
pub struct LatticeArena {
    cand_rows: Vec<Vec<Candidate>>,
    f64_rows: Vec<Vec<f64>>,
    usize_rows: Vec<Vec<usize>>,
    reused: u64,
}

impl LatticeArena {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Rows served from recycled storage instead of the allocator so far.
    #[must_use]
    pub fn allocs_avoided(&self) -> u64 {
        self.reused
    }

    /// An empty candidate row, recycled when available.
    pub fn take_cand_row(&mut self) -> Vec<Candidate> {
        match self.cand_rows.pop() {
            Some(mut row) => {
                row.clear();
                self.reused += 1;
                row
            }
            None => Vec::new(),
        }
    }

    fn take_f64_row(&mut self) -> Vec<f64> {
        match self.f64_rows.pop() {
            Some(mut row) => {
                row.clear();
                self.reused += 1;
                row
            }
            None => Vec::new(),
        }
    }

    fn take_usize_row(&mut self) -> Vec<usize> {
        match self.usize_rows.pop() {
            Some(mut row) => {
                row.clear();
                self.reused += 1;
                row
            }
            None => Vec::new(),
        }
    }

    fn give_cand_row(&mut self, row: Vec<Candidate>) {
        if self.cand_rows.len() < ARENA_ROWS_MAX {
            self.cand_rows.push(row);
        }
    }

    fn give_f64_row(&mut self, row: Vec<f64>) {
        if self.f64_rows.len() < ARENA_ROWS_MAX {
            self.f64_rows.push(row);
        }
    }

    /// Returns every row of a finished lattice to the pools. Call when a
    /// trajectory is decoded (offline) or a session finalized (online); the
    /// next state built from this arena then advances allocation-free.
    pub fn recycle(&mut self, state: ViterbiState) {
        let ViterbiState { cand_sets, score, back, .. } = state;
        for row in cand_sets {
            self.give_cand_row(row);
        }
        for row in score {
            if self.f64_rows.len() < ARENA_ROWS_MAX {
                self.f64_rows.push(row);
            }
        }
        for row in back {
            if self.usize_rows.len() < ARENA_ROWS_MAX {
                self.usize_rows.push(row);
            }
        }
    }
}

/// Resumable Viterbi decoder state: pushed points, per-layer candidate sets,
/// the beam of survivor scores and the backpointer lattice. See module docs.
#[derive(Debug, Clone, Default)]
pub struct ViterbiState {
    points: Vec<GpsPoint>,
    cand_sets: Vec<Vec<Candidate>>,
    /// `score[i][j]`: best log-prob of any path ending at candidate `j` of
    /// point `i` (`−∞` for dead candidates).
    score: Vec<Vec<f64>>,
    /// `back[i][j]`: predecessor candidate index at layer `i − 1`, or
    /// `usize::MAX` at layer 0 and chain restarts (HMM breaks).
    back: Vec<Vec<usize>>,
    watermark: usize,
    /// Reusable buffers of [`ViterbiState::refresh_watermark`]; never
    /// semantically meaningful between calls, never serialized.
    wm_alive: Vec<usize>,
    wm_parents: Vec<usize>,
}

impl ViterbiState {
    /// An empty decoder (no points pushed).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of points pushed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether any point has been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The current stabilized-prefix watermark (see
    /// [`ViterbiState::refresh_watermark`]).
    #[must_use]
    pub fn watermark(&self) -> usize {
        self.watermark
    }

    /// Whether the lattice has fully converged: every pushed point's final
    /// match is already pinned (`watermark == len`). A stable state can be
    /// handed to any other worker/scratch and continued bitwise-identically
    /// with nothing provisional in flight — the cheap-migration test of the
    /// streaming router.
    #[must_use]
    pub fn is_stable(&self) -> bool {
        self.watermark >= self.points.len()
    }

    /// Advances the decoder by one GPS point: `cands` is the candidate set
    /// of `p` (closest first), `emission` scores a candidate against `p`,
    /// and `transition` scores a candidate pair given the straight-line
    /// displacement from the previous point. This is the per-step
    /// transition/emission update shared verbatim by the offline and
    /// online paths.
    pub fn advance(
        &mut self,
        p: GpsPoint,
        cands: Vec<Candidate>,
        emission: impl Fn(&Candidate) -> f64,
        transition: impl FnMut(&Candidate, &Candidate, f64) -> f64,
    ) {
        // A throwaway arena: three empty pools, no heap behind them. Rows
        // fall through to plain allocation — the historical behaviour.
        self.advance_in(&mut LatticeArena::new(), p, cands, emission, transition);
    }

    /// [`ViterbiState::advance`] drawing its new lattice rows from `arena`
    /// instead of the allocator. Scores, backpointers and decoded output
    /// are bitwise-identical either way — recycled rows are cleared and
    /// refilled by the same update — so callers opt in purely for the
    /// steady-state zero-allocation property (see [`LatticeArena`]).
    pub fn advance_in(
        &mut self,
        arena: &mut LatticeArena,
        p: GpsPoint,
        cands: Vec<Candidate>,
        emission: impl Fn(&Candidate) -> f64,
        transition: impl FnMut(&Candidate, &Candidate, f64) -> f64,
    ) {
        let mut em = arena.take_f64_row();
        em.extend(cands.iter().map(&emission));
        self.advance_scored_in(arena, p, cands, &em, transition);
        arena.give_f64_row(em);
    }

    /// The per-step update with emissions already computed: `emissions[j]`
    /// scores `cands[j]` against `p`. This is the innermost form — the
    /// HMM matchers batch their emission scoring through a vectorized
    /// kernel and feed the row in here; [`ViterbiState::advance`] /
    /// [`ViterbiState::advance_in`] evaluate a closure per candidate and
    /// delegate. Emissions are a pure per-candidate function either way, so
    /// all three entry points produce bitwise-identical lattices.
    ///
    /// # Panics
    /// Panics if `emissions.len() != cands.len()`.
    pub fn advance_scored_in(
        &mut self,
        arena: &mut LatticeArena,
        p: GpsPoint,
        cands: Vec<Candidate>,
        emissions: &[f64],
        mut transition: impl FnMut(&Candidate, &Candidate, f64) -> f64,
    ) {
        assert_eq!(emissions.len(), cands.len(), "one emission per candidate");
        if self.points.is_empty() {
            let mut s0 = arena.take_f64_row();
            s0.extend_from_slice(emissions);
            let mut b0 = arena.take_usize_row();
            b0.resize(cands.len(), usize::MAX);
            self.score.push(s0);
            self.back.push(b0);
        } else {
            let i = self.points.len();
            let straight = p.pos.dist(self.points[i - 1].pos);
            let prev_cands = &self.cand_sets[i - 1];
            let prev_score = &self.score[i - 1];
            let mut s_i = arena.take_f64_row();
            s_i.resize(cands.len(), f64::NEG_INFINITY);
            let mut b_i = arena.take_usize_row();
            b_i.resize(cands.len(), usize::MAX);
            for (j, cj) in cands.iter().enumerate() {
                let em = emissions[j];
                for (k, ck) in prev_cands.iter().enumerate() {
                    if prev_score[k] == f64::NEG_INFINITY {
                        continue;
                    }
                    let tr = transition(ck, cj, straight);
                    if tr == f64::NEG_INFINITY {
                        continue;
                    }
                    let cand_score = prev_score[k] + tr + em;
                    if cand_score > s_i[j] {
                        s_i[j] = cand_score;
                        b_i[j] = k;
                    }
                }
            }
            // HMM break: no feasible transition — restart the chain here.
            if s_i.iter().all(|&s| s == f64::NEG_INFINITY) {
                s_i.clear();
                s_i.extend_from_slice(emissions);
                b_i.clear();
                b_i.resize(cands.len(), usize::MAX);
            }
            self.score.push(s_i);
            self.back.push(b_i);
        }
        self.points.push(p);
        self.cand_sets.push(cands);
    }

    /// The provisional match of the newest point: the candidate the final
    /// backtrack would pick if the stream ended now.
    #[must_use]
    pub fn provisional(&self) -> Option<MatchedPoint> {
        let last = self.points.len().checked_sub(1)?;
        let j = argmax(&self.score[last]);
        let c = self.cand_sets[last].get(j)?;
        Some(MatchedPoint::new(c.seg, c.ratio, self.points[last].t))
    }

    /// Recomputes the stabilized-prefix watermark and returns it.
    ///
    /// Walks the backpointer lattice down from the newest layer, carrying
    /// the set of candidates any future decode could pass through: the
    /// survivors (finite score) at the top, their backpointer images below,
    /// a single argmax candidate across a chain restart. The first layer
    /// where that set collapses to one candidate pins the decode of
    /// everything at and below it. Monotone: never returns less than a
    /// previous call. `O(depth × beam)` in the worst case, but the walk
    /// stops at the previous watermark.
    pub fn refresh_watermark(&mut self) -> usize {
        // Split borrows: the walk reads `score`/`back` while refilling the
        // two reusable index buffers (no per-call allocation on this path —
        // it runs once per streamed point).
        let Self { points, score, back, watermark, wm_alive, wm_parents, .. } = self;
        let Some(mut layer) = points.len().checked_sub(1) else {
            return *watermark;
        };
        wm_alive.clear();
        wm_alive.extend((0..score[layer].len()).filter(|&j| score[layer][j] != f64::NEG_INFINITY));
        loop {
            if wm_alive.len() == 1 {
                // One candidate pins this layer; below it the backpointers
                // (and break-time argmaxes over frozen scores) are fixed.
                *watermark = (*watermark).max(layer + 1);
                return *watermark;
            }
            if wm_alive.is_empty() || layer == 0 || layer <= *watermark {
                // No survivors to converge, or no room to beat the current
                // watermark: collapsing at `layer - 1` would only re-derive
                // a prefix already stabilized.
                return *watermark;
            }
            if back[layer][wm_alive[0]] == usize::MAX {
                // Chain restart: the backtrack below this layer starts from
                // argmax over layer − 1's (now frozen) scores.
                wm_alive.clear();
                wm_alive.push(argmax(&score[layer - 1]));
            } else {
                wm_parents.clear();
                wm_parents.extend(wm_alive.iter().map(|&j| back[layer][j]));
                wm_parents.sort_unstable();
                wm_parents.dedup();
                std::mem::swap(wm_alive, wm_parents);
            }
            layer -= 1;
        }
    }

    /// Serializes the full lattice — points, candidate sets, survivor
    /// scores, backpointers, watermark — with every `f64` as its exact bit
    /// pattern, so [`ViterbiState::decode_snapshot`] rebuilds a state whose
    /// every future `advance`/`decode` is bitwise-identical to this one's.
    pub fn encode_snapshot(&self, out: &mut Vec<u8>) {
        snapshot::put_trajectory(
            out,
            &trmma_traj::types::Trajectory { points: self.points.clone() },
        );
        snapshot::put_cand_sets(out, &self.cand_sets);
        for row in &self.score {
            for &s in row {
                snapshot::put_f64(out, s);
            }
        }
        for row in &self.back {
            for &b in row {
                snapshot::put_usize(out, b);
            }
        }
        snapshot::put_usize(out, self.watermark);
    }

    /// Rebuilds a lattice serialized by [`ViterbiState::encode_snapshot`].
    /// The score/backpointer rows reuse the candidate-set lengths as their
    /// dimensions, so structural inconsistency surfaces as
    /// [`SnapshotError::Truncated`]/[`SnapshotError::Malformed`], never as
    /// a panic or an out-of-bounds lattice.
    pub fn decode_snapshot(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let points = snapshot::read_trajectory(r)?.points;
        let cand_sets = snapshot::read_cand_sets(r)?;
        if cand_sets.len() != points.len() {
            return Err(SnapshotError::Malformed("candidate layers != points"));
        }
        let mut score = Vec::with_capacity(cand_sets.len());
        for set in &cand_sets {
            let mut row = Vec::with_capacity(set.len());
            for _ in 0..set.len() {
                row.push(r.f64()?);
            }
            score.push(row);
        }
        let mut back = Vec::with_capacity(cand_sets.len());
        for set in &cand_sets {
            let mut row = Vec::with_capacity(set.len());
            for _ in 0..set.len() {
                row.push(r.usize()?);
            }
            back.push(row);
        }
        let watermark = r.usize()?;
        if watermark > points.len() {
            return Err(SnapshotError::Malformed("watermark beyond stream length"));
        }
        Ok(Self { points, cand_sets, score, back, watermark, ..Self::default() })
    }

    /// The final decode: backtracks through the lattice (chain restarts
    /// resume from per-layer argmaxes) and returns one matched point per
    /// pushed point. Pure — the state can keep accepting points afterwards.
    #[must_use]
    pub fn decode(&self) -> Vec<MatchedPoint> {
        let n = self.points.len();
        if n == 0 {
            return Vec::new();
        }
        let mut picks = vec![0usize; n];
        let last = n - 1;
        picks[last] = argmax(&self.score[last]);
        for i in (0..last).rev() {
            let bp = self.back[i + 1][picks[i + 1]];
            picks[i] = if bp == usize::MAX { argmax(&self.score[i]) } else { bp };
        }
        picks
            .into_iter()
            .enumerate()
            .map(|(i, j)| {
                let c = &self.cand_sets[i][j];
                MatchedPoint::new(c.seg, c.ratio, self.points[i].t)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trmma_geom::Vec2;
    use trmma_roadnet::SegmentId;

    fn gp(x: f64, t: f64) -> GpsPoint {
        GpsPoint { pos: Vec2::new(x, 0.0), t }
    }

    fn cand(seg: u32, ratio: f64, dist: f64) -> Candidate {
        Candidate { seg: SegmentId(seg), dist_m: dist, ratio }
    }

    /// Hand-computable two-layer lattice: emission prefers candidate 0, but
    /// the transition only allows 1 → 1, so the survivor path flips.
    #[test]
    fn advance_and_decode_follow_feasible_transitions() {
        let mut st = ViterbiState::new();
        let em = |c: &Candidate| -c.dist_m;
        st.advance(gp(0.0, 0.0), vec![cand(0, 0.1, 1.0), cand(1, 0.2, 2.0)], em, |_, _, _| 0.0);
        st.advance(gp(10.0, 1.0), vec![cand(2, 0.5, 1.0), cand(3, 0.5, 5.0)], em, |from, to, _| {
            if from.seg == SegmentId(1) && to.seg == SegmentId(3) {
                0.0
            } else {
                f64::NEG_INFINITY
            }
        });
        let picks = st.decode();
        assert_eq!(picks.len(), 2);
        assert_eq!(picks[0].seg, SegmentId(1), "only 1 → 3 was feasible");
        assert_eq!(picks[1].seg, SegmentId(3));
        // A single feasible survivor means the whole prefix is stable.
        assert_eq!(st.refresh_watermark(), 2);
        assert!(st.is_stable(), "every pushed point is pinned");
    }

    #[test]
    fn break_restarts_chain_and_stabilizes_prefix() {
        let mut st = ViterbiState::new();
        let em = |c: &Candidate| -c.dist_m;
        st.advance(gp(0.0, 0.0), vec![cand(0, 0.1, 1.0), cand(1, 0.2, 2.0)], em, |_, _, _| 0.0);
        // No transition feasible at all: break, chain restarts on emissions.
        st.advance(gp(10.0, 1.0), vec![cand(2, 0.5, 3.0), cand(3, 0.5, 1.0)], em, |_, _, _| {
            f64::NEG_INFINITY
        });
        let picks = st.decode();
        assert_eq!(picks[0].seg, SegmentId(0), "pre-break layer decodes by argmax");
        assert_eq!(picks[1].seg, SegmentId(3), "post-break layer decodes by emission");
        // The break froze layer 0; layer 1 still has two survivors.
        assert_eq!(st.refresh_watermark(), 1);
        assert!(!st.is_stable(), "two survivors at the top: not fully converged");
    }

    #[test]
    fn watermark_is_monotone_and_bounded() {
        let mut st = ViterbiState::new();
        let em = |_: &Candidate| 0.0;
        let mut prev = 0;
        for i in 0..6 {
            st.advance(
                gp(f64::from(i), f64::from(i)),
                vec![cand(0, 0.1, 1.0), cand(1, 0.2, 2.0)],
                em,
                |_, _, _| 0.0,
            );
            let w = st.refresh_watermark();
            assert!(w >= prev, "watermark regressed: {w} < {prev}");
            assert!(w <= st.len());
            prev = w;
        }
    }

    #[test]
    fn empty_state_is_well_behaved() {
        let mut st = ViterbiState::new();
        assert!(st.is_empty());
        assert_eq!(st.len(), 0);
        assert!(st.decode().is_empty());
        assert!(st.provisional().is_none());
        assert_eq!(st.refresh_watermark(), 0);
    }
}
