//! The full-network seq2seq recovery baseline (MTrajRec-style surrogate).
//!
//! A GRU encoder consumes the sparse GPS sequence; a GRU decoder emits one
//! point per ε tick, classifying its segment with a softmax over **all**
//! `|E|` segments of the road network and regressing its position ratio.
//! This is precisely the design the paper argues against: the decoder's
//! output layer scales with the network (`|E|` ≈ 65 k on Beijing), making
//! training and inference expensive, while TRMMA's decoder only scores the
//! handful of segments on the matched route. The baseline exists to
//! reproduce that efficiency *and* quality gap (Tables III, Figs. 5–6).

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use trmma_geom::BBox;
use trmma_nn::{Adam, Graph, GruCell, Linear, Matrix, Mlp, NodeId, Param};
use trmma_roadnet::{RoadNetwork, SegmentId};
use trmma_traj::api::{CandidateFinder, TrajectoryRecovery};
use trmma_traj::types::{MatchedPoint, MatchedTrajectory, Trajectory};
use trmma_traj::Sample;

use crate::TrainReport;

/// Hyper-parameters of [`Seq2SeqFull`].
#[derive(Debug, Clone)]
pub struct Seq2SeqConfig {
    /// GRU hidden width.
    pub d_model: usize,
    /// Segment-embedding width.
    pub d_emb: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Ratio-loss weight λ.
    pub lambda_ratio: f64,
    /// Init seed.
    pub seed: u64,
}

impl Default for Seq2SeqConfig {
    fn default() -> Self {
        Self { d_model: 64, d_emb: 32, lr: 1e-3, lambda_ratio: 1.0, seed: 11 }
    }
}

/// MTrajRec-style encoder/decoder over the whole network; see module docs.
pub struct Seq2SeqFull {
    net: Arc<RoadNetwork>,
    finder: CandidateFinder,
    bbox: BBox,
    cfg: Seq2SeqConfig,
    in_proj: Linear,
    encoder: GruCell,
    seg_table: Linear,
    dec_in: Linear,
    decoder: GruCell,
    seg_head: Linear,
    ratio_head: Mlp,
    params: Vec<Param>,
}

impl Seq2SeqFull {
    /// Builds an untrained model over `net`.
    #[must_use]
    pub fn new(net: Arc<RoadNetwork>, cfg: Seq2SeqConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = net.num_segments();
        let d = cfg.d_model;
        let in_proj = Linear::new(3, d, &mut rng);
        let encoder = GruCell::new(d, d, &mut rng);
        let seg_table = Linear::new_no_bias(n, cfg.d_emb, &mut rng);
        let dec_in = Linear::new(cfg.d_emb + 1, d, &mut rng);
        let decoder = GruCell::new(d, d, &mut rng);
        let seg_head = Linear::new(d, n, &mut rng);
        let ratio_head = Mlp::new(d, d, 1, &mut rng);
        let mut params = Vec::new();
        params.extend(in_proj.params());
        params.extend(encoder.params());
        params.extend(seg_table.params());
        params.extend(dec_in.params());
        params.extend(decoder.params());
        params.extend(seg_head.params());
        params.extend(ratio_head.params());
        let finder = CandidateFinder::new(&net, 1);
        let bbox = net.bbox();
        Self {
            net,
            finder,
            bbox,
            cfg,
            in_proj,
            encoder,
            seg_table,
            dec_in,
            decoder,
            seg_head,
            ratio_head,
            params,
        }
    }

    /// Total scalar weights (dominated by the `d × |E|` output head).
    #[must_use]
    pub fn num_weights(&self) -> usize {
        trmma_nn::param::total_weights(&self.params)
    }

    /// The road network the model decodes over.
    #[must_use]
    pub fn network(&self) -> &RoadNetwork {
        &self.net
    }

    fn norm_features(&self, traj: &Trajectory) -> Vec<[f64; 3]> {
        let w = (self.bbox.max.x - self.bbox.min.x).max(1.0);
        let h = (self.bbox.max.y - self.bbox.min.y).max(1.0);
        let t0 = traj.points.first().map_or(0.0, |p| p.t);
        let dur = traj.duration_s().max(1.0);
        traj.points
            .iter()
            .map(|p| {
                [(p.pos.x - self.bbox.min.x) / w, (p.pos.y - self.bbox.min.y) / h, (p.t - t0) / dur]
            })
            .collect()
    }

    /// Runs the encoder, returning the final hidden state node.
    fn encode(&self, g: &mut Graph, traj: &Trajectory) -> NodeId {
        let feats = self.norm_features(traj);
        let mut h = g.input(Matrix::zeros(1, self.cfg.d_model));
        for f in feats {
            let x = g.input(Matrix::row_vec(f.to_vec()));
            let xp = self.in_proj.forward(g, x);
            h = self.encoder.step(g, xp, h);
        }
        h
    }

    /// One decoder step given the previous point; returns `(h', h'-node)`.
    fn decode_step(
        &self,
        g: &mut Graph,
        h: NodeId,
        prev_seg: SegmentId,
        prev_ratio: f64,
    ) -> NodeId {
        let emb = self.seg_table.embed(g, &[prev_seg.idx()]);
        let ratio = g.input(Matrix::row_vec(vec![prev_ratio]));
        let cat = g.concat_cols(&[emb, ratio]);
        let x = self.dec_in.forward(g, cat);
        self.decoder.step(g, x, h)
    }

    /// Trains with teacher forcing, one Adam step per trajectory.
    pub fn train(&mut self, samples: &[Sample], epochs: usize) -> TrainReport {
        let mut opt = Adam::new(self.params.clone(), self.cfg.lr);
        let mut report = TrainReport::default();
        for _epoch in 0..epochs {
            let started = Instant::now();
            let mut loss_sum = 0.0;
            let mut count = 0usize;
            for s in samples {
                if s.dense_truth.len() < 2 {
                    continue;
                }
                let mut g = Graph::new();
                let mut h = self.encode(&mut g, &s.sparse);
                let mut hidden_rows = Vec::new();
                let mut targets = Vec::new();
                let mut ratio_targets = Vec::new();
                // Teacher forcing along the dense ground truth.
                for w in s.dense_truth.points.windows(2) {
                    let (prev, cur) = (&w[0], &w[1]);
                    h = self.decode_step(&mut g, h, prev.seg, prev.ratio);
                    hidden_rows.push(h);
                    targets.push(cur.seg.idx());
                    ratio_targets.push(cur.ratio);
                }
                let hs = g.concat_rows(&hidden_rows);
                let logits = self.seg_head.forward(&mut g, hs);
                let seg_loss = g.softmax_cross_entropy(logits, &targets);
                let ratio_pre = self.ratio_head.forward(&mut g, hs);
                let ratio_pred = g.sigmoid(ratio_pre);
                let ratio_loss =
                    g.l1_loss(ratio_pred, Matrix::from_vec(ratio_targets.len(), 1, ratio_targets));
                let scaled = g.scale(ratio_loss, self.cfg.lambda_ratio);
                let loss = g.add(seg_loss, scaled);
                opt.zero_grad();
                g.backward(loss);
                opt.step();
                loss_sum += g.value(loss).get(0, 0);
                count += 1;
            }
            report.epoch_losses.push(loss_sum / count.max(1) as f64);
            report.epoch_times_s.push(started.elapsed().as_secs_f64());
        }
        report
    }
}

impl TrajectoryRecovery for Seq2SeqFull {
    fn name(&self) -> &'static str {
        "Seq2SeqFull"
    }

    fn recover(&self, traj: &Trajectory, epsilon_s: f64) -> MatchedTrajectory {
        if traj.is_empty() {
            return MatchedTrajectory::default();
        }
        let mut g = Graph::new();
        let mut h = self.encode(&mut g, traj);
        let first = traj.points[0];
        let init = self.finder.nearest(first.pos).expect("non-empty network");
        let mut prev = MatchedPoint::new(init.seg, init.ratio, first.t);
        let mut out = vec![prev];
        let t_end = traj.points.last().expect("non-empty").t;
        let steps = ((t_end - first.t) / epsilon_s).round() as usize;
        for j in 1..=steps {
            h = self.decode_step(&mut g, h, prev.seg, prev.ratio);
            let logits = self.seg_head.forward(&mut g, h);
            let row = g.value(logits).row(0);
            let mut best = 0usize;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            let ratio_pre = self.ratio_head.forward(&mut g, h);
            let ratio_node = g.sigmoid(ratio_pre);
            let ratio = g.value(ratio_node).get(0, 0);
            prev = MatchedPoint::new(SegmentId(best as u32), ratio, first.t + j as f64 * epsilon_s);
            out.push(prev);
        }
        MatchedTrajectory::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trmma_roadnet::{generate_city, NetworkConfig};
    use trmma_traj::dataset::{build_dataset, DatasetConfig, Split};

    #[test]
    fn output_grid_and_shapes() {
        let ds = build_dataset(&DatasetConfig::tiny());
        let cfg = Seq2SeqConfig { d_model: 16, d_emb: 8, ..Seq2SeqConfig::default() };
        let model = Seq2SeqFull::new(Arc::new(ds.net.clone()), cfg);
        let s = &ds.samples(Split::Test, 0.2, 3)[0];
        // Untrained model must still produce a well-formed ε-trajectory.
        let rec = model.recover(&s.sparse, ds.epsilon_s);
        assert!(rec.len() >= 2);
        assert!(rec.satisfies_epsilon(ds.epsilon_s, 1e-6));
        for p in &rec.points {
            assert!((0.0..=1.0).contains(&p.ratio));
            assert!(p.seg.idx() < model.network().num_segments());
        }
    }

    #[test]
    fn training_reduces_loss() {
        let ds = build_dataset(&DatasetConfig::tiny());
        let cfg = Seq2SeqConfig { d_model: 16, d_emb: 8, ..Seq2SeqConfig::default() };
        let mut model = Seq2SeqFull::new(Arc::new(ds.net.clone()), cfg);
        let train: Vec<_> = ds.samples(Split::Train, 0.2, 4).into_iter().take(8).collect();
        let report = model.train(&train, 3);
        assert_eq!(report.epoch_losses.len(), 3);
        assert!(
            report.final_loss() < report.epoch_losses[0],
            "loss should drop: {:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn weight_count_scales_with_network() {
        let small = Seq2SeqFull::new(
            Arc::new(generate_city(&NetworkConfig::with_size(4, 4, 71))),
            Seq2SeqConfig { d_model: 16, d_emb: 8, ..Seq2SeqConfig::default() },
        );
        let large = Seq2SeqFull::new(
            Arc::new(generate_city(&NetworkConfig::with_size(10, 10, 71))),
            Seq2SeqConfig { d_model: 16, d_emb: 8, ..Seq2SeqConfig::default() },
        );
        assert!(large.num_weights() > 2 * small.num_weights(), "the |E|-wide head must dominate");
    }
}
