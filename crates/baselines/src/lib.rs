//! Comparator methods for map matching and trajectory recovery.
//!
//! The paper evaluates TRMMA/MMA against a battery of existing methods.
//! This crate implements the classic ones faithfully and the learned ones as
//! mechanism-preserving surrogates (see DESIGN.md §1):
//!
//! **Map matching**
//! * [`NearestMatcher`] — every GPS point to its nearest segment (the
//!   `Nearest` row of Table V);
//! * [`HmmMatcher`] — Newson & Krumm (SIGSPATIAL 2009): Gaussian emission on
//!   perpendicular distance, exponential transition on
//!   `|route − great-circle|` detour, Viterbi decoding;
//! * [`FmmMatcher`] — FMM (Yang & Gidófalvi 2018): the same HMM accelerated
//!   by a precomputed upper-bounded origin–destination table ([`Ubodt`]);
//! * [`LhmmMatcher`] — learned-HMM surrogate (LHMM, Shi et al. 2023):
//!   emission/transition parameters fitted by maximum likelihood on the
//!   training corpus.
//!
//! The HMM family shares one route-distance oracle
//! (`trmma_roadnet::TransitionProvider`) and keeps all mutable search state
//! in a per-worker [`HmmScratch`]; every matcher implements
//! `trmma_traj::ScratchMatcher`, so `trmma_core::batch::par_match_pooled`
//! fans baseline batches across threads with one warm Dijkstra pool per
//! worker and output identical to the sequential API.
//!
//! **Trajectory recovery**
//! * [`LinearRecovery`] — map-match with any [`trmma_traj::MapMatcher`], then linearly
//!   interpolate missing points along the route (the `Linear`,
//!   `MMA+linear`, `Nearest+linear` rows of Tables III/IV);
//! * [`Seq2SeqFull`] — an MTrajRec-style GRU encoder/decoder that classifies
//!   each recovered point over **all** `|E|` segments of the network — the
//!   "evaluate the entire road network" design whose cost TRMMA's
//!   route-restricted decoding avoids.
//!
//! # Example
//!
//! Match a sparse trajectory with the classic HMM — offline and as a
//! point-at-a-time online session, which are bitwise-identical by
//! contract:
//!
//! ```
//! use std::sync::Arc;
//! use trmma_baselines::{HmmConfig, HmmMatcher};
//! use trmma_roadnet::RoutePlanner;
//! use trmma_traj::dataset::{build_dataset, DatasetConfig, Split};
//! use trmma_traj::{MapMatcher, OnlineMatcher, ScratchMatcher};
//!
//! let ds = build_dataset(&DatasetConfig::tiny());
//! let net = Arc::new(ds.net.clone());
//! let planner = Arc::new(RoutePlanner::untrained(&net));
//! let hmm = HmmMatcher::new(net, planner, HmmConfig::default());
//!
//! let traj = &ds.samples(Split::Test, 0.2, 1)[0].sparse;
//! let offline = hmm.match_trajectory(traj);
//! assert_eq!(offline.matched.len(), traj.len());
//!
//! // Offline is online replayed: push every point, then finalize.
//! let mut scratch = hmm.make_scratch();
//! let mut session = hmm.begin_session();
//! for &p in &traj.points {
//!     hmm.push_point(&mut scratch, &mut session, p);
//! }
//! assert_eq!(hmm.finalize(&mut scratch, session), offline);
//! ```

pub mod decoder;
pub mod hmm;
pub mod lhmm;
pub mod linear;
pub mod nearest;
pub mod seq2seq;
pub mod ubodt;

pub use decoder::ViterbiState;
pub use hmm::{FmmMatcher, HmmConfig, HmmMatcher, HmmScratch, HmmSession};
pub use lhmm::{fit_params, FittedParams, LhmmMatcher};
pub use linear::LinearRecovery;
pub use nearest::{NearestMatcher, NearestSession};
pub use seq2seq::{Seq2SeqConfig, Seq2SeqFull};
pub use ubodt::Ubodt;

/// Summary of one training run (epoch wall-times feed Figs. 6 and 10).
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Wall-clock seconds per epoch.
    pub epoch_times_s: Vec<f64>,
}

impl TrainReport {
    /// Last epoch's mean loss.
    #[must_use]
    pub fn final_loss(&self) -> f64 {
        self.epoch_losses.last().copied().unwrap_or(f64::NAN)
    }

    /// Mean seconds per epoch.
    #[must_use]
    pub fn mean_epoch_time_s(&self) -> f64 {
        if self.epoch_times_s.is_empty() {
            return 0.0;
        }
        self.epoch_times_s.iter().sum::<f64>() / self.epoch_times_s.len() as f64
    }
}
