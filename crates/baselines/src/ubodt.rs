//! Upper-bounded origin–destination table — FMM's acceleration structure.
//!
//! FMM precomputes, for every node pair within network distance `delta`, the
//! shortest-path distance; HMM transition evaluation then becomes a hash
//! lookup instead of a Dijkstra run. The sparse-trajectory regime makes
//! `delta` the dominant knob: it must cover the typical inter-point gap
//! (ε/γ seconds of driving).

use std::sync::Arc;

use trmma_roadnet::{DistTable, NodeId, RoadNetwork};

/// Precomputed bounded all-pairs table; see module docs.
///
/// A thin, shareable wrapper around the one table-construction routine of
/// the workspace, [`DistTable::build`] (`trmma-roadnet::transition`) — the
/// same structure `FmmMatcher` attaches to its `TransitionProvider`, so
/// the stand-alone table and the matcher's oracle can never drift apart.
#[derive(Debug, Clone)]
pub struct Ubodt {
    table: Arc<DistTable>,
}

impl Ubodt {
    /// Builds the table by running a bounded Dijkstra from every node
    /// (pooled: one warm [`SsspPool`] serves all sources).
    ///
    /// [`SsspPool`]: trmma_roadnet::shortest::SsspPool
    #[must_use]
    pub fn build(net: &RoadNetwork, delta: f64) -> Self {
        Self { table: Arc::new(DistTable::build(net, delta)) }
    }

    /// A shared read-only handle to the underlying table (what
    /// `FmmMatcher`'s transition provider keeps).
    #[must_use]
    pub fn shared(&self) -> Arc<DistTable> {
        self.table.clone()
    }

    /// The distance bound the table was built with.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.table.delta()
    }

    /// Number of stored pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Shortest distance `src → dst` if within `delta`.
    #[must_use]
    pub fn query(&self, src: NodeId, dst: NodeId) -> Option<f64> {
        self.table.query(src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trmma_roadnet::shortest::{node_dist, Weight};
    use trmma_roadnet::{generate_city, NetworkConfig};

    #[test]
    fn ubodt_is_the_shared_dist_table() {
        let net = generate_city(&NetworkConfig::with_size(5, 5, 13));
        let ubodt = Ubodt::build(&net, 400.0);
        let direct = DistTable::build(&net, 400.0);
        assert_eq!(ubodt.len(), direct.len());
        assert_eq!(ubodt.delta(), direct.delta());
        // `shared()` hands out the same allocation the wrapper queries.
        let handle = ubodt.shared();
        assert_eq!(handle.len(), ubodt.len());
        assert!(Arc::ptr_eq(&handle, &ubodt.shared()));
    }

    #[test]
    fn table_matches_dijkstra_within_delta() {
        let net = generate_city(&NetworkConfig::with_size(6, 6, 13));
        let delta = 500.0;
        let ubodt = Ubodt::build(&net, delta);
        assert!(!ubodt.is_empty());
        for src in (0..net.num_nodes() as u32).step_by(7) {
            for dst in (0..net.num_nodes() as u32).step_by(5) {
                let exact = node_dist(&net, NodeId(src), NodeId(dst), Weight::Length, delta);
                let looked = ubodt.query(NodeId(src), NodeId(dst));
                match (exact, looked) {
                    (Some(e), Some(l)) => assert!((e - l).abs() < 1e-9, "{src}->{dst}"),
                    (None, None) => {}
                    other => panic!("mismatch {src}->{dst}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn self_distance_is_zero() {
        let net = generate_city(&NetworkConfig::with_size(4, 4, 13));
        let ubodt = Ubodt::build(&net, 300.0);
        for v in 0..net.num_nodes() as u32 {
            assert_eq!(ubodt.query(NodeId(v), NodeId(v)), Some(0.0));
        }
    }

    #[test]
    fn out_of_range_pairs_absent() {
        let net = generate_city(&NetworkConfig::with_size(8, 8, 13));
        let ubodt = Ubodt::build(&net, 200.0);
        // Opposite grid corners are far beyond 200 m.
        let far = ubodt.query(NodeId(0), NodeId((net.num_nodes() - 1) as u32));
        assert!(far.is_none());
    }

    #[test]
    fn larger_delta_larger_table() {
        let net = generate_city(&NetworkConfig::with_size(6, 6, 13));
        let small = Ubodt::build(&net, 200.0);
        let large = Ubodt::build(&net, 800.0);
        assert!(large.len() > small.len());
    }
}
