//! Learned-HMM map matching (LHMM surrogate).
//!
//! LHMM (Shi et al., ICDE 2023) enhances the classic HMM by *learning* its
//! probabilities from data instead of hand-tuning them. This surrogate
//! keeps the mechanism at the scale of this reproduction: the emission
//! deviation σ_z and the transition scale β are fitted by maximum
//! likelihood on the training corpus (σ̂ = RMS perpendicular distance of
//! true matches; β̂ = mean absolute detour between consecutive true
//! matches, the MLE of an exponential scale), and per-segment transition
//! priors from the shared route planner re-weight the Viterbi transitions.

use std::sync::Arc;

use trmma_geom::Vec2;
use trmma_roadnet::shortest::{matched_dist_directed, DistCache, NetPos};
use trmma_roadnet::{RoadNetwork, RoutePlanner};
use trmma_traj::api::{MapMatcher, MatchResult, ScratchMatcher};
use trmma_traj::types::Trajectory;
use trmma_traj::Sample;

use trmma_traj::online::{OnlineMatcher, OnlineUpdate};
use trmma_traj::snapshot::SnapshotError;
use trmma_traj::types::GpsPoint;

use crate::hmm::{HmmConfig, HmmMatcher, HmmScratch, HmmSession};
use crate::TrainReport;

/// Fitted HMM parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FittedParams {
    /// Maximum-likelihood emission deviation (metres).
    pub sigma_z_m: f64,
    /// Maximum-likelihood transition scale (metres).
    pub beta_m: f64,
    /// Number of points the emission fit saw.
    pub n_emission: usize,
    /// Number of transitions the detour fit saw.
    pub n_transition: usize,
}

/// Fits σ_z and β from ground-truth matched training samples.
///
/// σ̂_z is the root-mean-square distance between each GPS point and its
/// true matched position; β̂ is the mean absolute difference between route
/// distance and straight-line displacement over consecutive points (the
/// MLE of the exponential detour model used by Newson & Krumm).
#[must_use]
pub fn fit_params(net: &RoadNetwork, samples: &[Sample], max_route_m: f64) -> FittedParams {
    let cache = DistCache::new();
    let mut sq_sum = 0.0;
    let mut n_emission = 0usize;
    let mut detour_sum = 0.0;
    let mut n_transition = 0usize;
    for s in samples {
        for (p, truth) in s.sparse.points.iter().zip(&s.sparse_truth) {
            let true_pos: Vec2 = truth.pos(net);
            sq_sum += p.pos.dist_sq(true_pos);
            n_emission += 1;
        }
        for (pw, tw) in s.sparse.points.windows(2).zip(s.sparse_truth.windows(2)) {
            let straight = pw[1].pos.dist(pw[0].pos);
            let a = NetPos::new(tw[0].seg, tw[0].ratio);
            let b = NetPos::new(tw[1].seg, tw[1].ratio);
            if let Some(route) = matched_dist_directed(net, a, b, max_route_m, Some(&cache)) {
                detour_sum += (route - straight).abs();
                n_transition += 1;
            }
        }
    }
    FittedParams {
        sigma_z_m: (sq_sum / n_emission.max(1) as f64).sqrt().max(1.0),
        beta_m: (detour_sum / n_transition.max(1) as f64).max(1.0),
        n_emission,
        n_transition,
    }
}

/// The learned-HMM matcher: a [`HmmMatcher`] whose parameters are fitted
/// rather than fixed. Construct with [`LhmmMatcher::fit`].
pub struct LhmmMatcher {
    inner: HmmMatcher,
    params: FittedParams,
    report: TrainReport,
}

impl LhmmMatcher {
    /// Fits the parameters on `train` and builds the matcher.
    #[must_use]
    pub fn fit(
        net: Arc<RoadNetwork>,
        planner: Arc<RoutePlanner>,
        base: HmmConfig,
        train: &[Sample],
    ) -> Self {
        let started = std::time::Instant::now();
        let params = fit_params(&net, train, base.max_route_m);
        let cfg = HmmConfig { sigma_z_m: params.sigma_z_m, beta_m: params.beta_m, ..base };
        let mut report = TrainReport::default();
        report.epoch_times_s.push(started.elapsed().as_secs_f64());
        report.epoch_losses.push(0.0);
        Self { inner: HmmMatcher::with_name(net, planner, cfg, "LHMM"), params, report }
    }

    /// Like [`LhmmMatcher::fit`], but decoding on a sharded network. The
    /// parameter fit runs on the whole graph — training happens where the
    /// ground truth lives, and the fitted σ̂/β̂ are therefore identical to
    /// the monolithic matcher's — only the decode-time candidate search and
    /// transition lookups go through the shards.
    #[must_use]
    pub fn fit_sharded(
        sharded: Arc<trmma_roadnet::ShardedNetwork>,
        planner: Arc<RoutePlanner>,
        base: HmmConfig,
        train: &[Sample],
    ) -> Self {
        let started = std::time::Instant::now();
        let params = fit_params(sharded.net(), train, base.max_route_m);
        let cfg = HmmConfig { sigma_z_m: params.sigma_z_m, beta_m: params.beta_m, ..base };
        let mut report = TrainReport::default();
        report.epoch_times_s.push(started.elapsed().as_secs_f64());
        report.epoch_losses.push(0.0);
        Self { inner: HmmMatcher::sharded_named(sharded, planner, cfg, "LHMM"), params, report }
    }

    /// The fitted parameters.
    #[must_use]
    pub fn params(&self) -> FittedParams {
        self.params
    }

    /// The (single-pass) fitting report.
    #[must_use]
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    /// The route-distance oracle (shared, read-only) of the fitted matcher.
    #[must_use]
    pub fn provider(&self) -> &trmma_roadnet::TransitionProvider {
        self.inner.provider()
    }
}

impl MapMatcher for LhmmMatcher {
    fn name(&self) -> &'static str {
        "LHMM"
    }

    fn match_trajectory(&self, traj: &Trajectory) -> MatchResult {
        self.inner.match_trajectory(traj)
    }
}

impl ScratchMatcher for LhmmMatcher {
    type Scratch = HmmScratch;

    fn make_scratch(&self) -> HmmScratch {
        HmmScratch::new()
    }

    fn match_trajectory_with(&self, scratch: &mut HmmScratch, traj: &Trajectory) -> MatchResult {
        self.inner.match_trajectory_with(scratch, traj)
    }
}

impl OnlineMatcher for LhmmMatcher {
    type Session = HmmSession;

    fn begin_session(&self) -> HmmSession {
        self.inner.begin_session()
    }

    fn push_point(
        &self,
        scratch: &mut HmmScratch,
        session: &mut HmmSession,
        point: GpsPoint,
    ) -> OnlineUpdate {
        self.inner.push_point(scratch, session, point)
    }

    fn finalize(&self, scratch: &mut HmmScratch, session: HmmSession) -> MatchResult {
        self.inner.finalize(scratch, session)
    }

    fn session_len(&self, session: &HmmSession) -> usize {
        self.inner.session_len(session)
    }

    fn session_watermark(&self, session: &HmmSession) -> usize {
        self.inner.session_watermark(session)
    }

    fn session_stable(&self, session: &HmmSession) -> bool {
        self.inner.session_stable(session)
    }

    fn snapshot_session(&self, session: &HmmSession, out: &mut Vec<u8>) {
        self.inner.snapshot_session(session, out);
    }

    fn restore_session(&self, bytes: &[u8]) -> Result<HmmSession, SnapshotError> {
        self.inner.restore_session(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trmma_roadnet::{generate_city, NetworkConfig};
    use trmma_traj::gen::{generate_trajectory, sparsify, TrajConfig};
    use trmma_traj::metrics::matching_metrics;

    fn fixture() -> (Arc<RoadNetwork>, Arc<RoutePlanner>, Vec<Sample>, Vec<Sample>, TrajConfig) {
        let net = Arc::new(generate_city(&NetworkConfig::with_size(8, 8, 91)));
        let planner = Arc::new(RoutePlanner::untrained(&net));
        let cfg = TrajConfig { min_points: 12, gps_noise_m: 9.0, ..TrajConfig::default() };
        let mut rng = StdRng::seed_from_u64(17);
        let mut train = Vec::new();
        let mut test = Vec::new();
        for i in 0..12 {
            if let Some(raw) = generate_trajectory(&net, &cfg, &mut rng) {
                let s = sparsify(&raw, 0.3, &mut rng);
                if i % 2 == 0 {
                    train.push(s);
                } else {
                    test.push(s);
                }
            }
        }
        (net, planner, train, test, cfg)
    }

    #[test]
    fn fitted_sigma_tracks_injected_noise() {
        let (net, _planner, train, _test, cfg) = fixture();
        let params = fit_params(&net, &train, 5_000.0);
        assert!(params.n_emission > 10);
        // RMS of 2-D Gaussian displacement with per-axis σ is σ·√2; the
        // clamped projection makes the observed value land below that.
        let upper = cfg.gps_noise_m * 2.0;
        let lower = cfg.gps_noise_m * 0.5;
        assert!(
            (lower..upper).contains(&params.sigma_z_m),
            "sigma {} outside [{lower}, {upper}]",
            params.sigma_z_m
        );
        assert!(params.beta_m >= 1.0);
    }

    #[test]
    fn lhmm_matches_with_comparable_quality_to_hmm() {
        let (net, planner, train, test, _cfg) = fixture();
        let hmm = HmmMatcher::new(net.clone(), planner.clone(), HmmConfig::default());
        let lhmm = LhmmMatcher::fit(net.clone(), planner, HmmConfig::default(), &train);
        assert_eq!(lhmm.name(), "LHMM");
        let mean_f1 = |m: &dyn MapMatcher| -> f64 {
            test.iter()
                .map(|s| matching_metrics(&m.match_trajectory(&s.sparse).route, &s.route).f1)
                .sum::<f64>()
                / test.len() as f64
        };
        let f_hmm = mean_f1(&hmm);
        let f_lhmm = mean_f1(&lhmm);
        // The fitted parameters must stay in the same quality regime as the
        // hand-tuned ones (they are fitted to exactly this distribution).
        assert!(f_lhmm > 0.8 * f_hmm, "LHMM {f_lhmm:.3} collapsed vs HMM {f_hmm:.3}");
    }

    #[test]
    fn fit_report_records_time() {
        let (net, planner, train, _test, _cfg) = fixture();
        let lhmm = LhmmMatcher::fit(net, planner, HmmConfig::default(), &train);
        assert_eq!(lhmm.report().epoch_times_s.len(), 1);
        assert!(lhmm.params().n_transition > 0);
    }
}
