//! Map-match-then-interpolate recovery (the `Linear` baseline family).
//!
//! Given any [`MapMatcher`], recovery proceeds exactly as Table III/IV's
//! `Linear`, `MMA+linear` and `Nearest+linear` rows: match the sparse
//! points, stitch the route, then place each missing ε-tick at the linearly
//! interpolated *route distance* between its bracketing observations.

use std::sync::Arc;

use trmma_roadnet::{RoadNetwork, SegmentId};
use trmma_traj::api::{MapMatcher, TrajectoryRecovery};
use trmma_traj::types::{MatchedPoint, MatchedTrajectory, Route, Trajectory};

/// Linear-interpolation recovery over any matcher's route.
pub struct LinearRecovery<M: MapMatcher> {
    net: Arc<RoadNetwork>,
    matcher: M,
    name: &'static str,
}

impl<M: MapMatcher> LinearRecovery<M> {
    /// Wraps `matcher`; `name` labels the method in experiment tables
    /// (e.g. "Linear", "MMA+linear").
    #[must_use]
    pub fn new(net: Arc<RoadNetwork>, matcher: M, name: &'static str) -> Self {
        Self { net, matcher, name }
    }

    /// Access to the wrapped matcher.
    #[must_use]
    pub fn matcher(&self) -> &M {
        &self.matcher
    }
}

/// Cumulative route geometry: prefix sums of segment lengths plus lookup of
/// a distance offset back to `(segment, ratio)`.
pub(crate) struct RouteScale {
    segs: Vec<SegmentId>,
    prefix: Vec<f64>, // prefix[i] = distance from route start to segs[i] entrance
    total: f64,
}

impl RouteScale {
    pub(crate) fn new(net: &RoadNetwork, route: &Route) -> Self {
        let mut prefix = Vec::with_capacity(route.len());
        let mut acc = 0.0;
        for &s in &route.segs {
            prefix.push(acc);
            acc += net.segment(s).length;
        }
        Self { segs: route.segs.clone(), prefix, total: acc }
    }

    /// Route-start distance of a matched position, searching from
    /// `from_idx` forward (handles repeated segments on a route).
    pub(crate) fn offset_of(
        &self,
        net: &RoadNetwork,
        seg: SegmentId,
        ratio: f64,
        from_idx: usize,
    ) -> Option<(usize, f64)> {
        let idx = self.segs[from_idx.min(self.segs.len())..].iter().position(|&s| s == seg)?
            + from_idx.min(self.segs.len());
        Some((idx, self.prefix[idx] + ratio * net.segment(self.segs[idx]).length))
    }

    /// Inverse mapping: a distance offset to `(segment, ratio)`.
    pub(crate) fn locate(&self, net: &RoadNetwork, offset: f64) -> (SegmentId, f64) {
        let clamped = offset.clamp(0.0, self.total.max(0.0));
        // partition_point: first index whose prefix exceeds `clamped`.
        let idx = self.prefix.partition_point(|&p| p <= clamped).saturating_sub(1);
        let seg = self.segs[idx];
        let len = net.segment(seg).length.max(f64::MIN_POSITIVE);
        ((seg), ((clamped - self.prefix[idx]) / len).min(1.0))
    }
}

impl<M: MapMatcher> TrajectoryRecovery for LinearRecovery<M> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn recover(&self, traj: &Trajectory, epsilon_s: f64) -> MatchedTrajectory {
        let result = self.matcher.match_trajectory(traj);
        if result.matched.is_empty() {
            return MatchedTrajectory::default();
        }
        let scale = RouteScale::new(&self.net, &result.route);
        let mut out: Vec<MatchedPoint> = Vec::new();
        let first = &result.matched[0];
        // Route index of the previous observation.
        let (mut cursor, mut prev_off) =
            scale.offset_of(&self.net, first.seg, first.ratio, 0).unwrap_or((0, 0.0));
        out.push(*first);
        for w in result.matched.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let (b_idx, b_off) =
                scale.offset_of(&self.net, b.seg, b.ratio, cursor).unwrap_or((cursor, prev_off));
            let b_off = b_off.max(prev_off); // guard against backtracking noise
            let interval = b.t - a.t;
            let missing = if interval > 0.0 {
                ((interval / epsilon_s).round() as usize).saturating_sub(1)
            } else {
                0
            };
            for j in 1..=missing {
                let f = j as f64 / (missing + 1) as f64;
                let off = prev_off + f * (b_off - prev_off);
                let (seg, ratio) = scale.locate(&self.net, off);
                out.push(MatchedPoint::new(seg, ratio, a.t + j as f64 * epsilon_s));
            }
            out.push(*b);
            cursor = b_idx;
            prev_off = b_off;
        }
        MatchedTrajectory::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nearest::NearestMatcher;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trmma_roadnet::{generate_city, NetworkConfig, RoutePlanner};
    use trmma_traj::gen::{generate_trajectory, sparsify, TrajConfig};
    use trmma_traj::metrics::recovery_metrics;

    fn setup() -> (Arc<RoadNetwork>, LinearRecovery<NearestMatcher>, TrajConfig) {
        let net = Arc::new(generate_city(&NetworkConfig::with_size(12, 12, 61)));
        let planner = Arc::new(RoutePlanner::untrained(&net));
        let matcher = NearestMatcher::new(net.clone(), planner);
        let rec = LinearRecovery::new(net.clone(), matcher, "Linear");
        (net, rec, TrajConfig { min_points: 14, min_od_dist_m: 900.0, ..TrajConfig::default() })
    }

    #[test]
    fn recovered_length_matches_ground_truth() {
        let (net, rec, cfg) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let raw = generate_trajectory(&net, &cfg, &mut rng).unwrap();
        let s = sparsify(&raw, 0.25, &mut rng);
        let recovered = rec.recover(&s.sparse, cfg.epsilon_s);
        assert_eq!(
            recovered.len(),
            s.dense_truth.len(),
            "ε-grid alignment must reproduce the dense length"
        );
        // Timestamps form the ε grid.
        assert!(recovered.satisfies_epsilon(cfg.epsilon_s, 1e-6));
    }

    #[test]
    fn recovery_quality_is_reasonable() {
        let (net, rec, cfg) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let mut acc = 0.0;
        let mut n = 0;
        for _ in 0..5 {
            let Some(raw) = generate_trajectory(&net, &cfg, &mut rng) else { continue };
            let s = sparsify(&raw, 0.3, &mut rng);
            let recovered = rec.recover(&s.sparse, cfg.epsilon_s);
            let m = recovery_metrics(&net, &recovered, &s.dense_truth, None);
            acc += m.accuracy;
            n += 1;
        }
        let mean = acc / f64::from(n);
        assert!(mean > 0.25, "linear recovery accuracy too low: {mean}");
    }

    #[test]
    fn ratios_stay_in_unit_interval_and_times_monotonic() {
        let (net, rec, cfg) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let raw = generate_trajectory(&net, &cfg, &mut rng).unwrap();
        let s = sparsify(&raw, 0.2, &mut rng);
        let recovered = rec.recover(&s.sparse, cfg.epsilon_s);
        for p in &recovered.points {
            assert!((0.0..=1.0).contains(&p.ratio));
        }
        for w in recovered.points.windows(2) {
            assert!(w[1].t > w[0].t);
        }
    }

    #[test]
    fn route_scale_round_trips() {
        let (net, _, _) = setup();
        let planner = RoutePlanner::untrained(&net);
        let src = SegmentId(0);
        let dst = SegmentId((net.num_segments() / 3) as u32);
        let route = Route::new(planner.plan(&net, src, dst).unwrap());
        let scale = RouteScale::new(&net, &route);
        for (i, &seg) in route.segs.iter().enumerate() {
            for ratio in [0.0, 0.3, 0.9] {
                let (idx, off) = scale.offset_of(&net, seg, ratio, i).unwrap();
                assert_eq!(idx, i);
                let (seg2, ratio2) = scale.locate(&net, off);
                assert_eq!(seg2, seg);
                assert!((ratio2 - ratio).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let (_, rec, cfg) = setup();
        let recovered = rec.recover(&Trajectory::default(), cfg.epsilon_s);
        assert!(recovered.is_empty());
    }
}
