//! The `Nearest` baseline: each GPS point maps to its geometrically nearest
//! segment; the route is stitched by the shared route planner.
//!
//! Fig. 2 of the paper shows why this is weak: only ~70 % of points have
//! their true segment as the nearest one.

use std::sync::Arc;

use trmma_roadnet::{RoadNetwork, RoutePlanner};
use trmma_traj::api::{stitch_route, CandidateFinder, MapMatcher, MatchResult, ScratchMatcher};
use trmma_traj::online::{OnlineMatcher, OnlineUpdate};
use trmma_traj::snapshot::{self, Reader, SnapshotError};
use trmma_traj::types::{GpsPoint, MatchedPoint, Trajectory};

/// Nearest-segment map matcher.
pub struct NearestMatcher {
    net: Arc<RoadNetwork>,
    planner: Arc<RoutePlanner>,
    finder: CandidateFinder,
}

impl NearestMatcher {
    /// Builds the matcher (R-tree constructed internally).
    #[must_use]
    pub fn new(net: Arc<RoadNetwork>, planner: Arc<RoutePlanner>) -> Self {
        let finder = CandidateFinder::new(&net, 1);
        Self { net, planner, finder }
    }

    /// Builds the matcher on a sharded network, searching the per-shard
    /// R-trees instead of one whole-network tree. Matches are identical to
    /// [`NearestMatcher::new`] — the finder's canonical ranking is a pure
    /// function of the segment set.
    #[must_use]
    pub fn sharded(
        sharded: Arc<trmma_roadnet::ShardedNetwork>,
        planner: Arc<RoutePlanner>,
    ) -> Self {
        let net = Arc::clone(sharded.net());
        let finder = CandidateFinder::sharded(sharded, 1);
        Self { net, planner, finder }
    }
}

impl NearestMatcher {
    fn stitch(&self, matched: Vec<MatchedPoint>) -> MatchResult {
        stitch_route(&self.net, &self.planner, matched)
    }
}

impl MapMatcher for NearestMatcher {
    fn name(&self) -> &'static str {
        "Nearest"
    }

    fn match_trajectory(&self, traj: &Trajectory) -> MatchResult {
        let matched: Vec<MatchedPoint> = traj
            .points
            .iter()
            .map(|p| {
                let c = self.finder.nearest(p.pos).expect("non-empty road network");
                MatchedPoint::new(c.seg, c.ratio, p.t)
            })
            .collect();
        self.stitch(matched)
    }
}

/// Per-session state of the nearest matcher: each point's match is final the
/// moment it is pushed, so the session is just the matched prefix.
#[derive(Debug, Clone, Default)]
pub struct NearestSession {
    matched: Vec<MatchedPoint>,
}

/// Nearest is the degenerate online decoder: no global decoding means every
/// provisional match is already final and the watermark always equals the
/// number of pushed points.
impl OnlineMatcher for NearestMatcher {
    type Session = NearestSession;

    fn begin_session(&self) -> NearestSession {
        NearestSession::default()
    }

    fn push_point(
        &self,
        (): &mut (),
        session: &mut NearestSession,
        point: GpsPoint,
    ) -> OnlineUpdate {
        let c = self.finder.nearest(point.pos).expect("non-empty road network");
        let mp = MatchedPoint::new(c.seg, c.ratio, point.t);
        session.matched.push(mp);
        OnlineUpdate { provisional: Some(mp), stable_prefix: session.matched.len() }
    }

    fn finalize(&self, (): &mut (), session: NearestSession) -> MatchResult {
        self.stitch(session.matched)
    }

    fn session_len(&self, session: &NearestSession) -> usize {
        session.matched.len()
    }

    fn session_watermark(&self, session: &NearestSession) -> usize {
        // Every match is final the moment it is pushed.
        session.matched.len()
    }

    fn snapshot_session(&self, session: &NearestSession, out: &mut Vec<u8>) {
        snapshot::put_usize(out, session.matched.len());
        for m in &session.matched {
            snapshot::put_matched(out, m);
        }
    }

    fn restore_session(&self, bytes: &[u8]) -> Result<NearestSession, SnapshotError> {
        let mut r = Reader::new(bytes);
        let n = r.seq_len()?;
        let mut matched = Vec::with_capacity(n);
        for _ in 0..n {
            matched.push(r.matched()?);
        }
        r.expect_end()?;
        Ok(NearestSession { matched })
    }
}

/// Nearest keeps no per-query search state (single-nearest R-tree probes
/// allocate nothing worth pooling), so its scratch is empty — the impl just
/// registers the matcher with the pooled batch fan-out.
impl ScratchMatcher for NearestMatcher {
    type Scratch = ();

    fn make_scratch(&self) {}

    fn match_trajectory_with(&self, (): &mut (), traj: &Trajectory) -> MatchResult {
        self.match_trajectory(traj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trmma_roadnet::{generate_city, NetworkConfig};
    use trmma_traj::gen::{generate_trajectory, sparsify, TrajConfig};

    #[test]
    fn nearest_matches_points_and_stitches_route() {
        let net = Arc::new(generate_city(&NetworkConfig::with_size(8, 8, 31)));
        let planner = Arc::new(RoutePlanner::untrained(&net));
        let matcher = NearestMatcher::new(net.clone(), planner);
        let cfg = TrajConfig { min_points: 10, ..TrajConfig::default() };
        let mut rng = StdRng::seed_from_u64(4);
        // Two-way roads share identical geometry, so the nearest segment is
        // frequently the reverse twin of the truth — exactly why the paper's
        // Fig. 2 reports only ~70 % top-1 coverage — and points dwelling at
        // intersections tie with cross streets. Up to direction, the nearest
        // segment should usually be the right street; assert statistically
        // over several trajectories.
        let mut correct_street = 0usize;
        let mut total = 0usize;
        for _ in 0..6 {
            let Some(raw) = generate_trajectory(&net, &cfg, &mut rng) else { continue };
            let sample = sparsify(&raw, 0.3, &mut rng);
            let res = matcher.match_trajectory(&sample.sparse);
            assert_eq!(res.matched.len(), sample.sparse.len());
            assert!(res.route.is_valid(&net), "stitched route must be a path");
            correct_street += res
                .matched
                .iter()
                .zip(&sample.sparse_truth)
                .filter(|(m, t)| m.seg == t.seg || net.reverse_twin(m.seg) == Some(t.seg))
                .count();
            total += sample.sparse_truth.len();
        }
        assert!(total > 0);
        assert!(
            correct_street * 5 >= total * 3,
            "nearest street wrong too often: {correct_street}/{total}"
        );
    }
}
