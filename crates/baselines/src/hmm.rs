//! Hidden-Markov-Model map matching (Newson & Krumm, SIGSPATIAL 2009) and
//! its FMM acceleration (Yang & Gidófalvi, IJGIS 2018).
//!
//! * **Emission**: Gaussian on the perpendicular distance between the GPS
//!   point and a candidate segment, `log p ∝ −½ (d/σ_z)²`.
//! * **Transition**: exponential on the detour between consecutive points,
//!   `log p ∝ −|d_route − d_straight| / β` — vehicles rarely drive much
//!   farther than the direct displacement.
//! * **Decoding**: Viterbi over per-point candidate sets (top-k from the
//!   R-tree). When no transition is feasible (sparse data, bounded search)
//!   the chain restarts at that point, the standard HMM-break handling.
//!
//! Route distances come from a shared [`TransitionProvider`]
//! (`trmma-roadnet`): [`HmmMatcher`] reads through a `DistCache` whose
//! misses run on the caller's pooled Dijkstra state; [`FmmMatcher`] differs
//! only in attaching a precomputed [`Ubodt`] table, which turns every
//! lookup into a hash probe. All mutable search state lives in
//! [`HmmScratch`] — one per batch worker — so the matchers are `Send +
//! Sync` and parallelise through `trmma_core::batch` with output identical
//! to the sequential path.

use std::sync::Arc;

use trmma_roadnet::shortest::{NetPos, SsspPool};
use trmma_roadnet::{DistTable, RoadNetwork, RoutePlanner, ShardedNetwork, TransitionProvider};
use trmma_traj::api::{
    stitch_route, Candidate, CandidateFinder, CandidateScratch, MapMatcher, MatchResult,
};
use trmma_traj::online::{OnlineMatcher, OnlineUpdate};
use trmma_traj::snapshot::{Reader, SnapshotError};
use trmma_traj::types::{GpsPoint, MatchedPoint, Trajectory};
use trmma_traj::ScratchMatcher;

use crate::decoder::{LatticeArena, ViterbiState};
use crate::ubodt::Ubodt;

/// Tunables of the HMM matchers.
#[derive(Debug, Clone)]
pub struct HmmConfig {
    /// Candidates per GPS point.
    pub k_candidates: usize,
    /// Emission standard deviation σ_z in metres.
    pub sigma_z_m: f64,
    /// Transition scale β in metres.
    pub beta_m: f64,
    /// Hard bound on route-distance searches in metres (also the UBODT
    /// delta for [`FmmMatcher`]).
    pub max_route_m: f64,
}

impl Default for HmmConfig {
    fn default() -> Self {
        Self { k_candidates: 10, sigma_z_m: 10.0, beta_m: 120.0, max_route_m: 5_000.0 }
    }
}

/// Per-worker mutable state of the HMM matchers: warm Dijkstra buffers for
/// transition lookups, the candidate-search heaps, the lattice-row arena
/// and the emission-kernel staging buffers. One scratch serves every
/// trajectory a batch worker claims; past the first trajectory the
/// per-point advance path allocates nothing.
#[derive(Debug, Default)]
pub struct HmmScratch {
    pool: SsspPool,
    cand: CandidateScratch,
    arena: LatticeArena,
    /// Gathered `dist_m` column, input of the vectorized emission kernel.
    dists: Vec<f64>,
    /// The kernel's output row, borrowed by the scored advance.
    em: Vec<f64>,
    /// Points whose staging rows (`dists`/`em`) fit in retained capacity —
    /// two allocations avoided each versus the fresh-per-call path.
    staged: u64,
}

impl HmmScratch {
    /// Empty scratch state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Heap allocations this scratch has absorbed so far: lattice-arena
    /// rows served from recycled storage, plus staging rows reused from
    /// retained capacity (two per staged point).
    #[must_use]
    pub fn allocs_avoided(&self) -> u64 {
        self.arena.allocs_avoided() + 2 * self.staged
    }
}

/// Newson–Krumm HMM matcher (pooled, cached Dijkstra route distances).
pub struct HmmMatcher {
    net: Arc<RoadNetwork>,
    planner: Arc<RoutePlanner>,
    finder: CandidateFinder,
    cfg: HmmConfig,
    provider: TransitionProvider,
    name: &'static str,
}

impl HmmMatcher {
    /// Builds the matcher with on-demand (cached, pooled) Dijkstra route
    /// distances.
    #[must_use]
    pub fn new(net: Arc<RoadNetwork>, planner: Arc<RoutePlanner>, cfg: HmmConfig) -> Self {
        let provider = TransitionProvider::dijkstra(cfg.max_route_m);
        Self::with_provider(net, planner, cfg, provider, "HMM")
    }

    /// Like [`HmmMatcher::new`] with a custom display name (used by the
    /// learned-HMM wrapper).
    #[must_use]
    pub(crate) fn with_name(
        net: Arc<RoadNetwork>,
        planner: Arc<RoutePlanner>,
        cfg: HmmConfig,
        name: &'static str,
    ) -> Self {
        let provider = TransitionProvider::dijkstra(cfg.max_route_m);
        Self::with_provider(net, planner, cfg, provider, name)
    }

    fn with_provider(
        net: Arc<RoadNetwork>,
        planner: Arc<RoutePlanner>,
        cfg: HmmConfig,
        provider: TransitionProvider,
        name: &'static str,
    ) -> Self {
        let finder = CandidateFinder::new(&net, cfg.k_candidates);
        Self { net, planner, finder, cfg, provider, name }
    }

    /// Builds the matcher on a sharded network: candidate search merges the
    /// per-shard R-trees and route distances decompose into intra-shard
    /// table hops plus the boundary overlay — no Dijkstra at decode time.
    /// `sharded.delta()` takes the place of `cfg.max_route_m` as the route
    /// bound; decodes are bitwise-identical to the monolithic matcher when
    /// the two bounds agree (`tests/props_shard.rs`).
    #[must_use]
    pub fn sharded(
        sharded: Arc<ShardedNetwork>,
        planner: Arc<RoutePlanner>,
        cfg: HmmConfig,
    ) -> Self {
        Self::sharded_named(sharded, planner, cfg, "HMM")
    }

    /// [`HmmMatcher::sharded`] with a custom display name (used by the
    /// learned-HMM wrapper and FMM).
    pub(crate) fn sharded_named(
        sharded: Arc<ShardedNetwork>,
        planner: Arc<RoutePlanner>,
        cfg: HmmConfig,
        name: &'static str,
    ) -> Self {
        let net = Arc::clone(sharded.net());
        let finder = CandidateFinder::sharded(Arc::clone(&sharded), cfg.k_candidates);
        let provider = TransitionProvider::with_sharded(sharded);
        Self { net, planner, finder, cfg, provider, name }
    }

    /// The route-distance oracle (shared, read-only).
    #[must_use]
    pub fn provider(&self) -> &TransitionProvider {
        &self.provider
    }

    fn transition_log(
        &self,
        pool: &mut SsspPool,
        from: &Candidate,
        to: &Candidate,
        straight_m: f64,
    ) -> f64 {
        let a = NetPos::new(from.seg, from.ratio);
        let b = NetPos::new(to.seg, to.ratio);
        // Unreachable pairs and malformed segment ids (a typed error from
        // the provider, never a panic) both score as impossible transitions.
        match self.provider.route_dist(&self.net, pool, a, b) {
            Ok(Some(route)) => -(route - straight_m).abs() / self.cfg.beta_m,
            Ok(None) | Err(_) => f64::NEG_INFINITY,
        }
    }

    /// Advances a resumable decoder by one GPS point: candidate search on
    /// the scratch's kNN buffers, emissions through the chunked Gaussian
    /// kernel, then the transition update of
    /// [`ViterbiState::advance_scored_in`] with route distances on the
    /// scratch's Dijkstra pool and lattice rows from the scratch's arena.
    /// The one step function shared by the offline decode (which replays a
    /// whole trajectory through it) and the online path. Every piece is
    /// bitwise-identical to the naive closure-per-candidate,
    /// fresh-`Vec`-per-row formulation (`tests/props_tail.rs`).
    fn advance(&self, scratch: &mut HmmScratch, state: &mut ViterbiState, p: GpsPoint) {
        let HmmScratch { pool, cand, arena, dists, em, staged } = scratch;
        let mut cands = arena.take_cand_row();
        self.finder.candidates_into(p.pos, cand, &mut cands);
        if dists.capacity() >= cands.len() && em.capacity() >= cands.len() {
            *staged += 1;
        }
        dists.clear();
        dists.extend(cands.iter().map(|c| c.dist_m));
        trmma_nn::kernels::gaussian_log_emission_into(dists, self.cfg.sigma_z_m, em);
        state.advance_scored_in(arena, p, cands, em, |from, to, straight| {
            self.transition_log(pool, from, to, straight)
        });
    }

    fn stitch(&self, matched: Vec<MatchedPoint>) -> MatchResult {
        stitch_route(&self.net, &self.planner, matched)
    }
}

/// Per-session decoder state of the HMM-family matchers: the resumable
/// Viterbi lattice. One per live trajectory; the heavyweight search buffers
/// stay in the per-worker [`HmmScratch`].
#[derive(Debug, Clone, Default)]
pub struct HmmSession {
    state: ViterbiState,
}

impl HmmSession {
    /// Points pushed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// Whether any point has been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// The current stabilized-prefix watermark of the lattice.
    #[must_use]
    pub fn watermark(&self) -> usize {
        self.state.watermark()
    }
}

impl MapMatcher for HmmMatcher {
    fn name(&self) -> &'static str {
        self.name
    }

    fn match_trajectory(&self, traj: &Trajectory) -> MatchResult {
        self.match_trajectory_with(&mut HmmScratch::new(), traj)
    }
}

impl ScratchMatcher for HmmMatcher {
    type Scratch = HmmScratch;

    fn make_scratch(&self) -> HmmScratch {
        HmmScratch::new()
    }

    fn scratch_stats(scratch: &HmmScratch) -> trmma_traj::ScratchStats {
        trmma_traj::ScratchStats { allocs_avoided: scratch.allocs_avoided() }
    }

    fn match_trajectory_with(&self, scratch: &mut HmmScratch, traj: &Trajectory) -> MatchResult {
        // Offline is online replayed: push every point, then decode.
        let mut state = ViterbiState::new();
        for &p in &traj.points {
            self.advance(scratch, &mut state, p);
        }
        let matched = state.decode();
        scratch.arena.recycle(state);
        self.stitch(matched)
    }
}

impl OnlineMatcher for HmmMatcher {
    type Session = HmmSession;

    fn begin_session(&self) -> HmmSession {
        HmmSession::default()
    }

    fn push_point(
        &self,
        scratch: &mut HmmScratch,
        session: &mut HmmSession,
        point: GpsPoint,
    ) -> OnlineUpdate {
        self.advance(scratch, &mut session.state, point);
        OnlineUpdate {
            provisional: session.state.provisional(),
            stable_prefix: session.state.refresh_watermark(),
        }
    }

    fn finalize(&self, scratch: &mut HmmScratch, session: HmmSession) -> MatchResult {
        let matched = session.state.decode();
        scratch.arena.recycle(session.state);
        self.stitch(matched)
    }

    fn session_len(&self, session: &HmmSession) -> usize {
        session.state.len()
    }

    fn session_watermark(&self, session: &HmmSession) -> usize {
        session.state.watermark()
    }

    fn session_stable(&self, session: &HmmSession) -> bool {
        session.state.is_stable()
    }

    fn snapshot_session(&self, session: &HmmSession, out: &mut Vec<u8>) {
        session.state.encode_snapshot(out);
    }

    fn restore_session(&self, bytes: &[u8]) -> Result<HmmSession, SnapshotError> {
        let mut r = Reader::new(bytes);
        let state = ViterbiState::decode_snapshot(&mut r)?;
        r.expect_end()?;
        Ok(HmmSession { state })
    }
}

/// FMM: the HMM above with a precomputed [`Ubodt`] route-distance table
/// attached to its [`TransitionProvider`].
pub struct FmmMatcher {
    inner: HmmMatcher,
    /// Wall-clock seconds spent building the UBODT (reported by the
    /// efficiency experiments).
    pub precompute_s: f64,
}

impl FmmMatcher {
    /// Builds the matcher, precomputing the UBODT with `delta =
    /// cfg.max_route_m`.
    #[must_use]
    pub fn new(net: Arc<RoadNetwork>, planner: Arc<RoutePlanner>, cfg: HmmConfig) -> Self {
        let start = std::time::Instant::now();
        let ubodt = Ubodt::build(&net, cfg.max_route_m);
        let precompute_s = start.elapsed().as_secs_f64();
        let provider = TransitionProvider::with_table(ubodt.shared());
        Self { inner: HmmMatcher::with_provider(net, planner, cfg, provider, "FMM"), precompute_s }
    }

    /// Builds the matcher around an existing precomputed table — e.g. one
    /// adopted zero-copy from a `trmma-artifacts` image — skipping the
    /// Dijkstra sweeps entirely (`precompute_s` is 0: nothing was built).
    /// The table's delta overrides `cfg.max_route_m` as the search bound,
    /// exactly as [`FmmMatcher::new`] ties the two together.
    #[must_use]
    pub fn with_table(
        net: Arc<RoadNetwork>,
        planner: Arc<RoutePlanner>,
        cfg: HmmConfig,
        table: Arc<DistTable>,
    ) -> Self {
        let provider = TransitionProvider::with_table(table);
        Self {
            inner: HmmMatcher::with_provider(net, planner, cfg, provider, "FMM"),
            precompute_s: 0.0,
        }
    }

    /// Builds the matcher on a sharded network: the per-shard intra tables
    /// plus the boundary overlay *are* the precomputed route-distance
    /// store, standing in for the whole-graph UBODT (`precompute_s` is 0 —
    /// the shard build already paid for the sweeps).
    #[must_use]
    pub fn sharded(
        sharded: Arc<ShardedNetwork>,
        planner: Arc<RoutePlanner>,
        cfg: HmmConfig,
    ) -> Self {
        Self { inner: HmmMatcher::sharded_named(sharded, planner, cfg, "FMM"), precompute_s: 0.0 }
    }

    /// Size of the precomputed distance store: the UBODT's pair count, or
    /// for a sharded matcher the total pairs across every intra-shard table
    /// plus the overlay.
    #[must_use]
    pub fn table_len(&self) -> usize {
        if let Some(t) = self.inner.provider.table() {
            return t.len();
        }
        self.inner.provider.sharded().map_or(0, |sh| {
            sh.overlay().len() + sh.shards().iter().map(|s| s.intra().len()).sum::<usize>()
        })
    }

    /// The route-distance oracle (shared, read-only, table-backed).
    #[must_use]
    pub fn provider(&self) -> &TransitionProvider {
        self.inner.provider()
    }
}

impl MapMatcher for FmmMatcher {
    fn name(&self) -> &'static str {
        self.inner.name
    }

    fn match_trajectory(&self, traj: &Trajectory) -> MatchResult {
        self.inner.match_trajectory(traj)
    }
}

impl ScratchMatcher for FmmMatcher {
    type Scratch = HmmScratch;

    fn make_scratch(&self) -> HmmScratch {
        HmmScratch::new()
    }

    fn scratch_stats(scratch: &HmmScratch) -> trmma_traj::ScratchStats {
        trmma_traj::ScratchStats { allocs_avoided: scratch.allocs_avoided() }
    }

    fn match_trajectory_with(&self, scratch: &mut HmmScratch, traj: &Trajectory) -> MatchResult {
        self.inner.match_trajectory_with(scratch, traj)
    }
}

impl OnlineMatcher for FmmMatcher {
    type Session = HmmSession;

    fn begin_session(&self) -> HmmSession {
        self.inner.begin_session()
    }

    fn push_point(
        &self,
        scratch: &mut HmmScratch,
        session: &mut HmmSession,
        point: GpsPoint,
    ) -> OnlineUpdate {
        self.inner.push_point(scratch, session, point)
    }

    fn finalize(&self, scratch: &mut HmmScratch, session: HmmSession) -> MatchResult {
        self.inner.finalize(scratch, session)
    }

    fn session_len(&self, session: &HmmSession) -> usize {
        self.inner.session_len(session)
    }

    fn session_watermark(&self, session: &HmmSession) -> usize {
        self.inner.session_watermark(session)
    }

    fn session_stable(&self, session: &HmmSession) -> bool {
        self.inner.session_stable(session)
    }

    fn snapshot_session(&self, session: &HmmSession, out: &mut Vec<u8>) {
        self.inner.snapshot_session(session, out);
    }

    fn restore_session(&self, bytes: &[u8]) -> Result<HmmSession, SnapshotError> {
        self.inner.restore_session(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trmma_roadnet::{generate_city, NetworkConfig};
    use trmma_traj::gen::{generate_trajectory, sparsify, TrajConfig};
    use trmma_traj::metrics::matching_metrics;
    use trmma_traj::Sample;

    fn setup() -> (Arc<RoadNetwork>, Arc<RoutePlanner>, Vec<Sample>) {
        let net = Arc::new(generate_city(&NetworkConfig::with_size(8, 8, 51)));
        let planner = Arc::new(RoutePlanner::untrained(&net));
        let cfg = TrajConfig { min_points: 12, ..TrajConfig::default() };
        let mut rng = StdRng::seed_from_u64(9);
        let mut samples: Vec<Sample> = Vec::new();
        for _ in 0..6 {
            if let Some(raw) = generate_trajectory(&net, &cfg, &mut rng) {
                samples.push(sparsify(&raw, 0.3, &mut rng));
            }
        }
        assert!(!samples.is_empty());
        (net, planner, samples)
    }

    #[test]
    fn hmm_beats_random_and_routes_are_paths() {
        let (net, planner, samples) = setup();
        let hmm = HmmMatcher::new(net.clone(), planner, HmmConfig::default());
        let mut f1_sum = 0.0;
        for s in &samples {
            let res = hmm.match_trajectory(&s.sparse);
            assert_eq!(res.matched.len(), s.sparse.len());
            assert!(res.route.is_valid(&net));
            f1_sum += matching_metrics(&res.route, &s.route).f1;
        }
        let mean_f1 = f1_sum / samples.len() as f64;
        assert!(mean_f1 > 0.5, "HMM mean F1 too low: {mean_f1}");
    }

    #[test]
    fn hmm_transition_prefers_direct_continuation() {
        let (net, planner, _) = setup();
        let hmm = HmmMatcher::new(net.clone(), planner, HmmConfig::default());
        let mut pool = SsspPool::new();
        // Candidate on a segment, straight-line equal to route distance →
        // detour 0 → transition log 0. A contrived far candidate scores less.
        let e = trmma_roadnet::SegmentId(0);
        let c_near = Candidate { seg: e, dist_m: 3.0, ratio: 0.2 };
        let c_next = Candidate { seg: e, dist_m: 4.0, ratio: 0.8 };
        let seg_len = net.segment(e).length;
        let straight = (0.6 * seg_len).abs();
        let t_direct = hmm.transition_log(&mut pool, &c_near, &c_next, straight);
        assert!(t_direct > -1e-6, "zero detour should give ~0 log prob");
        let t_detour = hmm.transition_log(&mut pool, &c_near, &c_next, straight + 500.0);
        assert!(t_detour < t_direct);
    }

    #[test]
    fn fmm_agrees_with_hmm_within_delta() {
        let (net, planner, samples) = setup();
        let cfg = HmmConfig::default();
        let hmm = HmmMatcher::new(net.clone(), planner.clone(), cfg.clone());
        let fmm = FmmMatcher::new(net.clone(), planner, cfg);
        assert!(fmm.table_len() > 0);
        for s in &samples {
            let a = hmm.match_trajectory(&s.sparse);
            let b = fmm.match_trajectory(&s.sparse);
            // Same oracle values within delta ⇒ same Viterbi choice.
            let same = a.matched.iter().zip(&b.matched).filter(|(x, y)| x.seg == y.seg).count();
            assert!(
                same * 10 >= a.matched.len() * 9,
                "FMM diverged from HMM: {same}/{}",
                a.matched.len()
            );
        }
    }

    #[test]
    fn fmm_table_shares_ubodt_construction() {
        // One construction routine (DistTable::build) serves both the
        // stand-alone Ubodt and the table FmmMatcher actually queries.
        let (net, planner, _) = setup();
        let cfg = HmmConfig::default();
        let fmm = FmmMatcher::new(net.clone(), planner, cfg.clone());
        let ubodt = Ubodt::build(&net, cfg.max_route_m);
        assert_eq!(fmm.table_len(), ubodt.len());
        assert_eq!(fmm.provider().table().map(|t| t.delta()), Some(ubodt.delta()));
    }

    #[test]
    fn scratch_reuse_is_identical_to_fresh_scratch() {
        let (net, planner, samples) = setup();
        let hmm = HmmMatcher::new(net, planner, HmmConfig::default());
        let mut warm = HmmScratch::new();
        for s in &samples {
            let pooled = hmm.match_trajectory_with(&mut warm, &s.sparse);
            let fresh = hmm.match_trajectory(&s.sparse);
            assert_eq!(pooled, fresh);
        }
    }

    #[test]
    fn empty_trajectory_yields_empty_result() {
        let (net, planner, _) = setup();
        let hmm = HmmMatcher::new(net, planner, HmmConfig::default());
        let res = hmm.match_trajectory(&Trajectory::default());
        assert!(res.matched.is_empty());
        assert!(res.route.is_empty());
    }
}
