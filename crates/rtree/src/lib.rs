//! An STR-packed R-tree with best-first k-nearest-neighbour search.
//!
//! The paper obtains the candidate segment set `C_pi` of a GPS point (top-kc
//! nearest segments by perpendicular distance, Definition 8) via "a top-kc
//! query over an R-tree index of road segments" and cites STR packing
//! (Leutenegger et al., ICDE 1997). This crate implements exactly that:
//!
//! * [`RTree::bulk_load`] — Sort-Tile-Recursive packing. The tree is built
//!   once over the (static) road network, so a packed layout with ~100 % node
//!   utilisation beats incremental insertion in both memory and query time.
//! * [`RTree::knn`] — best-first search with a priority queue ordered by the
//!   `MINDIST` lower bound, yielding items in exact distance order.
//! * [`RTree::query_bbox`] — range query used by the synthetic generator and
//!   by tests.
//!
//! The tree is generic over [`SpatialObject`], so it indexes both road
//! segments (distance = clamped perpendicular distance) and plain points.
//!
//! # Example
//!
//! ```
//! use trmma_geom::Vec2;
//! use trmma_rtree::RTree;
//!
//! // A 10×10 grid of points, bulk-loaded once.
//! let pts: Vec<Vec2> = (0..100)
//!     .map(|i| Vec2::new(f64::from(i % 10) * 10.0, f64::from(i / 10) * 10.0))
//!     .collect();
//! let tree = RTree::bulk_load(pts);
//! // Three nearest neighbours of (11, 12), in exact distance order.
//! let nn = tree.knn(Vec2::new(11.0, 12.0), 3);
//! assert_eq!(nn.len(), 3);
//! assert_eq!(nn[0].item, 11, "grid point (10, 10) is closest");
//! assert!(nn[0].dist <= nn[1].dist && nn[1].dist <= nn[2].dist);
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use trmma_geom::{BBox, SegLine, Vec2};

/// Anything indexable by the R-tree: has an extent and an exact distance to a
/// query point.
pub trait SpatialObject {
    /// Axis-aligned bounding box of the object.
    fn bbox(&self) -> BBox;
    /// Exact squared distance from the query point to the object.
    fn dist_sq(&self, q: Vec2) -> f64;
}

impl SpatialObject for Vec2 {
    fn bbox(&self) -> BBox {
        BBox::of_points(std::slice::from_ref(self))
    }
    fn dist_sq(&self, q: Vec2) -> f64 {
        Vec2::dist_sq(*self, q)
    }
}

impl SpatialObject for SegLine {
    fn bbox(&self) -> BBox {
        SegLine::bbox(self)
    }
    fn dist_sq(&self, q: Vec2) -> f64 {
        self.distance_sq_to(q)
    }
}

/// A segment tagged with its identifier in the road network, the payload
/// type used by map matching.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexedSegment {
    /// Road-segment id (index into the network's edge table).
    pub id: u32,
    /// Geometry of the segment.
    pub line: SegLine,
}

impl SpatialObject for IndexedSegment {
    fn bbox(&self) -> BBox {
        self.line.bbox()
    }
    fn dist_sq(&self, q: Vec2) -> f64 {
        self.line.distance_sq_to(q)
    }
}

const DEFAULT_NODE_CAPACITY: usize = 16;

#[derive(Debug)]
enum NodeKind {
    /// Indices into `RTree::items`.
    Leaf(Vec<u32>),
    /// Indices into `RTree::nodes`.
    Inner(Vec<u32>),
}

#[derive(Debug)]
struct Node {
    bbox: BBox,
    kind: NodeKind,
}

/// A static, bulk-loaded R-tree. See the crate docs for the role it plays in
/// the MMA pipeline.
#[derive(Debug)]
pub struct RTree<T: SpatialObject> {
    items: Vec<T>,
    nodes: Vec<Node>,
    root: Option<u32>,
}

/// One k-NN result: the item index and its exact distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the item in the order given to [`RTree::bulk_load`].
    pub item: u32,
    /// Exact Euclidean distance to the query point, in metres.
    pub dist: f64,
}

/// Priority-queue entry for best-first traversal (min-heap via reversed Ord).
#[derive(Debug, PartialEq)]
enum HeapRef {
    Node(u32),
    Item(u32),
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist_sq: f64,
    target: HeapRef,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want smallest distance first.
        other.dist_sq.partial_cmp(&self.dist_sq).unwrap_or(Ordering::Equal)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Total-ordered `f64` for the k-th-best pruning heap (max-heap).
#[derive(Debug, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).unwrap_or(Ordering::Equal)
    }
}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable buffers for [`RTree::knn_into`]: the best-first traversal heap
/// and the k-th-best pruning heap. One instance per worker thread serves
/// any number of queries without reallocating.
#[derive(Debug, Default)]
pub struct KnnScratch {
    heap: BinaryHeap<HeapEntry>,
    kth: BinaryHeap<OrdF64>,
}

impl KnnScratch {
    /// Empty scratch buffers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl<T: SpatialObject> RTree<T> {
    /// Builds a packed tree over `items` with the default node capacity.
    #[must_use]
    pub fn bulk_load(items: Vec<T>) -> Self {
        Self::bulk_load_with_capacity(items, DEFAULT_NODE_CAPACITY)
    }

    /// Builds a packed tree with an explicit fan-out (`capacity ≥ 2`).
    ///
    /// # Panics
    /// Panics if `capacity < 2`.
    #[must_use]
    pub fn bulk_load_with_capacity(items: Vec<T>, capacity: usize) -> Self {
        assert!(capacity >= 2, "node capacity must be at least 2");
        let mut tree = Self { items, nodes: Vec::new(), root: None };
        if tree.items.is_empty() {
            return tree;
        }

        // --- STR leaf packing ------------------------------------------------
        // Sort by x-centre, cut into vertical slices, sort each slice by
        // y-centre, pack consecutive runs of `capacity` items into leaves.
        let n = tree.items.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let centers: Vec<Vec2> = tree.items.iter().map(|it| it.bbox().center()).collect();
        order.sort_by(|&a, &b| {
            centers[a as usize].x.partial_cmp(&centers[b as usize].x).unwrap_or(Ordering::Equal)
        });

        let leaf_count = n.div_ceil(capacity);
        let slice_count = (leaf_count as f64).sqrt().ceil() as usize;
        let slice_len = n.div_ceil(slice_count);

        let mut leaves: Vec<u32> = Vec::with_capacity(leaf_count);
        for slice in order.chunks_mut(slice_len) {
            slice.sort_by(|&a, &b| {
                centers[a as usize].y.partial_cmp(&centers[b as usize].y).unwrap_or(Ordering::Equal)
            });
            for run in slice.chunks(capacity) {
                let mut bbox = BBox::empty();
                for &i in run {
                    bbox.expand_bbox(&tree.items[i as usize].bbox());
                }
                let id = tree.nodes.len() as u32;
                tree.nodes.push(Node { bbox, kind: NodeKind::Leaf(run.to_vec()) });
                leaves.push(id);
            }
        }

        // --- Build upper levels by re-packing node bounding boxes -----------
        let mut level = leaves;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(capacity));
            let node_centers: Vec<Vec2> =
                level.iter().map(|&i| tree.nodes[i as usize].bbox.center()).collect();
            let mut idx: Vec<usize> = (0..level.len()).collect();
            idx.sort_by(|&a, &b| {
                node_centers[a].x.partial_cmp(&node_centers[b].x).unwrap_or(Ordering::Equal)
            });
            let groups = level.len().div_ceil(capacity);
            let sc = (groups as f64).sqrt().ceil() as usize;
            let sl = level.len().div_ceil(sc);
            for slice in idx.chunks_mut(sl) {
                slice.sort_by(|&a, &b| {
                    node_centers[a].y.partial_cmp(&node_centers[b].y).unwrap_or(Ordering::Equal)
                });
                for run in slice.chunks(capacity) {
                    let children: Vec<u32> = run.iter().map(|&i| level[i]).collect();
                    let mut bbox = BBox::empty();
                    for &c in &children {
                        bbox.expand_bbox(&tree.nodes[c as usize].bbox);
                    }
                    let id = tree.nodes.len() as u32;
                    tree.nodes.push(Node { bbox, kind: NodeKind::Inner(children) });
                    next.push(id);
                }
            }
            level = next;
        }
        tree.root = level.first().copied();
        tree
    }

    /// Number of indexed items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the tree holds no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Access an indexed item by its position in the bulk-load order.
    #[must_use]
    pub fn item(&self, i: u32) -> &T {
        &self.items[i as usize]
    }

    /// All indexed items in bulk-load order.
    #[must_use]
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// The `k` nearest items to `q` in exact distance order.
    ///
    /// Convenience wrapper over [`RTree::knn_into`] that allocates fresh
    /// buffers; hot loops should hold a [`KnnScratch`] and an output vector
    /// and call `knn_into` directly.
    #[must_use]
    pub fn knn(&self, q: Vec2, k: usize) -> Vec<Neighbor> {
        let mut scratch = KnnScratch::new();
        let mut out = Vec::with_capacity(k.min(self.items.len()));
        self.knn_into(q, k, &mut scratch, &mut out);
        out
    }

    /// The `k` nearest items to `q` in exact distance order, written into
    /// `out` (cleared first) using caller-owned scratch buffers.
    ///
    /// Best-first search: a min-heap holds both pruned subtrees (keyed by
    /// `MINDIST`) and concrete items (keyed by exact distance). Whenever an
    /// item surfaces it is provably no farther than anything unexplored, so
    /// it can be emitted immediately. Entries are pruned *before* they are
    /// pushed: once `k` item distances are known, any leaf item or subtree
    /// whose distance / `MINDIST` exceeds the current k-th best can never be
    /// emitted, so it never enters the heap.
    ///
    /// Reusing `scratch` and `out` across queries keeps the per-query
    /// allocation count at zero once the buffers have warmed up — the map
    /// -matching candidate search calls this once per GPS point.
    pub fn knn_into(&self, q: Vec2, k: usize, scratch: &mut KnnScratch, out: &mut Vec<Neighbor>) {
        out.clear();
        if k == 0 {
            return;
        }
        let Some(root) = self.root else { return };
        let heap = &mut scratch.heap;
        let kth = &mut scratch.kth;
        heap.clear();
        kth.clear();
        heap.push(HeapEntry {
            dist_sq: self.nodes[root as usize].bbox.min_dist_sq(q),
            target: HeapRef::Node(root),
        });
        // `kth` is a max-heap of the k smallest *item* distances seen so
        // far; its top is the pruning bound.
        let bound = |kth: &BinaryHeap<OrdF64>| -> f64 {
            if kth.len() == k {
                kth.peek().map_or(f64::INFINITY, |b| b.0)
            } else {
                f64::INFINITY
            }
        };
        while let Some(entry) = heap.pop() {
            if entry.dist_sq > bound(kth) {
                break; // everything left is farther than the k-th best
            }
            match entry.target {
                HeapRef::Item(i) => {
                    out.push(Neighbor { item: i, dist: entry.dist_sq.sqrt() });
                    if out.len() == k {
                        break;
                    }
                }
                HeapRef::Node(nid) => match &self.nodes[nid as usize].kind {
                    NodeKind::Leaf(items) => {
                        for &i in items {
                            let d = self.items[i as usize].dist_sq(q);
                            if d > bound(kth) {
                                continue; // prune before push
                            }
                            if kth.len() == k {
                                kth.pop();
                            }
                            kth.push(OrdF64(d));
                            heap.push(HeapEntry { dist_sq: d, target: HeapRef::Item(i) });
                        }
                    }
                    NodeKind::Inner(children) => {
                        for &c in children {
                            let d = self.nodes[c as usize].bbox.min_dist_sq(q);
                            if d > bound(kth) {
                                continue; // subtree cannot beat the k-th best
                            }
                            heap.push(HeapEntry { dist_sq: d, target: HeapRef::Node(c) });
                        }
                    }
                },
            }
        }
    }

    /// Like [`RTree::knn_into`], but **ties-inclusive**: every item whose
    /// distance equals the k-th smallest is emitted, so `out` may hold more
    /// than `k` neighbours.
    ///
    /// `knn_into` stops at exactly `k` items, which makes the identity of
    /// the last emitted item depend on heap pop order — and therefore on
    /// the tree's packing — whenever several items tie at the k-th
    /// distance. Callers that need a *canonical* top-k (the candidate
    /// finder sorts by `(dist, id)` and truncates) use this variant: the
    /// full tie group is always present, so the truncation is
    /// deterministic regardless of tree structure. The pruning bounds are
    /// already strict (`>`), so ties survive every prune; only the
    /// emit-side early exit changes.
    pub fn knn_with_ties_into(
        &self,
        q: Vec2,
        k: usize,
        scratch: &mut KnnScratch,
        out: &mut Vec<Neighbor>,
    ) {
        out.clear();
        if k == 0 {
            return;
        }
        let Some(root) = self.root else { return };
        let heap = &mut scratch.heap;
        let kth = &mut scratch.kth;
        heap.clear();
        kth.clear();
        heap.push(HeapEntry {
            dist_sq: self.nodes[root as usize].bbox.min_dist_sq(q),
            target: HeapRef::Node(root),
        });
        let bound = |kth: &BinaryHeap<OrdF64>| -> f64 {
            if kth.len() == k {
                kth.peek().map_or(f64::INFINITY, |b| b.0)
            } else {
                f64::INFINITY
            }
        };
        while let Some(entry) = heap.pop() {
            if entry.dist_sq > bound(kth) {
                break; // strictly farther than the k-th best: no tie left
            }
            match entry.target {
                HeapRef::Item(i) => {
                    // No early exit at `out.len() == k`: items tied with
                    // the k-th distance keep surfacing until the strict
                    // break above fires.
                    out.push(Neighbor { item: i, dist: entry.dist_sq.sqrt() });
                }
                HeapRef::Node(nid) => match &self.nodes[nid as usize].kind {
                    NodeKind::Leaf(items) => {
                        for &i in items {
                            let d = self.items[i as usize].dist_sq(q);
                            if d > bound(kth) {
                                continue;
                            }
                            if kth.len() == k {
                                kth.pop();
                            }
                            kth.push(OrdF64(d));
                            heap.push(HeapEntry { dist_sq: d, target: HeapRef::Item(i) });
                        }
                    }
                    NodeKind::Inner(children) => {
                        for &c in children {
                            let d = self.nodes[c as usize].bbox.min_dist_sq(q);
                            if d > bound(kth) {
                                continue;
                            }
                            heap.push(HeapEntry { dist_sq: d, target: HeapRef::Node(c) });
                        }
                    }
                },
            }
        }
    }

    /// The single nearest item to `q`, if the tree is non-empty.
    #[must_use]
    pub fn nearest(&self, q: Vec2) -> Option<Neighbor> {
        self.knn(q, 1).into_iter().next()
    }

    /// All item indices whose bounding box intersects `range`.
    #[must_use]
    pub fn query_bbox(&self, range: &BBox) -> Vec<u32> {
        let mut out = Vec::new();
        let Some(root) = self.root else { return out };
        let mut stack = vec![root];
        while let Some(nid) = stack.pop() {
            let node = &self.nodes[nid as usize];
            if !node.bbox.intersects(range) {
                continue;
            }
            match &node.kind {
                NodeKind::Leaf(items) => {
                    for &i in items {
                        if self.items[i as usize].bbox().intersects(range) {
                            out.push(i);
                        }
                    }
                }
                NodeKind::Inner(children) => stack.extend_from_slice(children),
            }
        }
        out
    }

    /// Height of the tree (0 for an empty tree, 1 for a single leaf).
    #[must_use]
    pub fn height(&self) -> usize {
        let Some(root) = self.root else { return 0 };
        let mut h = 1;
        let mut nid = root;
        loop {
            match &self.nodes[nid as usize].kind {
                NodeKind::Leaf(_) => return h,
                NodeKind::Inner(children) => {
                    nid = children[0];
                    h += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_knn(items: &[Vec2], q: Vec2, k: usize) -> Vec<u32> {
        let mut idx: Vec<u32> = (0..items.len() as u32).collect();
        idx.sort_by(|&a, &b| {
            items[a as usize].dist_sq(q).partial_cmp(&items[b as usize].dist_sq(q)).unwrap()
        });
        idx.truncate(k);
        idx
    }

    fn grid_points(nx: usize, ny: usize) -> Vec<Vec2> {
        let mut pts = Vec::new();
        for i in 0..nx {
            for j in 0..ny {
                pts.push(Vec2::new(i as f64 * 10.0, j as f64 * 10.0));
            }
        }
        pts
    }

    #[test]
    fn empty_tree_behaves() {
        let tree: RTree<Vec2> = RTree::bulk_load(vec![]);
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 0);
        assert!(tree.knn(Vec2::new(0.0, 0.0), 3).is_empty());
        assert!(tree.nearest(Vec2::new(0.0, 0.0)).is_none());
    }

    #[test]
    fn single_item() {
        let tree = RTree::bulk_load(vec![Vec2::new(5.0, 5.0)]);
        let n = tree.nearest(Vec2::new(0.0, 1.0)).unwrap();
        assert_eq!(n.item, 0);
        assert!((n.dist - (25.0 + 16.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn knn_matches_brute_force_on_grid() {
        let pts = grid_points(20, 20);
        let tree = RTree::bulk_load(pts.clone());
        for q in [Vec2::new(33.0, 71.0), Vec2::new(-5.0, -5.0), Vec2::new(250.0, 100.0)] {
            let got: Vec<u32> = tree.knn(q, 7).iter().map(|n| n.item).collect();
            let want = brute_knn(&pts, q, 7);
            // Distances must agree even if ties permute ids.
            for (g, w) in got.iter().zip(want.iter()) {
                let dg = pts[*g as usize].dist(q);
                let dw = pts[*w as usize].dist(q);
                assert!((dg - dw).abs() < 1e-9, "dist mismatch at {q:?}");
            }
        }
    }

    #[test]
    fn knn_returns_sorted_distances() {
        let pts = grid_points(15, 15);
        let tree = RTree::bulk_load(pts);
        let res = tree.knn(Vec2::new(42.0, 17.0), 30);
        for w in res.windows(2) {
            assert!(w[0].dist <= w[1].dist + 1e-12);
        }
    }

    #[test]
    fn knn_with_k_larger_than_items() {
        let pts = grid_points(3, 3);
        let tree = RTree::bulk_load(pts);
        let res = tree.knn(Vec2::new(0.0, 0.0), 100);
        assert_eq!(res.len(), 9);
    }

    #[test]
    fn segment_knn_uses_perpendicular_distance() {
        // A long segment passing near the query must beat a point-segment
        // whose endpoints are closer in bbox terms but farther in geometry.
        let segs = vec![
            IndexedSegment {
                id: 0,
                line: SegLine::new(Vec2::new(-100.0, 1.0), Vec2::new(100.0, 1.0)),
            },
            IndexedSegment { id: 1, line: SegLine::new(Vec2::new(5.0, 5.0), Vec2::new(6.0, 6.0)) },
        ];
        let tree = RTree::bulk_load(segs);
        let res = tree.knn(Vec2::new(0.0, 0.0), 2);
        assert_eq!(tree.item(res[0].item).id, 0);
        assert!((res[0].dist - 1.0).abs() < 1e-12);
    }

    #[test]
    fn range_query_matches_filter() {
        let pts = grid_points(10, 10);
        let tree = RTree::bulk_load(pts.clone());
        let range = BBox::of_points(&[Vec2::new(15.0, 15.0), Vec2::new(55.0, 35.0)]);
        let mut got = tree.query_bbox(&range);
        got.sort_unstable();
        let mut want: Vec<u32> =
            (0..pts.len() as u32).filter(|&i| range.contains(pts[i as usize])).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn knn_into_reuses_buffers_and_matches_knn() {
        let pts = grid_points(20, 20);
        let tree = RTree::bulk_load(pts);
        let mut scratch = KnnScratch::new();
        let mut out = Vec::new();
        for (qi, q) in [
            Vec2::new(33.0, 71.0),
            Vec2::new(-5.0, -5.0),
            Vec2::new(250.0, 100.0),
            Vec2::new(95.0, 95.0),
        ]
        .into_iter()
        .enumerate()
        {
            let k = 3 + qi * 4;
            tree.knn_into(q, k, &mut scratch, &mut out);
            let fresh = tree.knn(q, k);
            assert_eq!(out.len(), fresh.len());
            for (a, b) in out.iter().zip(&fresh) {
                assert_eq!(a.item, b.item, "scratch reuse changed results at {q:?}");
                assert!((a.dist - b.dist).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn knn_prunes_but_stays_exact_with_duplicated_distances() {
        // Many tied distances stress the `>` (keep ties) pruning condition.
        let mut pts = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                pts.push(Vec2::new(f64::from(i % 4) * 10.0, f64::from(j % 4) * 10.0));
            }
        }
        let tree = RTree::bulk_load_with_capacity(pts.clone(), 4);
        let q = Vec2::new(14.0, 14.0);
        let got = tree.knn(q, 20);
        assert_eq!(got.len(), 20);
        let want = brute_knn(&pts, q, 20);
        for (g, w) in got.iter().zip(want.iter()) {
            let dg = pts[g.item as usize].dist(q);
            let dw = pts[*w as usize].dist(q);
            assert!((dg - dw).abs() < 1e-9, "tied-distance pruning broke exactness");
        }
    }

    #[test]
    fn knn_with_ties_emits_every_member_of_the_tie_group() {
        // 4 distinct positions, each duplicated 9 times: any k that cuts
        // through a tie group must still return the whole group.
        let mut pts = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                pts.push(Vec2::new(f64::from(i % 2) * 10.0, f64::from(j % 2) * 10.0));
            }
        }
        let tree = RTree::bulk_load_with_capacity(pts.clone(), 4);
        let q = Vec2::new(1.0, 1.0);
        let mut scratch = KnnScratch::new();
        let mut out = Vec::new();
        for k in [1usize, 5, 36, 37, 100] {
            tree.knn_with_ties_into(q, k, &mut scratch, &mut out);
            assert!(out.len() >= k.min(pts.len()), "k={k} returned {}", out.len());
            for w in out.windows(2) {
                assert!(w[0].dist <= w[1].dist + 1e-12);
            }
            let kth = out[k.min(out.len()) - 1].dist;
            // Every item at distance <= kth is present (ties inclusive).
            let expect = pts.iter().filter(|p| p.dist(q) <= kth + 1e-12).count();
            assert_eq!(out.len(), expect, "k={k} missed tied items");
        }
        // Plain knn_into agrees on the distance sequence of its k items.
        let mut plain = Vec::new();
        tree.knn_into(q, 40, &mut scratch, &mut plain);
        tree.knn_with_ties_into(q, 40, &mut scratch, &mut out);
        for (a, b) in plain.iter().zip(&out) {
            assert!((a.dist - b.dist).abs() < 1e-12);
        }
    }

    #[test]
    fn tree_height_grows_logarithmically() {
        let tree = RTree::bulk_load_with_capacity(grid_points(40, 40), 4);
        // 1600 items, fanout 4 → height around log4(400) + 1 ≈ 5-7.
        let h = tree.height();
        assert!((4..=8).contains(&h), "height {h}");
    }
}
