//! Synthetic city generator.
//!
//! Stands in for the paper's OpenStreetMap extracts (PT/XA/BJ/CD, Table II).
//! The generator produces a jittered grid with arterial/collector/local
//! classes, optional diagonal shortcuts, random edge deletions and one-way
//! conversions, then keeps the largest strongly connected component so every
//! origin–destination pair used by the trajectory generator is routable.
//!
//! The knobs mirror what actually matters to map matching and recovery:
//! block size (how close parallel candidate segments are — the source of
//! matching ambiguity), irregularity, one-way share, and network scale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trmma_geom::Vec2;

use crate::graph::{NodeId, RoadClass, RoadNetwork};

/// Parameters of the synthetic city.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Grid columns (west–east intersections).
    pub nx: usize,
    /// Grid rows (south–north intersections).
    pub ny: usize,
    /// Nominal block edge length in metres.
    pub spacing_m: f64,
    /// Node position jitter as a fraction of spacing (0 = perfect grid).
    pub jitter_frac: f64,
    /// Probability of deleting a candidate street.
    pub p_delete: f64,
    /// Probability of adding a diagonal shortcut in a block.
    pub p_diagonal: f64,
    /// Probability that a street is one-way.
    pub p_oneway: f64,
    /// Every `arterial_every`-th row/column becomes an arterial.
    pub arterial_every: usize,
    /// RNG seed — generation is fully deterministic given the config.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            nx: 16,
            ny: 16,
            spacing_m: 180.0,
            jitter_frac: 0.15,
            p_delete: 0.08,
            p_diagonal: 0.05,
            p_oneway: 0.15,
            arterial_every: 5,
            seed: 42,
        }
    }
}

impl NetworkConfig {
    /// Convenience constructor for an `nx × ny` city with a given seed.
    #[must_use]
    pub fn with_size(nx: usize, ny: usize, seed: u64) -> Self {
        Self { nx, ny, seed, ..Self::default() }
    }
}

/// Generates a synthetic road network per `cfg` (see module docs).
///
/// The result is strongly connected: the raw generated graph is pruned to
/// its largest SCC, so any segment can reach any other.
#[must_use]
pub fn generate_city(cfg: &NetworkConfig) -> RoadNetwork {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (nx, ny) = (cfg.nx.max(2), cfg.ny.max(2));
    let node_id = |i: usize, j: usize| NodeId((j * nx + i) as u32);

    // Jittered node grid.
    let mut pos = Vec::with_capacity(nx * ny);
    for j in 0..ny {
        for i in 0..nx {
            let jx: f64 = rng.gen_range(-1.0..1.0) * cfg.jitter_frac * cfg.spacing_m;
            let jy: f64 = rng.gen_range(-1.0..1.0) * cfg.jitter_frac * cfg.spacing_m;
            pos.push(Vec2::new(i as f64 * cfg.spacing_m + jx, j as f64 * cfg.spacing_m + jy));
        }
    }

    let class_of = |i: usize, j: usize, horizontal: bool| -> RoadClass {
        let every = cfg.arterial_every.max(2);
        let line = if horizontal { j } else { i };
        if line % every == 0 {
            RoadClass::Arterial
        } else if line % 2 == 0 {
            RoadClass::Collector
        } else {
            RoadClass::Local
        }
    };

    let mut edges: Vec<(NodeId, NodeId, RoadClass)> = Vec::new();
    let mut push_street =
        |rng: &mut StdRng, a: NodeId, b: NodeId, class: RoadClass, deletable: bool| {
            if deletable && rng.gen::<f64>() < cfg.p_delete {
                return;
            }
            if rng.gen::<f64>() < cfg.p_oneway {
                if rng.gen::<bool>() {
                    edges.push((a, b, class));
                } else {
                    edges.push((b, a, class));
                }
            } else {
                edges.push((a, b, class));
                edges.push((b, a, class));
            }
        };

    for j in 0..ny {
        for i in 0..nx {
            // Horizontal street to the east neighbour. Arterials are never
            // deleted so the backbone stays connected.
            if i + 1 < nx {
                let class = class_of(i, j, true);
                push_street(
                    &mut rng,
                    node_id(i, j),
                    node_id(i + 1, j),
                    class,
                    class != RoadClass::Arterial,
                );
            }
            // Vertical street to the north neighbour.
            if j + 1 < ny {
                let class = class_of(i, j, false);
                push_street(
                    &mut rng,
                    node_id(i, j),
                    node_id(i, j + 1),
                    class,
                    class != RoadClass::Arterial,
                );
            }
            // Occasional diagonal shortcut across the block.
            if i + 1 < nx && j + 1 < ny && rng.gen::<f64>() < cfg.p_diagonal {
                push_street(
                    &mut rng,
                    node_id(i, j),
                    node_id(i + 1, j + 1),
                    RoadClass::Local,
                    false,
                );
            }
        }
    }

    let raw = RoadNetwork::new(pos, edges);
    let (core, _) = raw.largest_scc();
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortest::{node_dist, Weight};

    #[test]
    fn generation_is_deterministic() {
        let cfg = NetworkConfig::with_size(8, 8, 123);
        let a = generate_city(&cfg);
        let b = generate_city(&cfg);
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_segments(), b.num_segments());
        for (x, y) in a.segments().iter().zip(b.segments().iter()) {
            assert_eq!(x.from, y.from);
            assert_eq!(x.to, y.to);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_city(&NetworkConfig::with_size(8, 8, 1));
        let b = generate_city(&NetworkConfig::with_size(8, 8, 2));
        // Node counts may coincide, but segment sets should not be identical.
        let same = a.num_segments() == b.num_segments()
            && a.segments()
                .iter()
                .zip(b.segments().iter())
                .all(|(x, y)| x.from == y.from && x.to == y.to);
        assert!(!same);
    }

    #[test]
    fn network_is_strongly_connected() {
        let net = generate_city(&NetworkConfig::with_size(10, 10, 9));
        let first = NodeId(0);
        let last = NodeId((net.num_nodes() - 1) as u32);
        assert!(node_dist(&net, first, last, Weight::Length, f64::INFINITY).is_some());
        assert!(node_dist(&net, last, first, Weight::Length, f64::INFINITY).is_some());
    }

    #[test]
    fn scale_tracks_config() {
        let small = generate_city(&NetworkConfig::with_size(6, 6, 3));
        let large = generate_city(&NetworkConfig::with_size(20, 20, 3));
        assert!(large.num_segments() > 4 * small.num_segments());
        assert!(small.num_segments() > 30);
    }

    #[test]
    fn has_all_road_classes() {
        let net = generate_city(&NetworkConfig::with_size(12, 12, 5));
        let mut classes: Vec<RoadClass> = net.segments().iter().map(|s| s.class).collect();
        classes.dedup();
        let has = |c: RoadClass| net.segments().iter().any(|s| s.class == c);
        assert!(has(RoadClass::Arterial));
        assert!(has(RoadClass::Collector));
        assert!(has(RoadClass::Local));
    }

    #[test]
    fn segment_lengths_near_spacing() {
        let cfg = NetworkConfig {
            jitter_frac: 0.0,
            p_diagonal: 0.0,
            ..NetworkConfig::with_size(6, 6, 3)
        };
        let net = generate_city(&cfg);
        for s in net.segments() {
            assert!((s.length - cfg.spacing_m).abs() < 1e-6, "len {}", s.length);
        }
    }
}
