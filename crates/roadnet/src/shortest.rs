//! Shortest paths on the road network.
//!
//! Provides the primitives used throughout the pipeline:
//!
//! * early-exit Dijkstra between nodes ([`node_dist`], [`node_path`]),
//! * bounded single-source sweeps ([`bounded_sssp`]) — the building block of
//!   FMM's upper-bounded origin-destination table,
//! * network distance between map-matched points ([`matched_dist`]) — the
//!   `d(a_i, â_i)` of the MAE/RMSE metric (Eq. 22),
//! * a concurrency-safe memo ([`DistCache`]) so metric evaluation and HMM
//!   transition probabilities do not recompute identical node pairs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Mutex, RwLock};

use crate::graph::{NodeId, RoadNetwork, SegmentId};

/// Which edge weight a search should minimise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Weight {
    /// Segment length in metres.
    Length,
    /// Free-flow travel time in seconds.
    Time,
}

impl Weight {
    fn of(self, net: &RoadNetwork, seg: SegmentId) -> f64 {
        let s = net.segment(seg);
        match self {
            Weight::Length => s.length,
            Weight::Time => s.travel_time_s(),
        }
    }
}

#[derive(Debug, PartialEq)]
struct QueueItem {
    dist: f64,
    node: u32,
}

impl Eq for QueueItem {}
impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> Ordering {
        other.dist.partial_cmp(&self.dist).unwrap_or(Ordering::Equal)
    }
}
impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Shortest distance from `src` to `dst` under `weight`, early-exiting once
/// the target is settled. `max_cost` bounds the search radius; `None` is
/// returned when `dst` is unreachable within the bound.
#[must_use]
pub fn node_dist(
    net: &RoadNetwork,
    src: NodeId,
    dst: NodeId,
    weight: Weight,
    max_cost: f64,
) -> Option<f64> {
    if src == dst {
        return Some(0.0);
    }
    let mut dist: HashMap<u32, f64> = HashMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(src.0, 0.0);
    heap.push(QueueItem { dist: 0.0, node: src.0 });
    while let Some(QueueItem { dist: d, node }) = heap.pop() {
        if node == dst.0 {
            return Some(d);
        }
        if d > *dist.get(&node).unwrap_or(&f64::INFINITY) {
            continue;
        }
        for &seg in net.out_segments(NodeId(node)) {
            let nd = d + weight.of(net, seg);
            if nd > max_cost {
                continue;
            }
            let to = net.segment(seg).to.0;
            if nd < *dist.get(&to).unwrap_or(&f64::INFINITY) {
                dist.insert(to, nd);
                heap.push(QueueItem { dist: nd, node: to });
            }
        }
    }
    None
}

/// Shortest path from `src` to `dst` as a segment sequence, with its cost.
#[must_use]
pub fn node_path(
    net: &RoadNetwork,
    src: NodeId,
    dst: NodeId,
    weight: Weight,
    max_cost: f64,
) -> Option<(f64, Vec<SegmentId>)> {
    if src == dst {
        return Some((0.0, Vec::new()));
    }
    let mut dist: HashMap<u32, f64> = HashMap::new();
    let mut prev: HashMap<u32, SegmentId> = HashMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(src.0, 0.0);
    heap.push(QueueItem { dist: 0.0, node: src.0 });
    while let Some(QueueItem { dist: d, node }) = heap.pop() {
        if node == dst.0 {
            let mut path = Vec::new();
            let mut cur = dst.0;
            while cur != src.0 {
                let seg = prev[&cur];
                path.push(seg);
                cur = net.segment(seg).from.0;
            }
            path.reverse();
            return Some((d, path));
        }
        if d > *dist.get(&node).unwrap_or(&f64::INFINITY) {
            continue;
        }
        for &seg in net.out_segments(NodeId(node)) {
            let nd = d + weight.of(net, seg);
            if nd > max_cost {
                continue;
            }
            let to = net.segment(seg).to.0;
            if nd < *dist.get(&to).unwrap_or(&f64::INFINITY) {
                dist.insert(to, nd);
                prev.insert(to, seg);
                heap.push(QueueItem { dist: nd, node: to });
            }
        }
    }
    None
}

/// Shortest path under an arbitrary per-segment cost function (must be
/// strictly positive). Used by the trajectory generator to diversify routes
/// by randomly perturbing free-flow travel times per trip.
#[must_use]
pub fn node_path_by(
    net: &RoadNetwork,
    src: NodeId,
    dst: NodeId,
    cost: impl Fn(SegmentId) -> f64,
) -> Option<(f64, Vec<SegmentId>)> {
    if src == dst {
        return Some((0.0, Vec::new()));
    }
    let mut dist: HashMap<u32, f64> = HashMap::new();
    let mut prev: HashMap<u32, SegmentId> = HashMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(src.0, 0.0);
    heap.push(QueueItem { dist: 0.0, node: src.0 });
    while let Some(QueueItem { dist: d, node }) = heap.pop() {
        if node == dst.0 {
            let mut path = Vec::new();
            let mut cur = dst.0;
            while cur != src.0 {
                let seg = prev[&cur];
                path.push(seg);
                cur = net.segment(seg).from.0;
            }
            path.reverse();
            return Some((d, path));
        }
        if d > *dist.get(&node).unwrap_or(&f64::INFINITY) {
            continue;
        }
        for &seg in net.out_segments(NodeId(node)) {
            let w = cost(seg);
            debug_assert!(w > 0.0, "costs must be positive");
            let nd = d + w;
            let to = net.segment(seg).to.0;
            if nd < *dist.get(&to).unwrap_or(&f64::INFINITY) {
                dist.insert(to, nd);
                prev.insert(to, seg);
                heap.push(QueueItem { dist: nd, node: to });
            }
        }
    }
    None
}

/// A* shortest path under the length weight, using the straight-line
/// distance to the target as the (admissible, consistent) heuristic.
///
/// Returns the same answers as [`node_path`] with `Weight::Length`, while
/// settling substantially fewer states on spread-out queries — useful for
/// latency-sensitive call sites such as interactive route planning.
#[must_use]
pub fn astar_path(
    net: &RoadNetwork,
    src: NodeId,
    dst: NodeId,
    max_cost: f64,
) -> Option<(f64, Vec<SegmentId>)> {
    if src == dst {
        return Some((0.0, Vec::new()));
    }
    let goal = net.node_pos(dst);
    let h = |n: u32| net.node_pos(NodeId(n)).dist(goal);
    let mut dist: HashMap<u32, f64> = HashMap::new();
    let mut prev: HashMap<u32, SegmentId> = HashMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(src.0, 0.0);
    heap.push(QueueItem { dist: h(src.0), node: src.0 });
    while let Some(QueueItem { dist: f, node }) = heap.pop() {
        let g = dist.get(&node).copied().unwrap_or(f64::INFINITY);
        if node == dst.0 {
            let mut path = Vec::new();
            let mut cur = dst.0;
            while cur != src.0 {
                let seg = prev[&cur];
                path.push(seg);
                cur = net.segment(seg).from.0;
            }
            path.reverse();
            return Some((g, path));
        }
        if f > g + h(node) + 1e-9 {
            continue; // stale entry
        }
        for &seg in net.out_segments(NodeId(node)) {
            let ng = g + net.segment(seg).length;
            if ng > max_cost {
                continue;
            }
            let to = net.segment(seg).to.0;
            if ng < *dist.get(&to).unwrap_or(&f64::INFINITY) {
                dist.insert(to, ng);
                prev.insert(to, seg);
                heap.push(QueueItem { dist: ng + h(to), node: to });
            }
        }
    }
    None
}

/// Bidirectional Dijkstra for the length weight: alternating forward and
/// backward sweeps that stop once the frontiers provably bracket the
/// optimum. Equivalent to [`node_dist`] but explores roughly half the
/// states on large networks.
#[must_use]
pub fn bidirectional_dist(
    net: &RoadNetwork,
    src: NodeId,
    dst: NodeId,
    max_cost: f64,
) -> Option<f64> {
    if src == dst {
        return Some(0.0);
    }
    let mut df: HashMap<u32, f64> = HashMap::new();
    let mut db: HashMap<u32, f64> = HashMap::new();
    let mut hf = BinaryHeap::new();
    let mut hb = BinaryHeap::new();
    df.insert(src.0, 0.0);
    db.insert(dst.0, 0.0);
    hf.push(QueueItem { dist: 0.0, node: src.0 });
    hb.push(QueueItem { dist: 0.0, node: dst.0 });
    let mut best = f64::INFINITY;
    loop {
        let top_f = hf.peek().map_or(f64::INFINITY, |q| q.dist);
        let top_b = hb.peek().map_or(f64::INFINITY, |q| q.dist);
        if top_f + top_b >= best || (top_f == f64::INFINITY && top_b == f64::INFINITY) {
            break;
        }
        if top_f <= top_b {
            if let Some(QueueItem { dist: d, node }) = hf.pop() {
                if d > *df.get(&node).unwrap_or(&f64::INFINITY) {
                    continue;
                }
                if let Some(&bd) = db.get(&node) {
                    best = best.min(d + bd);
                }
                for &seg in net.out_segments(NodeId(node)) {
                    let nd = d + net.segment(seg).length;
                    if nd > max_cost {
                        continue;
                    }
                    let to = net.segment(seg).to.0;
                    if nd < *df.get(&to).unwrap_or(&f64::INFINITY) {
                        df.insert(to, nd);
                        hf.push(QueueItem { dist: nd, node: to });
                    }
                }
            }
        } else if let Some(QueueItem { dist: d, node }) = hb.pop() {
            if d > *db.get(&node).unwrap_or(&f64::INFINITY) {
                continue;
            }
            if let Some(&fd) = df.get(&node) {
                best = best.min(d + fd);
            }
            for &seg in net.in_segments(NodeId(node)) {
                let nd = d + net.segment(seg).length;
                if nd > max_cost {
                    continue;
                }
                let from = net.segment(seg).from.0;
                if nd < *db.get(&from).unwrap_or(&f64::INFINITY) {
                    db.insert(from, nd);
                    hb.push(QueueItem { dist: nd, node: from });
                }
            }
        }
    }
    if best.is_finite() && best <= max_cost {
        Some(best)
    } else {
        None
    }
}

/// All nodes reachable from `src` within `delta` (inclusive), with their
/// distances. This bounded sweep is the kernel of FMM's UBODT precomputation.
#[must_use]
pub fn bounded_sssp(
    net: &RoadNetwork,
    src: NodeId,
    weight: Weight,
    delta: f64,
) -> Vec<(NodeId, f64)> {
    let mut pool = SsspPool::new();
    let mut out = Vec::new();
    pool.bounded_sssp_into(net, src, weight, delta, &mut out);
    out
}

/// Reusable single-source shortest-path state: the tentative-distance map
/// and the priority queue of Dijkstra, kept allocated between searches.
///
/// Transition lookups in a batch of trajectories run thousands of small
/// bounded sweeps over the same network; clearing a warm `HashMap` and
/// `BinaryHeap` is far cheaper than reallocating them per query.
/// [`bounded_sssp`] and [`DistCache`] both run their searches through a
/// pool, so only cache *misses* pay for a sweep at all — and even those
/// reuse warm buffers.
#[derive(Debug, Default)]
pub struct SsspPool {
    dist: HashMap<u32, f64>,
    heap: BinaryHeap<QueueItem>,
}

impl SsspPool {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn clear(&mut self) {
        self.dist.clear();
        self.heap.clear();
    }

    /// Early-exit Dijkstra from `src` to `dst` reusing the pool's buffers.
    /// Same contract as [`node_dist`].
    #[must_use]
    pub fn node_dist(
        &mut self,
        net: &RoadNetwork,
        src: NodeId,
        dst: NodeId,
        weight: Weight,
        max_cost: f64,
    ) -> Option<f64> {
        if src == dst {
            return Some(0.0);
        }
        self.clear();
        self.dist.insert(src.0, 0.0);
        self.heap.push(QueueItem { dist: 0.0, node: src.0 });
        while let Some(QueueItem { dist: d, node }) = self.heap.pop() {
            if node == dst.0 {
                return Some(d);
            }
            if d > *self.dist.get(&node).unwrap_or(&f64::INFINITY) {
                continue;
            }
            for &seg in net.out_segments(NodeId(node)) {
                let nd = d + weight.of(net, seg);
                if nd > max_cost {
                    continue;
                }
                let to = net.segment(seg).to.0;
                if nd < *self.dist.get(&to).unwrap_or(&f64::INFINITY) {
                    self.dist.insert(to, nd);
                    self.heap.push(QueueItem { dist: nd, node: to });
                }
            }
        }
        None
    }

    /// Bounded sweep from `src`, writing `(node, dist)` pairs sorted by node
    /// id into `out` (cleared first). Same contract as [`bounded_sssp`].
    pub fn bounded_sssp_into(
        &mut self,
        net: &RoadNetwork,
        src: NodeId,
        weight: Weight,
        delta: f64,
        out: &mut Vec<(NodeId, f64)>,
    ) {
        self.clear();
        self.dist.insert(src.0, 0.0);
        self.heap.push(QueueItem { dist: 0.0, node: src.0 });
        while let Some(QueueItem { dist: d, node }) = self.heap.pop() {
            if d > *self.dist.get(&node).unwrap_or(&f64::INFINITY) {
                continue;
            }
            for &seg in net.out_segments(NodeId(node)) {
                let nd = d + weight.of(net, seg);
                if nd > delta {
                    continue;
                }
                let to = net.segment(seg).to.0;
                if nd < *self.dist.get(&to).unwrap_or(&f64::INFINITY) {
                    self.dist.insert(to, nd);
                    self.heap.push(QueueItem { dist: nd, node: to });
                }
            }
        }
        out.clear();
        out.extend(self.dist.iter().map(|(&n, &d)| (NodeId(n), d)));
        out.sort_by_key(|e| e.0);
    }
}

/// A position on the network: segment plus position ratio (Definition 5,
/// without the timestamp).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetPos {
    /// The segment the position lies on.
    pub seg: SegmentId,
    /// Position ratio in `[0, 1)` from the segment entrance.
    pub ratio: f64,
}

impl NetPos {
    /// Creates a position, clamping the ratio into `[0, 1]`.
    #[must_use]
    pub fn new(seg: SegmentId, ratio: f64) -> Self {
        Self { seg, ratio: ratio.clamp(0.0, 1.0) }
    }
}

/// Directed network distance from `a` to `b` in metres: remaining length of
/// `a`'s segment, plus the shortest node path, plus the offset into `b`'s
/// segment. Same-segment forward moves are handled directly.
#[must_use]
pub fn matched_dist_directed(
    net: &RoadNetwork,
    a: NetPos,
    b: NetPos,
    max_cost: f64,
    cache: Option<&DistCache>,
) -> Option<f64> {
    let sa = net.segment(a.seg);
    let sb = net.segment(b.seg);
    if a.seg == b.seg && b.ratio >= a.ratio {
        return Some((b.ratio - a.ratio) * sa.length);
    }
    let head = (1.0 - a.ratio) * sa.length;
    let tail = b.ratio * sb.length;
    let mid = match cache {
        Some(c) => c.node_dist(net, sa.to, sb.from, max_cost)?,
        None => node_dist(net, sa.to, sb.from, Weight::Length, max_cost)?,
    };
    Some(head + mid + tail)
}

/// Symmetric network distance between two map-matched positions: the smaller
/// of the two directed distances, falling back to straight-line distance when
/// neither direction is reachable within `max_cost` (disconnected pairs are
/// penalised by geometry rather than dropped, matching how evaluation code
/// treats them).
#[must_use]
pub fn matched_dist(
    net: &RoadNetwork,
    a: NetPos,
    b: NetPos,
    max_cost: f64,
    cache: Option<&DistCache>,
) -> f64 {
    let fwd = matched_dist_directed(net, a, b, max_cost, cache);
    let bwd = matched_dist_directed(net, b, a, max_cost, cache);
    match (fwd, bwd) {
        (Some(x), Some(y)) => x.min(y),
        (Some(x), None) | (None, Some(x)) => x,
        (None, None) => {
            let pa = net.segment(a.seg).line.point_at(a.ratio);
            let pb = net.segment(b.seg).line.point_at(b.ratio);
            pa.dist(pb)
        }
    }
}

/// A thread-safe memo of node-to-node shortest distances.
///
/// Both metric evaluation (Eq. 22 is computed for every recovered point) and
/// HMM transition probabilities hammer the same node pairs; the cache turns
/// repeated Dijkstra runs into hash lookups. Misses within `max_cost` are
/// cached as `+∞` so unreachable pairs are not retried.
///
/// Misses run through a caller-supplied [`SsspPool`]
/// ([`DistCache::node_dist_pooled`] — one pool per batch worker), or through
/// an internal pool behind a mutex for callers without their own
/// ([`DistCache::node_dist`]). Either way the Dijkstra state stays warm
/// across the many small sweeps a batch of lookups triggers, and hits touch
/// nothing but the read lock.
#[derive(Debug, Default)]
pub struct DistCache {
    map: RwLock<HashMap<(u32, u32), f64>>,
    pool: Mutex<SsspPool>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Hit/miss counters of a [`DistCache`]; see [`DistCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that ran a Dijkstra sweep.
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups observed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }
}

impl DistCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached shortest length-weighted distance between nodes.
    #[must_use]
    pub fn node_dist(
        &self,
        net: &RoadNetwork,
        src: NodeId,
        dst: NodeId,
        max_cost: f64,
    ) -> Option<f64> {
        if let Some(&d) = self.map.read().expect("dist cache poisoned").get(&(src.0, dst.0)) {
            self.hits.fetch_add(1, AtomicOrdering::Relaxed);
            return if d.is_finite() { Some(d) } else { None };
        }
        let d = self.pool.lock().expect("sssp pool poisoned").node_dist(
            net,
            src,
            dst,
            Weight::Length,
            max_cost,
        );
        self.record_miss(src, dst, d);
        d
    }

    /// Cached shortest length-weighted distance between nodes, running any
    /// miss through the caller's own [`SsspPool`] instead of the cache's
    /// internal (mutex-guarded) one.
    ///
    /// This is the batch-engine read-through: workers share one cache but
    /// each owns a pool, so concurrent misses run concurrent sweeps instead
    /// of serialising on the internal pool's lock. Distances are a pure
    /// function of the network, so racing misses on the same pair insert
    /// the same value — answers never depend on interleaving.
    #[must_use]
    pub fn node_dist_pooled(
        &self,
        net: &RoadNetwork,
        src: NodeId,
        dst: NodeId,
        max_cost: f64,
        pool: &mut SsspPool,
    ) -> Option<f64> {
        if let Some(&d) = self.map.read().expect("dist cache poisoned").get(&(src.0, dst.0)) {
            self.hits.fetch_add(1, AtomicOrdering::Relaxed);
            return if d.is_finite() { Some(d) } else { None };
        }
        let d = pool.node_dist(net, src, dst, Weight::Length, max_cost);
        self.record_miss(src, dst, d);
        d
    }

    fn record_miss(&self, src: NodeId, dst: NodeId, d: Option<f64>) {
        self.misses.fetch_add(1, AtomicOrdering::Relaxed);
        self.map
            .write()
            .expect("dist cache poisoned")
            .insert((src.0, dst.0), d.unwrap_or(f64::INFINITY));
    }

    /// Hit/miss counters so far. `hits + misses` equals the number of
    /// lookups; racing misses on one pair may each count as a miss, so
    /// `misses` can exceed [`DistCache::len`] but never undercounts it.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(AtomicOrdering::Relaxed),
            misses: self.misses.load(AtomicOrdering::Relaxed),
        }
    }

    /// Number of cached pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.read().expect("dist cache poisoned").len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.read().expect("dist cache poisoned").is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadClass;
    use trmma_geom::Vec2;

    /// A 3x1 bidirectional line: 0 -100m- 1 -100m- 2.
    fn line3() -> RoadNetwork {
        let pos = vec![Vec2::new(0.0, 0.0), Vec2::new(100.0, 0.0), Vec2::new(200.0, 0.0)];
        let mut edges = Vec::new();
        for (a, b) in [(0, 1), (1, 2)] {
            edges.push((NodeId(a), NodeId(b), RoadClass::Local));
            edges.push((NodeId(b), NodeId(a), RoadClass::Local));
        }
        RoadNetwork::new(pos, edges)
    }

    fn seg(net: &RoadNetwork, from: u32, to: u32) -> SegmentId {
        net.segment_ids()
            .find(|&i| net.segment(i).from == NodeId(from) && net.segment(i).to == NodeId(to))
            .unwrap()
    }

    #[test]
    fn node_dist_on_line() {
        let net = line3();
        assert_eq!(node_dist(&net, NodeId(0), NodeId(0), Weight::Length, 1e9), Some(0.0));
        let d = node_dist(&net, NodeId(0), NodeId(2), Weight::Length, 1e9).unwrap();
        assert!((d - 200.0).abs() < 1e-9);
    }

    #[test]
    fn node_dist_respects_bound() {
        let net = line3();
        assert_eq!(node_dist(&net, NodeId(0), NodeId(2), Weight::Length, 150.0), None);
        assert!(node_dist(&net, NodeId(0), NodeId(2), Weight::Length, 200.0).is_some());
    }

    #[test]
    fn node_path_reconstructs_segments() {
        let net = line3();
        let (d, path) = node_path(&net, NodeId(0), NodeId(2), Weight::Length, 1e9).unwrap();
        assert!((d - 200.0).abs() < 1e-9);
        assert_eq!(path, vec![seg(&net, 0, 1), seg(&net, 1, 2)]);
        assert!(net.is_path(&path));
    }

    #[test]
    fn bounded_sssp_collects_reachable() {
        let net = line3();
        let within_150 = bounded_sssp(&net, NodeId(0), Weight::Length, 150.0);
        let nodes: Vec<u32> = within_150.iter().map(|(n, _)| n.0).collect();
        assert_eq!(nodes, vec![0, 1]);
        let all = bounded_sssp(&net, NodeId(0), Weight::Length, 1e9);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn matched_dist_same_segment() {
        let net = line3();
        let e = seg(&net, 0, 1);
        let a = NetPos::new(e, 0.2);
        let b = NetPos::new(e, 0.7);
        let d = matched_dist(&net, a, b, 1e9, None);
        assert!((d - 50.0).abs() < 1e-9);
        // Symmetric.
        assert!((matched_dist(&net, b, a, 1e9, None) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn matched_dist_across_segments() {
        let net = line3();
        let e01 = seg(&net, 0, 1);
        let e12 = seg(&net, 1, 2);
        let a = NetPos::new(e01, 0.5); // 50 m before node 1
        let b = NetPos::new(e12, 0.25); // 25 m after node 1
        let d = matched_dist(&net, a, b, 1e9, None);
        assert!((d - 75.0).abs() < 1e-9, "d = {d}");
    }

    #[test]
    fn matched_dist_uses_twin_direction() {
        // From a point on 1->0 to a point on 0->1: the directed distance must
        // route through a node; the symmetric min picks the cheap direction.
        let net = line3();
        let e01 = seg(&net, 0, 1);
        let e10 = seg(&net, 1, 0);
        let a = NetPos::new(e10, 0.5);
        let b = NetPos::new(e01, 0.5);
        let d = matched_dist(&net, a, b, 1e9, None);
        // a is at x=50 heading west, b at x=50 heading east; the best directed
        // route is 50 m to a shared node plus 50 m back.
        assert!((d - 100.0).abs() < 1e-9, "d = {d}");
    }

    #[test]
    fn astar_matches_dijkstra() {
        let net = crate::gen::generate_city(&crate::gen::NetworkConfig::with_size(8, 8, 33));
        for (s, d) in [(0u32, 40u32), (5, 60), (12, 12), (63, 2)] {
            let m = net.num_nodes() as u32;
            let (src, dst) = (NodeId(s % m), NodeId(d % m));
            let dij = node_path(&net, src, dst, Weight::Length, f64::INFINITY);
            let ast = astar_path(&net, src, dst, f64::INFINITY);
            match (dij, ast) {
                (Some((cd, pd)), Some((ca, pa))) => {
                    assert!((cd - ca).abs() < 1e-9, "{src:?}->{dst:?}: {cd} vs {ca}");
                    assert!(net.is_path(&pa));
                    // Paths may differ on ties; costs must not.
                    let len_a: f64 = pa.iter().map(|&e| net.segment(e).length).sum();
                    let len_d: f64 = pd.iter().map(|&e| net.segment(e).length).sum();
                    assert!((len_a - len_d).abs() < 1e-9);
                }
                (None, None) => {}
                other => panic!("dijkstra/astar disagree on reachability: {other:?}"),
            }
        }
    }

    #[test]
    fn bidirectional_matches_dijkstra() {
        let net = crate::gen::generate_city(&crate::gen::NetworkConfig::with_size(8, 8, 34));
        let m = net.num_nodes() as u32;
        for (s, d) in [(0u32, 50u32), (7, 19), (22, 22), (61, 3), (14, 59)] {
            let (src, dst) = (NodeId(s % m), NodeId(d % m));
            let a = node_dist(&net, src, dst, Weight::Length, f64::INFINITY);
            let b = bidirectional_dist(&net, src, dst, f64::INFINITY);
            match (a, b) {
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9, "{src:?}->{dst:?}"),
                (None, None) => {}
                other => panic!("reachability mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn astar_respects_bound() {
        let net = line3();
        assert!(astar_path(&net, NodeId(0), NodeId(2), 150.0).is_none());
        assert!(astar_path(&net, NodeId(0), NodeId(2), 250.0).is_some());
        assert!(bidirectional_dist(&net, NodeId(0), NodeId(2), 150.0).is_none());
    }

    #[test]
    fn sssp_pool_matches_fresh_searches() {
        let net = crate::gen::generate_city(&crate::gen::NetworkConfig::with_size(7, 7, 12));
        let m = net.num_nodes() as u32;
        let mut pool = SsspPool::new();
        for (s, d) in [(0u32, 30u32), (5, 11), (40, 2), (3, 3), (17, 44)] {
            let (src, dst) = (NodeId(s % m), NodeId(d % m));
            let fresh = node_dist(&net, src, dst, Weight::Length, f64::INFINITY);
            let pooled = pool.node_dist(&net, src, dst, Weight::Length, f64::INFINITY);
            assert_eq!(fresh, pooled, "{src:?}->{dst:?}");
        }
        // Bounded sweeps agree with the allocating variant across reuses.
        let mut out = Vec::new();
        for src in [NodeId(0), NodeId(9), NodeId(20)] {
            pool.bounded_sssp_into(&net, src, Weight::Length, 700.0, &mut out);
            assert_eq!(out, bounded_sssp(&net, src, Weight::Length, 700.0));
        }
    }

    #[test]
    fn dist_cache_pooled_misses_agree_with_plain_dijkstra() {
        // DistCache misses run through its internal pool; answers must match
        // fresh searches across many consecutive misses (warm-buffer reuse).
        let net = crate::gen::generate_city(&crate::gen::NetworkConfig::with_size(6, 6, 8));
        let cache = DistCache::new();
        let m = net.num_nodes() as u32;
        for (s, d) in [(0u32, 20u32), (3, 14), (7, 7), (11, 2), (5, 33)] {
            let (src, dst) = (NodeId(s % m), NodeId(d % m));
            let pooled = cache.node_dist(&net, src, dst, f64::INFINITY);
            let fresh = node_dist(&net, src, dst, Weight::Length, f64::INFINITY);
            assert_eq!(pooled, fresh, "{src:?}->{dst:?}");
        }
        assert_eq!(cache.len(), 5);
    }

    #[test]
    fn dist_cache_hits() {
        let net = line3();
        let cache = DistCache::new();
        let d1 = cache.node_dist(&net, NodeId(0), NodeId(2), 1e9).unwrap();
        let d2 = cache.node_dist(&net, NodeId(0), NodeId(2), 1e9).unwrap();
        assert_eq!(d1, d2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        // Unreachable-within-bound is cached as a miss, not retried forever.
        assert!(cache.node_dist(&net, NodeId(2), NodeId(0), 0.0).is_none());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().total(), 3);
    }

    #[test]
    fn dist_cache_pooled_shares_entries_with_internal_path() {
        let net = line3();
        let cache = DistCache::new();
        let mut pool = SsspPool::new();
        let miss = cache.node_dist_pooled(&net, NodeId(0), NodeId(2), 1e9, &mut pool);
        assert_eq!(miss, node_dist(&net, NodeId(0), NodeId(2), Weight::Length, 1e9));
        // The entry is visible to the internal-pool path and vice versa.
        assert_eq!(cache.node_dist(&net, NodeId(0), NodeId(2), 1e9), miss);
        let d = cache.node_dist(&net, NodeId(1), NodeId(2), 1e9);
        assert_eq!(cache.node_dist_pooled(&net, NodeId(1), NodeId(2), 1e9, &mut pool), d);
        assert_eq!(cache.stats(), CacheStats { hits: 2, misses: 2 });
    }
}
