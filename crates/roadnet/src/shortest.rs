//! Shortest paths on the road network.
//!
//! Provides the primitives used throughout the pipeline:
//!
//! * early-exit Dijkstra between nodes ([`node_dist`], [`node_path`]),
//! * bounded single-source sweeps ([`bounded_sssp`]) — the building block of
//!   FMM's upper-bounded origin-destination table,
//! * network distance between map-matched points ([`matched_dist`]) — the
//!   `d(a_i, â_i)` of the MAE/RMSE metric (Eq. 22),
//! * a concurrency-safe memo ([`DistCache`]) so metric evaluation and HMM
//!   transition probabilities do not recompute identical node pairs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Mutex, RwLock};

use crate::graph::{NodeId, RoadNetwork, SegmentId};

/// Which edge weight a search should minimise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Weight {
    /// Segment length in metres.
    Length,
    /// Free-flow travel time in seconds.
    Time,
}

impl Weight {
    fn of(self, net: &RoadNetwork, seg: SegmentId) -> f64 {
        let s = net.segment(seg);
        match self {
            Weight::Length => s.length,
            Weight::Time => s.travel_time_s(),
        }
    }
}

#[derive(Debug, PartialEq)]
struct QueueItem {
    dist: f64,
    node: u32,
}

impl Eq for QueueItem {}
impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> Ordering {
        other.dist.partial_cmp(&self.dist).unwrap_or(Ordering::Equal)
    }
}
impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Shortest distance from `src` to `dst` under `weight`, early-exiting once
/// the target is settled. `max_cost` bounds the search radius; `None` is
/// returned when `dst` is unreachable within the bound.
#[must_use]
pub fn node_dist(
    net: &RoadNetwork,
    src: NodeId,
    dst: NodeId,
    weight: Weight,
    max_cost: f64,
) -> Option<f64> {
    if src == dst {
        return Some(0.0);
    }
    let mut dist: HashMap<u32, f64> = HashMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(src.0, 0.0);
    heap.push(QueueItem { dist: 0.0, node: src.0 });
    while let Some(QueueItem { dist: d, node }) = heap.pop() {
        if node == dst.0 {
            return Some(d);
        }
        if d > *dist.get(&node).unwrap_or(&f64::INFINITY) {
            continue;
        }
        for &seg in net.out_segments(NodeId(node)) {
            let nd = d + weight.of(net, seg);
            if nd > max_cost {
                continue;
            }
            let to = net.segment(seg).to.0;
            if nd < *dist.get(&to).unwrap_or(&f64::INFINITY) {
                dist.insert(to, nd);
                heap.push(QueueItem { dist: nd, node: to });
            }
        }
    }
    None
}

/// Shortest path from `src` to `dst` as a segment sequence, with its cost.
#[must_use]
pub fn node_path(
    net: &RoadNetwork,
    src: NodeId,
    dst: NodeId,
    weight: Weight,
    max_cost: f64,
) -> Option<(f64, Vec<SegmentId>)> {
    if src == dst {
        return Some((0.0, Vec::new()));
    }
    let mut dist: HashMap<u32, f64> = HashMap::new();
    let mut prev: HashMap<u32, SegmentId> = HashMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(src.0, 0.0);
    heap.push(QueueItem { dist: 0.0, node: src.0 });
    while let Some(QueueItem { dist: d, node }) = heap.pop() {
        if node == dst.0 {
            let mut path = Vec::new();
            let mut cur = dst.0;
            while cur != src.0 {
                let seg = prev[&cur];
                path.push(seg);
                cur = net.segment(seg).from.0;
            }
            path.reverse();
            return Some((d, path));
        }
        if d > *dist.get(&node).unwrap_or(&f64::INFINITY) {
            continue;
        }
        for &seg in net.out_segments(NodeId(node)) {
            let nd = d + weight.of(net, seg);
            if nd > max_cost {
                continue;
            }
            let to = net.segment(seg).to.0;
            if nd < *dist.get(&to).unwrap_or(&f64::INFINITY) {
                dist.insert(to, nd);
                prev.insert(to, seg);
                heap.push(QueueItem { dist: nd, node: to });
            }
        }
    }
    None
}

/// Shortest path under an arbitrary per-segment cost function (must be
/// strictly positive). Used by the trajectory generator to diversify routes
/// by randomly perturbing free-flow travel times per trip.
#[must_use]
pub fn node_path_by(
    net: &RoadNetwork,
    src: NodeId,
    dst: NodeId,
    cost: impl Fn(SegmentId) -> f64,
) -> Option<(f64, Vec<SegmentId>)> {
    if src == dst {
        return Some((0.0, Vec::new()));
    }
    let mut dist: HashMap<u32, f64> = HashMap::new();
    let mut prev: HashMap<u32, SegmentId> = HashMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(src.0, 0.0);
    heap.push(QueueItem { dist: 0.0, node: src.0 });
    while let Some(QueueItem { dist: d, node }) = heap.pop() {
        if node == dst.0 {
            let mut path = Vec::new();
            let mut cur = dst.0;
            while cur != src.0 {
                let seg = prev[&cur];
                path.push(seg);
                cur = net.segment(seg).from.0;
            }
            path.reverse();
            return Some((d, path));
        }
        if d > *dist.get(&node).unwrap_or(&f64::INFINITY) {
            continue;
        }
        for &seg in net.out_segments(NodeId(node)) {
            let w = cost(seg);
            debug_assert!(w > 0.0, "costs must be positive");
            let nd = d + w;
            let to = net.segment(seg).to.0;
            if nd < *dist.get(&to).unwrap_or(&f64::INFINITY) {
                dist.insert(to, nd);
                prev.insert(to, seg);
                heap.push(QueueItem { dist: nd, node: to });
            }
        }
    }
    None
}

/// A* shortest path under the length weight, using the straight-line
/// distance to the target as the (admissible, consistent) heuristic.
///
/// Returns the same answers as [`node_path`] with `Weight::Length`, while
/// settling substantially fewer states on spread-out queries — useful for
/// latency-sensitive call sites such as interactive route planning.
#[must_use]
pub fn astar_path(
    net: &RoadNetwork,
    src: NodeId,
    dst: NodeId,
    max_cost: f64,
) -> Option<(f64, Vec<SegmentId>)> {
    if src == dst {
        return Some((0.0, Vec::new()));
    }
    let goal = net.node_pos(dst);
    let h = |n: u32| net.node_pos(NodeId(n)).dist(goal);
    let mut dist: HashMap<u32, f64> = HashMap::new();
    let mut prev: HashMap<u32, SegmentId> = HashMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(src.0, 0.0);
    heap.push(QueueItem { dist: h(src.0), node: src.0 });
    while let Some(QueueItem { dist: f, node }) = heap.pop() {
        let g = dist.get(&node).copied().unwrap_or(f64::INFINITY);
        if node == dst.0 {
            let mut path = Vec::new();
            let mut cur = dst.0;
            while cur != src.0 {
                let seg = prev[&cur];
                path.push(seg);
                cur = net.segment(seg).from.0;
            }
            path.reverse();
            return Some((g, path));
        }
        if f > g + h(node) + 1e-9 {
            continue; // stale entry
        }
        for &seg in net.out_segments(NodeId(node)) {
            let ng = g + net.segment(seg).length;
            if ng > max_cost {
                continue;
            }
            let to = net.segment(seg).to.0;
            if ng < *dist.get(&to).unwrap_or(&f64::INFINITY) {
                dist.insert(to, ng);
                prev.insert(to, seg);
                heap.push(QueueItem { dist: ng + h(to), node: to });
            }
        }
    }
    None
}

/// Bidirectional Dijkstra for the length weight: alternating forward and
/// backward sweeps that stop once the frontiers provably bracket the
/// optimum. Equivalent to [`node_dist`] but explores roughly half the
/// states on large networks.
#[must_use]
pub fn bidirectional_dist(
    net: &RoadNetwork,
    src: NodeId,
    dst: NodeId,
    max_cost: f64,
) -> Option<f64> {
    if src == dst {
        return Some(0.0);
    }
    let mut df: HashMap<u32, f64> = HashMap::new();
    let mut db: HashMap<u32, f64> = HashMap::new();
    let mut hf = BinaryHeap::new();
    let mut hb = BinaryHeap::new();
    df.insert(src.0, 0.0);
    db.insert(dst.0, 0.0);
    hf.push(QueueItem { dist: 0.0, node: src.0 });
    hb.push(QueueItem { dist: 0.0, node: dst.0 });
    let mut best = f64::INFINITY;
    loop {
        let top_f = hf.peek().map_or(f64::INFINITY, |q| q.dist);
        let top_b = hb.peek().map_or(f64::INFINITY, |q| q.dist);
        if top_f + top_b >= best || (top_f == f64::INFINITY && top_b == f64::INFINITY) {
            break;
        }
        if top_f <= top_b {
            if let Some(QueueItem { dist: d, node }) = hf.pop() {
                if d > *df.get(&node).unwrap_or(&f64::INFINITY) {
                    continue;
                }
                if let Some(&bd) = db.get(&node) {
                    best = best.min(d + bd);
                }
                for &seg in net.out_segments(NodeId(node)) {
                    let nd = d + net.segment(seg).length;
                    if nd > max_cost {
                        continue;
                    }
                    let to = net.segment(seg).to.0;
                    if nd < *df.get(&to).unwrap_or(&f64::INFINITY) {
                        df.insert(to, nd);
                        hf.push(QueueItem { dist: nd, node: to });
                    }
                }
            }
        } else if let Some(QueueItem { dist: d, node }) = hb.pop() {
            if d > *db.get(&node).unwrap_or(&f64::INFINITY) {
                continue;
            }
            if let Some(&fd) = df.get(&node) {
                best = best.min(d + fd);
            }
            for &seg in net.in_segments(NodeId(node)) {
                let nd = d + net.segment(seg).length;
                if nd > max_cost {
                    continue;
                }
                let from = net.segment(seg).from.0;
                if nd < *db.get(&from).unwrap_or(&f64::INFINITY) {
                    db.insert(from, nd);
                    hb.push(QueueItem { dist: nd, node: from });
                }
            }
        }
    }
    if best.is_finite() && best <= max_cost {
        Some(best)
    } else {
        None
    }
}

/// All nodes reachable from `src` within `delta` (inclusive), with their
/// distances. This bounded sweep is the kernel of FMM's UBODT precomputation.
#[must_use]
pub fn bounded_sssp(
    net: &RoadNetwork,
    src: NodeId,
    weight: Weight,
    delta: f64,
) -> Vec<(NodeId, f64)> {
    let mut pool = SsspPool::new();
    let mut out = Vec::new();
    pool.bounded_sssp_into(net, src, weight, delta, &mut out);
    out
}

/// Work-attribution counters of an [`SsspPool`]; deltas of these flow into
/// [`CacheStats`] when searches run under a [`DistCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolWork {
    /// Dijkstra pops that were processed (non-stale heap entries).
    pub nodes_expanded: u64,
    /// Relaxations pushed onto a priority queue.
    pub heap_pushes: u64,
    /// Queries answered from a retained warm frontier without restarting.
    pub warm_hits: u64,
    /// Warm-state and buffer acquisitions served from recycled storage.
    pub allocs_avoided: u64,
}

impl PoolWork {
    /// Counter-wise `self - earlier`, saturating at zero.
    #[must_use]
    pub fn since(&self, earlier: &PoolWork) -> PoolWork {
        PoolWork {
            nodes_expanded: self.nodes_expanded.saturating_sub(earlier.nodes_expanded),
            heap_pushes: self.heap_pushes.saturating_sub(earlier.heap_pushes),
            warm_hits: self.warm_hits.saturating_sub(earlier.warm_hits),
            allocs_avoided: self.allocs_avoided.saturating_sub(earlier.allocs_avoided),
        }
    }
}

/// One retained bounded-Dijkstra execution: the tentative-distance map, the
/// live frontier, and how far the sweep has provably settled.
#[derive(Debug, Default)]
struct WarmState {
    dist: HashMap<u32, f64>,
    heap: BinaryHeap<QueueItem>,
    /// Largest key popped so far. With strictly positive edge weights every
    /// `dist` entry `<= settled` is final (see [`SsspPool::node_dist_warm`]).
    settled: f64,
    /// The heap drained: `dist` holds *all* nodes reachable within the
    /// pool's `max_cost`; absence now proves unreachability.
    exhausted: bool,
    /// LRU clock value of the last query through this state.
    stamp: u64,
}

impl WarmState {
    fn reset(&mut self, src: u32) {
        self.dist.clear();
        self.heap.clear();
        self.dist.insert(src, 0.0);
        self.heap.push(QueueItem { dist: 0.0, node: src });
        self.settled = f64::NEG_INFINITY;
        self.exhausted = false;
    }
}

/// The query context warm frontiers are valid for. Any change of network,
/// weight, or search radius invalidates every retained frontier: a resumed
/// sweep must be a bit-exact continuation of the sweep a cold query would
/// have run, and all three parameters shape that execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WarmKey {
    net_uid: u64,
    weight: Weight,
    max_cost_bits: u64,
}

/// Retained warm frontiers per pool. Small on purpose: one HMM transition
/// layer touches `k_candidates` distinct sources (8 by default), so a
/// few dozen states cover consecutive GPS points with room for overlap
/// between layers, while keeping worst-case pool memory bounded.
const WARM_STATES_MAX: usize = 32;

/// Default per-query budget (nodes expanded) for a warm resume before the
/// query falls back to the plain cold search. A resume never expands more
/// nodes than the cold search would, so this is a stall guard, not a tuning
/// knob — see [`SsspPool::set_warm_budget`].
const WARM_BUDGET_DEFAULT: u64 = 50_000;

/// Reusable single-source shortest-path state: the tentative-distance map
/// and the priority queue of Dijkstra, kept allocated between searches —
/// plus a bounded number of *warm frontiers*, each a paused bounded
/// sweep keyed by its source node that later queries resume instead of
/// recomputing from scratch.
///
/// Transition lookups in a batch of trajectories run thousands of small
/// bounded sweeps over the same network; clearing a warm `HashMap` and
/// `BinaryHeap` is far cheaper than reallocating them per query, and
/// resuming a paused sweep is cheaper still — an HMM transition layer
/// queries every previous-layer candidate (the same handful of sources)
/// against every current-layer candidate, so all but the first lookup per
/// source land inside an already-settled frontier. [`bounded_sssp`] and
/// [`DistCache`] both run their searches through a pool, so only cache
/// *misses* pay for a sweep at all — and even those usually just grow a
/// retained frontier by a few pops.
#[derive(Debug)]
pub struct SsspPool {
    dist: HashMap<u32, f64>,
    heap: BinaryHeap<QueueItem>,
    warm: HashMap<u32, WarmState>,
    spare: Vec<WarmState>,
    key: Option<WarmKey>,
    clock: u64,
    budget: u64,
    work: PoolWork,
}

impl Default for SsspPool {
    fn default() -> Self {
        Self {
            dist: HashMap::new(),
            heap: BinaryHeap::new(),
            warm: HashMap::new(),
            spare: Vec::new(),
            key: None,
            clock: 0,
            budget: WARM_BUDGET_DEFAULT,
            work: PoolWork::default(),
        }
    }
}

impl SsspPool {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn clear(&mut self) {
        self.dist.clear();
        self.heap.clear();
    }

    /// Cumulative work counters over the pool's lifetime.
    #[must_use]
    pub fn work(&self) -> PoolWork {
        self.work
    }

    /// Caps the nodes a single warm resume or prefetch may expand before
    /// the query falls back to the plain cold search. Any value (including
    /// 0, which disables warm resumes entirely) returns bitwise-identical
    /// answers; the budget only bounds per-query latency.
    pub fn set_warm_budget(&mut self, budget: u64) {
        self.budget = budget;
    }

    /// Drops every retained warm frontier (their buffers are recycled).
    pub fn invalidate_warm(&mut self) {
        let states: Vec<u32> = self.warm.keys().copied().collect();
        for src in states {
            if let Some(st) = self.warm.remove(&src) {
                self.spare.push(st);
            }
        }
        self.key = None;
    }

    /// Invalidates warm state if `(net, weight, max_cost)` differs from the
    /// context the current frontiers were built under.
    fn ensure_key(&mut self, net: &RoadNetwork, weight: Weight, max_cost: f64) {
        let key = WarmKey { net_uid: net.uid(), weight, max_cost_bits: max_cost.to_bits() };
        if self.key != Some(key) {
            self.invalidate_warm();
            self.key = Some(key);
        }
    }

    /// Ensures a warm state for `src` exists (creating and LRU-evicting as
    /// needed) and bumps its LRU stamp. Must be called with the key already
    /// ensured; the state is then reachable via `self.warm[&src]`.
    fn touch_warm(&mut self, src: u32) {
        self.clock += 1;
        let clock = self.clock;
        if !self.warm.contains_key(&src) {
            if self.warm.len() >= WARM_STATES_MAX {
                // Evict the least-recently-used frontier into the spare list.
                if let Some(&lru) =
                    self.warm.iter().min_by_key(|(_, st)| st.stamp).map(|(node, _)| node)
                {
                    if let Some(st) = self.warm.remove(&lru) {
                        self.spare.push(st);
                    }
                }
            }
            let mut st = if let Some(st) = self.spare.pop() {
                self.work.allocs_avoided += 1;
                st
            } else {
                WarmState::default()
            };
            st.reset(src);
            self.work.heap_pushes += 1;
            self.warm.insert(src, st);
        }
        let st = self.warm.get_mut(&src).expect("state was just ensured");
        st.stamp = clock;
    }

    /// Pops and expands frontier entries of `st` until `stop` says to halt
    /// or the heap drains. Bit-exact continuation of the cold Dijkstra loop:
    /// same stale-entry skip, same relaxation order, same `max_cost` gate.
    /// Returns the popped node that satisfied `stop`, if any.
    fn advance_frontier(
        st: &mut WarmState,
        work: &mut PoolWork,
        net: &RoadNetwork,
        weight: Weight,
        max_cost: f64,
        mut stop: impl FnMut(u32, f64, u64) -> bool,
    ) -> Option<(u32, f64)> {
        let mut spent = 0u64;
        while let Some(QueueItem { dist: d, node }) = st.heap.pop() {
            if d > *st.dist.get(&node).unwrap_or(&f64::INFINITY) {
                continue; // stale entry superseded by a later relaxation
            }
            work.nodes_expanded += 1;
            spent += 1;
            for &seg in net.out_segments(NodeId(node)) {
                let nd = d + weight.of(net, seg);
                if nd > max_cost {
                    continue;
                }
                let to = net.segment(seg).to.0;
                if nd < *st.dist.get(&to).unwrap_or(&f64::INFINITY) {
                    st.dist.insert(to, nd);
                    st.heap.push(QueueItem { dist: nd, node: to });
                    work.heap_pushes += 1;
                }
            }
            st.settled = d;
            if stop(node, d, spent) {
                return Some((node, d));
            }
        }
        st.exhausted = true;
        st.settled = f64::INFINITY;
        None
    }

    /// Early-exit Dijkstra from `src` to `dst` that resumes a retained warm
    /// frontier for `src` when one exists, growing its settled radius just
    /// far enough to answer — and starts (then retains) one otherwise.
    ///
    /// Answers are bitwise-identical to [`SsspPool::node_dist`] for every
    /// `(net, src, dst, weight, max_cost, budget)`:
    ///
    /// * A retained frontier is a paused execution of the *same* loop the
    ///   cold search runs (same stale-entry skip, same relaxation order,
    ///   same bound), so resuming it pops nodes in exactly the order one
    ///   uninterrupted sweep would. The only divergence from the cold
    ///   early-exit is that the target's out-edges are relaxed before
    ///   returning — which is precisely what the uninterrupted sweep does,
    ///   and relaxations never change already-popped keys.
    /// * Edge weights are strictly positive, so every tentative distance
    ///   `<= settled` (the largest popped key) is final: any shorter path
    ///   would leave through a node with a strictly smaller final distance,
    ///   which has already been popped and relaxed. Settled map entries are
    ///   therefore served without any expansion at all.
    /// * If the resume exceeds the pool's work budget, the query abandons
    ///   the warm path and runs the ordinary cold search — status-quo cost,
    ///   same answer; the paused frontier stays valid for later queries.
    #[must_use]
    pub fn node_dist_warm(
        &mut self,
        net: &RoadNetwork,
        src: NodeId,
        dst: NodeId,
        weight: Weight,
        max_cost: f64,
    ) -> Option<f64> {
        if src == dst {
            return Some(0.0);
        }
        self.ensure_key(net, weight, max_cost);
        self.touch_warm(src.0);
        let budget = self.budget;
        let Self { warm, work, .. } = self;
        let st = warm.get_mut(&src.0).expect("touch_warm ensured the state");
        // Already inside the settled radius: the value is final.
        if let Some(&d) = st.dist.get(&dst.0) {
            if d <= st.settled {
                work.warm_hits += 1;
                return Some(d);
            }
        }
        if st.exhausted {
            // The sweep ran to its bound; absence proves unreachability.
            work.warm_hits += 1;
            return st.dist.get(&dst.0).copied();
        }
        if budget == 0 {
            return self.node_dist(net, src, dst, weight, max_cost);
        }
        let found = Self::advance_frontier(st, work, net, weight, max_cost, |node, _, spent| {
            node == dst.0 || spent >= budget
        });
        let exhausted = st.exhausted;
        match found {
            Some((node, d)) if node == dst.0 => Some(d),
            Some(_) => {
                // Budget exhausted before reaching `dst`: leave the paused
                // frontier as-is and answer through the cold path.
                self.node_dist(net, src, dst, weight, max_cost)
            }
            None => {
                debug_assert!(exhausted);
                None
            }
        }
    }

    /// Speculatively grows the warm frontier of `src` by up to `extra`
    /// expansions, so that near-future lookups from `src` land inside the
    /// settled radius. Purely additive — it only advances the paused sweep
    /// further along the exact execution it would take anyway, so answers
    /// of later queries are unchanged. Called by [`DistCache`] when the
    /// observed miss rate says the frontier keeps coming up short.
    pub fn prefetch(
        &mut self,
        net: &RoadNetwork,
        src: NodeId,
        weight: Weight,
        max_cost: f64,
        extra: u64,
    ) {
        if extra == 0 {
            return;
        }
        self.ensure_key(net, weight, max_cost);
        self.touch_warm(src.0);
        let Self { warm, work, .. } = self;
        let st = warm.get_mut(&src.0).expect("touch_warm ensured the state");
        if !st.exhausted {
            let _ = Self::advance_frontier(st, work, net, weight, max_cost, |_, _, spent| {
                spent >= extra
            });
        }
    }

    /// Early-exit Dijkstra from `src` to `dst` reusing the pool's buffers.
    /// Same contract as [`node_dist`].
    #[must_use]
    pub fn node_dist(
        &mut self,
        net: &RoadNetwork,
        src: NodeId,
        dst: NodeId,
        weight: Weight,
        max_cost: f64,
    ) -> Option<f64> {
        if src == dst {
            return Some(0.0);
        }
        self.clear();
        self.dist.insert(src.0, 0.0);
        self.heap.push(QueueItem { dist: 0.0, node: src.0 });
        self.work.heap_pushes += 1;
        while let Some(QueueItem { dist: d, node }) = self.heap.pop() {
            if node == dst.0 {
                return Some(d);
            }
            if d > *self.dist.get(&node).unwrap_or(&f64::INFINITY) {
                continue;
            }
            self.work.nodes_expanded += 1;
            for &seg in net.out_segments(NodeId(node)) {
                let nd = d + weight.of(net, seg);
                if nd > max_cost {
                    continue;
                }
                let to = net.segment(seg).to.0;
                if nd < *self.dist.get(&to).unwrap_or(&f64::INFINITY) {
                    self.dist.insert(to, nd);
                    self.heap.push(QueueItem { dist: nd, node: to });
                    self.work.heap_pushes += 1;
                }
            }
        }
        None
    }

    /// Bounded sweep from `src`, writing `(node, dist)` pairs sorted by node
    /// id into `out` (cleared first). Same contract as [`bounded_sssp`].
    pub fn bounded_sssp_into(
        &mut self,
        net: &RoadNetwork,
        src: NodeId,
        weight: Weight,
        delta: f64,
        out: &mut Vec<(NodeId, f64)>,
    ) {
        self.clear();
        self.dist.insert(src.0, 0.0);
        self.heap.push(QueueItem { dist: 0.0, node: src.0 });
        self.work.heap_pushes += 1;
        while let Some(QueueItem { dist: d, node }) = self.heap.pop() {
            if d > *self.dist.get(&node).unwrap_or(&f64::INFINITY) {
                continue;
            }
            self.work.nodes_expanded += 1;
            for &seg in net.out_segments(NodeId(node)) {
                let nd = d + weight.of(net, seg);
                if nd > delta {
                    continue;
                }
                let to = net.segment(seg).to.0;
                if nd < *self.dist.get(&to).unwrap_or(&f64::INFINITY) {
                    self.dist.insert(to, nd);
                    self.heap.push(QueueItem { dist: nd, node: to });
                    self.work.heap_pushes += 1;
                }
            }
        }
        out.clear();
        out.extend(self.dist.iter().map(|(&n, &d)| (NodeId(n), d)));
        out.sort_by_key(|e| e.0);
    }

    /// Bounded sweep from `src` restricted to the subgraph induced by the
    /// nodes where `allow` holds: edges into disallowed nodes are never
    /// relaxed, so the result is exactly [`SsspPool::bounded_sssp_into`]
    /// run on that induced subgraph. `src` is always reported (distance 0)
    /// even if `allow(src)` is false. The shard builder uses this to
    /// compute intra-shard distance tables without materializing per-shard
    /// subgraph copies.
    pub fn bounded_sssp_filtered_into(
        &mut self,
        net: &RoadNetwork,
        src: NodeId,
        weight: Weight,
        delta: f64,
        allow: impl Fn(NodeId) -> bool,
        out: &mut Vec<(NodeId, f64)>,
    ) {
        self.clear();
        self.dist.insert(src.0, 0.0);
        self.heap.push(QueueItem { dist: 0.0, node: src.0 });
        self.work.heap_pushes += 1;
        while let Some(QueueItem { dist: d, node }) = self.heap.pop() {
            if d > *self.dist.get(&node).unwrap_or(&f64::INFINITY) {
                continue;
            }
            self.work.nodes_expanded += 1;
            for &seg in net.out_segments(NodeId(node)) {
                let nd = d + weight.of(net, seg);
                if nd > delta {
                    continue;
                }
                let to = net.segment(seg).to.0;
                if !allow(NodeId(to)) {
                    continue;
                }
                if nd < *self.dist.get(&to).unwrap_or(&f64::INFINITY) {
                    self.dist.insert(to, nd);
                    self.heap.push(QueueItem { dist: nd, node: to });
                    self.work.heap_pushes += 1;
                }
            }
        }
        out.clear();
        out.extend(self.dist.iter().map(|(&n, &d)| (NodeId(n), d)));
        out.sort_by_key(|e| e.0);
    }

    /// Whether the pool currently retains a warm frontier for `src`.
    /// [`DistCache`] eviction consults this to avoid discarding pairs whose
    /// source still has live settled state.
    #[must_use]
    pub fn has_warm_frontier(&self, src: NodeId) -> bool {
        self.warm.contains_key(&src.0)
    }
}

/// A position on the network: segment plus position ratio (Definition 5,
/// without the timestamp).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetPos {
    /// The segment the position lies on.
    pub seg: SegmentId,
    /// Position ratio in `[0, 1)` from the segment entrance.
    pub ratio: f64,
}

impl NetPos {
    /// Creates a position, clamping the ratio into `[0, 1]`.
    #[must_use]
    pub fn new(seg: SegmentId, ratio: f64) -> Self {
        Self { seg, ratio: ratio.clamp(0.0, 1.0) }
    }
}

/// Directed network distance from `a` to `b` in metres: remaining length of
/// `a`'s segment, plus the shortest node path, plus the offset into `b`'s
/// segment. Same-segment forward moves are handled directly.
#[must_use]
pub fn matched_dist_directed(
    net: &RoadNetwork,
    a: NetPos,
    b: NetPos,
    max_cost: f64,
    cache: Option<&DistCache>,
) -> Option<f64> {
    let sa = net.segment(a.seg);
    let sb = net.segment(b.seg);
    if a.seg == b.seg && b.ratio >= a.ratio {
        return Some((b.ratio - a.ratio) * sa.length);
    }
    let head = (1.0 - a.ratio) * sa.length;
    let tail = b.ratio * sb.length;
    let mid = match cache {
        Some(c) => c.node_dist(net, sa.to, sb.from, max_cost)?,
        None => node_dist(net, sa.to, sb.from, Weight::Length, max_cost)?,
    };
    Some(head + mid + tail)
}

/// Symmetric network distance between two map-matched positions: the smaller
/// of the two directed distances, falling back to straight-line distance when
/// neither direction is reachable within `max_cost` (disconnected pairs are
/// penalised by geometry rather than dropped, matching how evaluation code
/// treats them).
#[must_use]
pub fn matched_dist(
    net: &RoadNetwork,
    a: NetPos,
    b: NetPos,
    max_cost: f64,
    cache: Option<&DistCache>,
) -> f64 {
    let fwd = matched_dist_directed(net, a, b, max_cost, cache);
    let bwd = matched_dist_directed(net, b, a, max_cost, cache);
    match (fwd, bwd) {
        (Some(x), Some(y)) => x.min(y),
        (Some(x), None) | (None, Some(x)) => x,
        (None, None) => {
            let pa = net.segment(a.seg).line.point_at(a.ratio);
            let pb = net.segment(b.seg).line.point_at(b.ratio);
            pa.dist(pb)
        }
    }
}

/// Default entry cap of a [`DistCache`]: 1M pairs ≈ 24 MB of table. Far
/// above what any committed workload fills, so eviction only engages under
/// adversarial streams — exactly the case it exists for.
pub const DIST_CACHE_DEFAULT_CAP: usize = 1 << 20;

/// Frontier expansions a stats-driven prefetch may add after a miss; see
/// [`DistCache::node_dist_pooled`].
const PREFETCH_EXPANSIONS: u64 = 64;

/// A thread-safe memo of node-to-node shortest distances.
///
/// Both metric evaluation (Eq. 22 is computed for every recovered point) and
/// HMM transition probabilities hammer the same node pairs; the cache turns
/// repeated Dijkstra runs into hash lookups. Misses within `max_cost` are
/// cached as `+∞` so unreachable pairs are not retried.
///
/// Misses run through a caller-supplied [`SsspPool`]
/// ([`DistCache::node_dist_pooled`] — one pool per batch worker), or through
/// an internal pool behind a mutex for callers without their own
/// ([`DistCache::node_dist`]). Either way the miss resumes the pool's warm
/// frontier for the source node ([`SsspPool::node_dist_warm`]) instead of
/// sweeping from scratch, and hits touch nothing but the read lock.
///
/// The memo is bounded: once [`DistCache::capacity`] pairs are resident,
/// recording a miss evicts a resident pair first — preferring one whose
/// source has no live warm frontier in the miss's [`SsspPool`], so the
/// settled state the prefetcher paid for keeps earning hits. Distances are
/// a pure function of the network, so an evicted pair simply recomputes to
/// the identical value on its next miss — eviction affects cost, never
/// answers.
#[derive(Debug)]
pub struct DistCache {
    map: RwLock<HashMap<(u32, u32), f64>>,
    pool: Mutex<SsspPool>,
    cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    warm_hits: AtomicU64,
    nodes_expanded: AtomicU64,
    heap_pushes: AtomicU64,
    allocs_avoided: AtomicU64,
}

impl Default for DistCache {
    fn default() -> Self {
        Self::with_capacity(DIST_CACHE_DEFAULT_CAP)
    }
}

/// Work and hit/miss counters of a [`DistCache`]; see [`DistCache::stats`].
///
/// Beyond the original hit/miss pair, the counters attribute where miss
/// work actually went, so a tail regression is diagnosable from a committed
/// bench artifact alone: `warm_hits` says how many misses never ran a
/// sweep, `nodes_expanded`/`heap_pushes` say how big the sweeps that did
/// run were, and `evictions` says whether the memo is thrashing its bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that went to a Dijkstra pool.
    pub misses: u64,
    /// Misses answered from an already-settled warm frontier.
    pub warm_hits: u64,
    /// Dijkstra nodes expanded by misses (cold sweeps + warm resumes +
    /// prefetch).
    pub nodes_expanded: u64,
    /// Priority-queue pushes performed by misses.
    pub heap_pushes: u64,
    /// Warm-state acquisitions served from recycled buffers.
    pub allocs_avoided: u64,
    /// Pairs evicted to keep the memo within its capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups observed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }
}

impl DistCache {
    /// Creates an empty cache with the default entry cap.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache holding at most `cap` pairs (min 1).
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            map: RwLock::new(HashMap::new()),
            pool: Mutex::new(SsspPool::new()),
            cap: cap.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            nodes_expanded: AtomicU64::new(0),
            heap_pushes: AtomicU64::new(0),
            allocs_avoided: AtomicU64::new(0),
        }
    }

    /// The entry cap; [`DistCache::len`] never exceeds it.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Cached shortest length-weighted distance between nodes.
    #[must_use]
    pub fn node_dist(
        &self,
        net: &RoadNetwork,
        src: NodeId,
        dst: NodeId,
        max_cost: f64,
    ) -> Option<f64> {
        if let Some(&d) = self.map.read().expect("dist cache poisoned").get(&(src.0, dst.0)) {
            self.hits.fetch_add(1, AtomicOrdering::Relaxed);
            return if d.is_finite() { Some(d) } else { None };
        }
        let mut pool = self.pool.lock().expect("sssp pool poisoned");
        let d = self.miss_via(net, src, dst, max_cost, &mut pool);
        self.record_miss(src, dst, d, &pool);
        d
    }

    /// Cached shortest length-weighted distance between nodes, running any
    /// miss through the caller's own [`SsspPool`] instead of the cache's
    /// internal (mutex-guarded) one.
    ///
    /// This is the batch-engine read-through: workers share one cache but
    /// each owns a pool, so concurrent misses run concurrent sweeps instead
    /// of serialising on the internal pool's lock. Distances are a pure
    /// function of the network, so racing misses on the same pair insert
    /// the same value — answers never depend on interleaving.
    ///
    /// When the cache's lifetime miss rate is high (a cold stream, or a
    /// session moving into unmapped territory), a miss additionally
    /// prefetches: it grows the warm frontier of `src` by a bounded number
    /// of expansions so the next lookups from the same source settle
    /// without any sweep. Prefetching only advances the exact execution a
    /// later query would run anyway, so answers never change.
    #[must_use]
    pub fn node_dist_pooled(
        &self,
        net: &RoadNetwork,
        src: NodeId,
        dst: NodeId,
        max_cost: f64,
        pool: &mut SsspPool,
    ) -> Option<f64> {
        if let Some(&d) = self.map.read().expect("dist cache poisoned").get(&(src.0, dst.0)) {
            self.hits.fetch_add(1, AtomicOrdering::Relaxed);
            return if d.is_finite() { Some(d) } else { None };
        }
        let d = self.miss_via(net, src, dst, max_cost, pool);
        self.record_miss(src, dst, d, pool);
        d
    }

    /// Runs a miss through `pool`'s warm path, folding the pool's work
    /// delta into the cache counters and prefetching when miss-heavy.
    fn miss_via(
        &self,
        net: &RoadNetwork,
        src: NodeId,
        dst: NodeId,
        max_cost: f64,
        pool: &mut SsspPool,
    ) -> Option<f64> {
        let before = pool.work();
        let d = pool.node_dist_warm(net, src, dst, Weight::Length, max_cost);
        // Stats-driven prefetch: while misses dominate lookups the settled
        // radius keeps coming up short, so buy the *next* lookup from this
        // source with a few more expansions now. As hits take over, the
        // ratio flips and the speculation stops.
        let hits = self.hits.load(AtomicOrdering::Relaxed);
        let misses = self.misses.load(AtomicOrdering::Relaxed);
        if misses >= hits {
            pool.prefetch(net, src, Weight::Length, max_cost, PREFETCH_EXPANSIONS);
        }
        let delta = pool.work().since(&before);
        self.warm_hits.fetch_add(delta.warm_hits, AtomicOrdering::Relaxed);
        self.nodes_expanded.fetch_add(delta.nodes_expanded, AtomicOrdering::Relaxed);
        self.heap_pushes.fetch_add(delta.heap_pushes, AtomicOrdering::Relaxed);
        self.allocs_avoided.fetch_add(delta.allocs_avoided, AtomicOrdering::Relaxed);
        d
    }

    /// Probes per eviction when searching for a victim whose source has no
    /// live warm frontier. Bounded so a cache full of warm-source pairs
    /// degrades to arbitrary eviction instead of an O(cap) scan per miss.
    const EVICTION_PROBES: usize = 64;

    fn record_miss(&self, src: NodeId, dst: NodeId, d: Option<f64>, pool: &SsspPool) {
        self.misses.fetch_add(1, AtomicOrdering::Relaxed);
        let mut map = self.map.write().expect("dist cache poisoned");
        if !map.contains_key(&(src.0, dst.0)) && map.len() >= self.cap {
            // Any victim is sound: a re-miss recomputes the identical value
            // (distances are a pure function of the network), so the policy
            // only shapes cost. Prefer a victim whose source has no live
            // warm frontier in the missing pool — evicting a warm-source
            // pair discards exactly the lookup its retained frontier (which
            // the prefetcher may just have paid to grow) would answer for
            // free on the re-miss.
            let victim = map
                .keys()
                .take(Self::EVICTION_PROBES)
                .find(|&&(s, _)| !pool.has_warm_frontier(NodeId(s)))
                .or_else(|| map.keys().next())
                .copied();
            if let Some(victim) = victim {
                map.remove(&victim);
                self.evictions.fetch_add(1, AtomicOrdering::Relaxed);
            }
        }
        map.insert((src.0, dst.0), d.unwrap_or(f64::INFINITY));
    }

    /// Counters so far. `hits + misses` equals the number of lookups;
    /// racing misses on one pair may each count as a miss, so `misses` can
    /// exceed the number of distinct pairs but never undercounts it.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(AtomicOrdering::Relaxed),
            misses: self.misses.load(AtomicOrdering::Relaxed),
            warm_hits: self.warm_hits.load(AtomicOrdering::Relaxed),
            nodes_expanded: self.nodes_expanded.load(AtomicOrdering::Relaxed),
            heap_pushes: self.heap_pushes.load(AtomicOrdering::Relaxed),
            allocs_avoided: self.allocs_avoided.load(AtomicOrdering::Relaxed),
            evictions: self.evictions.load(AtomicOrdering::Relaxed),
        }
    }

    /// Number of cached pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.read().expect("dist cache poisoned").len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.read().expect("dist cache poisoned").is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadClass;
    use trmma_geom::Vec2;

    /// A 3x1 bidirectional line: 0 -100m- 1 -100m- 2.
    fn line3() -> RoadNetwork {
        let pos = vec![Vec2::new(0.0, 0.0), Vec2::new(100.0, 0.0), Vec2::new(200.0, 0.0)];
        let mut edges = Vec::new();
        for (a, b) in [(0, 1), (1, 2)] {
            edges.push((NodeId(a), NodeId(b), RoadClass::Local));
            edges.push((NodeId(b), NodeId(a), RoadClass::Local));
        }
        RoadNetwork::new(pos, edges)
    }

    fn seg(net: &RoadNetwork, from: u32, to: u32) -> SegmentId {
        net.segment_ids()
            .find(|&i| net.segment(i).from == NodeId(from) && net.segment(i).to == NodeId(to))
            .unwrap()
    }

    #[test]
    fn node_dist_on_line() {
        let net = line3();
        assert_eq!(node_dist(&net, NodeId(0), NodeId(0), Weight::Length, 1e9), Some(0.0));
        let d = node_dist(&net, NodeId(0), NodeId(2), Weight::Length, 1e9).unwrap();
        assert!((d - 200.0).abs() < 1e-9);
    }

    #[test]
    fn node_dist_respects_bound() {
        let net = line3();
        assert_eq!(node_dist(&net, NodeId(0), NodeId(2), Weight::Length, 150.0), None);
        assert!(node_dist(&net, NodeId(0), NodeId(2), Weight::Length, 200.0).is_some());
    }

    #[test]
    fn node_path_reconstructs_segments() {
        let net = line3();
        let (d, path) = node_path(&net, NodeId(0), NodeId(2), Weight::Length, 1e9).unwrap();
        assert!((d - 200.0).abs() < 1e-9);
        assert_eq!(path, vec![seg(&net, 0, 1), seg(&net, 1, 2)]);
        assert!(net.is_path(&path));
    }

    #[test]
    fn bounded_sssp_collects_reachable() {
        let net = line3();
        let within_150 = bounded_sssp(&net, NodeId(0), Weight::Length, 150.0);
        let nodes: Vec<u32> = within_150.iter().map(|(n, _)| n.0).collect();
        assert_eq!(nodes, vec![0, 1]);
        let all = bounded_sssp(&net, NodeId(0), Weight::Length, 1e9);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn matched_dist_same_segment() {
        let net = line3();
        let e = seg(&net, 0, 1);
        let a = NetPos::new(e, 0.2);
        let b = NetPos::new(e, 0.7);
        let d = matched_dist(&net, a, b, 1e9, None);
        assert!((d - 50.0).abs() < 1e-9);
        // Symmetric.
        assert!((matched_dist(&net, b, a, 1e9, None) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn matched_dist_across_segments() {
        let net = line3();
        let e01 = seg(&net, 0, 1);
        let e12 = seg(&net, 1, 2);
        let a = NetPos::new(e01, 0.5); // 50 m before node 1
        let b = NetPos::new(e12, 0.25); // 25 m after node 1
        let d = matched_dist(&net, a, b, 1e9, None);
        assert!((d - 75.0).abs() < 1e-9, "d = {d}");
    }

    #[test]
    fn matched_dist_uses_twin_direction() {
        // From a point on 1->0 to a point on 0->1: the directed distance must
        // route through a node; the symmetric min picks the cheap direction.
        let net = line3();
        let e01 = seg(&net, 0, 1);
        let e10 = seg(&net, 1, 0);
        let a = NetPos::new(e10, 0.5);
        let b = NetPos::new(e01, 0.5);
        let d = matched_dist(&net, a, b, 1e9, None);
        // a is at x=50 heading west, b at x=50 heading east; the best directed
        // route is 50 m to a shared node plus 50 m back.
        assert!((d - 100.0).abs() < 1e-9, "d = {d}");
    }

    #[test]
    fn astar_matches_dijkstra() {
        let net = crate::gen::generate_city(&crate::gen::NetworkConfig::with_size(8, 8, 33));
        for (s, d) in [(0u32, 40u32), (5, 60), (12, 12), (63, 2)] {
            let m = net.num_nodes() as u32;
            let (src, dst) = (NodeId(s % m), NodeId(d % m));
            let dij = node_path(&net, src, dst, Weight::Length, f64::INFINITY);
            let ast = astar_path(&net, src, dst, f64::INFINITY);
            match (dij, ast) {
                (Some((cd, pd)), Some((ca, pa))) => {
                    assert!((cd - ca).abs() < 1e-9, "{src:?}->{dst:?}: {cd} vs {ca}");
                    assert!(net.is_path(&pa));
                    // Paths may differ on ties; costs must not.
                    let len_a: f64 = pa.iter().map(|&e| net.segment(e).length).sum();
                    let len_d: f64 = pd.iter().map(|&e| net.segment(e).length).sum();
                    assert!((len_a - len_d).abs() < 1e-9);
                }
                (None, None) => {}
                other => panic!("dijkstra/astar disagree on reachability: {other:?}"),
            }
        }
    }

    #[test]
    fn bidirectional_matches_dijkstra() {
        let net = crate::gen::generate_city(&crate::gen::NetworkConfig::with_size(8, 8, 34));
        let m = net.num_nodes() as u32;
        for (s, d) in [(0u32, 50u32), (7, 19), (22, 22), (61, 3), (14, 59)] {
            let (src, dst) = (NodeId(s % m), NodeId(d % m));
            let a = node_dist(&net, src, dst, Weight::Length, f64::INFINITY);
            let b = bidirectional_dist(&net, src, dst, f64::INFINITY);
            match (a, b) {
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9, "{src:?}->{dst:?}"),
                (None, None) => {}
                other => panic!("reachability mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn astar_respects_bound() {
        let net = line3();
        assert!(astar_path(&net, NodeId(0), NodeId(2), 150.0).is_none());
        assert!(astar_path(&net, NodeId(0), NodeId(2), 250.0).is_some());
        assert!(bidirectional_dist(&net, NodeId(0), NodeId(2), 150.0).is_none());
    }

    #[test]
    fn sssp_pool_matches_fresh_searches() {
        let net = crate::gen::generate_city(&crate::gen::NetworkConfig::with_size(7, 7, 12));
        let m = net.num_nodes() as u32;
        let mut pool = SsspPool::new();
        for (s, d) in [(0u32, 30u32), (5, 11), (40, 2), (3, 3), (17, 44)] {
            let (src, dst) = (NodeId(s % m), NodeId(d % m));
            let fresh = node_dist(&net, src, dst, Weight::Length, f64::INFINITY);
            let pooled = pool.node_dist(&net, src, dst, Weight::Length, f64::INFINITY);
            assert_eq!(fresh, pooled, "{src:?}->{dst:?}");
        }
        // Bounded sweeps agree with the allocating variant across reuses.
        let mut out = Vec::new();
        for src in [NodeId(0), NodeId(9), NodeId(20)] {
            pool.bounded_sssp_into(&net, src, Weight::Length, 700.0, &mut out);
            assert_eq!(out, bounded_sssp(&net, src, Weight::Length, 700.0));
        }
    }

    #[test]
    fn dist_cache_pooled_misses_agree_with_plain_dijkstra() {
        // DistCache misses run through its internal pool; answers must match
        // fresh searches across many consecutive misses (warm-buffer reuse).
        let net = crate::gen::generate_city(&crate::gen::NetworkConfig::with_size(6, 6, 8));
        let cache = DistCache::new();
        let m = net.num_nodes() as u32;
        for (s, d) in [(0u32, 20u32), (3, 14), (7, 7), (11, 2), (5, 33)] {
            let (src, dst) = (NodeId(s % m), NodeId(d % m));
            let pooled = cache.node_dist(&net, src, dst, f64::INFINITY);
            let fresh = node_dist(&net, src, dst, Weight::Length, f64::INFINITY);
            assert_eq!(pooled, fresh, "{src:?}->{dst:?}");
        }
        assert_eq!(cache.len(), 5);
    }

    #[test]
    fn dist_cache_hits() {
        let net = line3();
        let cache = DistCache::new();
        let d1 = cache.node_dist(&net, NodeId(0), NodeId(2), 1e9).unwrap();
        let d2 = cache.node_dist(&net, NodeId(0), NodeId(2), 1e9).unwrap();
        assert_eq!(d1, d2);
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!(stats.nodes_expanded > 0, "a miss must account its sweep");
        // Unreachable-within-bound is cached as a miss, not retried forever.
        assert!(cache.node_dist(&net, NodeId(2), NodeId(0), 0.0).is_none());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().total(), 3);
    }

    #[test]
    fn dist_cache_pooled_shares_entries_with_internal_path() {
        let net = line3();
        let cache = DistCache::new();
        let mut pool = SsspPool::new();
        let miss = cache.node_dist_pooled(&net, NodeId(0), NodeId(2), 1e9, &mut pool);
        assert_eq!(miss, node_dist(&net, NodeId(0), NodeId(2), Weight::Length, 1e9));
        // The entry is visible to the internal-pool path and vice versa.
        assert_eq!(cache.node_dist(&net, NodeId(0), NodeId(2), 1e9), miss);
        let d = cache.node_dist(&net, NodeId(1), NodeId(2), 1e9);
        assert_eq!(cache.node_dist_pooled(&net, NodeId(1), NodeId(2), 1e9, &mut pool), d);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 2));
    }

    #[test]
    fn warm_node_dist_bitwise_identical_to_cold() {
        // Resumed frontiers, settled-map hits, exhausted sweeps, repeated and
        // interleaved sources: every answer must be bit-for-bit the cold one.
        let net = crate::gen::generate_city(&crate::gen::NetworkConfig::with_size(9, 9, 21));
        let m = net.num_nodes() as u32;
        let mut pool = SsspPool::new();
        for max_cost in [250.0, 900.0, f64::INFINITY] {
            for q in 0..120u32 {
                // A few sources, many targets — the transition-layer shape.
                let src = NodeId((q / 10) * 7 % m);
                let dst = NodeId((q * 13 + 5) % m);
                let warm = pool.node_dist_warm(&net, src, dst, Weight::Length, max_cost);
                let cold = node_dist(&net, src, dst, Weight::Length, max_cost);
                assert_eq!(
                    warm.map(f64::to_bits),
                    cold.map(f64::to_bits),
                    "{src:?}->{dst:?} bound {max_cost}"
                );
            }
        }
        let w = pool.work();
        assert!(w.warm_hits > 0, "repeated sources must hit the warm frontier");
    }

    #[test]
    fn warm_budget_zero_and_tiny_still_identical() {
        let net = crate::gen::generate_city(&crate::gen::NetworkConfig::with_size(8, 8, 5));
        let m = net.num_nodes() as u32;
        for budget in [0u64, 1, 3, 1_000_000] {
            let mut pool = SsspPool::new();
            pool.set_warm_budget(budget);
            for q in 0..60u32 {
                let src = NodeId((q / 6) % m);
                let dst = NodeId((q * 11 + 2) % m);
                let warm = pool.node_dist_warm(&net, src, dst, Weight::Length, f64::INFINITY);
                let cold = node_dist(&net, src, dst, Weight::Length, f64::INFINITY);
                assert_eq!(warm.map(f64::to_bits), cold.map(f64::to_bits), "budget {budget}");
            }
        }
    }

    #[test]
    fn prefetch_never_changes_answers() {
        let net = crate::gen::generate_city(&crate::gen::NetworkConfig::with_size(7, 7, 9));
        let m = net.num_nodes() as u32;
        let mut pool = SsspPool::new();
        for q in 0..40u32 {
            let src = NodeId((q % 5) * 3 % m);
            pool.prefetch(&net, src, Weight::Length, f64::INFINITY, (q % 7 + 1) as u64 * 4);
            let dst = NodeId((q * 17 + 1) % m);
            let warm = pool.node_dist_warm(&net, src, dst, Weight::Length, f64::INFINITY);
            let cold = node_dist(&net, src, dst, Weight::Length, f64::INFINITY);
            assert_eq!(warm.map(f64::to_bits), cold.map(f64::to_bits));
        }
    }

    #[test]
    fn warm_state_is_invalidated_across_networks_and_bounds() {
        // Same node ids, different graphs/bounds: retained frontiers must
        // never leak across. Network A is the 3-node line, network B a city.
        let a = line3();
        let b = crate::gen::generate_city(&crate::gen::NetworkConfig::with_size(6, 6, 3));
        let mut pool = SsspPool::new();
        for _ in 0..3 {
            let wa = pool.node_dist_warm(&a, NodeId(0), NodeId(2), Weight::Length, 1e9);
            assert_eq!(wa, node_dist(&a, NodeId(0), NodeId(2), Weight::Length, 1e9));
            let wb = pool.node_dist_warm(&b, NodeId(0), NodeId(2), Weight::Length, 1e9);
            assert_eq!(wb, node_dist(&b, NodeId(0), NodeId(2), Weight::Length, 1e9));
            // Changing only the bound also invalidates (bounds shape sweeps).
            let tight = pool.node_dist_warm(&a, NodeId(0), NodeId(2), Weight::Length, 150.0);
            assert_eq!(tight, None);
        }
    }

    #[test]
    fn eviction_skips_entries_with_live_warm_frontiers() {
        // Regression for the arbitrary-victim eviction: a cap-triggered
        // eviction storm must not discard pairs whose source still has a
        // retained (possibly prefetch-grown) frontier in the pool.
        let net = crate::gen::generate_city(&crate::gen::NetworkConfig::with_size(8, 8, 77));
        let m = net.num_nodes() as u32;
        assert!(m > 40, "test network too small for the warm-LRU aging loop");
        let cache = DistCache::with_capacity(2);
        let mut pool = SsspPool::new();
        let (s, x) = (NodeId(0), NodeId(1));
        let (a, b) = (NodeId(2), NodeId(3));
        let inf = f64::INFINITY;
        // Resident pair 1: source S, whose miss leaves a warm frontier;
        // exhaust it so every later S lookup is a pure warm hit.
        let _ = cache.node_dist_pooled(&net, s, a, inf, &mut pool);
        pool.prefetch(&net, s, Weight::Length, inf, 1_000_000);
        // Resident pair 2: source X. The cache is now at capacity.
        let _ = cache.node_dist_pooled(&net, x, b, inf, &mut pool);
        // Age X out of the bounded warm LRU with filler sources, then
        // re-touch S so it is the one resident source with a live frontier.
        let (mut filler, mut aged) = (3u32, 0);
        while aged < 33 {
            filler += 1;
            let f = NodeId(filler % m);
            let _ = pool.node_dist_warm(&net, f, s, Weight::Length, inf);
            aged += 1;
        }
        pool.prefetch(&net, s, Weight::Length, inf, 1_000_000);
        assert!(pool.has_warm_frontier(s));
        assert!(!pool.has_warm_frontier(x), "X should have aged out of the warm LRU");
        // The storm: a miss on the full cache must evict — and must pick
        // X's pair, never S's, because S's frontier is live.
        let before = cache.stats();
        let _ = cache.node_dist_pooled(&net, NodeId(4), NodeId(5), inf, &mut pool);
        let evicted = cache.stats();
        assert_eq!(evicted.evictions, before.evictions + 1);
        // S's pair survived: the re-query is a map hit, not a new miss.
        let _ = cache.node_dist_pooled(&net, s, a, inf, &mut pool);
        let after = cache.stats();
        assert_eq!(after.hits, evicted.hits + 1, "warm-source pair was evicted");
        assert_eq!(after.misses, evicted.misses);
        // And S's frontier still answers fresh S lookups without a sweep:
        // warm_hits must not regress across the eviction storm.
        let _ = cache.node_dist_pooled(&net, s, NodeId(6), inf, &mut pool);
        assert!(
            cache.stats().warm_hits > after.warm_hits,
            "warm_hits regressed after the eviction storm"
        );
    }

    #[test]
    fn filtered_sssp_equals_sweep_on_induced_subgraph() {
        let net = crate::gen::generate_city(&crate::gen::NetworkConfig::with_size(7, 7, 5));
        let m = net.num_nodes() as u32;
        let allow = |n: NodeId| n.0 % 3 != 1;
        let mut pool = SsspPool::new();
        let mut got = Vec::new();
        pool.bounded_sssp_filtered_into(&net, NodeId(0), Weight::Length, 900.0, allow, &mut got);
        // Reference: the plain sweep on a network with the disallowed
        // nodes' incident edges removed.
        let pos: Vec<_> = (0..m).map(|i| net.node_pos(NodeId(i))).collect();
        let edges: Vec<_> = net
            .segments()
            .iter()
            .filter(|sg| allow(sg.from) && allow(sg.to))
            .map(|sg| (sg.from, sg.to, sg.class))
            .collect();
        let sub = RoadNetwork::new(pos, edges);
        let want = bounded_sssp(&sub, NodeId(0), Weight::Length, 900.0);
        assert_eq!(got.len(), want.len());
        for ((gn, gd), (wn, wd)) in got.iter().zip(&want) {
            assert_eq!(gn, wn);
            assert_eq!(gd.to_bits(), wd.to_bits());
        }
    }

    #[test]
    fn dist_cache_len_never_exceeds_capacity() {
        // Adversarial stream: every lookup a distinct pair, far more pairs
        // than the cap. The memo must stay bounded and keep answering
        // identically to fresh searches.
        let net = crate::gen::generate_city(&crate::gen::NetworkConfig::with_size(8, 8, 77));
        let m = net.num_nodes() as u32;
        let cap = 16;
        let cache = DistCache::with_capacity(cap);
        assert_eq!(cache.capacity(), cap);
        let mut pool = SsspPool::new();
        for q in 0..200u32 {
            let src = NodeId((q * 31 + 7) % m);
            let dst = NodeId((q * 57 + 11) % m);
            let got = cache.node_dist_pooled(&net, src, dst, f64::INFINITY, &mut pool);
            let fresh = node_dist(&net, src, dst, Weight::Length, f64::INFINITY);
            assert_eq!(got.map(f64::to_bits), fresh.map(f64::to_bits));
            assert!(cache.len() <= cap, "cache grew past its bound: {}", cache.len());
        }
        assert!(cache.stats().evictions > 0, "the adversarial stream must evict");
        // Evicted pairs re-miss to the identical value.
        let d0 =
            cache.node_dist_pooled(&net, NodeId(7 % m), NodeId(11 % m), f64::INFINITY, &mut pool);
        assert_eq!(
            d0,
            node_dist(&net, NodeId(7 % m), NodeId(11 % m), Weight::Length, f64::INFINITY)
        );
        assert_eq!(cache.capacity(), cap);
    }
}
