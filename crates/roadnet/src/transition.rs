//! Pooled point-to-point transition costs for HMM-family matchers.
//!
//! Every probabilistic matcher in the repository evaluates the same hot
//! expression for each candidate transition: the network route distance
//! between two on-segment positions. This module centralises that lookup
//! behind [`TransitionProvider`], which answers from (in order):
//!
//! 1. a **precomputed bounded all-pairs table** ([`DistTable`] — FMM's
//!    UBODT), when one is attached: a hash lookup, no search at all;
//! 2. a **sharded network** ([`crate::shard::ShardedNetwork`]), when one
//!    is attached: the distance decomposes into intra-shard table hops
//!    plus a boundary-overlay lookup — still pure lookups, no search;
//! 3. otherwise a **shared [`DistCache`] read-through**: hits are hash
//!    lookups, misses run an early-exit Dijkstra on the *caller's*
//!    [`SsspPool`], so batch workers search concurrently on warm buffers
//!    while publishing results to every other worker.
//!
//! The provider itself is immutable and `Send + Sync`; all mutable search
//! state lives in the per-worker pool the caller passes in. Answers are a
//! pure function of the network, so output is bitwise-identical no matter
//! how many workers share one provider or how queries interleave
//! (property-tested in `tests/props_baselines.rs`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::graph::{NodeId, RoadNetwork, SegmentId};
use crate::shortest::{CacheStats, DistCache, NetPos, SsspPool, Weight};

/// Why a byte image could not be adopted as a [`DistTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistImageError {
    /// The declared record range does not fit inside the slab.
    OutOfBounds,
    /// Record keys are not strictly increasing — binary search over the
    /// image would silently answer wrong, so the image is rejected.
    Unsorted,
}

impl std::fmt::Display for DistImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::OutOfBounds => write!(f, "dist-table image exceeds its byte slab"),
            Self::Unsorted => write!(f, "dist-table image records are not sorted"),
        }
    }
}

impl std::error::Error for DistImageError {}

/// Why a transition query could not be answered at all (as opposed to the
/// pair being unreachable, which is the `Ok(None)` answer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionError {
    /// A query position names a segment the network does not have. Segment
    /// ids that arrive from outside the network's own indexes (wire input,
    /// restored snapshots, artifacts) must be range-checked, not unwound
    /// through a worker thread.
    SegmentOutOfRange {
        /// The offending segment id.
        seg: SegmentId,
        /// The network's segment count at query time.
        num_segments: usize,
    },
}

impl std::fmt::Display for TransitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::SegmentOutOfRange { seg, num_segments } => {
                write!(f, "segment id {} out of range (network has {num_segments})", seg.0)
            }
        }
    }
}

impl std::error::Error for TransitionError {}

/// Bytes per packed `(src u32, dst u32, dist f64-bits)` record of a
/// [`DistTable`] byte image (all little-endian).
pub const DIST_RECORD_BYTES: usize = 16;

/// How a [`DistTable`] stores its pairs.
#[derive(Debug)]
enum Repr {
    /// Built in-process: a hash map, O(1) probes.
    Map(HashMap<(u32, u32), f64>),
    /// Adopted zero-copy from a byte image (`trmma-artifacts`): packed
    /// 16-byte records sorted by `(src, dst)`, answered by binary search
    /// directly over the shared slab — no per-pair parse or allocation.
    Image {
        slab: Arc<Vec<u8>>,
        /// Byte offset of the first record within `slab`.
        off: usize,
        /// Number of records.
        count: usize,
    },
}

/// Bounded all-pairs shortest-distance table: for every node pair within
/// length `delta`, the exact network distance. This is the construction
/// routine shared by FMM's UBODT (`trmma-baselines::ubodt`) and anything
/// else that wants precomputed transitions; building runs one bounded
/// Dijkstra sweep per node through a single warm [`SsspPool`].
///
/// A table can also be **adopted zero-copy** from a precomputed byte image
/// ([`DistTable::from_image`]): queries then binary-search the packed
/// records in place, so a process fleet serving the same artifact shares
/// one page-cached copy instead of each re-running the Dijkstra sweeps.
/// Both representations answer queries bitwise-identically.
#[derive(Debug)]
pub struct DistTable {
    delta: f64,
    repr: Repr,
}

impl DistTable {
    /// Builds the table by sweeping every node with a bounded Dijkstra,
    /// reusing one pool's buffers across all sources.
    #[must_use]
    pub fn build(net: &RoadNetwork, delta: f64) -> Self {
        let mut pool = SsspPool::new();
        let mut reach = Vec::new();
        let mut table = HashMap::new();
        for src in 0..net.num_nodes() as u32 {
            pool.bounded_sssp_into(net, NodeId(src), Weight::Length, delta, &mut reach);
            for &(dst, d) in &reach {
                table.insert((src, dst.0), d);
            }
        }
        Self { delta, repr: Repr::Map(table) }
    }

    /// Wraps an already-computed pair map as a table with bound `delta`.
    /// The shard builder uses this for per-shard intra tables and the
    /// border overlay, whose sweeps run through shard-owned pools rather
    /// than the all-nodes loop of [`DistTable::build`].
    #[must_use]
    pub fn from_pairs(pairs: HashMap<(u32, u32), f64>, delta: f64) -> Self {
        Self { delta, repr: Repr::Map(pairs) }
    }

    /// Approximate resident bytes of the table's pair storage. Map-backed
    /// tables estimate the hash table's footprint (key + value + control
    /// overhead per bucket at observed load factors); image-backed tables
    /// count exactly their packed record range — the slab is shared, so
    /// that range is the table's marginal cost. Feeds the per-shard
    /// resident-bytes accounting in the bench rows.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        match &self.repr {
            // (u32, u32) key + f64 value = 16 bytes, plus ~75% overhead for
            // hashbrown's control bytes and empty buckets.
            Repr::Map(t) => t.len() * 28,
            Repr::Image { count, .. } => count * DIST_RECORD_BYTES,
        }
    }

    /// Adopts `count` packed records starting at byte `off` of `slab` as a
    /// table with bound `delta`, without copying or parsing them. Records
    /// are `DIST_RECORD_BYTES` wide (`src u32 | dst u32 | dist f64-bits`,
    /// little-endian) and must be strictly sorted by `(src, dst)` — the
    /// order [`DistTable::for_each_pair`] emits for an image and the
    /// artifact writer produces.
    ///
    /// # Errors
    /// [`DistImageError::OutOfBounds`] when the range escapes the slab,
    /// [`DistImageError::Unsorted`] when keys are not strictly increasing
    /// (a corrupt or hand-built image must not silently mis-answer).
    pub fn from_image(
        slab: Arc<Vec<u8>>,
        off: usize,
        count: usize,
        delta: f64,
    ) -> Result<Self, DistImageError> {
        let bytes = count.checked_mul(DIST_RECORD_BYTES).ok_or(DistImageError::OutOfBounds)?;
        let end = off.checked_add(bytes).ok_or(DistImageError::OutOfBounds)?;
        if end > slab.len() {
            return Err(DistImageError::OutOfBounds);
        }
        let table = Self { delta, repr: Repr::Image { slab, off, count } };
        for i in 1..count {
            if table.image_key(i - 1) >= table.image_key(i) {
                return Err(DistImageError::Unsorted);
            }
        }
        Ok(table)
    }

    /// The `(src, dst)` key of image record `i`, packed high/low for
    /// lexicographic comparison.
    fn image_key(&self, i: usize) -> u64 {
        let Repr::Image { slab, off, .. } = &self.repr else {
            unreachable!("image_key on a map-backed table")
        };
        let p = off + i * DIST_RECORD_BYTES;
        let src = u32::from_le_bytes(slab[p..p + 4].try_into().expect("4 bytes"));
        let dst = u32::from_le_bytes(slab[p + 4..p + 8].try_into().expect("4 bytes"));
        (u64::from(src)) << 32 | u64::from(dst)
    }

    /// The distance bits of image record `i`.
    fn image_dist(&self, i: usize) -> f64 {
        let Repr::Image { slab, off, .. } = &self.repr else {
            unreachable!("image_dist on a map-backed table")
        };
        let p = off + i * DIST_RECORD_BYTES + 8;
        f64::from_bits(u64::from_le_bytes(slab[p..p + 8].try_into().expect("8 bytes")))
    }

    /// The distance bound the table was built with.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of stored pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Map(t) => t.len(),
            Repr::Image { count, .. } => *count,
        }
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shortest distance `src → dst` if within `delta`.
    #[must_use]
    pub fn query(&self, src: NodeId, dst: NodeId) -> Option<f64> {
        match &self.repr {
            Repr::Map(t) => t.get(&(src.0, dst.0)).copied(),
            Repr::Image { count, .. } => {
                let key = (u64::from(src.0)) << 32 | u64::from(dst.0);
                let (mut lo, mut hi) = (0usize, *count);
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    match self.image_key(mid).cmp(&key) {
                        std::cmp::Ordering::Less => lo = mid + 1,
                        std::cmp::Ordering::Greater => hi = mid,
                        std::cmp::Ordering::Equal => return Some(self.image_dist(mid)),
                    }
                }
                None
            }
        }
    }

    /// Visits every stored pair as `(src, dst, dist)`. Map-backed tables
    /// visit in arbitrary (hash) order; image-backed tables visit in key
    /// order. Used by the artifact writer and the loaded-vs-built identity
    /// checks.
    pub fn for_each_pair(&self, mut f: impl FnMut(u32, u32, f64)) {
        match &self.repr {
            Repr::Map(t) => {
                for (&(s, d), &dist) in t {
                    f(s, d, dist);
                }
            }
            Repr::Image { count, .. } => {
                for i in 0..*count {
                    let key = self.image_key(i);
                    #[allow(clippy::cast_possible_truncation)]
                    f((key >> 32) as u32, key as u32, self.image_dist(i));
                }
            }
        }
    }
}

/// Shared, read-only oracle for route distances between on-segment
/// positions; see module docs for the lookup order and sharing model.
#[derive(Debug, Clone)]
pub struct TransitionProvider {
    cache: Arc<DistCache>,
    table: Option<Arc<DistTable>>,
    /// Sharded backend: node distances decompose into intra-shard tables
    /// plus the boundary overlay (see [`crate::shard::ShardedNetwork`]).
    /// Pure table lookups, like `table`, and counted by the same probes.
    sharded: Option<Arc<crate::shard::ShardedNetwork>>,
    /// Table-probe counters (hits = pair in table, misses = beyond delta),
    /// shared across clones like the cache's own counters. Unused without a
    /// table — Dijkstra-backed providers count inside [`DistCache`].
    table_hits: Arc<AtomicU64>,
    table_misses: Arc<AtomicU64>,
    max_route_m: f64,
}

impl TransitionProvider {
    /// A Dijkstra-backed provider with its own fresh cache; searches are
    /// bounded by `max_route_m`.
    #[must_use]
    pub fn dijkstra(max_route_m: f64) -> Self {
        Self::with_cache(Arc::new(DistCache::new()), max_route_m)
    }

    /// A Dijkstra-backed provider reading through an existing shared cache.
    #[must_use]
    pub fn with_cache(cache: Arc<DistCache>, max_route_m: f64) -> Self {
        Self {
            cache,
            table: None,
            sharded: None,
            table_hits: Arc::new(AtomicU64::new(0)),
            table_misses: Arc::new(AtomicU64::new(0)),
            max_route_m,
        }
    }

    /// A table-backed provider: every mid-route distance comes from the
    /// precomputed `table` (pairs beyond its delta are unreachable, exactly
    /// FMM's contract), so no query ever runs a search.
    #[must_use]
    pub fn with_table(table: Arc<DistTable>) -> Self {
        let max_route_m = table.delta();
        Self {
            cache: Arc::new(DistCache::new()),
            table: Some(table),
            sharded: None,
            table_hits: Arc::new(AtomicU64::new(0)),
            table_misses: Arc::new(AtomicU64::new(0)),
            max_route_m,
        }
    }

    /// A shard-backed provider: mid-route distances decompose into
    /// intra-shard table hops plus the boundary overlay
    /// ([`crate::shard::ShardedNetwork::node_dist`]) — pure lookups over
    /// the per-shard tables, no search at query time, same `Some`-iff-
    /// within-delta contract as a whole-graph [`DistTable`].
    #[must_use]
    pub fn with_sharded(sharded: Arc<crate::shard::ShardedNetwork>) -> Self {
        let max_route_m = sharded.delta();
        Self {
            cache: Arc::new(DistCache::new()),
            table: None,
            sharded: Some(sharded),
            table_hits: Arc::new(AtomicU64::new(0)),
            table_misses: Arc::new(AtomicU64::new(0)),
            max_route_m,
        }
    }

    /// The attached precomputed table, if any.
    #[must_use]
    pub fn table(&self) -> Option<&Arc<DistTable>> {
        self.table.as_ref()
    }

    /// The attached sharded network, if any.
    #[must_use]
    pub fn sharded(&self) -> Option<&Arc<crate::shard::ShardedNetwork>> {
        self.sharded.as_ref()
    }

    /// The shared read-through cache (unused while a table is attached).
    #[must_use]
    pub fn cache(&self) -> &Arc<DistCache> {
        &self.cache
    }

    /// The search bound in metres.
    #[must_use]
    pub fn max_route_m(&self) -> f64 {
        self.max_route_m
    }

    /// Lookup counters of the oracle's mid-route stage, for tracking cache
    /// efficacy across runs (surfaced by `bench_inference` /
    /// `bench_streaming`). Table-backed providers count hash probes (hit =
    /// pair within delta); Dijkstra-backed providers report the shared
    /// [`DistCache`]'s counters (hit = memoised, miss = a sweep ran) —
    /// which include every other user of that cache when it is shared.
    /// Same-segment forward moves are answered directly and never counted.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        if self.table.is_some() || self.sharded.is_some() {
            CacheStats {
                hits: self.table_hits.load(Ordering::Relaxed),
                misses: self.table_misses.load(Ordering::Relaxed),
                ..CacheStats::default()
            }
        } else {
            self.cache.stats()
        }
    }

    /// Directed route distance from `a` to `b` in metres: remaining length
    /// of `a`'s segment, plus the shortest node path, plus the offset into
    /// `b`'s segment; same-segment forward moves are measured directly.
    /// `Ok(None)` when the node path is unreachable within the bound;
    /// `Err` when a position names a segment outside the network — the
    /// provider runs on worker threads, so bad ids must surface as values,
    /// never as panics.
    ///
    /// Mutable search state lives entirely in `pool` — one per worker.
    ///
    /// # Errors
    /// [`TransitionError::SegmentOutOfRange`] when `a.seg` or `b.seg` is not
    /// a segment of `net`.
    pub fn route_dist(
        &self,
        net: &RoadNetwork,
        pool: &mut SsspPool,
        a: NetPos,
        b: NetPos,
    ) -> Result<Option<f64>, TransitionError> {
        let out_of_range =
            |seg| TransitionError::SegmentOutOfRange { seg, num_segments: net.num_segments() };
        let sa = net.try_segment(a.seg).ok_or_else(|| out_of_range(a.seg))?;
        let sb = net.try_segment(b.seg).ok_or_else(|| out_of_range(b.seg))?;
        if a.seg == b.seg && b.ratio >= a.ratio {
            return Ok(Some((b.ratio - a.ratio) * sa.length));
        }
        let mid = match (&self.table, &self.sharded) {
            (Some(t), _) => {
                let got = t.query(sa.to, sb.from);
                let counter = if got.is_some() { &self.table_hits } else { &self.table_misses };
                counter.fetch_add(1, Ordering::Relaxed);
                got
            }
            (None, Some(sh)) => {
                let got = sh.node_dist(sa.to, sb.from);
                let counter = if got.is_some() { &self.table_hits } else { &self.table_misses };
                counter.fetch_add(1, Ordering::Relaxed);
                got
            }
            (None, None) => {
                self.cache.node_dist_pooled(net, sa.to, sb.from, self.max_route_m, pool)
            }
        };
        Ok(mid.map(|mid| (1.0 - a.ratio) * sa.length + mid + b.ratio * sb.length))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_city, NetworkConfig};
    use crate::graph::{RoadClass, SegmentId};
    use crate::shortest::{matched_dist_directed, node_dist};
    use trmma_geom::Vec2;

    /// A hand-computable one-way chain: 0 →100m→ 1 →100m→ 2 →100m→ 3 →100m→ 4.
    fn chain5() -> RoadNetwork {
        let pos = (0..5).map(|i| Vec2::new(100.0 * f64::from(i), 0.0)).collect();
        let edges =
            (0..4).map(|i| (NodeId(i), NodeId(i + 1), RoadClass::Local)).collect::<Vec<_>>();
        RoadNetwork::new(pos, edges)
    }

    #[test]
    fn dist_table_size_pinned_on_hand_computed_chain() {
        // Within delta = 250 m each source reaches itself plus up to two
        // successors: {0,1,2}, {1,2,3}, {2,3,4}, {3,4}, {4} → 12 pairs.
        let net = chain5();
        let table = DistTable::build(&net, 250.0);
        assert_eq!(table.len(), 12);
        assert_eq!(table.delta(), 250.0);
        assert_eq!(table.query(NodeId(0), NodeId(2)), Some(200.0));
        assert_eq!(table.query(NodeId(0), NodeId(3)), None, "300 m exceeds delta");
        assert_eq!(table.query(NodeId(1), NodeId(0)), None, "one-way chain");
        for v in 0..5 {
            assert_eq!(table.query(NodeId(v), NodeId(v)), Some(0.0));
        }
    }

    #[test]
    fn dist_table_matches_bounded_dijkstra_on_city() {
        let net = generate_city(&NetworkConfig::with_size(6, 6, 29));
        let delta = 600.0;
        let table = DistTable::build(&net, delta);
        for src in (0..net.num_nodes() as u32).step_by(5) {
            for dst in (0..net.num_nodes() as u32).step_by(7) {
                let exact = node_dist(&net, NodeId(src), NodeId(dst), Weight::Length, delta);
                match (exact, table.query(NodeId(src), NodeId(dst))) {
                    (Some(e), Some(l)) => assert!((e - l).abs() < 1e-9, "{src}->{dst}"),
                    (None, None) => {}
                    other => panic!("mismatch {src}->{dst}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn provider_dijkstra_agrees_with_matched_dist_directed() {
        let net = generate_city(&NetworkConfig::with_size(6, 6, 30));
        let provider = TransitionProvider::dijkstra(5_000.0);
        let mut pool = SsspPool::new();
        let m = net.num_segments() as u32;
        for (s, r1, d, r2) in [(0u32, 0.3, 17u32, 0.6), (5, 0.9, 5, 0.1), (40, 0.0, 3, 0.99)] {
            let a = NetPos::new(SegmentId(s % m), r1);
            let b = NetPos::new(SegmentId(d % m), r2);
            let got = provider.route_dist(&net, &mut pool, a, b).unwrap();
            let want = matched_dist_directed(&net, a, b, 5_000.0, None);
            match (got, want) {
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9, "{a:?}->{b:?}"),
                (None, None) => {}
                other => panic!("reachability mismatch {a:?}->{b:?}: {other:?}"),
            }
        }
        assert!(provider.cache().stats().misses > 0);
    }

    #[test]
    fn provider_table_and_dijkstra_agree_within_delta() {
        let net = generate_city(&NetworkConfig::with_size(6, 6, 31));
        let delta = 5_000.0;
        let dij = TransitionProvider::dijkstra(delta);
        let tab = TransitionProvider::with_table(Arc::new(DistTable::build(&net, delta)));
        assert_eq!(tab.max_route_m(), delta);
        let mut pool = SsspPool::new();
        let m = net.num_segments() as u32;
        for (s, d) in [(0u32, 9u32), (12, 44), (7, 7), (31, 2)] {
            let a = NetPos::new(SegmentId(s % m), 0.25);
            let b = NetPos::new(SegmentId(d % m), 0.75);
            let x = dij.route_dist(&net, &mut pool, a, b).unwrap();
            let y = tab.route_dist(&net, &mut pool, a, b).unwrap();
            match (x, y) {
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9),
                (None, None) => {}
                other => panic!("oracle mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn provider_stats_count_table_probes_and_cache_lookups() {
        let net = chain5();
        let mut pool = SsspPool::new();
        // Table-backed: a within-delta pair counts a hit, a beyond-delta
        // pair counts a miss.
        let tab = TransitionProvider::with_table(Arc::new(DistTable::build(&net, 150.0)));
        let near = (NetPos::new(SegmentId(0), 0.5), NetPos::new(SegmentId(1), 0.5));
        let far = (NetPos::new(SegmentId(0), 0.5), NetPos::new(SegmentId(3), 0.5));
        assert!(tab.route_dist(&net, &mut pool, near.0, near.1).unwrap().is_some());
        assert!(tab.route_dist(&net, &mut pool, far.0, far.1).unwrap().is_none());
        assert_eq!(tab.stats(), CacheStats { hits: 1, misses: 1, ..CacheStats::default() });
        // Clones share the counters (one oracle, many handles).
        let clone = tab.clone();
        assert!(clone.route_dist(&net, &mut pool, near.0, near.1).unwrap().is_some());
        assert_eq!(tab.stats(), CacheStats { hits: 2, misses: 1, ..CacheStats::default() });
        // Dijkstra-backed: stats delegate to the shared DistCache.
        let dij = TransitionProvider::dijkstra(5_000.0);
        assert!(dij.route_dist(&net, &mut pool, near.0, near.1).unwrap().is_some());
        assert!(dij.route_dist(&net, &mut pool, near.0, near.1).unwrap().is_some());
        assert_eq!(dij.stats(), dij.cache().stats());
        let stats = dij.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn provider_same_segment_forward_is_direct() {
        let net = chain5();
        let provider = TransitionProvider::dijkstra(1e9);
        let mut pool = SsspPool::new();
        let seg = SegmentId(0);
        let d = provider
            .route_dist(&net, &mut pool, NetPos::new(seg, 0.2), NetPos::new(seg, 0.7))
            .unwrap()
            .unwrap();
        assert!((d - 50.0).abs() < 1e-9);
        // Direct answers never touch the cache.
        assert_eq!(provider.cache().stats().total(), 0);
    }

    #[test]
    fn provider_rejects_out_of_range_segment_instead_of_panicking() {
        // Regression: a segment id from outside the network's own indexes
        // (wire input, snapshot, artifact) used to panic the worker via a
        // direct index; it must surface as a typed error on both endpoints.
        let net = chain5();
        let provider = TransitionProvider::dijkstra(1e9);
        let mut pool = SsspPool::new();
        let bogus = SegmentId(net.num_segments() as u32 + 7);
        let ok = NetPos::new(SegmentId(0), 0.5);
        for (a, b) in [(NetPos::new(bogus, 0.5), ok), (ok, NetPos::new(bogus, 0.5))] {
            assert_eq!(
                provider.route_dist(&net, &mut pool, a, b),
                Err(TransitionError::SegmentOutOfRange {
                    seg: bogus,
                    num_segments: net.num_segments()
                })
            );
        }
        // And the error formats without panicking.
        let msg = provider.route_dist(&net, &mut pool, NetPos::new(bogus, 0.5), ok).unwrap_err();
        assert!(msg.to_string().contains("out of range"));
    }

    /// Packs a table's pairs into the image record layout, sorted.
    fn pack_image(table: &DistTable) -> Vec<u8> {
        let mut pairs = Vec::new();
        table.for_each_pair(|s, d, dist| pairs.push((s, d, dist)));
        pairs.sort_by_key(|&(s, d, _)| (u64::from(s)) << 32 | u64::from(d));
        let mut out = Vec::with_capacity(pairs.len() * DIST_RECORD_BYTES);
        for (s, d, dist) in pairs {
            out.extend_from_slice(&s.to_le_bytes());
            out.extend_from_slice(&d.to_le_bytes());
            out.extend_from_slice(&dist.to_bits().to_le_bytes());
        }
        out
    }

    #[test]
    fn image_backed_table_answers_identically_to_built() {
        let net = generate_city(&NetworkConfig::with_size(6, 6, 33));
        let built = DistTable::build(&net, 700.0);
        let image = pack_image(&built);
        let loaded = DistTable::from_image(Arc::new(image), 0, built.len(), built.delta()).unwrap();
        assert_eq!(loaded.len(), built.len());
        assert_eq!(loaded.delta(), built.delta());
        for src in 0..net.num_nodes() as u32 {
            for dst in 0..net.num_nodes() as u32 {
                let (b, l) =
                    (built.query(NodeId(src), NodeId(dst)), loaded.query(NodeId(src), NodeId(dst)));
                assert_eq!(b.map(f64::to_bits), l.map(f64::to_bits), "{src}->{dst}");
            }
        }
        // for_each_pair over the image visits key order and round-trips.
        let mut last = None;
        let mut n = 0usize;
        loaded.for_each_pair(|s, d, dist| {
            let key = (u64::from(s)) << 32 | u64::from(d);
            assert!(last.is_none_or(|l| l < key), "key order");
            last = Some(key);
            assert_eq!(built.query(NodeId(s), NodeId(d)).map(f64::to_bits), Some(dist.to_bits()));
            n += 1;
        });
        assert_eq!(n, built.len());
    }

    #[test]
    fn image_rejects_unsorted_and_out_of_bounds() {
        let net = chain5();
        let built = DistTable::build(&net, 250.0);
        let image = pack_image(&built);
        let n = built.len();
        // Swapping two records breaks strict ordering.
        let mut bad = image.clone();
        bad.copy_within(0..DIST_RECORD_BYTES, DIST_RECORD_BYTES);
        assert_eq!(
            DistTable::from_image(Arc::new(bad), 0, n, 250.0).unwrap_err(),
            DistImageError::Unsorted
        );
        // A duplicated key (non-strict) is also rejected.
        let mut dup = image.clone();
        let (first, rest) = dup.split_at_mut(DIST_RECORD_BYTES);
        rest[..DIST_RECORD_BYTES].copy_from_slice(first);
        assert_eq!(
            DistTable::from_image(Arc::new(dup), 0, n, 250.0).unwrap_err(),
            DistImageError::Unsorted
        );
        // Count overrunning the slab is rejected, as is a bad offset.
        let slab = Arc::new(image);
        assert_eq!(
            DistTable::from_image(Arc::clone(&slab), 0, n + 1, 250.0).unwrap_err(),
            DistImageError::OutOfBounds
        );
        assert_eq!(
            DistTable::from_image(Arc::clone(&slab), 8, n, 250.0).unwrap_err(),
            DistImageError::OutOfBounds
        );
        assert_eq!(
            DistTable::from_image(Arc::clone(&slab), usize::MAX, 1, 250.0).unwrap_err(),
            DistImageError::OutOfBounds
        );
        // The pristine image still loads.
        assert!(DistTable::from_image(slab, 0, n, 250.0).is_ok());
    }
}
