//! Plain-text network interchange.
//!
//! A tiny line-oriented format so user-supplied networks (e.g. converted
//! from OpenStreetMap) can be loaded without pulling in a parser dependency:
//!
//! ```text
//! # trmma-roadnet v1
//! node <x_m> <y_m>
//! seg <from_node> <to_node> <class: A|C|L>
//! ```
//!
//! Node ids are implicit line order. Geometry and lengths are re-derived on
//! load, so the file stays minimal and the loaded network is always
//! internally consistent.

use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

use crate::graph::{NodeId, RoadClass, RoadNetwork};
use trmma_geom::Vec2;

/// Errors raised while reading a network file.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed line with its 1-based number and a description.
    Parse { line: usize, msg: String },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn class_code(c: RoadClass) -> char {
    match c {
        RoadClass::Arterial => 'A',
        RoadClass::Collector => 'C',
        RoadClass::Local => 'L',
    }
}

fn parse_class(s: &str, line: usize) -> Result<RoadClass, IoError> {
    match s {
        "A" => Ok(RoadClass::Arterial),
        "C" => Ok(RoadClass::Collector),
        "L" => Ok(RoadClass::Local),
        other => Err(IoError::Parse { line, msg: format!("unknown road class `{other}`") }),
    }
}

/// Serialises `net` to the text format.
///
/// # Errors
/// Propagates writer failures.
pub fn write_network<W: Write>(net: &RoadNetwork, mut w: W) -> Result<(), IoError> {
    writeln!(w, "# trmma-roadnet v1")?;
    for id in 0..net.num_nodes() {
        let p = net.node_pos(NodeId(id as u32));
        writeln!(w, "node {} {}", p.x, p.y)?;
    }
    for s in net.segments() {
        writeln!(w, "seg {} {} {}", s.from.0, s.to.0, class_code(s.class))?;
    }
    Ok(())
}

/// Parses a network from the text format.
///
/// # Errors
/// Returns [`IoError::Parse`] on malformed input, [`IoError::Io`] on reader
/// failures.
pub fn read_network<R: Read>(r: R) -> Result<RoadNetwork, IoError> {
    let reader = BufReader::new(r);
    let mut nodes: Vec<Vec2> = Vec::new();
    let mut edges: Vec<(NodeId, NodeId, RoadClass)> = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = parts.next().unwrap_or_default();
        let parse_f64 = |tok: Option<&str>, what: &str| -> Result<f64, IoError> {
            tok.ok_or_else(|| IoError::Parse { line: line_no, msg: format!("missing {what}") })?
                .parse()
                .map_err(|_| IoError::Parse { line: line_no, msg: format!("bad {what}") })
        };
        let parse_u32 = |tok: Option<&str>, what: &str| -> Result<u32, IoError> {
            tok.ok_or_else(|| IoError::Parse { line: line_no, msg: format!("missing {what}") })?
                .parse()
                .map_err(|_| IoError::Parse { line: line_no, msg: format!("bad {what}") })
        };
        match kind {
            "node" => {
                let x = parse_f64(parts.next(), "x")?;
                let y = parse_f64(parts.next(), "y")?;
                nodes.push(Vec2::new(x, y));
            }
            "seg" => {
                let from = parse_u32(parts.next(), "from")?;
                let to = parse_u32(parts.next(), "to")?;
                let class = parse_class(
                    parts
                        .next()
                        .ok_or(IoError::Parse { line: line_no, msg: "missing class".into() })?,
                    line_no,
                )?;
                if from as usize >= nodes.len() || to as usize >= nodes.len() {
                    return Err(IoError::Parse {
                        line: line_no,
                        msg: "segment references undeclared node (nodes must precede segs)".into(),
                    });
                }
                edges.push((NodeId(from), NodeId(to), class));
            }
            other => {
                return Err(IoError::Parse {
                    line: line_no,
                    msg: format!("unknown record kind `{other}`"),
                })
            }
        }
    }
    Ok(RoadNetwork::new(nodes, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_city, NetworkConfig};

    #[test]
    fn round_trip_preserves_network() {
        let net = generate_city(&NetworkConfig::with_size(6, 6, 11));
        let mut buf = Vec::new();
        write_network(&net, &mut buf).unwrap();
        let loaded = read_network(buf.as_slice()).unwrap();
        assert_eq!(loaded.num_nodes(), net.num_nodes());
        assert_eq!(loaded.num_segments(), net.num_segments());
        for (a, b) in loaded.segments().iter().zip(net.segments().iter()) {
            assert_eq!(a.from, b.from);
            assert_eq!(a.to, b.to);
            assert_eq!(a.class, b.class);
            assert!((a.length - b.length).abs() < 1e-9);
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\nnode 0 0\nnode 100 0\n# mid comment\nseg 0 1 A\n";
        let net = read_network(text.as_bytes()).unwrap();
        assert_eq!(net.num_nodes(), 2);
        assert_eq!(net.num_segments(), 1);
        assert_eq!(net.segments()[0].class, RoadClass::Arterial);
    }

    #[test]
    fn rejects_bad_class() {
        let text = "node 0 0\nnode 1 1\nseg 0 1 X\n";
        let err = read_network(text.as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 3, .. }), "{err}");
    }

    #[test]
    fn rejects_forward_reference() {
        let text = "node 0 0\nseg 0 1 L\nnode 1 1\n";
        let err = read_network(text.as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn rejects_unknown_record() {
        let err = read_network("way 1 2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }));
    }

    #[test]
    fn error_display_is_informative() {
        let err = read_network("node zero 0\n".as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1"), "{msg}");
    }
}
