//! Grid-tiled road-network shards with a boundary-node overlay.
//!
//! Everything upstream of this module assumes one in-memory
//! [`RoadNetwork`] small enough to own per process. For continent-scale
//! maps the graph must be **partitioned**: a [`ShardPlan`] (produced by a
//! pluggable [`CutStrategy`]) assigns every node to a tile, and
//! [`ShardedNetwork`] gives each tile its own R-tree, its own
//! [`SsspPool`], its own bounded intra-shard [`DistTable`], and its own
//! [`TransitionProvider`] — while cross-shard route distances are stitched
//! through a **boundary-node overlay**:
//!
//! * a *cross edge* is a segment whose endpoints live in different shards;
//! * the **exit borders** of shard `s` are its nodes with an outgoing
//!   cross edge; the **entry borders** are nodes with an incoming one;
//! * the overlay stores the full-graph bounded distance from every exit
//!   border to every entry border (computed with the same machinery as
//!   [`DistTable::build`], one bounded sweep per exit border).
//!
//! A distance query `u → v` then decomposes, minimising over border
//! pairs:
//!
//! ```text
//! d(u, v) = min( intra_s(u, v)                       [same shard only],
//!                min over x ∈ exit(s), y ∈ entry(t) of
//!                    intra_s(u, x) + overlay(x, y) + intra_t(y, v) )
//! ```
//!
//! **Exactness.** Any optimal path within the bound either stays in `s`
//! (covered by `intra_s`, which is the bounded Dijkstra on the subgraph
//! induced by `s`) or crosses a shard boundary. In the latter case let
//! `x` be the tail of its *first* cross edge and `y` the head of its
//! *last*: the prefix `u → x` uses only nodes of `s` (every earlier edge
//! is intra-shard), the suffix `y → v` only nodes of `t`, and the middle
//! `x → y` is a full-graph path — so `intra_s(u,x) + overlay(x,y) +
//! intra_t(y,v)` is at most the path's length, while every candidate sum
//! is at least the true distance by the triangle inequality. The minimum
//! therefore *equals* the whole-graph distance, and each leg of an
//! optimal `≤ δ` path is itself `≤ δ`, so all three lookups land inside
//! the δ-bounded tables. Note the border-pair term also covers same-shard
//! queries whose optimal path *leaves and re-enters* the shard: the
//! overlay is a full-graph distance, so `x, y` may belong to the same
//! shard. Floating-point caveat: the decomposed sum associates
//! differently from the monolithic Dijkstra's running sum, so bitwise
//! identity holds exactly when edge lengths are FP-exact (e.g. integer
//! metres — see `tests/props_shard.rs`); on arbitrary geometry the two
//! agree to within ulps.
//!
//! Candidate search works per shard too: each shard's R-tree indexes the
//! segments it owns (a segment belongs to the shard of its `from` node),
//! and `trmma_traj::CandidateFinder` merges per-shard ties-inclusive
//! top-k results into the same canonical candidate set a whole-network
//! tree produces.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use trmma_rtree::{IndexedSegment, RTree};

use crate::graph::{NodeId, RoadNetwork, SegmentId};
use crate::shortest::{SsspPool, Weight};
use crate::transition::{DistTable, TransitionProvider};

/// Produces a node-to-shard assignment for a network. Implementations
/// must be deterministic: the same strategy on the same network yields
/// the same cut (plans travel through artifacts and must reconstruct
/// identically).
pub trait CutStrategy {
    /// `(num_shards, assignment)` where `assignment[i]` is the shard of
    /// node `i` and every label is `< num_shards`. Shards may be empty.
    fn cut(&self, net: &RoadNetwork) -> (usize, Vec<u32>);
}

/// Axis-aligned grid cut: the network bbox is divided into
/// `tiles_x × tiles_y` cells and every node is assigned the cell that
/// contains it. `seed` jitters the cut lines by a deterministic fraction
/// of a cell, so property tests exercise many distinct boundaries on one
/// network without losing spatial contiguity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridCut {
    /// Number of tile columns (min 1).
    pub tiles_x: usize,
    /// Number of tile rows (min 1).
    pub tiles_y: usize,
    /// Deterministic jitter applied to the cut lines.
    pub seed: u64,
}

/// SplitMix64 step — a cheap deterministic hash for cut jitter and the
/// [`HashCut`] assignment.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl GridCut {
    /// A grid cut with `tiles_x * tiles_y == n` tiles, picking the factor
    /// pair closest to square (falling back to `1 × n` for primes) — the
    /// shape behind the bench binaries' `--shards N` flag.
    #[must_use]
    pub fn square(n: usize, seed: u64) -> Self {
        let n = n.max(1);
        let mut best = (1usize, n);
        let mut a = 1usize;
        while a * a <= n {
            if n.is_multiple_of(a) {
                best = (a, n / a);
            }
            a += 1;
        }
        Self { tiles_x: best.1, tiles_y: best.0, seed }
    }
}

impl CutStrategy for GridCut {
    fn cut(&self, net: &RoadNetwork) -> (usize, Vec<u32>) {
        let (tx, ty) = (self.tiles_x.max(1), self.tiles_y.max(1));
        let num = tx * ty;
        let bbox = net.bbox();
        let w = (bbox.max.x - bbox.min.x).max(1e-9);
        let h = (bbox.max.y - bbox.min.y).max(1e-9);
        // Jitter each cut axis by up to half a cell, derived from the seed.
        let jx = (splitmix64(self.seed) >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        let jy = (splitmix64(self.seed ^ 0xdead_beef) >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        let assign = (0..net.num_nodes() as u32)
            .map(|i| {
                let p = net.node_pos(NodeId(i));
                let fx = (p.x - bbox.min.x) / w * tx as f64 + jx;
                let fy = (p.y - bbox.min.y) / h * ty as f64 + jy;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let cx = (fx.floor().max(0.0) as usize).min(tx - 1);
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let cy = (fy.floor().max(0.0) as usize).min(ty - 1);
                (cy * tx + cx) as u32
            })
            .collect();
        (num, assign)
    }
}

/// Adversarial cut: every node hashed independently to a shard, so almost
/// every edge is a cross edge. Useless for locality, invaluable for
/// correctness tests — the overlay must carry essentially all traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashCut {
    /// Number of shards (min 1).
    pub num_shards: usize,
    /// Hash seed.
    pub seed: u64,
}

impl CutStrategy for HashCut {
    fn cut(&self, net: &RoadNetwork) -> (usize, Vec<u32>) {
        let n = self.num_shards.max(1);
        let assign = (0..net.num_nodes() as u64)
            .map(|i| {
                #[allow(clippy::cast_possible_truncation)]
                let s = (splitmix64(i ^ self.seed.rotate_left(17)) % n as u64) as u32;
                s
            })
            .collect();
        (n, assign)
    }
}

/// A validated node-to-shard assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    num_shards: usize,
    shard_of: Vec<u32>,
}

impl ShardPlan {
    /// Runs `strategy` over `net` and validates the assignment.
    ///
    /// # Panics
    /// Panics if the strategy emits a label `>= num_shards` or the wrong
    /// number of labels — both are implementation bugs of the strategy,
    /// not data errors.
    #[must_use]
    pub fn new(net: &RoadNetwork, strategy: &dyn CutStrategy) -> Self {
        let (num_shards, shard_of) = strategy.cut(net);
        Self::from_assignment(num_shards, shard_of, net.num_nodes())
    }

    /// Adopts a precomputed assignment (e.g. deserialized from an
    /// artifact).
    ///
    /// # Panics
    /// Panics if `shard_of.len() != num_nodes`, `num_shards == 0`, or any
    /// label is out of range.
    #[must_use]
    pub fn from_assignment(num_shards: usize, shard_of: Vec<u32>, num_nodes: usize) -> Self {
        assert!(num_shards >= 1, "a plan needs at least one shard");
        assert_eq!(shard_of.len(), num_nodes, "one shard label per node");
        assert!(shard_of.iter().all(|&s| (s as usize) < num_shards), "shard label out of range");
        Self { num_shards, shard_of }
    }

    /// Number of shards (some may own no nodes).
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard owning node `n`.
    ///
    /// # Panics
    /// Panics if `n` is not a node of the planned network.
    #[must_use]
    pub fn shard_of(&self, n: NodeId) -> u32 {
        self.shard_of[n.idx()]
    }

    /// The raw per-node assignment, indexed by node id.
    #[must_use]
    pub fn assignment(&self) -> &[u32] {
        &self.shard_of
    }
}

/// One tile of a [`ShardedNetwork`]: the segments and nodes it owns, its
/// R-tree over those segments, its border nodes, its bounded intra-shard
/// distance table, and its own search pool / transition provider.
#[derive(Debug)]
pub struct Shard {
    /// Global ids of the nodes assigned to this shard, ascending.
    nodes: Vec<NodeId>,
    /// Global ids of the segments owned by this shard (a segment belongs
    /// to the shard of its `from` node), ascending.
    segments: Vec<SegmentId>,
    /// R-tree over the owned segments; `IndexedSegment::id` is the
    /// *global* segment id.
    tree: RTree<IndexedSegment>,
    /// Nodes of this shard with an outgoing cross edge, ascending.
    exit_borders: Vec<NodeId>,
    /// Nodes of this shard with an incoming cross edge, ascending.
    entry_borders: Vec<NodeId>,
    /// Bounded all-pairs distances on the subgraph induced by `nodes`
    /// (keys are global node ids).
    intra: Arc<DistTable>,
    /// Intra-shard transition oracle over `intra`.
    provider: TransitionProvider,
    /// The shard's own search pool — used to build `intra` and this
    /// shard's overlay rows, retained for shard-local searches.
    pool: Mutex<SsspPool>,
}

impl Shard {
    /// Global node ids assigned to this shard, ascending.
    #[must_use]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Global segment ids owned by this shard, ascending.
    #[must_use]
    pub fn segments(&self) -> &[SegmentId] {
        &self.segments
    }

    /// The shard's R-tree; item ids are global segment ids.
    #[must_use]
    pub fn tree(&self) -> &RTree<IndexedSegment> {
        &self.tree
    }

    /// Exit borders: shard nodes with an outgoing cross edge.
    #[must_use]
    pub fn exit_borders(&self) -> &[NodeId] {
        &self.exit_borders
    }

    /// Entry borders: shard nodes with an incoming cross edge.
    #[must_use]
    pub fn entry_borders(&self) -> &[NodeId] {
        &self.entry_borders
    }

    /// The bounded intra-shard distance table (global node ids).
    #[must_use]
    pub fn intra(&self) -> &Arc<DistTable> {
        &self.intra
    }

    /// The shard's intra-shard transition provider.
    #[must_use]
    pub fn provider(&self) -> &TransitionProvider {
        &self.provider
    }

    /// Runs `f` with exclusive access to the shard's own [`SsspPool`].
    pub fn with_pool<R>(&self, f: impl FnOnce(&mut SsspPool) -> R) -> R {
        f(&mut self.pool.lock().expect("shard pool poisoned"))
    }
}

/// Per-shard size accounting for the bench rows: how much graph, border
/// and table state one tile keeps resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Nodes assigned to the shard.
    pub nodes: usize,
    /// Segments owned by the shard.
    pub segments: usize,
    /// Exit-border nodes.
    pub border_exits: usize,
    /// Entry-border nodes.
    pub border_entries: usize,
    /// Pairs in the intra-shard distance table.
    pub intra_pairs: usize,
    /// Approximate resident bytes of the shard's table + tree + id lists.
    pub resident_bytes: usize,
}

/// A road network partitioned into shards with a boundary-node overlay;
/// see the module docs for the decomposition and its exactness argument.
#[derive(Debug)]
pub struct ShardedNetwork {
    net: Arc<RoadNetwork>,
    plan: ShardPlan,
    delta: f64,
    shards: Vec<Shard>,
    /// Full-graph bounded distances from every exit border to every entry
    /// border (global node ids).
    overlay: Arc<DistTable>,
}

impl ShardedNetwork {
    /// Partitions `net` under `plan` and precomputes every shard's intra
    /// table plus the border overlay, all bounded by `delta` — the same
    /// bound a monolithic [`DistTable::build`] would use.
    #[must_use]
    pub fn build(net: Arc<RoadNetwork>, plan: ShardPlan, delta: f64) -> Self {
        assert_eq!(plan.assignment().len(), net.num_nodes(), "plan is for another network");
        let num = plan.num_shards();
        let shard_of = |n: NodeId| plan.shard_of(n);

        // Owned nodes and segments per shard; borders from cross edges.
        let mut nodes: Vec<Vec<NodeId>> = vec![Vec::new(); num];
        let mut segments: Vec<Vec<SegmentId>> = vec![Vec::new(); num];
        let mut exits: Vec<HashSet<u32>> = vec![HashSet::new(); num];
        let mut entries: Vec<HashSet<u32>> = vec![HashSet::new(); num];
        for i in 0..net.num_nodes() as u32 {
            nodes[shard_of(NodeId(i)) as usize].push(NodeId(i));
        }
        for seg_id in net.segment_ids() {
            let seg = net.segment(seg_id);
            let (sf, st) = (shard_of(seg.from), shard_of(seg.to));
            segments[sf as usize].push(seg_id);
            if sf != st {
                exits[sf as usize].insert(seg.from.0);
                entries[st as usize].insert(seg.to.0);
            }
        }

        // The overlay needs distances to *every* entry border, whichever
        // shard it belongs to (a same-shard path may leave and re-enter).
        let all_entries: HashSet<u32> = entries.iter().flatten().copied().collect();

        let mut shards = Vec::with_capacity(num);
        let mut overlay_pairs: HashMap<(u32, u32), f64> = HashMap::new();
        let mut reach = Vec::new();
        for s in 0..num {
            let mut pool = SsspPool::new();
            // Intra table: bounded Dijkstra restricted to the shard's own
            // node set, one sweep per owned node through the shard's pool.
            let mut intra = HashMap::new();
            for &src in &nodes[s] {
                pool.bounded_sssp_filtered_into(
                    &net,
                    src,
                    Weight::Length,
                    delta,
                    |n| shard_of(n) as usize == s,
                    &mut reach,
                );
                for &(dst, d) in &reach {
                    intra.insert((src.0, dst.0), d);
                }
            }
            // Overlay rows: a *full-graph* bounded sweep per exit border,
            // filtered to entry borders.
            let mut exit_sorted: Vec<u32> = exits[s].iter().copied().collect();
            exit_sorted.sort_unstable();
            for &x in &exit_sorted {
                pool.bounded_sssp_into(&net, NodeId(x), Weight::Length, delta, &mut reach);
                for &(y, d) in &reach {
                    if all_entries.contains(&y.0) {
                        overlay_pairs.insert((x, y.0), d);
                    }
                }
            }
            let mut entry_sorted: Vec<u32> = entries[s].iter().copied().collect();
            entry_sorted.sort_unstable();
            let tree = RTree::bulk_load(
                segments[s]
                    .iter()
                    .map(|&id| IndexedSegment { id: id.0, line: net.segment(id).line })
                    .collect(),
            );
            let intra = Arc::new(DistTable::from_pairs(intra, delta));
            shards.push(Shard {
                nodes: std::mem::take(&mut nodes[s]),
                segments: std::mem::take(&mut segments[s]),
                tree,
                exit_borders: exit_sorted.into_iter().map(NodeId).collect(),
                entry_borders: entry_sorted.into_iter().map(NodeId).collect(),
                provider: TransitionProvider::with_table(Arc::clone(&intra)),
                intra,
                pool: Mutex::new(pool),
            });
        }
        let overlay = Arc::new(DistTable::from_pairs(overlay_pairs, delta));
        Self { net, plan, delta, shards, overlay }
    }

    /// Reassembles a sharded network from precomputed tables (the artifact
    /// load path): borders, segment lists and R-trees are derived from
    /// `net` + `plan` exactly as [`ShardedNetwork::build`] derives them,
    /// while the intra tables and overlay are adopted as-is (typically
    /// zero-copy image-backed). Answers are bitwise-identical to a fresh
    /// build when the tables came from one.
    ///
    /// # Panics
    /// Panics if `intra.len() != plan.num_shards()` or a table's delta
    /// disagrees with `delta`.
    #[must_use]
    pub fn from_parts(
        net: Arc<RoadNetwork>,
        plan: ShardPlan,
        delta: f64,
        intra: Vec<DistTable>,
        overlay: DistTable,
    ) -> Self {
        assert_eq!(intra.len(), plan.num_shards(), "one intra table per shard");
        assert!(
            intra.iter().chain(std::iter::once(&overlay)).all(|t| t.delta() == delta),
            "table delta mismatch"
        );
        let num = plan.num_shards();
        let shard_of = |n: NodeId| plan.shard_of(n);
        let mut nodes: Vec<Vec<NodeId>> = vec![Vec::new(); num];
        let mut segments: Vec<Vec<SegmentId>> = vec![Vec::new(); num];
        let mut exits: Vec<HashSet<u32>> = vec![HashSet::new(); num];
        let mut entries: Vec<HashSet<u32>> = vec![HashSet::new(); num];
        for i in 0..net.num_nodes() as u32 {
            nodes[shard_of(NodeId(i)) as usize].push(NodeId(i));
        }
        for seg_id in net.segment_ids() {
            let seg = net.segment(seg_id);
            let (sf, st) = (shard_of(seg.from), shard_of(seg.to));
            segments[sf as usize].push(seg_id);
            if sf != st {
                exits[sf as usize].insert(seg.from.0);
                entries[st as usize].insert(seg.to.0);
            }
        }
        let shards = intra
            .into_iter()
            .enumerate()
            .map(|(s, table)| {
                let tree = RTree::bulk_load(
                    segments[s]
                        .iter()
                        .map(|&id| IndexedSegment { id: id.0, line: net.segment(id).line })
                        .collect(),
                );
                let mut exit_sorted: Vec<u32> = exits[s].iter().copied().collect();
                exit_sorted.sort_unstable();
                let mut entry_sorted: Vec<u32> = entries[s].iter().copied().collect();
                entry_sorted.sort_unstable();
                let intra = Arc::new(table);
                Shard {
                    nodes: std::mem::take(&mut nodes[s]),
                    segments: std::mem::take(&mut segments[s]),
                    tree,
                    exit_borders: exit_sorted.into_iter().map(NodeId).collect(),
                    entry_borders: entry_sorted.into_iter().map(NodeId).collect(),
                    provider: TransitionProvider::with_table(Arc::clone(&intra)),
                    intra,
                    pool: Mutex::new(SsspPool::new()),
                }
            })
            .collect();
        Self { net, plan, delta, shards, overlay: Arc::new(overlay) }
    }

    /// The underlying whole network (geometry and adjacency are shared,
    /// not copied, so decoders keep reading segments through it).
    #[must_use]
    pub fn net(&self) -> &Arc<RoadNetwork> {
        &self.net
    }

    /// The node-to-shard assignment.
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The distance bound every table was built with.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in id order.
    #[must_use]
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The border-to-border overlay table (global node ids).
    #[must_use]
    pub fn overlay(&self) -> &Arc<DistTable> {
        &self.overlay
    }

    /// Bounded shortest distance `src → dst`, decomposed over shards:
    /// intra-shard hop + overlay lookup + intra-shard hop, minimised over
    /// border pairs (plus the direct intra table when both endpoints share
    /// a shard). `Some` iff the whole-graph distance is within `delta` —
    /// the same contract as querying a monolithic
    /// [`DistTable::build`]`(net, delta)` table.
    #[must_use]
    pub fn node_dist(&self, src: NodeId, dst: NodeId) -> Option<f64> {
        let s = &self.shards[self.plan.shard_of(src) as usize];
        let t = &self.shards[self.plan.shard_of(dst) as usize];
        let mut best = f64::INFINITY;
        if std::ptr::eq(s, t) {
            if let Some(d) = s.intra.query(src, dst) {
                best = d;
            }
        }
        for &x in &s.exit_borders {
            let Some(head) = s.intra.query(src, x) else { continue };
            for &y in &t.entry_borders {
                let Some(mid) = self.overlay.query(x, y) else { continue };
                let Some(tail) = t.intra.query(y, dst) else { continue };
                let cand = head + mid + tail;
                if cand < best {
                    best = cand;
                }
            }
        }
        if best <= self.delta {
            Some(best)
        } else {
            None
        }
    }

    /// Per-shard size accounting, in shard-id order.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|sh| ShardStats {
                nodes: sh.nodes.len(),
                segments: sh.segments.len(),
                border_exits: sh.exit_borders.len(),
                border_entries: sh.entry_borders.len(),
                intra_pairs: sh.intra.len(),
                resident_bytes: sh.intra.resident_bytes()
                    + sh.segments.len() * std::mem::size_of::<IndexedSegment>()
                    + (sh.nodes.len() + sh.exit_borders.len() + sh.entry_borders.len()) * 4,
            })
            .collect()
    }

    /// Total resident bytes across all shards plus the overlay.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.shard_stats().iter().map(|s| s.resident_bytes).sum::<usize>()
            + self.overlay.resident_bytes()
    }
}

/// Resident-bytes estimate of the monolithic deployment a
/// [`ShardedNetwork`] replaces: one whole-network R-tree plus (optionally)
/// one whole-graph distance table. Counts the same structures the same
/// way as [`ShardedNetwork::resident_bytes`], so the sharded-vs-monolithic
/// comparison rows in the benchmark documents are apples to apples.
#[must_use]
pub fn monolithic_resident_bytes(net: &RoadNetwork, table: Option<&DistTable>) -> usize {
    net.num_segments() * std::mem::size_of::<IndexedSegment>()
        + table.map_or(0, DistTable::resident_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_city, NetworkConfig};
    use crate::graph::RoadClass;
    use trmma_geom::Vec2;

    /// The transition-module chain: 0 →100m→ 1 →100m→ 2 →100m→ 3 →100m→ 4,
    /// cut into two shards {0,1,2} | {3,4}. One cross edge 2→3, so shard 0
    /// has exit border {2}, shard 1 entry border {3}.
    fn chain5_two_shards() -> (Arc<RoadNetwork>, ShardedNetwork) {
        let pos = (0..5).map(|i| Vec2::new(100.0 * f64::from(i), 0.0)).collect();
        let edges =
            (0..4).map(|i| (NodeId(i), NodeId(i + 1), RoadClass::Local)).collect::<Vec<_>>();
        let net = Arc::new(RoadNetwork::new(pos, edges));
        let plan = ShardPlan::from_assignment(2, vec![0, 0, 0, 1, 1], 5);
        let sharded = ShardedNetwork::build(Arc::clone(&net), plan, 250.0);
        (net, sharded)
    }

    #[test]
    fn pinned_two_shard_chain_decomposes_by_hand() {
        let (_, sh) = chain5_two_shards();
        assert_eq!(sh.num_shards(), 2);
        assert_eq!(sh.shards()[0].exit_borders(), &[NodeId(2)]);
        assert_eq!(sh.shards()[0].entry_borders(), &[] as &[NodeId]);
        assert_eq!(sh.shards()[1].exit_borders(), &[] as &[NodeId]);
        assert_eq!(sh.shards()[1].entry_borders(), &[NodeId(3)]);
        // Intra shard 0 within 250 m: {0,1,2} one-way → 0→1, 0→2, 1→2 + selves.
        assert_eq!(sh.shards()[0].intra().len(), 6);
        // Intra shard 1: {3,4} → 3→4 + selves.
        assert_eq!(sh.shards()[1].intra().len(), 3);
        // Overlay: exit 2 reaches entry 3 at exactly 100 m.
        assert_eq!(sh.overlay().len(), 1);
        assert_eq!(sh.overlay().query(NodeId(2), NodeId(3)), Some(100.0));
        // Cross-shard: 2 → 4 = intra(2,2)=0 + overlay(2,3)=100 + intra(3,4)=100.
        assert_eq!(sh.node_dist(NodeId(2), NodeId(4)), Some(200.0));
        assert_eq!(sh.node_dist(NodeId(1), NodeId(4)), None, "300 m exceeds delta");
        assert_eq!(sh.node_dist(NodeId(1), NodeId(3)), Some(200.0));
        // Same-shard answers come from the intra table.
        assert_eq!(sh.node_dist(NodeId(0), NodeId(2)), Some(200.0));
        assert_eq!(sh.node_dist(NodeId(3), NodeId(4)), Some(100.0));
        // One-way chain: nothing goes backwards.
        assert_eq!(sh.node_dist(NodeId(4), NodeId(0)), None);
        // The whole-graph table agrees pair-for-pair.
        let mono = DistTable::build(sh.net(), 250.0);
        for s in 0..5u32 {
            for d in 0..5u32 {
                assert_eq!(
                    sh.node_dist(NodeId(s), NodeId(d)).map(f64::to_bits),
                    mono.query(NodeId(s), NodeId(d)).map(f64::to_bits),
                    "{s}->{d}"
                );
            }
        }
    }

    #[test]
    fn sharded_dist_matches_monolithic_table_on_city() {
        let net = Arc::new(generate_city(&NetworkConfig::with_size(6, 6, 29)));
        let delta = 600.0;
        let mono = DistTable::build(&net, delta);
        for (cut, label) in [
            (Box::new(GridCut { tiles_x: 2, tiles_y: 2, seed: 9 }) as Box<dyn CutStrategy>, "grid"),
            (Box::new(HashCut { num_shards: 5, seed: 3 }) as Box<dyn CutStrategy>, "hash"),
        ] {
            let plan = ShardPlan::new(&net, cut.as_ref());
            let sh = ShardedNetwork::build(Arc::clone(&net), plan, delta);
            for src in 0..net.num_nodes() as u32 {
                for dst in 0..net.num_nodes() as u32 {
                    let got = sh.node_dist(NodeId(src), NodeId(dst));
                    let want = mono.query(NodeId(src), NodeId(dst));
                    match (got, want) {
                        (Some(g), Some(w)) => {
                            assert!((g - w).abs() < 1e-9, "{label} {src}->{dst}: {g} vs {w}");
                        }
                        (None, None) => {}
                        other => panic!("{label} {src}->{dst} reachability: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn every_segment_and_node_is_owned_exactly_once() {
        let net = Arc::new(generate_city(&NetworkConfig::with_size(5, 5, 11)));
        let plan = ShardPlan::new(&net, &GridCut { tiles_x: 3, tiles_y: 2, seed: 4 });
        let sh = ShardedNetwork::build(Arc::clone(&net), plan, 500.0);
        let mut node_owned = vec![0usize; net.num_nodes()];
        let mut seg_owned = vec![0usize; net.num_segments()];
        for shard in sh.shards() {
            for n in shard.nodes() {
                node_owned[n.idx()] += 1;
            }
            for s in shard.segments() {
                seg_owned[s.idx()] += 1;
            }
            assert_eq!(shard.tree().len(), shard.segments().len());
        }
        assert!(node_owned.iter().all(|&c| c == 1));
        assert!(seg_owned.iter().all(|&c| c == 1));
        let stats = sh.shard_stats();
        assert_eq!(stats.len(), sh.num_shards());
        assert_eq!(stats.iter().map(|s| s.nodes).sum::<usize>(), net.num_nodes());
        assert_eq!(stats.iter().map(|s| s.segments).sum::<usize>(), net.num_segments());
        assert!(sh.resident_bytes() > 0);
    }

    #[test]
    fn from_parts_reconstructs_identically() {
        let net = Arc::new(generate_city(&NetworkConfig::with_size(5, 5, 21)));
        let delta = 550.0;
        let plan = ShardPlan::new(&net, &GridCut { tiles_x: 2, tiles_y: 2, seed: 1 });
        let built = ShardedNetwork::build(Arc::clone(&net), plan.clone(), delta);
        // Round-trip the tables through plain pair maps (the artifact path
        // additionally round-trips through packed images).
        let intra: Vec<DistTable> = built
            .shards()
            .iter()
            .map(|s| {
                let mut pairs = HashMap::new();
                s.intra().for_each_pair(|a, b, d| {
                    pairs.insert((a, b), d);
                });
                DistTable::from_pairs(pairs, delta)
            })
            .collect();
        let mut over = HashMap::new();
        built.overlay().for_each_pair(|a, b, d| {
            over.insert((a, b), d);
        });
        let re = ShardedNetwork::from_parts(
            Arc::clone(&net),
            plan,
            delta,
            intra,
            DistTable::from_pairs(over, delta),
        );
        for s in (0..net.num_nodes() as u32).step_by(3) {
            for d in (0..net.num_nodes() as u32).step_by(2) {
                assert_eq!(
                    built.node_dist(NodeId(s), NodeId(d)).map(f64::to_bits),
                    re.node_dist(NodeId(s), NodeId(d)).map(f64::to_bits)
                );
            }
        }
        for (a, b) in built.shards().iter().zip(re.shards()) {
            assert_eq!(a.nodes(), b.nodes());
            assert_eq!(a.segments(), b.segments());
            assert_eq!(a.exit_borders(), b.exit_borders());
            assert_eq!(a.entry_borders(), b.entry_borders());
        }
    }

    #[test]
    fn grid_cut_square_factors_and_plan_validation() {
        assert_eq!(GridCut::square(4, 0), GridCut { tiles_x: 2, tiles_y: 2, seed: 0 });
        assert_eq!(GridCut::square(6, 0), GridCut { tiles_x: 3, tiles_y: 2, seed: 0 });
        assert_eq!(GridCut::square(7, 0), GridCut { tiles_x: 7, tiles_y: 1, seed: 0 });
        assert_eq!(GridCut::square(1, 0), GridCut { tiles_x: 1, tiles_y: 1, seed: 0 });
        let net = generate_city(&NetworkConfig::with_size(4, 4, 2));
        let plan = ShardPlan::new(&net, &GridCut::square(4, 5));
        assert_eq!(plan.num_shards(), 4);
        assert_eq!(plan.assignment().len(), net.num_nodes());
        // A single-shard plan degenerates to the monolithic table.
        let one = ShardPlan::new(&net, &GridCut::square(1, 0));
        let sh = ShardedNetwork::build(Arc::new(net.clone()), one, 400.0);
        assert!(sh.shards()[0].exit_borders().is_empty());
        assert!(sh.overlay().is_empty());
        let mono = DistTable::build(&net, 400.0);
        for s in (0..net.num_nodes() as u32).step_by(4) {
            for d in (0..net.num_nodes() as u32).step_by(5) {
                assert_eq!(
                    sh.node_dist(NodeId(s), NodeId(d)).map(f64::to_bits),
                    mono.query(NodeId(s), NodeId(d)).map(f64::to_bits)
                );
            }
        }
    }
}
