//! The directed road-network graph.

use trmma_geom::{BBox, SegLine, Vec2};
use trmma_rtree::{IndexedSegment, RTree};

/// Identifier of an intersection / road end (index into the node arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifier of a directed road segment (index into the segment arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentId(pub u32);

impl NodeId {
    /// The arena index as `usize`.
    #[must_use]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl SegmentId {
    /// The arena index as `usize`.
    #[must_use]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Functional class of a road, determining its free-flow speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoadClass {
    /// Arterial / trunk roads.
    Arterial,
    /// Collector / secondary roads.
    Collector,
    /// Local / residential streets.
    Local,
}

impl RoadClass {
    /// Free-flow speed in metres per second.
    #[must_use]
    pub fn speed_mps(self) -> f64 {
        match self {
            RoadClass::Arterial => 16.7,  // ~60 km/h
            RoadClass::Collector => 11.1, // ~40 km/h
            RoadClass::Local => 8.3,      // ~30 km/h
        }
    }
}

/// A directed road segment `e = (u, v)` with geometry.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Entrance node `u`.
    pub from: NodeId,
    /// Exit node `v`.
    pub to: NodeId,
    /// Straight-line geometry from entrance to exit.
    pub line: SegLine,
    /// Length in metres (cached).
    pub length: f64,
    /// Functional class.
    pub class: RoadClass,
}

impl Segment {
    /// Free-flow traversal time in seconds.
    #[must_use]
    pub fn travel_time_s(&self) -> f64 {
        self.length / self.class.speed_mps()
    }
}

/// The road network `G = (V, E)` (Definition 1).
///
/// Storage is arena-based (`Vec` indexed by the id newtypes); adjacency is
/// precomputed in both directions. `n = |E|` is
/// [`RoadNetwork::num_segments`], `m = |V|` is [`RoadNetwork::num_nodes`].
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    node_pos: Vec<Vec2>,
    segments: Vec<Segment>,
    /// Per node: segments leaving it.
    out_segs: Vec<Vec<SegmentId>>,
    /// Per node: segments entering it.
    in_segs: Vec<Vec<SegmentId>>,
    /// For each segment, the opposite-direction twin if the road is two-way.
    reverse_twin: Vec<Option<SegmentId>>,
    /// Process-unique identity token; see [`RoadNetwork::uid`].
    uid: u64,
}

/// Source of [`RoadNetwork::uid`] tokens. Starts at 1 so 0 can mean "no
/// network" in caches keyed by uid.
static NEXT_NET_UID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl RoadNetwork {
    /// Builds a network from node positions and `(from, to, class)` edges.
    ///
    /// Geometry and length are derived from the node positions. Duplicate
    /// edges and self-loops are dropped (they carry no information for map
    /// matching and break route planning invariants).
    ///
    /// # Panics
    /// Panics if an edge references a node out of range.
    #[must_use]
    pub fn new(node_pos: Vec<Vec2>, edges: Vec<(NodeId, NodeId, RoadClass)>) -> Self {
        let n_nodes = node_pos.len();
        let mut seen = std::collections::HashSet::new();
        let mut segments = Vec::with_capacity(edges.len());
        for (from, to, class) in edges {
            assert!(from.idx() < n_nodes, "edge from-node out of range");
            assert!(to.idx() < n_nodes, "edge to-node out of range");
            if from == to || !seen.insert((from, to)) {
                continue;
            }
            let line = SegLine::new(node_pos[from.idx()], node_pos[to.idx()]);
            let length = line.length();
            segments.push(Segment { from, to, line, length, class });
        }

        let mut out_segs = vec![Vec::new(); n_nodes];
        let mut in_segs = vec![Vec::new(); n_nodes];
        for (i, seg) in segments.iter().enumerate() {
            out_segs[seg.from.idx()].push(SegmentId(i as u32));
            in_segs[seg.to.idx()].push(SegmentId(i as u32));
        }

        let index: std::collections::HashMap<(NodeId, NodeId), SegmentId> = segments
            .iter()
            .enumerate()
            .map(|(i, s)| ((s.from, s.to), SegmentId(i as u32)))
            .collect();
        let reverse_twin = segments.iter().map(|s| index.get(&(s.to, s.from)).copied()).collect();

        let uid = NEXT_NET_UID.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Self { node_pos, segments, out_segs, in_segs, reverse_twin, uid }
    }

    /// A process-unique token identifying this network's contents.
    ///
    /// Every [`RoadNetwork::new`] call mints a fresh token; clones share
    /// their original's token, which is sound because a network is immutable
    /// after construction — equal tokens imply equal graphs. Warm search
    /// state ([`SsspPool`](crate::shortest::SsspPool)) is keyed on it so
    /// state from one network can never answer queries about another.
    #[must_use]
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Number of intersections `m = |V|`.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.node_pos.len()
    }

    /// Number of road segments `n = |E|`.
    #[must_use]
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Position of a node.
    #[must_use]
    pub fn node_pos(&self, id: NodeId) -> Vec2 {
        self.node_pos[id.idx()]
    }

    /// A segment by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range; use [`RoadNetwork::try_segment`] for
    /// ids from untrusted input.
    #[must_use]
    pub fn segment(&self, id: SegmentId) -> &Segment {
        &self.segments[id.idx()]
    }

    /// A segment by id, or `None` when the id is out of range — the
    /// non-panicking lookup for ids that arrive from outside the network's
    /// own indexes (wire input, snapshots, artifacts).
    #[must_use]
    pub fn try_segment(&self, id: SegmentId) -> Option<&Segment> {
        self.segments.get(id.idx())
    }

    /// All segments in arena order.
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Iterator over all segment ids.
    pub fn segment_ids(&self) -> impl Iterator<Item = SegmentId> {
        (0..self.segments.len() as u32).map(SegmentId)
    }

    /// Segments leaving `node`.
    #[must_use]
    pub fn out_segments(&self, node: NodeId) -> &[SegmentId] {
        &self.out_segs[node.idx()]
    }

    /// Segments entering `node`.
    #[must_use]
    pub fn in_segments(&self, node: NodeId) -> &[SegmentId] {
        &self.in_segs[node.idx()]
    }

    /// Segments that can follow `seg` on a route (those leaving its exit).
    #[must_use]
    pub fn successors(&self, seg: SegmentId) -> &[SegmentId] {
        self.out_segments(self.segment(seg).to)
    }

    /// Segments that can precede `seg` on a route.
    #[must_use]
    pub fn predecessors(&self, seg: SegmentId) -> &[SegmentId] {
        self.in_segments(self.segment(seg).from)
    }

    /// The opposite-direction twin of `seg`, when the road is two-way.
    #[must_use]
    pub fn reverse_twin(&self, seg: SegmentId) -> Option<SegmentId> {
        self.reverse_twin[seg.idx()]
    }

    /// Maximum out-degree over nodes (the `~deg` of the complexity analysis).
    #[must_use]
    pub fn max_out_degree(&self) -> usize {
        self.out_segs.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Bounding box of the whole network.
    #[must_use]
    pub fn bbox(&self) -> BBox {
        BBox::of_points(&self.node_pos)
    }

    /// Total length of all segments in metres.
    #[must_use]
    pub fn total_length_m(&self) -> f64 {
        self.segments.iter().map(|s| s.length).sum()
    }

    /// Builds the STR R-tree over segment geometry used for candidate
    /// queries (Definition 8).
    #[must_use]
    pub fn build_rtree(&self) -> RTree<IndexedSegment> {
        let items: Vec<IndexedSegment> = self
            .segments
            .iter()
            .enumerate()
            .map(|(i, s)| IndexedSegment { id: i as u32, line: s.line })
            .collect();
        RTree::bulk_load(items)
    }

    /// Whether a sequence of segments forms a path on `G` (each consecutive
    /// pair connected head-to-tail) — the invariant of Definition 3.
    #[must_use]
    pub fn is_path(&self, segs: &[SegmentId]) -> bool {
        segs.windows(2).all(|w| self.segment(w[0]).to == self.segment(w[1]).from)
    }

    /// Restricts the network to its largest strongly connected component,
    /// remapping ids. Returns the new network plus the old→new segment-id
    /// mapping (useful for tests; generation uses it to guarantee every OD
    /// pair is routable).
    #[must_use]
    pub fn largest_scc(&self) -> (RoadNetwork, Vec<Option<SegmentId>>) {
        let comp = self.scc_labels();
        // Find the label with the most nodes.
        let mut counts = std::collections::HashMap::new();
        for &c in &comp {
            *counts.entry(c).or_insert(0usize) += 1;
        }
        let Some((&best, _)) = counts.iter().max_by_key(|(_, &c)| c) else {
            return (RoadNetwork::new(Vec::new(), Vec::new()), Vec::new());
        };

        let mut node_map = vec![None; self.num_nodes()];
        let mut new_pos = Vec::new();
        for (i, &c) in comp.iter().enumerate() {
            if c == best {
                node_map[i] = Some(NodeId(new_pos.len() as u32));
                new_pos.push(self.node_pos[i]);
            }
        }
        let mut edges = Vec::new();
        let mut kept = Vec::new();
        for (i, s) in self.segments.iter().enumerate() {
            if let (Some(f), Some(t)) = (node_map[s.from.idx()], node_map[s.to.idx()]) {
                kept.push(SegmentId(i as u32));
                edges.push((f, t, s.class));
            }
        }
        let net = RoadNetwork::new(new_pos, edges);
        let mut seg_map = vec![None; self.num_segments()];
        for (new_idx, old) in kept.iter().enumerate() {
            seg_map[old.idx()] = Some(SegmentId(new_idx as u32));
        }
        (net, seg_map)
    }

    /// Tarjan's strongly connected components; returns a component label per
    /// node.
    fn scc_labels(&self) -> Vec<u32> {
        // Iterative Tarjan to avoid stack overflow on large grids.
        let n = self.num_nodes();
        let mut index = vec![u32::MAX; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut comp = vec![u32::MAX; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        let mut next_comp = 0u32;

        // Call frames: (node, iterator position over out segments).
        let mut frames: Vec<(u32, usize)> = Vec::new();
        for start in 0..n as u32 {
            if index[start as usize] != u32::MAX {
                continue;
            }
            frames.push((start, 0));
            index[start as usize] = next_index;
            low[start as usize] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start as usize] = true;

            while let Some(&mut (v, ref mut child_pos)) = frames.last_mut() {
                let outs = &self.out_segs[v as usize];
                if *child_pos < outs.len() {
                    let w = self.segments[outs[*child_pos].idx()].to.0;
                    *child_pos += 1;
                    if index[w as usize] == u32::MAX {
                        index[w as usize] = next_index;
                        low[w as usize] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        frames.push((w, 0));
                    } else if on_stack[w as usize] {
                        low[v as usize] = low[v as usize].min(index[w as usize]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        low[parent as usize] = low[parent as usize].min(low[v as usize]);
                    }
                    if low[v as usize] == index[v as usize] {
                        while let Some(w) = stack.pop() {
                            on_stack[w as usize] = false;
                            comp[w as usize] = next_comp;
                            if w == v {
                                break;
                            }
                        }
                        next_comp += 1;
                    }
                }
            }
        }
        comp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2x2 bidirectional square: 4 nodes, 8 segments.
    fn square() -> RoadNetwork {
        let pos = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(100.0, 0.0),
            Vec2::new(100.0, 100.0),
            Vec2::new(0.0, 100.0),
        ];
        let mut edges = Vec::new();
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            edges.push((NodeId(a), NodeId(b), RoadClass::Local));
            edges.push((NodeId(b), NodeId(a), RoadClass::Local));
        }
        RoadNetwork::new(pos, edges)
    }

    #[test]
    fn counts_and_lengths() {
        let net = square();
        assert_eq!(net.num_nodes(), 4);
        assert_eq!(net.num_segments(), 8);
        assert!((net.total_length_m() - 800.0).abs() < 1e-9);
        for id in net.segment_ids() {
            assert!((net.segment(id).length - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn adjacency_is_consistent() {
        let net = square();
        for id in net.segment_ids() {
            let seg = net.segment(id);
            assert!(net.out_segments(seg.from).contains(&id));
            assert!(net.in_segments(seg.to).contains(&id));
            for &succ in net.successors(id) {
                assert_eq!(net.segment(succ).from, seg.to);
            }
            for &pred in net.predecessors(id) {
                assert_eq!(net.segment(pred).to, seg.from);
            }
        }
    }

    #[test]
    fn reverse_twins_found() {
        let net = square();
        for id in net.segment_ids() {
            let twin = net.reverse_twin(id).expect("two-way square");
            let (s, t) = (net.segment(id), net.segment(twin));
            assert_eq!(s.from, t.to);
            assert_eq!(s.to, t.from);
        }
    }

    #[test]
    fn self_loops_and_duplicates_dropped() {
        let pos = vec![Vec2::new(0.0, 0.0), Vec2::new(10.0, 0.0)];
        let edges = vec![
            (NodeId(0), NodeId(0), RoadClass::Local), // self loop
            (NodeId(0), NodeId(1), RoadClass::Local),
            (NodeId(0), NodeId(1), RoadClass::Local), // duplicate
        ];
        let net = RoadNetwork::new(pos, edges);
        assert_eq!(net.num_segments(), 1);
    }

    #[test]
    fn is_path_checks_connectivity() {
        let net = square();
        // Find segment 0->1 and 1->2.
        let s01 = net
            .segment_ids()
            .find(|&i| net.segment(i).from == NodeId(0) && net.segment(i).to == NodeId(1))
            .unwrap();
        let s12 = net
            .segment_ids()
            .find(|&i| net.segment(i).from == NodeId(1) && net.segment(i).to == NodeId(2))
            .unwrap();
        let s30 = net
            .segment_ids()
            .find(|&i| net.segment(i).from == NodeId(3) && net.segment(i).to == NodeId(0))
            .unwrap();
        assert!(net.is_path(&[s01, s12]));
        assert!(!net.is_path(&[s01, s30]));
        assert!(net.is_path(&[s01])); // single segment is trivially a path
    }

    #[test]
    fn scc_keeps_cycle_drops_appendix() {
        // Square plus a dangling one-way spur into node 4.
        let pos = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(100.0, 0.0),
            Vec2::new(100.0, 100.0),
            Vec2::new(0.0, 100.0),
            Vec2::new(200.0, 0.0),
        ];
        let mut edges = Vec::new();
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            edges.push((NodeId(a), NodeId(b), RoadClass::Local));
        }
        edges.push((NodeId(1), NodeId(4), RoadClass::Local)); // dead end
        let net = RoadNetwork::new(pos, edges);
        let (core, seg_map) = net.largest_scc();
        assert_eq!(core.num_nodes(), 4);
        assert_eq!(core.num_segments(), 4);
        // The spur has no image in the core network.
        let spur = net.segment_ids().find(|&i| net.segment(i).to == NodeId(4)).unwrap();
        assert!(seg_map[spur.idx()].is_none());
    }

    #[test]
    fn rtree_indexes_every_segment() {
        let net = square();
        let tree = net.build_rtree();
        assert_eq!(tree.len(), net.num_segments());
        // Querying at a node returns segments incident to it first.
        let res = tree.knn(Vec2::new(0.0, 0.0), 4);
        assert_eq!(res.len(), 4);
        assert!(res[0].dist < 1e-9);
    }
}
