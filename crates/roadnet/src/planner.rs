//! Statistical route planning between matched segments.
//!
//! MMA maps each GPS point to a segment; consecutive matched segments are
//! usually *not* adjacent, so Algorithm 1 (lines 10–13) fills the gaps with a
//! route-planning routine. The paper uses "the same DA-based method from ref.\[2\]
//! that relies on basic statistical counts" for its methods *and* all
//! baselines. [`RoutePlanner`] reproduces that contract:
//!
//! * transition counts `#(e → e')` are accumulated from historical routes
//!   ([`RoutePlanner::fit`]);
//! * planning from `e_src` to `e_dst` is a Dijkstra over the segment graph
//!   with edge weight `−ln P(e'|e)` (Laplace-smoothed), i.e. the
//!   maximum-likelihood historical route;
//! * a free-flow fastest-path fallback handles pairs never seen in training
//!   (the paper reports such failures are rare — 0.06 % on PT — and resolves
//!   them with the fastest route, as we do).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use crate::graph::{RoadNetwork, SegmentId};
use crate::shortest::{node_path, Weight};

/// Laplace smoothing constant for transition probabilities.
const SMOOTHING: f64 = 0.5;

/// Default cap on settled states per plan; keeps worst-case latency bounded
/// on large networks (the paper bounds route length by `l'` similarly).
const DEFAULT_MAX_SETTLED: usize = 50_000;

/// Historical-count route planner (see module docs).
#[derive(Debug, Clone)]
pub struct RoutePlanner {
    /// `counts[(e, e')]` = number of observed transitions.
    counts: HashMap<(u32, u32), f64>,
    /// Total outgoing observations per segment.
    out_total: Vec<f64>,
    /// Cap on settled Dijkstra states before falling back.
    max_settled: usize,
}

#[derive(Debug, PartialEq)]
struct Item {
    cost: f64,
    seg: u32,
}
impl Eq for Item {}
impl Ord for Item {
    fn cmp(&self, other: &Self) -> Ordering {
        other.cost.partial_cmp(&self.cost).unwrap_or(Ordering::Equal)
    }
}
impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl RoutePlanner {
    /// An untrained planner: all transitions fall back to smoothing, so
    /// planning reduces to a most-plausible-topology search; useful before
    /// any data is seen and as a degenerate baseline.
    #[must_use]
    pub fn untrained(net: &RoadNetwork) -> Self {
        Self {
            counts: HashMap::new(),
            out_total: vec![0.0; net.num_segments()],
            max_settled: DEFAULT_MAX_SETTLED,
        }
    }

    /// Fits transition counts from historical routes (each a path on `G`).
    #[must_use]
    pub fn fit<'a>(net: &RoadNetwork, routes: impl IntoIterator<Item = &'a [SegmentId]>) -> Self {
        let mut planner = Self::untrained(net);
        for route in routes {
            planner.observe(route);
        }
        planner
    }

    /// Adds one historical route's transitions to the statistics.
    pub fn observe(&mut self, route: &[SegmentId]) {
        for w in route.windows(2) {
            *self.counts.entry((w[0].0, w[1].0)).or_insert(0.0) += 1.0;
            self.out_total[w[0].idx()] += 1.0;
        }
    }

    /// Overrides the settled-state cap (`l'`-style bound).
    pub fn set_max_settled(&mut self, cap: usize) {
        self.max_settled = cap.max(1);
    }

    /// Smoothed transition probability `P(to | from)`.
    #[must_use]
    pub fn transition_prob(&self, net: &RoadNetwork, from: SegmentId, to: SegmentId) -> f64 {
        let succ = net.successors(from).len().max(1) as f64;
        let c = self.counts.get(&(from.0, to.0)).copied().unwrap_or(0.0);
        (c + SMOOTHING) / (self.out_total[from.idx()] + SMOOTHING * succ)
    }

    /// Plans a route from `src` to `dst` inclusive of both endpoints.
    ///
    /// Returns the maximum-likelihood historical route when the statistical
    /// search reaches `dst` within the state cap, otherwise the free-flow
    /// fastest route, otherwise `None` (disconnected pair).
    #[must_use]
    pub fn plan(
        &self,
        net: &RoadNetwork,
        src: SegmentId,
        dst: SegmentId,
    ) -> Option<Vec<SegmentId>> {
        if src == dst {
            return Some(vec![src]);
        }
        if let Some(path) = self.plan_statistical(net, src, dst) {
            return Some(path);
        }
        self.plan_fastest(net, src, dst)
    }

    fn plan_statistical(
        &self,
        net: &RoadNetwork,
        src: SegmentId,
        dst: SegmentId,
    ) -> Option<Vec<SegmentId>> {
        let mut dist: HashMap<u32, f64> = HashMap::new();
        let mut prev: HashMap<u32, u32> = HashMap::new();
        let mut heap = BinaryHeap::new();
        dist.insert(src.0, 0.0);
        heap.push(Item { cost: 0.0, seg: src.0 });
        let mut settled = 0usize;
        while let Some(Item { cost, seg }) = heap.pop() {
            if seg == dst.0 {
                let mut path = vec![dst];
                let mut cur = dst.0;
                while cur != src.0 {
                    cur = prev[&cur];
                    path.push(SegmentId(cur));
                }
                path.reverse();
                return Some(path);
            }
            if cost > *dist.get(&seg).unwrap_or(&f64::INFINITY) {
                continue;
            }
            settled += 1;
            if settled > self.max_settled {
                return None;
            }
            for &next in net.successors(SegmentId(seg)) {
                // Forbid immediate U-turns unless the segment dead-ends:
                // historical trajectories essentially never bounce back.
                if Some(next) == net.reverse_twin(SegmentId(seg))
                    && net.successors(SegmentId(seg)).len() > 1
                {
                    continue;
                }
                let p = self.transition_prob(net, SegmentId(seg), next);
                let nc = cost - p.ln();
                if nc < *dist.get(&next.0).unwrap_or(&f64::INFINITY) {
                    dist.insert(next.0, nc);
                    prev.insert(next.0, seg);
                    heap.push(Item { cost: nc, seg: next.0 });
                }
            }
        }
        None
    }

    fn plan_fastest(
        &self,
        net: &RoadNetwork,
        src: SegmentId,
        dst: SegmentId,
    ) -> Option<Vec<SegmentId>> {
        let (_, mid) = node_path(
            net,
            net.segment(src).to,
            net.segment(dst).from,
            Weight::Time,
            f64::INFINITY,
        )?;
        let mut path = Vec::with_capacity(mid.len() + 2);
        path.push(src);
        path.extend(mid);
        path.push(dst);
        Some(path)
    }

    /// Stitches a sequence of matched segments into a route (Algorithm 1,
    /// lines 10–13): consecutive duplicates collapse, adjacent segments
    /// append directly, gaps are filled by [`RoutePlanner::plan`].
    ///
    /// Returns `None` only if some gap is truly unroutable.
    #[must_use]
    pub fn connect(&self, net: &RoadNetwork, matched: &[SegmentId]) -> Option<Vec<SegmentId>> {
        let mut route: Vec<SegmentId> = Vec::with_capacity(matched.len());
        for &seg in matched {
            match route.last() {
                None => route.push(seg),
                Some(&last) if last == seg => {}
                Some(&last) if net.segment(last).to == net.segment(seg).from => route.push(seg),
                Some(&last) => {
                    let gap = self.plan(net, last, seg)?;
                    route.extend(&gap[1..]);
                }
            }
        }
        Some(route)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_city, NetworkConfig};
    use crate::graph::{NodeId, RoadClass};
    use trmma_geom::Vec2;

    fn grid() -> RoadNetwork {
        generate_city(&NetworkConfig { nx: 6, ny: 6, seed: 7, ..NetworkConfig::default() })
    }

    #[test]
    fn plan_same_segment_is_identity() {
        let net = grid();
        let planner = RoutePlanner::untrained(&net);
        let e = SegmentId(0);
        assert_eq!(planner.plan(&net, e, e), Some(vec![e]));
    }

    #[test]
    fn plan_returns_connected_path_with_endpoints() {
        let net = grid();
        let planner = RoutePlanner::untrained(&net);
        let src = SegmentId(0);
        let dst = SegmentId((net.num_segments() - 1) as u32);
        let path = planner.plan(&net, src, dst).expect("SCC network is routable");
        assert_eq!(*path.first().unwrap(), src);
        assert_eq!(*path.last().unwrap(), dst);
        assert!(net.is_path(&path), "planned route must be a path on G");
    }

    #[test]
    fn observed_transitions_get_higher_probability() {
        let net = grid();
        let e = SegmentId(0);
        let succs = net.successors(e);
        assert!(succs.len() >= 2, "test grid should branch");
        let (a, b) = (succs[0], succs[1]);
        let route = vec![e, a];
        let planner = RoutePlanner::fit(&net, [route.as_slice()]);
        assert!(planner.transition_prob(&net, e, a) > planner.transition_prob(&net, e, b));
    }

    #[test]
    fn training_biases_plans_towards_historical_route() {
        let net = grid();
        // Take the untrained plan between two far segments, then train heavily
        // on an alternative and check the planner reproduces the trained path.
        let untrained = RoutePlanner::untrained(&net);
        let src = SegmentId(0);
        let dst = SegmentId((net.num_segments() / 2) as u32);
        let base = untrained.plan(&net, src, dst).unwrap();
        let mut planner = RoutePlanner::untrained(&net);
        for _ in 0..50 {
            planner.observe(&base);
        }
        let trained = planner.plan(&net, src, dst).unwrap();
        assert_eq!(trained, base);
    }

    #[test]
    fn connect_collapses_duplicates_and_fills_gaps() {
        let net = grid();
        let planner = RoutePlanner::untrained(&net);
        let src = SegmentId(3);
        let dst = SegmentId((net.num_segments() - 2) as u32);
        let route = planner.connect(&net, &[src, src, dst]).unwrap();
        assert!(net.is_path(&route));
        assert_eq!(*route.first().unwrap(), src);
        assert_eq!(*route.last().unwrap(), dst);
        // Duplicate collapsed: src appears exactly once at the head.
        assert_eq!(route.iter().filter(|&&s| s == src).count(), 1);
    }

    #[test]
    fn connect_keeps_adjacent_pairs_verbatim() {
        let net = grid();
        let planner = RoutePlanner::untrained(&net);
        let e = SegmentId(0);
        let next = net.successors(e)[0];
        let route = planner.connect(&net, &[e, next]).unwrap();
        assert_eq!(route, vec![e, next]);
    }

    #[test]
    fn fastest_fallback_on_tiny_cap() {
        let net = grid();
        let mut planner = RoutePlanner::untrained(&net);
        planner.set_max_settled(1); // statistical search can never finish
        let src = SegmentId(0);
        let dst = SegmentId((net.num_segments() - 1) as u32);
        let path = planner.plan(&net, src, dst).expect("fastest fallback");
        assert!(net.is_path(&path));
        assert_eq!(*path.first().unwrap(), src);
        assert_eq!(*path.last().unwrap(), dst);
    }

    #[test]
    fn uturn_avoided_when_alternatives_exist() {
        // Straight two-way line of 3 nodes plus a branch so successors > 1.
        let pos = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(100.0, 0.0),
            Vec2::new(200.0, 0.0),
            Vec2::new(100.0, 100.0),
        ];
        let mut edges = Vec::new();
        for (a, b) in [(0, 1), (1, 2), (1, 3)] {
            edges.push((NodeId(a), NodeId(b), RoadClass::Local));
            edges.push((NodeId(b), NodeId(a), RoadClass::Local));
        }
        let net = RoadNetwork::new(pos, edges);
        let planner = RoutePlanner::untrained(&net);
        let e01 = net
            .segment_ids()
            .find(|&i| net.segment(i).from == NodeId(0) && net.segment(i).to == NodeId(1))
            .unwrap();
        let e12 = net
            .segment_ids()
            .find(|&i| net.segment(i).from == NodeId(1) && net.segment(i).to == NodeId(2))
            .unwrap();
        let path = planner.plan(&net, e01, e12).unwrap();
        assert_eq!(path, vec![e01, e12], "no U-turn detour");
    }
}
