//! The road-network substrate (Definition 1 of the paper).
//!
//! A road network is a directed graph `G = (V, E)`: nodes are intersections
//! or road ends, directed edges are road segments with planar geometry. On
//! top of the graph this crate provides everything the paper's pipeline
//! needs from its "road network" dependency:
//!
//! * [`graph::RoadNetwork`] — compact arena-based graph with successor /
//!   predecessor adjacency and an R-tree over segment geometry;
//! * [`shortest`] — Dijkstra shortest paths (early-exit, bounded,
//!   multi-target), network distance between map-matched points (the
//!   distance `d(a_i, â_i)` of the MAE/RMSE metric, Eq. 22), and the bounded
//!   single-source sweep used by FMM's UBODT;
//! * [`planner::RoutePlanner`] — the "DA-based route planning method relying
//!   on basic statistical counts" (ref.\[2\], used at Algorithm 1 line 12): a
//!   maximum-likelihood path search over historical segment-transition
//!   counts with a travel-time fallback;
//! * [`transition`] — the pooled transition-cost oracle shared by the
//!   HMM-family matchers: [`TransitionProvider`] answers route distances
//!   from a precomputed [`DistTable`] (FMM's UBODT) or a shared
//!   [`shortest::DistCache`] read-through, with all mutable Dijkstra state
//!   in per-worker [`shortest::SsspPool`]s;
//! * [`shard`] — grid-tiled partitions of a network ([`ShardedNetwork`])
//!   with per-shard R-trees, pools and distance tables, stitching
//!   cross-shard transitions through a boundary-node overlay so decoders
//!   scale past one-process-owns-the-whole-graph;
//! * [`gen`] — a synthetic city generator standing in for the paper's
//!   OpenStreetMap extracts (see DESIGN.md §1 for the substitution
//!   rationale);
//! * [`io`] — a plain-text interchange format so user-supplied networks can
//!   be loaded.
//!
//! # Example
//!
//! Generate a synthetic city and query a bounded shortest-path distance —
//! the oracle behind every HMM transition probability:
//!
//! ```
//! use trmma_roadnet::shortest::{node_dist, Weight};
//! use trmma_roadnet::{generate_city, NetworkConfig, SegmentId};
//!
//! let net = generate_city(&NetworkConfig::with_size(4, 4, 7));
//! assert!(net.num_segments() > 0);
//! let seg = net.segment(SegmentId(0));
//! // A segment's endpoints are connected by at most its own length.
//! let d = node_dist(&net, seg.from, seg.to, Weight::Length, 10_000.0)
//!     .expect("endpoints of a segment are connected");
//! assert!(d <= seg.length + 1e-9);
//! ```

pub mod gen;
pub mod graph;
pub mod io;
pub mod planner;
pub mod shard;
pub mod shortest;
pub mod transition;

pub use gen::{generate_city, NetworkConfig};
pub use graph::{NodeId, RoadClass, RoadNetwork, Segment, SegmentId};
pub use planner::RoutePlanner;
pub use shard::{
    monolithic_resident_bytes, CutStrategy, GridCut, HashCut, Shard, ShardPlan, ShardStats,
    ShardedNetwork,
};
pub use transition::{DistImageError, DistTable, TransitionError, TransitionProvider};
