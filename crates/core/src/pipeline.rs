//! The end-to-end system: a map matcher feeding TRMMA (Algorithm 2 line 1).
//!
//! The default wiring is MMA → TRMMA; swapping the matcher yields the
//! `TRMMA-HMM` and `TRMMA-Near` ablations of Table IV without touching the
//! recovery model.

use trmma_traj::api::{MapMatcher, TrajectoryRecovery};
use trmma_traj::types::{MatchedTrajectory, Trajectory};

use crate::batch::{parallel_map, BatchOptions};
use crate::trmma::Trmma;

/// Map-match-then-recover pipeline; see module docs.
pub struct TrmmaPipeline {
    matcher: Box<dyn MapMatcher>,
    model: Trmma,
    name: &'static str,
}

impl TrmmaPipeline {
    /// Wires `matcher` into `model`. `name` labels the pipeline in tables
    /// ("TRMMA", "TRMMA-HMM", "TRMMA-Near", …).
    #[must_use]
    pub fn new(matcher: Box<dyn MapMatcher>, model: Trmma, name: &'static str) -> Self {
        Self { matcher, model, name }
    }

    /// The recovery model (e.g. for further training).
    #[must_use]
    pub fn model(&self) -> &Trmma {
        &self.model
    }

    /// Mutable access to the recovery model.
    pub fn model_mut(&mut self) -> &mut Trmma {
        &mut self.model
    }

    /// Dismantles the pipeline into its matcher and recovery model — e.g.
    /// to rewrap a sequentially evaluated pipeline into the batch engine
    /// without retraining.
    #[must_use]
    pub fn into_parts(self) -> (Box<dyn MapMatcher>, Trmma) {
        (self.matcher, self.model)
    }

    /// The wired map matcher.
    #[must_use]
    pub fn matcher(&self) -> &dyn MapMatcher {
        self.matcher.as_ref()
    }

    /// Recovers a whole batch in parallel, sharing this pipeline read-only
    /// across workers and reusing one TRMMA tape per worker. Output `i`
    /// equals `self.recover(&batch[i], epsilon_s)`.
    ///
    /// For the MMA-matcher pipeline, [`crate::batch::BatchRecovery`] is the
    /// faster entry point (it also reuses the matcher's scratch); this
    /// method parallelises *any* matcher wiring, ablations included.
    #[must_use]
    pub fn recover_batch(
        &self,
        batch: &[Trajectory],
        epsilon_s: f64,
        opts: BatchOptions,
    ) -> Vec<MatchedTrajectory> {
        let threads = opts.effective_threads(batch.len());
        parallel_map(batch, threads, trmma_nn::Graph::new, |g, traj| {
            let result = self.matcher.match_trajectory(traj);
            self.model.recover_from_match_with(g, traj, &result.matched, &result.route, epsilon_s)
        })
    }
}

impl TrajectoryRecovery for TrmmaPipeline {
    fn name(&self) -> &'static str {
        self.name
    }

    fn recover(&self, traj: &Trajectory, epsilon_s: f64) -> MatchedTrajectory {
        let result = self.matcher.match_trajectory(traj);
        self.model.recover_from_match(traj, &result.matched, &result.route, epsilon_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mma::{Mma, MmaConfig};
    use crate::trmma::TrmmaConfig;
    use std::sync::Arc;
    use trmma_baselines::NearestMatcher;
    use trmma_roadnet::RoutePlanner;
    use trmma_traj::dataset::{build_dataset, DatasetConfig, Split};
    use trmma_traj::metrics::recovery_metrics;

    #[test]
    fn full_pipeline_produces_aligned_output() {
        let ds = build_dataset(&DatasetConfig::tiny());
        let net = Arc::new(ds.net.clone());
        let planner = Arc::new(RoutePlanner::untrained(&net));
        let train = ds.samples(Split::Train, 0.2, 1);

        let mut mma = Mma::new(net.clone(), planner.clone(), None, MmaConfig::small());
        mma.train(&train, 3);
        let mut model = Trmma::new(net.clone(), TrmmaConfig::small());
        model.train(&train, 3);
        let pipeline = TrmmaPipeline::new(Box::new(mma), model, "TRMMA");

        let s = &ds.samples(Split::Test, 0.2, 2)[0];
        let rec = pipeline.recover(&s.sparse, ds.epsilon_s);
        assert_eq!(rec.len(), s.dense_truth.len());
        let m = recovery_metrics(&net, &rec, &s.dense_truth, None);
        assert!(m.accuracy > 0.0);
        assert_eq!(pipeline.name(), "TRMMA");
    }

    #[test]
    fn matcher_swap_ablation_compiles_and_runs() {
        let ds = build_dataset(&DatasetConfig::tiny());
        let net = Arc::new(ds.net.clone());
        let planner = Arc::new(RoutePlanner::untrained(&net));
        let nearest = NearestMatcher::new(net.clone(), planner);
        let model = Trmma::new(net, TrmmaConfig::small());
        let pipeline = TrmmaPipeline::new(Box::new(nearest), model, "TRMMA-Near");
        let s = &ds.samples(Split::Test, 0.2, 3)[0];
        let rec = pipeline.recover(&s.sparse, ds.epsilon_s);
        assert!(!rec.is_empty());
    }
}
