//! Build-once binary artifacts: the road graph, the UBODT, trained
//! weights and node2vec embeddings as one checksummed byte image.
//!
//! Every serving process used to pay the full preparation cost at startup
//! — Dijkstra sweeps for the [`DistTable`], node2vec training for the
//! embedding table — even though none of those depend on anything but the
//! network and a seed. This module makes them **build-once**: a builder
//! packs the four artifact kinds into a single image, and a loader
//! validates the header and then serves structures *from* the image
//! without re-deriving anything. The `trmma-artifacts` CLI (bench crate)
//! wraps this with `build` / `inspect` / `verify` subcommands.
//!
//! ```text
//! magic "TRMA" | version u16 | section_count u16 | total_len u64 |
//! { kind u16 | reserved u16 | offset u64 | len u64 | crc u32 }* |
//! header_crc u32 | section bytes...
//! ```
//!
//! * all scalars are fixed-width little-endian, every `f64` travels as its
//!   IEEE-754 bit pattern — the `trmma_traj::snapshot` conventions, so
//!   loaded structures are **bitwise-identical** to freshly built ones;
//! * `total_len` must equal the byte length on disk (a concatenated or
//!   cut-short file is rejected before any section is trusted);
//! * the **header CRC** (same IEEE 802.3 [`crc32`] as session snapshots)
//!   covers magic through section table and is verified at load, so a
//!   corrupted offset can never point a reader at the wrong bytes; each
//!   **section CRC** covers that section's payload and is verified when
//!   the section is served — a process that only needs the distance
//!   table never pays to checksum the weight blobs, yet no section's
//!   bytes are ever served unverified;
//! * loading is **zero-parse**: after validation, the [`DistTable`] is
//!   served by binary search directly over the shared slab
//!   ([`DistTable::from_image`]) — a fleet of processes mapping the same
//!   artifact shares one page-cached copy instead of each re-running the
//!   Dijkstra sweeps.
//!
//! Section payloads (kinds in [`SectionKind`]):
//!
//! * **Graph** — `node_count u64 | (x, y f64-bits)* | seg_count u64 |
//!   (from u32, to u32, class u8)*`. Geometry and lengths are *derived*
//!   on load from the position bits (exactly what [`RoadNetwork::new`]
//!   does), so they reconstruct bit-identically without being stored.
//! * **DistTable** — `delta f64-bits | count u64 |` then `count` packed
//!   16-byte records (`src u32 | dst u32 | dist f64-bits`) strictly
//!   sorted by `(src, dst)`.
//! * **Params** — `blob_count u32 |` then per blob a length-prefixed
//!   name and a length-prefixed [`trmma_nn::serialize`] weight blob
//!   (which carries its own magic/version/shape validation).
//! * **Embeddings** — `rows u64 | cols u64 | f64-bits*` (one node2vec
//!   vector per road segment, rows = `num_segments`).
//! * **Shards** — `delta f64-bits | node_count u64 | shard_of u32* |
//!   num_shards u64 | { record_count u64 | crc u32 }* per shard |
//!   overlay record_count u64 | overlay crc u32 | meta_crc u32` followed
//!   by each shard's packed 16-byte distance records and then the
//!   overlay's. Unlike the other kinds, shard payloads are **lazily
//!   CRC-verified per shard**: `meta_crc` guards the plan and the record
//!   directory, and each record range carries its own CRC, so serving
//!   shard 3 checksums shard 3's bytes only — a flipped byte in shard 5
//!   fails `shard_intra_table(5)` and nothing else. (The section-table
//!   CRC still covers the whole payload, so `trmma-artifacts verify`
//!   catches any flip.)
//!
//! [`crc32`]: crate::snapshot::crc32

use std::sync::Arc;

use trmma_nn::Matrix;
use trmma_roadnet::transition::DIST_RECORD_BYTES;
use trmma_roadnet::{
    DistImageError, DistTable, NodeId, RoadClass, RoadNetwork, ShardPlan, ShardedNetwork,
};
use trmma_traj::snapshot::{self, Reader, SnapshotError};

use crate::snapshot::crc32;

/// Artifact magic: "TRMA" (TRMma Artifact).
pub const MAGIC: [u8; 4] = *b"TRMA";

/// The artifact format version this build reads and writes.
pub const VERSION: u16 = 1;

/// Bytes of one section-table entry: kind u16 | reserved u16 | offset u64
/// | len u64 | crc u32.
const ENTRY_BYTES: usize = 2 + 2 + 8 + 8 + 4;

/// Fixed header bytes before the section table: magic | version u16 |
/// section_count u16 | total_len u64.
const PREFIX_BYTES: usize = 4 + 2 + 2 + 8;

/// What a section of an artifact holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum SectionKind {
    /// The packed road graph.
    Graph = 1,
    /// The bounded all-pairs distance table (FMM's UBODT).
    DistTable = 2,
    /// Named trained-weight blobs ([`trmma_nn::serialize`] format).
    Params = 3,
    /// The node2vec embedding table (one row per segment).
    Embeddings = 4,
    /// A sharded network: the shard plan, one packed intra-shard distance
    /// table per shard, and the boundary overlay table — each shard's
    /// records carry their **own** CRC so a process serving one shard
    /// verifies only that shard's bytes ([`Artifact::shard_intra_table`]).
    Shards = 5,
}

impl SectionKind {
    /// The kind for a raw tag, if known.
    #[must_use]
    pub fn from_tag(tag: u16) -> Option<Self> {
        match tag {
            1 => Some(Self::Graph),
            2 => Some(Self::DistTable),
            3 => Some(Self::Params),
            4 => Some(Self::Embeddings),
            5 => Some(Self::Shards),
            _ => None,
        }
    }

    /// Human-readable name (used by `trmma-artifacts inspect`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Graph => "graph",
            Self::DistTable => "dist_table",
            Self::Params => "params",
            Self::Embeddings => "embeddings",
            Self::Shards => "shards",
        }
    }
}

/// Why an artifact image was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// The image ended before the announced data did.
    Truncated,
    /// The image does not start with the artifact magic.
    BadMagic,
    /// The format version is not understood by this build.
    BadVersion(u16),
    /// `total_len` in the header does not equal the image's byte length.
    LengthMismatch {
        /// Length announced by the header.
        declared: u64,
        /// Actual image length.
        actual: u64,
    },
    /// The header checksum does not match the section table.
    HeaderChecksum,
    /// A section's checksum does not match its payload.
    SectionChecksum {
        /// Raw kind tag of the failing section.
        kind: u16,
    },
    /// Two sections carry the same kind.
    DuplicateSection {
        /// The duplicated kind tag.
        kind: u16,
    },
    /// One shard's record range of the shards section fails its own
    /// checksum — only that shard's accessor is refused.
    ShardChecksum {
        /// The failing shard.
        shard: u32,
    },
    /// The overlay table of the shards section fails its checksum.
    OverlayChecksum,
    /// A requested section is not present in this artifact.
    MissingSection(SectionKind),
    /// A named weight blob is not present in the params section.
    MissingParams(String),
    /// Structurally invalid section payload.
    Malformed(&'static str),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "artifact truncated"),
            Self::BadMagic => write!(f, "not a trmma artifact (bad magic)"),
            Self::BadVersion(v) => write!(f, "unsupported artifact version {v}"),
            Self::LengthMismatch { declared, actual } => {
                write!(f, "artifact declares {declared} bytes but holds {actual}")
            }
            Self::HeaderChecksum => write!(f, "artifact header checksum mismatch"),
            Self::SectionChecksum { kind } => {
                write!(f, "checksum mismatch in section kind {kind}")
            }
            Self::DuplicateSection { kind } => {
                write!(f, "duplicate section kind {kind}")
            }
            Self::ShardChecksum { shard } => {
                write!(f, "checksum mismatch in shard {shard} payload")
            }
            Self::OverlayChecksum => write!(f, "checksum mismatch in shards overlay table"),
            Self::MissingSection(kind) => {
                write!(f, "artifact has no {} section", kind.name())
            }
            Self::MissingParams(name) => {
                write!(f, "artifact has no weight blob named {name:?}")
            }
            Self::Malformed(what) => write!(f, "malformed artifact: {what}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<SnapshotError> for ArtifactError {
    fn from(e: SnapshotError) -> Self {
        match e {
            SnapshotError::Truncated => Self::Truncated,
            SnapshotError::Malformed(what) => Self::Malformed(what),
            // The snapshot codec's envelope-level errors cannot arise from
            // the scalar accessors used here.
            _ => Self::Malformed("unexpected codec error"),
        }
    }
}

impl From<DistImageError> for ArtifactError {
    fn from(e: DistImageError) -> Self {
        match e {
            DistImageError::OutOfBounds => Self::Malformed("dist-table records out of bounds"),
            DistImageError::Unsorted => Self::Malformed("dist-table records not sorted"),
        }
    }
}

/// Accumulates sections, then serializes the artifact image.
///
/// ```
/// use trmma_core::artifact::{Artifact, ArtifactBuilder};
/// use trmma_roadnet::{generate_city, DistTable, NetworkConfig};
///
/// let net = generate_city(&NetworkConfig::with_size(4, 4, 7));
/// let table = DistTable::build(&net, 500.0);
/// let mut b = ArtifactBuilder::new();
/// b.graph(&net);
/// b.dist_table(&table);
/// let image = b.finish();
/// let art = Artifact::decode(image).unwrap();
/// let loaded = art.dist_table().unwrap();
/// assert_eq!(loaded.len(), table.len());
/// ```
#[derive(Debug, Default)]
pub struct ArtifactBuilder {
    sections: Vec<(SectionKind, Vec<u8>)>,
    params: Vec<(String, Vec<u8>)>,
}

impl ArtifactBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Packs the road graph.
    pub fn graph(&mut self, net: &RoadNetwork) -> &mut Self {
        let mut out = Vec::new();
        snapshot::put_usize(&mut out, net.num_nodes());
        for i in 0..net.num_nodes() {
            let p = net.node_pos(NodeId(i as u32));
            snapshot::put_f64(&mut out, p.x);
            snapshot::put_f64(&mut out, p.y);
        }
        snapshot::put_usize(&mut out, net.num_segments());
        for seg in net.segments() {
            snapshot::put_u32(&mut out, seg.from.0);
            snapshot::put_u32(&mut out, seg.to.0);
            snapshot::put_u8(&mut out, class_tag(seg.class));
        }
        self.sections.push((SectionKind::Graph, out));
        self
    }

    /// Packs a distance table (records sorted by `(src, dst)`, the order
    /// [`DistTable::from_image`] demands).
    pub fn dist_table(&mut self, table: &DistTable) -> &mut Self {
        let mut pairs = Vec::with_capacity(table.len());
        table.for_each_pair(|s, d, dist| pairs.push((s, d, dist)));
        pairs.sort_unstable_by_key(|&(s, d, _)| (u64::from(s)) << 32 | u64::from(d));
        let mut out = Vec::with_capacity(16 + pairs.len() * DIST_RECORD_BYTES);
        snapshot::put_f64(&mut out, table.delta());
        snapshot::put_usize(&mut out, pairs.len());
        for (s, d, dist) in pairs {
            snapshot::put_u32(&mut out, s);
            snapshot::put_u32(&mut out, d);
            snapshot::put_f64(&mut out, dist);
        }
        self.sections.push((SectionKind::DistTable, out));
        self
    }

    /// Packs a sharded network: the shard plan, every intra-shard table
    /// and the boundary overlay, with a per-shard CRC over each record
    /// range so loaders can verify shards independently
    /// ([`Artifact::shard_intra_table`]).
    pub fn shards(&mut self, sharded: &ShardedNetwork) -> &mut Self {
        fn pack_records(table: &DistTable, out: &mut Vec<u8>) -> (usize, u32) {
            let mut pairs = Vec::with_capacity(table.len());
            table.for_each_pair(|s, d, dist| pairs.push((s, d, dist)));
            pairs.sort_unstable_by_key(|&(s, d, _)| (u64::from(s)) << 32 | u64::from(d));
            let start = out.len();
            for (s, d, dist) in &pairs {
                snapshot::put_u32(out, *s);
                snapshot::put_u32(out, *d);
                snapshot::put_f64(out, *dist);
            }
            (pairs.len(), crc32(&out[start..]))
        }
        let mut records = Vec::new();
        let directory: Vec<(usize, u32)> =
            sharded.shards().iter().map(|s| pack_records(s.intra(), &mut records)).collect();
        let overlay = pack_records(sharded.overlay(), &mut records);
        let mut out = Vec::new();
        snapshot::put_f64(&mut out, sharded.delta());
        snapshot::put_usize(&mut out, sharded.plan().assignment().len());
        for &s in sharded.plan().assignment() {
            snapshot::put_u32(&mut out, s);
        }
        snapshot::put_usize(&mut out, sharded.num_shards());
        for (count, crc) in directory.iter().chain(std::iter::once(&overlay)) {
            snapshot::put_usize(&mut out, *count);
            snapshot::put_u32(&mut out, *crc);
        }
        let meta_crc = crc32(&out);
        snapshot::put_u32(&mut out, meta_crc);
        out.extend_from_slice(&records);
        self.sections.push((SectionKind::Shards, out));
        self
    }

    /// Adds a named trained-weight blob (the output of
    /// [`trmma_nn::serialize::save_params`], e.g. via `Mma::save_weights`).
    /// All blobs land in one params section when the builder finishes.
    pub fn params(&mut self, name: &str, blob: &[u8]) -> &mut Self {
        self.params.push((name.to_string(), blob.to_vec()));
        self
    }

    /// Packs the node2vec embedding table.
    pub fn embeddings(&mut self, table: &Matrix) -> &mut Self {
        let mut out = Vec::with_capacity(16 + table.data().len() * 8);
        snapshot::put_usize(&mut out, table.rows());
        snapshot::put_usize(&mut out, table.cols());
        for &x in table.data() {
            snapshot::put_f64(&mut out, x);
        }
        self.sections.push((SectionKind::Embeddings, out));
        self
    }

    /// Serializes the image: header, section table, header CRC, sections.
    ///
    /// # Panics
    /// Panics if a weight-blob name or blob exceeds `u32::MAX` bytes, or on
    /// more than `u16::MAX` sections — neither is reachable through the
    /// typed builder API with real models.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        if !self.params.is_empty() {
            let mut out = Vec::new();
            let count = u32::try_from(self.params.len()).expect("more than u32::MAX weight blobs");
            snapshot::put_u32(&mut out, count);
            for (name, blob) in &self.params {
                snapshot::put_bytes(&mut out, name.as_bytes()).expect("blob name over 4 GiB");
                snapshot::put_bytes(&mut out, blob).expect("weight blob over 4 GiB");
            }
            self.sections.push((SectionKind::Params, out));
        }
        let n = self.sections.len();
        let header_len = PREFIX_BYTES + n * ENTRY_BYTES + 4;
        let total: usize = header_len + self.sections.iter().map(|(_, s)| s.len()).sum::<usize>();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&MAGIC);
        snapshot::put_u16(&mut out, VERSION);
        snapshot::put_u16(&mut out, u16::try_from(n).expect("more than u16::MAX sections"));
        snapshot::put_u64(&mut out, total as u64);
        let mut offset = header_len;
        for (kind, payload) in &self.sections {
            snapshot::put_u16(&mut out, *kind as u16);
            snapshot::put_u16(&mut out, 0); // reserved
            snapshot::put_u64(&mut out, offset as u64);
            snapshot::put_u64(&mut out, payload.len() as u64);
            snapshot::put_u32(&mut out, crc32(payload));
            offset += payload.len();
        }
        let hcrc = crc32(&out);
        snapshot::put_u32(&mut out, hcrc);
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        debug_assert_eq!(out.len(), total);
        out
    }
}

/// Verified metadata of a shards section ([`Artifact::shards_meta`]): the
/// shard plan plus the record directory used to locate and individually
/// verify each shard's packed distance records.
#[derive(Debug, Clone)]
pub struct ShardsMeta {
    /// The distance bound every stored table was built with.
    pub delta: f64,
    /// Per-node shard assignment, indexed by node id.
    pub shard_of: Vec<u32>,
    /// Distance records per shard, in shard order.
    pub shard_counts: Vec<usize>,
    /// Distance records of the boundary overlay.
    pub overlay_count: usize,
    /// Byte offset of the first record within the image.
    rec_base: usize,
    /// Per-shard CRCs over each shard's record range.
    shard_crcs: Vec<u32>,
    /// CRC over the overlay's record range.
    overlay_crc: u32,
}

impl ShardsMeta {
    /// Number of shards in the stored plan.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shard_counts.len()
    }
}

/// One entry of a decoded artifact's section table.
#[derive(Debug, Clone, Copy)]
pub struct SectionInfo {
    /// Raw kind tag (see [`SectionKind::from_tag`]; unknown tags are kept
    /// so `inspect` can report them).
    pub kind: u16,
    /// Byte offset of the payload within the image.
    pub offset: usize,
    /// Payload length in bytes.
    pub len: usize,
    /// Payload CRC-32 from the (header-CRC-protected) section table;
    /// verified against the payload when the section is served.
    pub crc: u32,
}

/// A validated artifact image serving zero-parse views of its sections.
///
/// [`Artifact::decode`] checks the magic, version, total length, section
/// layout and header CRC once; each accessor then verifies its own
/// section's CRC before constructing the view straight from the shared
/// slab — [`Artifact::dist_table`] does not even copy the records out. A
/// flipped byte in the header fails [`Artifact::decode`]; a flipped byte
/// in a payload fails the accessor that serves it
/// ([`ArtifactError::SectionChecksum`]) — either way, corrupt bytes are
/// never served.
#[derive(Debug, Clone)]
pub struct Artifact {
    slab: Arc<Vec<u8>>,
    sections: Vec<SectionInfo>,
}

impl Artifact {
    /// Validates and adopts an image (see type docs for what is checked).
    ///
    /// # Errors
    /// Any [`ArtifactError`] variant describing the first check to fail.
    /// A flipped byte in the header fails here; a flipped payload byte
    /// fails the accessor serving that section — a single corrupted byte
    /// anywhere in the image is always caught before its bytes are used.
    pub fn decode(bytes: Vec<u8>) -> Result<Self, ArtifactError> {
        Self::from_shared(Arc::new(bytes))
    }

    /// [`Artifact::decode`] over an already-shared slab (several artifacts
    /// or tables may alias one buffer).
    ///
    /// # Errors
    /// See [`Artifact::decode`].
    pub fn from_shared(slab: Arc<Vec<u8>>) -> Result<Self, ArtifactError> {
        let bytes: &[u8] = &slab;
        let mut r = Reader::new(bytes);
        let mut magic = [0u8; 4];
        for b in &mut magic {
            *b = r.u8().map_err(|_| ArtifactError::Truncated)?;
        }
        if magic != MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        let version = r.u16().map_err(|_| ArtifactError::Truncated)?;
        if version != VERSION {
            return Err(ArtifactError::BadVersion(version));
        }
        let n = r.u16().map_err(|_| ArtifactError::Truncated)? as usize;
        let declared = r.u64().map_err(|_| ArtifactError::Truncated)?;
        if declared != bytes.len() as u64 {
            return Err(ArtifactError::LengthMismatch { declared, actual: bytes.len() as u64 });
        }
        let header_len = PREFIX_BYTES + n * ENTRY_BYTES + 4;
        if bytes.len() < header_len {
            return Err(ArtifactError::Truncated);
        }
        let mut sections = Vec::with_capacity(n);
        for _ in 0..n {
            let kind = r.u16().map_err(|_| ArtifactError::Truncated)?;
            let _reserved = r.u16().map_err(|_| ArtifactError::Truncated)?;
            let offset = r.u64().map_err(|_| ArtifactError::Truncated)?;
            let len = r.u64().map_err(|_| ArtifactError::Truncated)?;
            let crc = r.u32().map_err(|_| ArtifactError::Truncated)?;
            let offset = usize::try_from(offset).map_err(|_| ArtifactError::Truncated)?;
            let len = usize::try_from(len).map_err(|_| ArtifactError::Truncated)?;
            sections.push(SectionInfo { kind, offset, len, crc });
        }
        // The header CRC covers everything up to itself; verify before
        // trusting any offset it protects.
        let stored_hcrc = r.u32().map_err(|_| ArtifactError::Truncated)?;
        if crc32(&bytes[..header_len - 4]) != stored_hcrc {
            return Err(ArtifactError::HeaderChecksum);
        }
        // Sections must tile the rest of the image exactly, in order: no
        // gaps, no overlaps, no trailing garbage. Payload CRCs are NOT
        // checked here — each accessor verifies its own section when it
        // serves it, so loading one section never pays to checksum the
        // others.
        let mut cursor = header_len;
        for s in &sections {
            if s.offset != cursor {
                return Err(ArtifactError::Malformed("sections out of order or overlapping"));
            }
            let end = s.offset.checked_add(s.len).ok_or(ArtifactError::Truncated)?;
            if end > bytes.len() {
                return Err(ArtifactError::Truncated);
            }
            cursor = end;
        }
        if cursor != bytes.len() {
            return Err(ArtifactError::Malformed("trailing bytes"));
        }
        for (i, s) in sections.iter().enumerate() {
            if sections[..i].iter().any(|t| t.kind == s.kind) {
                return Err(ArtifactError::DuplicateSection { kind: s.kind });
            }
        }
        Ok(Self { slab, sections })
    }

    /// The verified section table, in image order.
    #[must_use]
    pub fn sections(&self) -> &[SectionInfo] {
        &self.sections
    }

    /// The underlying shared image.
    #[must_use]
    pub fn slab(&self) -> &Arc<Vec<u8>> {
        &self.slab
    }

    /// The payload of `kind` together with its table entry, after
    /// verifying the payload CRC. Checked on every call: the accessors
    /// are startup-path code, invoked once per process per section.
    fn verified_section(&self, kind: SectionKind) -> Result<(SectionInfo, &[u8]), ArtifactError> {
        let s = *self
            .sections
            .iter()
            .find(|s| s.kind == kind as u16)
            .ok_or(ArtifactError::MissingSection(kind))?;
        let payload = &self.slab[s.offset..s.offset + s.len];
        if crc32(payload) != s.crc {
            return Err(ArtifactError::SectionChecksum { kind: s.kind });
        }
        Ok((s, payload))
    }

    /// Materializes the road graph. Node references are range-checked here
    /// and the reconstructed segment count is compared against the declared
    /// one, so a hostile image can neither hit [`RoadNetwork::new`]'s
    /// panics nor silently shift segment ids (self-loops and duplicates
    /// would be dropped by the constructor, renumbering every id the other
    /// sections refer to).
    ///
    /// # Errors
    /// [`ArtifactError::MissingSection`] / [`ArtifactError::Malformed`].
    pub fn graph(&self) -> Result<RoadNetwork, ArtifactError> {
        let mut r = Reader::new(self.verified_section(SectionKind::Graph)?.1);
        let n_nodes = r.usize()?;
        if n_nodes.checked_mul(16).is_none_or(|b| b > r.remaining()) {
            return Err(ArtifactError::Truncated);
        }
        let mut pos = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            pos.push(trmma_geom::Vec2::new(r.f64()?, r.f64()?));
        }
        let n_segs = r.usize()?;
        if n_segs.checked_mul(9).is_none_or(|b| b > r.remaining()) {
            return Err(ArtifactError::Truncated);
        }
        let mut edges = Vec::with_capacity(n_segs);
        for _ in 0..n_segs {
            let from = r.u32()? as usize;
            let to = r.u32()? as usize;
            let class = class_from_tag(r.u8()?)?;
            if from >= n_nodes || to >= n_nodes {
                return Err(ArtifactError::Malformed("edge node out of range"));
            }
            if from == to {
                return Err(ArtifactError::Malformed("self-loop edge"));
            }
            edges.push((NodeId(from as u32), NodeId(to as u32), class));
        }
        r.expect_end()?;
        let net = RoadNetwork::new(pos, edges);
        if net.num_segments() != n_segs {
            // The constructor dropped duplicates: ids no longer line up
            // with the image's other sections.
            return Err(ArtifactError::Malformed("duplicate edges"));
        }
        Ok(net)
    }

    /// The distance table, served **zero-copy**: queries binary-search the
    /// packed records in place within the shared slab; nothing is copied
    /// or re-hashed. Answers are bitwise-identical to the table the image
    /// was built from.
    ///
    /// # Errors
    /// [`ArtifactError::MissingSection`] / [`ArtifactError::Malformed`].
    pub fn dist_table(&self) -> Result<DistTable, ArtifactError> {
        let (info, payload) = self.verified_section(SectionKind::DistTable)?;
        let mut r = Reader::new(payload);
        let delta = r.f64()?;
        let count = r.usize()?;
        let expect = count.checked_mul(DIST_RECORD_BYTES).ok_or(ArtifactError::Truncated)?;
        if r.remaining() != expect {
            return Err(ArtifactError::Malformed("dist-table record count mismatch"));
        }
        Ok(DistTable::from_image(Arc::clone(&self.slab), info.offset + 16, count, delta)?)
    }

    /// The node2vec embedding table.
    ///
    /// # Errors
    /// [`ArtifactError::MissingSection`] / [`ArtifactError::Malformed`].
    pub fn embeddings(&self) -> Result<Matrix, ArtifactError> {
        let mut r = Reader::new(self.verified_section(SectionKind::Embeddings)?.1);
        let rows = r.usize()?;
        let cols = r.usize()?;
        let n = rows.checked_mul(cols).ok_or(ArtifactError::Truncated)?;
        if n.checked_mul(8).is_none_or(|b| b != r.remaining()) {
            return Err(ArtifactError::Malformed("embedding table size mismatch"));
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(r.f64()?);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }

    /// The verified metadata of the shards section: the shard plan and the
    /// record directory. Only the metadata bytes are checksummed here
    /// (`meta_crc`); record ranges are verified per shard when served.
    ///
    /// # Errors
    /// [`ArtifactError::MissingSection`] when the artifact has no shards
    /// section; [`ArtifactError::SectionChecksum`] on corrupt metadata.
    pub fn shards_meta(&self) -> Result<ShardsMeta, ArtifactError> {
        let s = *self
            .sections
            .iter()
            .find(|s| s.kind == SectionKind::Shards as u16)
            .ok_or(ArtifactError::MissingSection(SectionKind::Shards))?;
        let payload = &self.slab[s.offset..s.offset + s.len];
        let mut r = Reader::new(payload);
        let delta = r.f64()?;
        let node_count = r.usize()?;
        if node_count.checked_mul(4).is_none_or(|b| b > r.remaining()) {
            return Err(ArtifactError::Truncated);
        }
        let mut shard_of = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            shard_of.push(r.u32()?);
        }
        let num_shards = r.usize()?;
        if num_shards == 0 {
            return Err(ArtifactError::Malformed("shards section declares zero shards"));
        }
        if num_shards.checked_mul(12).is_none_or(|b| b > r.remaining()) {
            return Err(ArtifactError::Truncated);
        }
        let mut shard_counts = Vec::with_capacity(num_shards);
        let mut shard_crcs = Vec::with_capacity(num_shards);
        for _ in 0..num_shards {
            shard_counts.push(r.usize()?);
            shard_crcs.push(r.u32()?);
        }
        let overlay_count = r.usize()?;
        let overlay_crc = r.u32()?;
        // meta_crc covers every metadata byte before it — including the
        // per-range CRCs, so a flipped directory entry is caught here, not
        // misattributed to a shard.
        let meta_len = payload.len() - r.remaining();
        let stored = r.u32()?;
        if crc32(&payload[..meta_len]) != stored {
            return Err(ArtifactError::SectionChecksum { kind: SectionKind::Shards as u16 });
        }
        if shard_of.iter().any(|&x| x as usize >= num_shards) {
            return Err(ArtifactError::Malformed("shard label out of range"));
        }
        let total: usize = shard_counts
            .iter()
            .chain(std::iter::once(&overlay_count))
            .try_fold(0usize, |acc, &c| {
                c.checked_mul(DIST_RECORD_BYTES).and_then(|b| acc.checked_add(b))
            })
            .ok_or(ArtifactError::Truncated)?;
        if total != r.remaining() {
            return Err(ArtifactError::Malformed("shards record ranges mismatch"));
        }
        Ok(ShardsMeta {
            delta,
            shard_of,
            shard_counts,
            overlay_count,
            rec_base: s.offset + meta_len + 4,
            shard_crcs,
            overlay_crc,
        })
    }

    /// One shard's intra-shard distance table, served **zero-copy** after
    /// verifying only that shard's record range against its own CRC — the
    /// lazily-verified load path: a process serving shard `s` never pays to
    /// checksum (or even touch) the other shards' bytes.
    ///
    /// # Errors
    /// [`ArtifactError::ShardChecksum`] when that shard's bytes are
    /// corrupt; [`ArtifactError::Malformed`] on an out-of-range index.
    pub fn shard_intra_table(&self, shard: u32) -> Result<DistTable, ArtifactError> {
        let meta = self.shards_meta()?;
        self.shard_table_at(&meta, shard)
    }

    fn shard_table_at(&self, meta: &ShardsMeta, shard: u32) -> Result<DistTable, ArtifactError> {
        let idx = shard as usize;
        if idx >= meta.shard_counts.len() {
            return Err(ArtifactError::Malformed("shard index out of range"));
        }
        let off =
            meta.rec_base + meta.shard_counts[..idx].iter().sum::<usize>() * DIST_RECORD_BYTES;
        let count = meta.shard_counts[idx];
        if crc32(&self.slab[off..off + count * DIST_RECORD_BYTES]) != meta.shard_crcs[idx] {
            return Err(ArtifactError::ShardChecksum { shard });
        }
        Ok(DistTable::from_image(Arc::clone(&self.slab), off, count, meta.delta)?)
    }

    /// The boundary-overlay table of the shards section, zero-copy, after
    /// verifying only the overlay's record range.
    ///
    /// # Errors
    /// [`ArtifactError::OverlayChecksum`] when the overlay bytes are
    /// corrupt.
    pub fn shards_overlay(&self) -> Result<DistTable, ArtifactError> {
        let meta = self.shards_meta()?;
        self.overlay_at(&meta)
    }

    fn overlay_at(&self, meta: &ShardsMeta) -> Result<DistTable, ArtifactError> {
        let off = meta.rec_base + meta.shard_counts.iter().sum::<usize>() * DIST_RECORD_BYTES;
        let count = meta.overlay_count;
        if crc32(&self.slab[off..off + count * DIST_RECORD_BYTES]) != meta.overlay_crc {
            return Err(ArtifactError::OverlayChecksum);
        }
        Ok(DistTable::from_image(Arc::clone(&self.slab), off, count, meta.delta)?)
    }

    /// Reassembles the full [`ShardedNetwork`] over `net` from the shards
    /// section: the plan from the stored assignment, every intra table and
    /// the overlay adopted zero-copy (verifying each range once), borders
    /// and per-shard R-trees derived from `net` + plan. Answers are
    /// bitwise-identical to the sharded network the image was built from.
    ///
    /// # Errors
    /// Any shards-section error above, or [`ArtifactError::Malformed`]
    /// when the stored plan does not fit `net`.
    pub fn sharded_network(&self, net: Arc<RoadNetwork>) -> Result<ShardedNetwork, ArtifactError> {
        let meta = self.shards_meta()?;
        if meta.shard_of.len() != net.num_nodes() {
            return Err(ArtifactError::Malformed("shards plan is for another graph"));
        }
        let intra = (0..meta.shard_counts.len())
            .map(|s| self.shard_table_at(&meta, s as u32))
            .collect::<Result<Vec<_>, _>>()?;
        let overlay = self.overlay_at(&meta)?;
        let num_shards = meta.shard_counts.len();
        let plan = ShardPlan::from_assignment(num_shards, meta.shard_of, net.num_nodes());
        Ok(ShardedNetwork::from_parts(net, plan, meta.delta, intra, overlay))
    }

    /// The names of the stored weight blobs, in build order (empty when the
    /// artifact has no params section).
    ///
    /// # Errors
    /// [`ArtifactError::Malformed`] on a corrupt params payload.
    pub fn param_names(&self) -> Result<Vec<String>, ArtifactError> {
        match self.verified_section(SectionKind::Params) {
            Err(ArtifactError::MissingSection(_)) => Ok(Vec::new()),
            Err(e) => Err(e),
            Ok((_, payload)) => {
                let mut names = Vec::new();
                self.each_param(payload, |name, _| {
                    names.push(name.to_string());
                    false
                })?;
                Ok(names)
            }
        }
    }

    /// The weight blob stored under `name`, as written by
    /// [`trmma_nn::serialize::save_params`] — feed it to `load_params` (or
    /// `Mma::load_weights` / `Trmma::load_weights`), which re-validates
    /// magic, version and shapes against the receiving model.
    ///
    /// # Errors
    /// [`ArtifactError::MissingParams`] when no blob has that name.
    pub fn params_blob(&self, name: &str) -> Result<&[u8], ArtifactError> {
        let (_, payload) = match self.verified_section(SectionKind::Params) {
            Err(ArtifactError::MissingSection(_)) => {
                return Err(ArtifactError::MissingParams(name.to_string()))
            }
            other => other?,
        };
        let mut found = None;
        self.each_param(payload, |n, blob| {
            if n == name {
                found = Some(blob);
                true
            } else {
                false
            }
        })?;
        found.ok_or_else(|| ArtifactError::MissingParams(name.to_string()))
    }

    /// Walks the params section, calling `f(name, blob)` per entry until it
    /// returns `true`.
    fn each_param<'a>(
        &self,
        payload: &'a [u8],
        mut f: impl FnMut(&str, &'a [u8]) -> bool,
    ) -> Result<(), ArtifactError> {
        let mut r = Reader::new(payload);
        let count = r.u32()?;
        for _ in 0..count {
            let name = std::str::from_utf8(r.bytes()?)
                .map_err(|_| ArtifactError::Malformed("blob name not UTF-8"))?;
            let blob = r.bytes()?;
            if f(name, blob) {
                return Ok(());
            }
        }
        r.expect_end()?;
        Ok(())
    }
}

fn class_tag(class: RoadClass) -> u8 {
    match class {
        RoadClass::Arterial => 0,
        RoadClass::Collector => 1,
        RoadClass::Local => 2,
    }
}

fn class_from_tag(tag: u8) -> Result<RoadClass, ArtifactError> {
    match tag {
        0 => Ok(RoadClass::Arterial),
        1 => Ok(RoadClass::Collector),
        2 => Ok(RoadClass::Local),
        _ => Err(ArtifactError::Malformed("unknown road class")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trmma_roadnet::{generate_city, GridCut, NetworkConfig};

    fn net() -> RoadNetwork {
        generate_city(&NetworkConfig::with_size(5, 5, 77))
    }

    fn sharded(net: &RoadNetwork) -> ShardedNetwork {
        let plan = ShardPlan::new(net, &GridCut { tiles_x: 2, tiles_y: 2, seed: 1 });
        ShardedNetwork::build(Arc::new(net.clone()), plan, 600.0)
    }

    fn full_artifact(net: &RoadNetwork) -> Vec<u8> {
        let table = DistTable::build(net, 600.0);
        let emb = Matrix::from_vec(
            net.num_segments(),
            4,
            (0..net.num_segments() * 4).map(|i| i as f64 * 0.25 - 3.0).collect(),
        );
        let mut b = ArtifactBuilder::new();
        b.graph(net);
        b.dist_table(&table);
        b.embeddings(&emb);
        b.shards(&sharded(net));
        b.params("mma", b"\x00fake-blob-bytes\xff");
        b.params("trmma", &[]);
        b.finish()
    }

    #[test]
    fn round_trips_every_section() {
        let net = net();
        let table = DistTable::build(&net, 600.0);
        let image = full_artifact(&net);
        let art = Artifact::decode(image).unwrap();
        assert_eq!(art.sections().len(), 5);

        // Graph: bit-identical reconstruction.
        let g = art.graph().unwrap();
        assert_eq!(g.num_nodes(), net.num_nodes());
        assert_eq!(g.num_segments(), net.num_segments());
        for i in 0..net.num_nodes() {
            let (a, b) = (net.node_pos(NodeId(i as u32)), g.node_pos(NodeId(i as u32)));
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
        }
        for (a, b) in net.segments().iter().zip(g.segments()) {
            assert_eq!(a.from, b.from);
            assert_eq!(a.to, b.to);
            assert_eq!(a.class, b.class);
            assert_eq!(a.length.to_bits(), b.length.to_bits());
        }

        // Dist table: zero-copy view, bitwise-identical answers.
        let loaded = art.dist_table().unwrap();
        assert_eq!(loaded.len(), table.len());
        assert_eq!(loaded.delta().to_bits(), table.delta().to_bits());
        for s in 0..net.num_nodes() as u32 {
            for d in 0..net.num_nodes() as u32 {
                assert_eq!(
                    table.query(NodeId(s), NodeId(d)).map(f64::to_bits),
                    loaded.query(NodeId(s), NodeId(d)).map(f64::to_bits),
                    "{s}->{d}"
                );
            }
        }
        // The view aliases the artifact's slab, not a copy.
        assert!(Arc::ptr_eq(art.slab(), art.slab()));

        // Embeddings round-trip bitwise.
        let emb = art.embeddings().unwrap();
        assert_eq!((emb.rows(), emb.cols()), (net.num_segments(), 4));
        assert_eq!(emb.data()[3].to_bits(), (3.0 * 0.25 - 3.0f64).to_bits());

        // Params by name; unknown names are typed errors.
        assert_eq!(art.param_names().unwrap(), vec!["mma", "trmma"]);
        assert_eq!(art.params_blob("mma").unwrap(), b"\x00fake-blob-bytes\xff");
        assert_eq!(art.params_blob("trmma").unwrap(), b"");
        assert_eq!(
            art.params_blob("nope").unwrap_err(),
            ArtifactError::MissingParams("nope".to_string())
        );
    }

    /// Serves every section the way a consumer would — the failure mode
    /// payload corruption must trigger now that section CRCs are checked
    /// on access rather than at decode.
    fn materialize(art: &Artifact) -> Result<(), ArtifactError> {
        art.graph()?;
        art.dist_table()?;
        art.embeddings()?;
        let meta = art.shards_meta()?;
        for s in 0..meta.num_shards() as u32 {
            art.shard_intra_table(s)?;
        }
        art.shards_overlay()?;
        for name in art.param_names()? {
            art.params_blob(&name)?;
        }
        Ok(())
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let image = full_artifact(&net());
        for i in 0..image.len() {
            let mut bad = image.clone();
            bad[i] ^= 0x01;
            let rejected = match Artifact::decode(bad) {
                Err(_) => true,
                Ok(art) => materialize(&art).is_err(),
            };
            assert!(rejected, "flipped byte {i} served");
        }
    }

    #[test]
    fn payload_corruption_fails_only_the_owning_section() {
        let image = full_artifact(&net());
        let art = Artifact::decode(image.clone()).unwrap();
        let dist =
            *art.sections().iter().find(|s| s.kind == SectionKind::DistTable as u16).unwrap();
        let mut bad = image;
        bad[dist.offset + dist.len / 2] ^= 0xFF;
        // The header still validates; the corrupt section is refused when
        // served, the intact ones still work.
        let art = Artifact::decode(bad).unwrap();
        assert_eq!(
            art.dist_table().unwrap_err(),
            ArtifactError::SectionChecksum { kind: SectionKind::DistTable as u16 }
        );
        assert!(art.graph().is_ok());
        assert!(art.embeddings().is_ok());
    }

    #[test]
    fn shards_section_round_trips_bitwise() {
        let net = net();
        let built = sharded(&net);
        let art = Artifact::decode(full_artifact(&net)).unwrap();
        let meta = art.shards_meta().unwrap();
        assert_eq!(meta.num_shards(), built.num_shards());
        assert_eq!(meta.shard_of, built.plan().assignment());
        assert_eq!(meta.delta.to_bits(), built.delta().to_bits());
        for (s, shard) in built.shards().iter().enumerate() {
            let loaded = art.shard_intra_table(s as u32).unwrap();
            assert_eq!(loaded.len(), shard.intra().len());
        }
        assert_eq!(art.shards_overlay().unwrap().len(), built.overlay().len());
        // The reassembled network answers bitwise-identically to the one
        // the image was built from, for every node pair.
        let re = art.sharded_network(Arc::new(net.clone())).unwrap();
        for s in 0..net.num_nodes() as u32 {
            for d in 0..net.num_nodes() as u32 {
                assert_eq!(
                    built.node_dist(NodeId(s), NodeId(d)).map(f64::to_bits),
                    re.node_dist(NodeId(s), NodeId(d)).map(f64::to_bits),
                    "{s}->{d}"
                );
            }
        }
        // A plan for a different graph is refused, not panicked on.
        let other = generate_city(&NetworkConfig::with_size(4, 4, 3));
        assert!(matches!(
            art.sharded_network(Arc::new(other)).unwrap_err(),
            ArtifactError::Malformed(_)
        ));
    }

    #[test]
    fn shard_payload_flip_fails_only_that_shard() {
        let net = net();
        let image = full_artifact(&net);
        let art = Artifact::decode(image.clone()).unwrap();
        let meta = art.shards_meta().unwrap();
        let victim = 1u32;
        assert!(meta.shard_counts[victim as usize] > 0, "fixture shard must own records");

        // Seeded flip inside the victim shard's record range.
        let mut bad = image.clone();
        let off = meta.rec_base + meta.shard_counts[0] * DIST_RECORD_BYTES + 3;
        bad[off] ^= 0x40;
        let art = Artifact::decode(bad).unwrap();
        assert_eq!(
            art.shard_intra_table(victim).unwrap_err(),
            ArtifactError::ShardChecksum { shard: victim }
        );
        // Every *other* shard, the overlay, and the unrelated sections
        // still serve — per-shard verification isolates the damage.
        for s in (0..meta.num_shards() as u32).filter(|&s| s != victim) {
            assert!(art.shard_intra_table(s).is_ok(), "shard {s} should survive");
        }
        assert!(art.shards_overlay().is_ok());
        assert!(art.dist_table().is_ok());
        // ...but assembling the full network needs every shard, so it fails.
        assert_eq!(
            art.sharded_network(Arc::new(net.clone())).unwrap_err(),
            ArtifactError::ShardChecksum { shard: victim }
        );

        // A flip in the overlay range is the overlay's error alone.
        let mut bad = image.clone();
        let over_off =
            meta.rec_base + meta.shard_counts.iter().sum::<usize>() * DIST_RECORD_BYTES + 5;
        bad[over_off] ^= 0x40;
        let art = Artifact::decode(bad).unwrap();
        assert_eq!(art.shards_overlay().unwrap_err(), ArtifactError::OverlayChecksum);
        for s in 0..meta.num_shards() as u32 {
            assert!(art.shard_intra_table(s).is_ok());
        }

        // A flip in the metadata fails the whole shards section up front.
        let info = *art.sections().iter().find(|s| s.kind == SectionKind::Shards as u16).unwrap();
        let mut bad = image.clone();
        // Flip a shard_of label (byte 16 onward: after delta + node_count),
        // which keeps the parse shape intact so the CRC is what catches it.
        bad[info.offset + 17] ^= 0x01;
        let art = Artifact::decode(bad).unwrap();
        assert_eq!(
            art.shards_meta().unwrap_err(),
            ArtifactError::SectionChecksum { kind: SectionKind::Shards as u16 }
        );
    }

    #[test]
    fn every_truncation_is_rejected() {
        let image = full_artifact(&net());
        for n in 0..image.len() {
            assert!(Artifact::decode(image[..n].to_vec()).is_err(), "prefix {n} accepted");
        }
        // Appended garbage fails the total-length check.
        let mut long = image.clone();
        long.push(0);
        assert!(matches!(
            Artifact::decode(long).unwrap_err(),
            ArtifactError::LengthMismatch { .. }
        ));
    }

    #[test]
    fn header_guards() {
        assert_eq!(Artifact::decode(b"XXXX".to_vec()).unwrap_err(), ArtifactError::BadMagic);
        assert_eq!(Artifact::decode(b"TR".to_vec()).unwrap_err(), ArtifactError::Truncated);
        let image = full_artifact(&net());
        let mut v9 = image.clone();
        v9[4] = 9;
        // The version check fires before the header CRC can (both would
        // reject; the version error is the more useful report).
        assert_eq!(Artifact::decode(v9).unwrap_err(), ArtifactError::BadVersion(9));
    }

    #[test]
    fn missing_sections_are_typed_errors() {
        let net = net();
        let mut b = ArtifactBuilder::new();
        b.graph(&net);
        let art = Artifact::decode(b.finish()).unwrap();
        assert!(art.graph().is_ok());
        assert_eq!(
            art.dist_table().unwrap_err(),
            ArtifactError::MissingSection(SectionKind::DistTable)
        );
        assert_eq!(
            art.embeddings().unwrap_err(),
            ArtifactError::MissingSection(SectionKind::Embeddings)
        );
        assert_eq!(art.param_names().unwrap(), Vec::<String>::new());
        assert!(matches!(art.params_blob("mma").unwrap_err(), ArtifactError::MissingParams(_)));
    }

    #[test]
    fn errors_display() {
        for e in [
            ArtifactError::Truncated,
            ArtifactError::BadMagic,
            ArtifactError::BadVersion(9),
            ArtifactError::LengthMismatch { declared: 10, actual: 9 },
            ArtifactError::HeaderChecksum,
            ArtifactError::SectionChecksum { kind: 2 },
            ArtifactError::ShardChecksum { shard: 3 },
            ArtifactError::OverlayChecksum,
            ArtifactError::DuplicateSection { kind: 1 },
            ArtifactError::MissingSection(SectionKind::Params),
            ArtifactError::MissingParams("x".to_string()),
            ArtifactError::Malformed("y"),
        ] {
            assert!(!e.to_string().is_empty());
        }
        assert_eq!(SectionKind::from_tag(4), Some(SectionKind::Embeddings));
        assert_eq!(SectionKind::from_tag(5), Some(SectionKind::Shards));
        assert_eq!(SectionKind::from_tag(6), None);
        assert_eq!(SectionKind::DistTable.name(), "dist_table");
        assert_eq!(SectionKind::Shards.name(), "shards");
    }
}
