//! Batched, parallel inference over many trajectories.
//!
//! The paper's headline claim is *efficiency*: MMA and TRMMA beat prior
//! matchers/recovery models on inference throughput. Serving one trajectory
//! at a time through an allocation-heavy path leaves most of that on the
//! table, so this module adds the production-shaped entry points:
//!
//! * [`BatchMatcher`] — map-matches a `&[Trajectory]` across a worker pool
//!   sharing one immutable [`Mma`] (`Arc`, read-mostly);
//! * [`BatchRecovery`] — the full MMA → TRMMA pipeline over a batch;
//! * [`par_recover`] / [`par_match`] — the same fan-out for *any*
//!   [`TrajectoryRecovery`] / [`MapMatcher`], used to parallelise baselines.
//!
//! **Sharing/ownership model.** Workers are `std::thread::scope` threads
//! pulling indices from one atomic counter (work stealing by construction:
//! a worker stuck on a long trajectory simply claims fewer indices). The
//! model, R-tree and route planner are shared behind `Arc` and never
//! written during inference; every mutable buffer — the autograd tape and
//! the k-NN heaps — lives in a per-worker scratch ([`MmaScratch`],
//! [`trmma_nn::Graph`]) created once per thread and reused for every
//! trajectory that thread claims. Shared network-distance lookups go
//! through `DistCache`, whose misses reuse warm Dijkstra state.
//!
//! **Determinism.** Inference is a pure function of (model, trajectory), so
//! results are written back by input index and are bitwise-identical for
//! any thread count and any input order — property-tested in this module
//! and relied on by the benchmark harness when it validates the parallel
//! path against the sequential one.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use trmma_nn::Graph;
use trmma_traj::api::{MapMatcher, MatchResult, ScratchMatcher, TrajectoryRecovery};
use trmma_traj::types::{MatchedTrajectory, Trajectory};

use crate::mma::{Mma, MmaScratch};
use crate::trmma::Trmma;

/// Tuning knobs of the batch engine. The default (`threads: 0`) sizes the
/// pool from [`std::thread::available_parallelism`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchOptions {
    /// Worker threads; `0` uses [`std::thread::available_parallelism`].
    pub threads: usize,
}

impl BatchOptions {
    /// An explicit thread count (`0` = auto).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self { threads }
    }

    /// The effective worker count for a batch of `n` items.
    #[must_use]
    pub fn effective_threads(&self, n: usize) -> usize {
        let hw = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        };
        hw.max(1).min(n.max(1))
    }
}

/// Per-item wall-clock seconds plus the batch total, as measured inside the
/// workers — the raw material for throughput / p50 / p99 reporting.
#[derive(Debug, Clone, Default)]
pub struct BatchTiming {
    /// Seconds spent on each item, indexed like the input batch.
    pub per_item_s: Vec<f64>,
    /// Wall-clock seconds for the whole batch (fan-out to join).
    pub wall_s: f64,
    /// Heap allocations absorbed by the per-worker scratch arenas over the
    /// batch (summed across workers; see
    /// [`trmma_traj::api::ScratchStats`]). Zero for scratch-less paths.
    pub allocs_avoided: u64,
}

impl BatchTiming {
    /// Items per second over the batch wall-clock.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.wall_s <= 0.0 {
            return 0.0;
        }
        self.per_item_s.len() as f64 / self.wall_s
    }

    /// The `q`-quantile (0–1) of per-item latency, in seconds.
    #[must_use]
    pub fn latency_quantile(&self, q: f64) -> f64 {
        if self.per_item_s.is_empty() {
            return 0.0;
        }
        let mut sorted = self.per_item_s.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let ix = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[ix]
    }
}

/// Fans `items` out over `threads` workers, each with its own scratch state
/// from `make_state`, preserving input order in the output.
///
/// The core loop of the engine; everything public in this module is a thin
/// wrapper choosing the state type and the per-item function.
pub(crate) fn parallel_map<T, R, S, FS, F>(
    items: &[T],
    threads: usize,
    make_state: FS,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    S: Send,
    FS: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    parallel_map_finish(items, threads, make_state, f, |_| 0).0
}

/// [`parallel_map`] that additionally folds each worker's retiring scratch
/// through `finish` and sums the results — how per-worker counters (arena
/// reuse and the like) surface without any cross-thread traffic on the hot
/// path.
pub(crate) fn parallel_map_finish<T, R, S, FS, F, FF>(
    items: &[T],
    threads: usize,
    make_state: FS,
    f: F,
    finish: FF,
) -> (Vec<R>, u64)
where
    T: Sync,
    R: Send,
    S: Send,
    FS: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
    FF: Fn(&S) -> u64 + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        let mut state = make_state();
        let out = items.iter().map(|item| f(&mut state, item)).collect();
        return (out, finish(&state));
    }
    // When workers outnumber cores, a worker that never blocks loses the
    // core *mid-item* for a full scheduler timeslice — several
    // milliseconds charged to whichever unlucky trajectory it was on, the
    // dominant p99 spike of oversubscribed runs. Yielding between items
    // moves those preemptions to item boundaries, where they cost no
    // measured latency. With threads <= cores the yield is a no-op.
    let oversubscribed =
        threads > std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let next = AtomicUsize::new(0);
    let buckets: Vec<(Vec<(usize, R)>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = make_state();
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&mut state, &items[i])));
                        if oversubscribed {
                            std::thread::yield_now();
                        }
                    }
                    (local, finish(&state))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("batch worker panicked")).collect()
    });
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut stat = 0u64;
    for (bucket, s) in buckets {
        stat += s;
        for (i, r) in bucket {
            out[i] = Some(r);
        }
    }
    let out = out.into_iter().map(|r| r.expect("every index is claimed exactly once")).collect();
    (out, stat)
}

fn timed_map<T, R, S, FS, F, FF>(
    items: &[T],
    threads: usize,
    make_state: FS,
    f: F,
    finish: FF,
) -> (Vec<R>, BatchTiming)
where
    T: Sync,
    R: Send,
    S: Send,
    FS: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
    FF: Fn(&S) -> u64 + Sync,
{
    let started = std::time::Instant::now();
    let (pairs, allocs_avoided) = parallel_map_finish(
        items,
        threads,
        make_state,
        |state, item| {
            let t0 = std::time::Instant::now();
            let r = f(state, item);
            (r, t0.elapsed().as_secs_f64())
        },
        finish,
    );
    let wall_s = started.elapsed().as_secs_f64();
    let mut results = Vec::with_capacity(pairs.len());
    let mut per_item_s = Vec::with_capacity(pairs.len());
    for (r, dt) in pairs {
        results.push(r);
        per_item_s.push(dt);
    }
    (results, BatchTiming { per_item_s, wall_s, allocs_avoided })
}

/// Parallel batched map matching with a shared [`Mma`]; see module docs.
#[derive(Clone)]
pub struct BatchMatcher {
    mma: Arc<Mma>,
    opts: BatchOptions,
}

impl BatchMatcher {
    /// Wraps a trained (or untrained) model for batch serving.
    #[must_use]
    pub fn new(mma: Arc<Mma>, opts: BatchOptions) -> Self {
        Self { mma, opts }
    }

    /// The wrapped model.
    #[must_use]
    pub fn model(&self) -> &Mma {
        &self.mma
    }

    /// Map-matches every trajectory of the batch; output `i` corresponds to
    /// input `i` and is identical to
    /// `self.model().match_trajectory(&batch[i])`.
    #[must_use]
    pub fn match_batch(&self, batch: &[Trajectory]) -> Vec<MatchResult> {
        let threads = self.opts.effective_threads(batch.len());
        parallel_map(batch, threads, MmaScratch::new, |scratch, traj| {
            self.mma.match_trajectory_with(scratch, traj)
        })
    }

    /// [`BatchMatcher::match_batch`] plus per-item and wall-clock timing.
    #[must_use]
    pub fn match_batch_timed(&self, batch: &[Trajectory]) -> (Vec<MatchResult>, BatchTiming) {
        let threads = self.opts.effective_threads(batch.len());
        timed_map(
            batch,
            threads,
            MmaScratch::new,
            |scratch, traj| self.mma.match_trajectory_with(scratch, traj),
            MmaScratch::allocs_avoided,
        )
    }
}

/// Per-worker scratch of the full recovery pipeline: the MMA state and the
/// TRMMA tape. Network-distance lookups during post-batch evaluation go
/// through a shared [`DistCache`], whose misses reuse warm Dijkstra state
/// internally (see [`SsspPool`]).
///
/// [`DistCache`]: trmma_roadnet::shortest::DistCache
/// [`SsspPool`]: trmma_roadnet::shortest::SsspPool
#[derive(Default)]
pub struct RecoveryScratch {
    mma: MmaScratch,
    graph: Graph,
}

impl RecoveryScratch {
    /// Empty scratch state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Parallel batched trajectory recovery (MMA → TRMMA) with shared models;
/// see module docs.
#[derive(Clone)]
pub struct BatchRecovery {
    mma: Arc<Mma>,
    model: Arc<Trmma>,
    opts: BatchOptions,
}

impl BatchRecovery {
    /// Wraps the matcher and recovery models for batch serving.
    #[must_use]
    pub fn new(mma: Arc<Mma>, model: Arc<Trmma>, opts: BatchOptions) -> Self {
        Self { mma, model, opts }
    }

    /// The wrapped recovery model.
    #[must_use]
    pub fn model(&self) -> &Trmma {
        &self.model
    }

    /// The wrapped matcher.
    #[must_use]
    pub fn matcher(&self) -> &Mma {
        &self.mma
    }

    fn recover_one(
        &self,
        scratch: &mut RecoveryScratch,
        traj: &Trajectory,
        epsilon_s: f64,
    ) -> MatchedTrajectory {
        let result = self.mma.match_trajectory_with(&mut scratch.mma, traj);
        self.model.recover_from_match_with(
            &mut scratch.graph,
            traj,
            &result.matched,
            &result.route,
            epsilon_s,
        )
    }

    /// Recovers every trajectory of the batch; output `i` corresponds to
    /// input `i` and is identical to running the sequential pipeline on
    /// `batch[i]`.
    #[must_use]
    pub fn recover_batch(&self, batch: &[Trajectory], epsilon_s: f64) -> Vec<MatchedTrajectory> {
        let threads = self.opts.effective_threads(batch.len());
        parallel_map(batch, threads, RecoveryScratch::new, |scratch, traj| {
            self.recover_one(scratch, traj, epsilon_s)
        })
    }

    /// [`BatchRecovery::recover_batch`] plus per-item and wall-clock timing.
    #[must_use]
    pub fn recover_batch_timed(
        &self,
        batch: &[Trajectory],
        epsilon_s: f64,
    ) -> (Vec<MatchedTrajectory>, BatchTiming) {
        let threads = self.opts.effective_threads(batch.len());
        timed_map(
            batch,
            threads,
            RecoveryScratch::new,
            |scratch, traj| self.recover_one(scratch, traj, epsilon_s),
            |scratch| scratch.mma.allocs_avoided(),
        )
    }
}

/// Fans a [`ScratchMatcher`] out over a batch with one scratch per worker —
/// for the HMM-family baselines that means one warm [`SsspPool`] and one
/// set of kNN heaps per thread, shared nothing, while the matcher's
/// `TransitionProvider` (distance cache / UBODT) is shared read-only.
/// Output order matches input order and every result is identical to the
/// sequential `matcher.match_trajectory(&batch[i])` call
/// (`tests/props_baselines.rs`).
///
/// [`SsspPool`]: trmma_roadnet::shortest::SsspPool
#[must_use]
pub fn par_match_pooled<M: ScratchMatcher + Sync>(
    matcher: &M,
    batch: &[Trajectory],
    opts: BatchOptions,
) -> (Vec<MatchResult>, BatchTiming) {
    let threads = opts.effective_threads(batch.len());
    timed_map(
        batch,
        threads,
        || matcher.make_scratch(),
        |scratch, traj| matcher.match_trajectory_with(scratch, traj),
        |scratch| M::scratch_stats(scratch).allocs_avoided,
    )
}

/// Fans any [`MapMatcher`] out over a batch (no scratch reuse — the trait
/// has no scratch surface — but full thread-level parallelism). Prefer
/// [`par_match_pooled`] when the matcher implements [`ScratchMatcher`].
/// Output order matches input order.
#[must_use]
pub fn par_match(
    matcher: &dyn MapMatcher,
    batch: &[Trajectory],
    opts: BatchOptions,
) -> (Vec<MatchResult>, BatchTiming) {
    let threads = opts.effective_threads(batch.len());
    timed_map(batch, threads, || (), |(), traj| matcher.match_trajectory(traj), |()| 0)
}

/// Fans any [`TrajectoryRecovery`] out over a batch. Output order matches
/// input order.
#[must_use]
pub fn par_recover(
    method: &dyn TrajectoryRecovery,
    batch: &[Trajectory],
    epsilon_s: f64,
    opts: BatchOptions,
) -> (Vec<MatchedTrajectory>, BatchTiming) {
    let threads = opts.effective_threads(batch.len());
    timed_map(batch, threads, || (), |(), traj| method.recover(traj, epsilon_s), |()| 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mma::MmaConfig;
    use crate::trmma::TrmmaConfig;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use trmma_roadnet::{RoadNetwork, RoutePlanner};
    use trmma_traj::dataset::{build_dataset, DatasetConfig, Split};

    fn setup() -> (Arc<RoadNetwork>, Arc<RoutePlanner>, trmma_traj::Dataset) {
        let ds = build_dataset(&DatasetConfig::tiny());
        let net = Arc::new(ds.net.clone());
        let planner = Arc::new(RoutePlanner::untrained(&net));
        (net, planner, ds)
    }

    fn trained_models(
        net: &Arc<RoadNetwork>,
        planner: &Arc<RoutePlanner>,
        ds: &trmma_traj::Dataset,
    ) -> (Arc<Mma>, Arc<Trmma>) {
        let train: Vec<_> = ds.samples(Split::Train, 0.2, 2).into_iter().take(6).collect();
        let mut mma = Mma::new(net.clone(), planner.clone(), None, MmaConfig::small());
        mma.train(&train, 2);
        let mut model = Trmma::new(net.clone(), TrmmaConfig::small());
        model.train(&train, 2);
        (Arc::new(mma), Arc::new(model))
    }

    #[test]
    fn batch_matcher_identical_to_sequential_for_any_thread_count() {
        let (net, planner, ds) = setup();
        let (mma, _) = trained_models(&net, &planner, &ds);
        let batch: Vec<Trajectory> =
            ds.samples(Split::Test, 0.2, 3).into_iter().take(8).map(|s| s.sparse).collect();
        let sequential: Vec<_> = batch.iter().map(|t| mma.match_trajectory(t)).collect();
        for threads in [1, 2, 4] {
            let engine = BatchMatcher::new(mma.clone(), BatchOptions::with_threads(threads));
            let got = engine.match_batch(&batch);
            assert_eq!(got, sequential, "thread count {threads} changed output");
        }
    }

    #[test]
    fn batch_recovery_identical_to_sequential_and_order_independent() {
        let (net, planner, ds) = setup();
        let (mma, model) = trained_models(&net, &planner, &ds);
        let batch: Vec<Trajectory> =
            ds.samples(Split::Test, 0.2, 4).into_iter().take(8).map(|s| s.sparse).collect();
        let eps = ds.epsilon_s;

        // Sequential reference through the plain (allocating) API.
        let reference: Vec<MatchedTrajectory> = batch
            .iter()
            .map(|t| {
                let r = mma.match_trajectory(t);
                model.recover_from_match(t, &r.matched, &r.route, eps)
            })
            .collect();

        let engine = BatchRecovery::new(mma, model, BatchOptions::with_threads(4));
        let got = engine.recover_batch(&batch, eps);
        assert_eq!(got, reference, "parallel batch diverged from sequential");

        // Shuffled input: results must follow their trajectories, keyed by
        // the input permutation.
        let mut order: Vec<usize> = (0..batch.len()).collect();
        order.shuffle(&mut StdRng::seed_from_u64(11));
        let shuffled: Vec<Trajectory> = order.iter().map(|&i| batch[i].clone()).collect();
        let got_shuffled = engine.recover_batch(&shuffled, eps);
        for (slot, &src) in order.iter().enumerate() {
            assert_eq!(got_shuffled[slot], reference[src], "shuffle broke keying");
        }
    }

    #[test]
    fn timing_reports_are_consistent() {
        let (net, planner, ds) = setup();
        let (mma, model) = trained_models(&net, &planner, &ds);
        let batch: Vec<Trajectory> =
            ds.samples(Split::Test, 0.2, 5).into_iter().take(6).map(|s| s.sparse).collect();
        let engine = BatchRecovery::new(mma, model, BatchOptions::with_threads(2));
        let (results, timing) = engine.recover_batch_timed(&batch, ds.epsilon_s);
        assert_eq!(results.len(), batch.len());
        assert_eq!(timing.per_item_s.len(), batch.len());
        assert!(timing.wall_s > 0.0);
        assert!(timing.throughput() > 0.0);
        let p50 = timing.latency_quantile(0.5);
        let p99 = timing.latency_quantile(0.99);
        assert!(p50 <= p99 + 1e-12, "quantiles out of order");
    }

    #[test]
    fn par_helpers_match_direct_calls() {
        let (net, planner, ds) = setup();
        let (mma, model) = trained_models(&net, &planner, &ds);
        let batch: Vec<Trajectory> =
            ds.samples(Split::Test, 0.2, 6).into_iter().take(5).map(|s| s.sparse).collect();
        let eps = ds.epsilon_s;
        let mma_ref: &Mma = &mma;
        let (matched, _) = par_match(mma_ref, &batch, BatchOptions::with_threads(3));
        let direct: Vec<_> = batch.iter().map(|t| mma_ref.match_trajectory(t)).collect();
        assert_eq!(matched, direct);

        let pipeline = crate::pipeline::TrmmaPipeline::new(
            Box::new(Mma::new(net, planner, None, MmaConfig::small())),
            Trmma::new(model.network_arc(), TrmmaConfig::small()),
            "TRMMA",
        );
        let (rec, timing) = par_recover(&pipeline, &batch, eps, BatchOptions::default());
        assert_eq!(rec.len(), batch.len());
        assert_eq!(timing.per_item_s.len(), batch.len());
    }

    #[test]
    fn par_match_pooled_baselines_identical_to_sequential() {
        use trmma_baselines::{FmmMatcher, HmmConfig, HmmMatcher};
        let (net, planner, ds) = setup();
        let batch: Vec<Trajectory> =
            ds.samples(Split::Test, 0.2, 8).into_iter().take(6).map(|s| s.sparse).collect();
        let hmm = HmmMatcher::new(net.clone(), planner.clone(), HmmConfig::default());
        let fmm = FmmMatcher::new(net.clone(), planner.clone(), HmmConfig::default());
        let hmm_ref: Vec<_> = batch.iter().map(|t| hmm.match_trajectory(t)).collect();
        let fmm_ref: Vec<_> = batch.iter().map(|t| fmm.match_trajectory(t)).collect();
        for threads in [1, 2, 4] {
            let opts = BatchOptions::with_threads(threads);
            let (got, timing) = par_match_pooled(&hmm, &batch, opts);
            assert_eq!(got, hmm_ref, "HMM diverged at {threads} threads");
            assert_eq!(timing.per_item_s.len(), batch.len());
            let (got, _) = par_match_pooled(&fmm, &batch, opts);
            assert_eq!(got, fmm_ref, "FMM diverged at {threads} threads");
        }
        // MMA implements the same surface.
        let (mma, _) = trained_models(&net, &planner, &ds);
        let seq: Vec<_> = batch.iter().map(|t| mma.match_trajectory(t)).collect();
        let (got, _) = par_match_pooled(mma.as_ref(), &batch, BatchOptions::with_threads(3));
        assert_eq!(got, seq);
    }

    #[test]
    fn empty_and_single_item_batches() {
        let (net, planner, ds) = setup();
        let (mma, model) = trained_models(&net, &planner, &ds);
        let engine = BatchRecovery::new(mma, model, BatchOptions::default());
        assert!(engine.recover_batch(&[], ds.epsilon_s).is_empty());
        let one: Vec<Trajectory> =
            ds.samples(Split::Test, 0.2, 7).into_iter().take(1).map(|s| s.sparse).collect();
        assert_eq!(engine.recover_batch(&one, ds.epsilon_s).len(), 1);
    }

    #[test]
    fn effective_threads_clamps() {
        let o = BatchOptions::with_threads(8);
        assert_eq!(o.effective_threads(3), 3);
        assert_eq!(o.effective_threads(100), 8);
        assert_eq!(o.effective_threads(0), 1);
        assert!(BatchOptions::default().effective_threads(64) >= 1);
    }
}
