//! Network ingest front-end: a std-only TCP service over [`StreamEngine`].
//!
//! PR 6 built the hard part of a production streaming deployment — the
//! versioned [`SessionSnapshot`], [`StreamEngine::drain_snapshots`] /
//! [`StreamEngine::restore`], worker supervision — but points still had to
//! originate in-process. This module carries them across a process
//! boundary: a versioned, length-prefixed binary protocol (magic `TRMP`)
//! whose frames reuse the fixed-width little-endian codec and `crc32` of
//! the snapshot layer, served by [`Server`] and spoken by [`ServeClient`].
//!
//! # Wire format
//!
//! Every frame, request or reply, is one envelope:
//!
//! ```text
//! "TRMP" | version u16 | kind u8 | tenant u64 | session u64
//!        | payload (u32 length + bytes) | CRC-32 of all preceding bytes
//! ```
//!
//! Request kinds: [`FrameKind::Open`], [`FrameKind::Push`] (payload = one
//! GPS point), [`FrameKind::Finalize`], [`FrameKind::Snapshot`] (operator
//! drain), [`FrameKind::Restore`] (payload = an encoded
//! [`SessionSnapshot`]), [`FrameKind::Stats`]. Replies echo the tenant and
//! session of the request they answer; backpressure surfaces as a typed
//! [`FrameKind::Busy`] reply (never a silent drop) and every malformed or
//! unauthorized frame gets a typed [`FrameKind::Refused`] reply.
//!
//! # Service semantics
//!
//! * **Backpressure, end to end.** Each connection has a bounded inflight
//!   window (accepted-but-unacked pushes); each tenant has a points/s
//!   token bucket and a bounded queue; the queue is drained round-robin
//!   across tenants (one point per tenant per cycle) so one hot tenant
//!   cannot starve the rest; and when [`StreamEngine::push`] hits its
//!   `push_timeout_s` deadline the client sees [`BusyCode::PushTimeout`].
//! * **Rolling restart.** A [`FrameKind::Snapshot`] frame quiesces
//!   admissions, drains every live session through
//!   [`StreamEngine::drain_snapshots`], and streams one
//!   [`FrameKind::SnapshotData`] reply per session; feeding those payloads
//!   to a successor process via [`FrameKind::Restore`] rehydrates them, so
//!   an operator can bounce the server with zero dropped sessions.
//! * **Sessions outlive connections.** A client may disconnect and
//!   reconnect; session state lives in the engine until finalized,
//!   drained, or idle-evicted.
//!
//! # Trust model
//!
//! Tenant ids are client-asserted — there is no authentication layer, so
//! tenant isolation (session caps, rate limits, fairness rows) is
//! *cooperative*: it protects well-behaved tenants from each other's
//! load, not from an adversary who spoofs another tenant's id. What the
//! server does guarantee against hostile input is bounded resource use:
//! frames touching foreign sessions get a typed [`RefuseCode::WrongTenant`]
//! without minting registry state for the probed id, oversized length
//! prefixes are refused from the header alone, and stalled connections
//! are reaped. Deploy behind an authenticating proxy when tenants are
//! not mutually trusted.
//!
//! [`ServeStats`] counts what happened — accepted/refused frames,
//! per-tenant throttle events, bytes in/out, restore counts — in the same
//! style as [`RouterStats`](crate::RouterStats).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use trmma_traj::snapshot::{
    put_bytes, put_gps, put_matched, put_u16, put_u32, put_u64, put_u8, read_match_result, Reader,
    SnapshotError,
};
use trmma_traj::types::GpsPoint;
use trmma_traj::OnlineMatcher;

use crate::snapshot::{crc32, SessionSnapshot};
use crate::stream::{FaultPlan, SessionId, StreamEngine, StreamEvent, StreamOptions};

/// The four magic bytes every ingest frame starts with.
pub const MAGIC: [u8; 4] = *b"TRMP";

/// Protocol version spoken by this build.
pub const VERSION: u16 = 1;

/// Fixed envelope prefix: magic + version + kind + tenant + session +
/// payload length. The payload bytes and the trailing CRC-32 follow.
pub const HEADER_LEN: usize = 4 + 2 + 1 + 8 + 8 + 4;

/// What a frame is — requests below 16, replies at 16 and above.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Request: open a session (empty payload).
    Open = 1,
    /// Request: push one GPS point (payload = x, y, t bit patterns).
    Push = 2,
    /// Request: finalize a session (empty payload).
    Finalize = 3,
    /// Request: drain every live session for a rolling restart.
    Snapshot = 4,
    /// Request: rehydrate one drained session (payload = encoded
    /// [`SessionSnapshot`]).
    Restore = 5,
    /// Request: report [`ServeStats`] (empty payload).
    Stats = 6,
    /// Reply to [`FrameKind::Open`].
    Opened = 16,
    /// Reply to an accepted push once decoded (payload = seq,
    /// stable-prefix watermark, optional provisional match).
    Ack = 17,
    /// Reply to [`FrameKind::Finalize`] (payload = finalize reason, point
    /// count, encoded `MatchResult`).
    Final = 18,
    /// One drained session (payload = encoded [`SessionSnapshot`] with the
    /// session field rewritten to the client-visible id).
    SnapshotData = 19,
    /// End of a snapshot stream (payload = session count).
    SnapshotDone = 20,
    /// Reply to [`FrameKind::Restore`].
    Restored = 21,
    /// Reply to [`FrameKind::Stats`] (payload = encoded [`ServeStats`]).
    StatsReply = 22,
    /// Typed backpressure (payload = [`BusyCode`]); retry later.
    Busy = 23,
    /// Typed refusal (payload = [`RefuseCode`] + detail word); retrying
    /// the same frame will not succeed.
    Refused = 24,
}

impl FrameKind {
    /// Decodes a kind byte; `None` for kinds this build does not know.
    #[must_use]
    pub fn from_u8(k: u8) -> Option<Self> {
        Some(match k {
            1 => Self::Open,
            2 => Self::Push,
            3 => Self::Finalize,
            4 => Self::Snapshot,
            5 => Self::Restore,
            6 => Self::Stats,
            16 => Self::Opened,
            17 => Self::Ack,
            18 => Self::Final,
            19 => Self::SnapshotData,
            20 => Self::SnapshotDone,
            21 => Self::Restored,
            22 => Self::StatsReply,
            23 => Self::Busy,
            24 => Self::Refused,
            _ => return None,
        })
    }

    /// Whether this kind is a client request (as opposed to a reply).
    #[must_use]
    pub fn is_request(self) -> bool {
        (self as u8) < 16
    }
}

/// Why a frame was refused. Refusals are final: retrying the identical
/// frame cannot succeed (contrast [`BusyCode`], which asks for a retry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RefuseCode {
    /// The kind byte is not a request this build understands.
    UnknownKind = 0,
    /// The frame's version field differs from [`VERSION`].
    BadVersion = 1,
    /// The frame's CRC-32 did not match; the connection is closed because
    /// stream integrity can no longer be trusted.
    BadCrc = 2,
    /// The declared payload length exceeds the server's cap; the
    /// connection is closed rather than reading the announced bytes.
    Oversize = 3,
    /// The payload did not decode as the kind requires.
    BadPayload = 4,
    /// The frame did not start with the `TRMP` magic.
    BadMagic = 5,
    /// The session id is not open (or is already finalizing).
    UnknownSession = 6,
    /// The session exists but belongs to a different tenant.
    WrongTenant = 7,
    /// The tenant is at its live-session cap.
    SessionLimit = 8,
    /// The session id is already open (or being restored).
    AlreadyOpen = 9,
    /// The point's timestamp is not strictly after the session's last
    /// accepted point (the engine would silently drop it, desyncing acks,
    /// so the edge refuses it instead).
    LatePoint = 10,
    /// The snapshot payload decoded but the engine could not restore it
    /// (e.g. it was produced by a different matcher).
    RestoreFailed = 11,
    /// The server is mid-drain for a rolling restart; reconnect to the
    /// successor.
    Draining = 12,
}

impl RefuseCode {
    /// Decodes a refusal byte.
    #[must_use]
    pub fn from_u8(c: u8) -> Option<Self> {
        Some(match c {
            0 => Self::UnknownKind,
            1 => Self::BadVersion,
            2 => Self::BadCrc,
            3 => Self::Oversize,
            4 => Self::BadPayload,
            5 => Self::BadMagic,
            6 => Self::UnknownSession,
            7 => Self::WrongTenant,
            8 => Self::SessionLimit,
            9 => Self::AlreadyOpen,
            10 => Self::LatePoint,
            11 => Self::RestoreFailed,
            12 => Self::Draining,
            _ => return None,
        })
    }
}

/// Why a push was turned away *for now* — all retryable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum BusyCode {
    /// The tenant's pending queue is full.
    QueueFull = 0,
    /// The tenant's points/s token bucket is empty.
    Throttled = 1,
    /// [`StreamEngine::push`] hit its `push_timeout_s` deadline (worker
    /// queues stayed full) — the deadline surfaces here instead of a
    /// silent drop.
    PushTimeout = 2,
    /// The connection's inflight window (accepted-but-unacked pushes) is
    /// full; read some acks first.
    Window = 3,
}

impl BusyCode {
    /// Decodes a busy byte.
    #[must_use]
    pub fn from_u8(c: u8) -> Option<Self> {
        Some(match c {
            0 => Self::QueueFull,
            1 => Self::Throttled,
            2 => Self::PushTimeout,
            3 => Self::Window,
            _ => return None,
        })
    }
}

/// One decoded wire frame. `kind` stays a raw byte so the server can give
/// unknown kinds a typed refusal instead of failing the decode.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Protocol version the sender speaks.
    pub version: u16,
    /// Frame kind byte (see [`FrameKind`]).
    pub kind: u8,
    /// Tenant the frame acts for.
    pub tenant: u64,
    /// Client-visible session id the frame acts on.
    pub session: u64,
    /// Kind-specific payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A version-[`VERSION`] frame.
    #[must_use]
    pub fn new(kind: FrameKind, tenant: u64, session: u64, payload: Vec<u8>) -> Self {
        Self { version: VERSION, kind: kind as u8, tenant, session, payload }
    }

    /// Encodes the frame: envelope, payload, trailing CRC-32.
    ///
    /// # Errors
    /// [`SnapshotError::Oversize`] when the payload exceeds the `u32`
    /// length field.
    pub fn encode(&self) -> Result<Vec<u8>, SnapshotError> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len() + 4);
        out.extend_from_slice(&MAGIC);
        put_u16(&mut out, self.version);
        put_u8(&mut out, self.kind);
        put_u64(&mut out, self.tenant);
        put_u64(&mut out, self.session);
        put_bytes(&mut out, &self.payload)?;
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        Ok(out)
    }

    /// Decodes one complete frame from `buf`. Never panics: truncation,
    /// bad magic, checksum mismatch and structural damage each return
    /// their typed [`SnapshotError`]. The version and kind fields are
    /// *not* validated here — the server answers those with typed
    /// refusals rather than failing the decode.
    pub fn decode(buf: &[u8]) -> Result<Self, SnapshotError> {
        if buf.len() < HEADER_LEN + 4 {
            return Err(SnapshotError::Truncated);
        }
        if buf[..4] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let body = &buf[..buf.len() - 4];
        let stored = u32::from_le_bytes(buf[buf.len() - 4..].try_into().expect("4 bytes"));
        if crc32(body) != stored {
            return Err(SnapshotError::Checksum);
        }
        let mut r = Reader::new(&body[4..]);
        let version = r.u16()?;
        let kind = r.u8()?;
        let tenant = r.u64()?;
        let session = r.u64()?;
        let payload = r.bytes()?.to_vec();
        r.expect_end()?;
        Ok(Self { version, kind, tenant, session, payload })
    }
}

/// A parsed server reply — the typed view of a reply [`Frame`].
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The session is open.
    Opened {
        /// Session id echoed from the request.
        session: u64,
    },
    /// One accepted push was decoded.
    Ack {
        /// Session the point belonged to.
        session: u64,
        /// Zero-based index of the point within its session.
        seq: u64,
        /// Stabilized-prefix watermark after this point.
        stable_prefix: u64,
        /// Provisional match for the point, when one exists.
        provisional: Option<trmma_traj::types::MatchedPoint>,
    },
    /// A session finalized.
    Final {
        /// Session that ended.
        session: u64,
        /// Number of points the session decoded.
        points: u64,
        /// The final matched points and stitched route — bitwise identical
        /// to the offline decode of the same points.
        result: trmma_traj::MatchResult,
    },
    /// One drained session of a rolling restart.
    SnapshotData {
        /// Tenant that owns the session.
        tenant: u64,
        /// Client-visible session id.
        session: u64,
        /// The session's portable state; feed to [`FrameKind::Restore`].
        snapshot: SessionSnapshot,
    },
    /// The snapshot stream is complete.
    SnapshotDone {
        /// How many sessions were drained.
        count: u64,
    },
    /// A session was rehydrated.
    Restored {
        /// Session id echoed from the request.
        session: u64,
    },
    /// The server's counters.
    Stats(Box<ServeStats>),
    /// Typed backpressure; retry later.
    Busy {
        /// Session the request acted on.
        session: u64,
        /// Why the request must wait.
        code: BusyCode,
    },
    /// Typed refusal; the same frame will never succeed.
    Refused {
        /// Session the request acted on.
        session: u64,
        /// Why the request was refused.
        code: RefuseCode,
        /// Kind-specific detail (offending version, kind byte, length…).
        detail: u32,
    },
}

impl Reply {
    /// Parses a reply frame into its typed form.
    ///
    /// # Errors
    /// [`SnapshotError`] when the frame is not a reply kind or its payload
    /// does not decode.
    pub fn parse(f: &Frame) -> Result<Self, SnapshotError> {
        let kind =
            FrameKind::from_u8(f.kind).ok_or(SnapshotError::Malformed("unknown reply kind"))?;
        let mut r = Reader::new(&f.payload);
        let reply = match kind {
            FrameKind::Opened => Self::Opened { session: f.session },
            FrameKind::Ack => {
                let seq = r.u64()?;
                let stable_prefix = r.u64()?;
                let provisional = match r.u8()? {
                    0 => None,
                    1 => Some(r.matched()?),
                    _ => return Err(SnapshotError::Malformed("ack provisional flag")),
                };
                Self::Ack { session: f.session, seq, stable_prefix, provisional }
            }
            FrameKind::Final => {
                let points = r.u64()?;
                let result = read_match_result(&mut r)?;
                Self::Final { session: f.session, points, result }
            }
            FrameKind::SnapshotData => {
                let snapshot = SessionSnapshot::decode(&f.payload)?;
                return Ok(Self::SnapshotData { tenant: f.tenant, session: f.session, snapshot });
            }
            FrameKind::SnapshotDone => Self::SnapshotDone { count: r.u64()? },
            FrameKind::Restored => Self::Restored { session: f.session },
            FrameKind::StatsReply => {
                return Ok(Self::Stats(Box::new(ServeStats::wire_decode(&f.payload)?)))
            }
            FrameKind::Busy => {
                let code =
                    BusyCode::from_u8(r.u8()?).ok_or(SnapshotError::Malformed("busy code"))?;
                Self::Busy { session: f.session, code }
            }
            FrameKind::Refused => {
                let code =
                    RefuseCode::from_u8(r.u8()?).ok_or(SnapshotError::Malformed("refuse code"))?;
                let detail = r.u32()?;
                Self::Refused { session: f.session, code, detail }
            }
            _ => return Err(SnapshotError::Malformed("not a reply kind")),
        };
        r.expect_end()?;
        Ok(reply)
    }
}

/// Per-tenant slice of [`ServeStats`] — the fairness evidence: a throttled
/// or queue-capped tenant shows up here without moving any other tenant's
/// counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantLoad {
    /// Tenant id.
    pub tenant: u64,
    /// Points accepted into the tenant's queue.
    pub points: u64,
    /// Pushes bounced by the tenant's token bucket.
    pub throttled: u64,
    /// Pushes bounced by the tenant's full queue.
    pub queue_full: u64,
    /// Frames refused on this tenant's sessions.
    pub refused: u64,
    /// Sessions currently live.
    pub live_sessions: u64,
}

/// Counter block of one [`Server`], in the style of
/// [`RouterStats`](crate::RouterStats).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections accepted.
    pub connections: u64,
    /// Well-formed frames read.
    pub frames_in: u64,
    /// Reply frames written.
    pub frames_out: u64,
    /// Bytes read (well-formed frames only).
    pub bytes_in: u64,
    /// Bytes written.
    pub bytes_out: u64,
    /// Points accepted into the engine.
    pub points_accepted: u64,
    /// Ack replies sent.
    pub acks_out: u64,
    /// Busy replies sent (all codes).
    pub busy: u64,
    /// Refused replies sent (all codes).
    pub refused: u64,
    /// Sessions opened.
    pub sessions_opened: u64,
    /// Sessions finalized (explicitly or by idle eviction).
    pub sessions_finalized: u64,
    /// Sessions rehydrated through [`FrameKind::Restore`].
    pub sessions_restored: u64,
    /// Sessions streamed out through [`FrameKind::Snapshot`].
    pub snapshots_out: u64,
    /// Frames dropped for CRC mismatch.
    pub crc_rejected: u64,
    /// Frames dropped for an oversized length prefix.
    pub oversize_rejected: u64,
    /// Frames with a kind byte this build does not understand.
    pub unknown_kind: u64,
    /// Frames with a version other than [`VERSION`].
    pub bad_version: u64,
    /// Frames touching a session owned by a different tenant.
    pub wrong_tenant: u64,
    /// Points refused for a non-advancing timestamp.
    pub late_refused: u64,
    /// Connections closed for stalling mid-frame (slow-loris guard).
    pub slow_loris_closed: u64,
    /// Per-tenant load, sorted by tenant id.
    pub tenants: Vec<TenantLoad>,
}

impl ServeStats {
    /// Encodes the counters for a [`FrameKind::StatsReply`] payload.
    #[must_use]
    pub fn wire_encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(21 * 8 + self.tenants.len() * 48);
        for v in [
            self.connections,
            self.frames_in,
            self.frames_out,
            self.bytes_in,
            self.bytes_out,
            self.points_accepted,
            self.acks_out,
            self.busy,
            self.refused,
            self.sessions_opened,
            self.sessions_finalized,
            self.sessions_restored,
            self.snapshots_out,
            self.crc_rejected,
            self.oversize_rejected,
            self.unknown_kind,
            self.bad_version,
            self.wrong_tenant,
            self.late_refused,
            self.slow_loris_closed,
        ] {
            put_u64(&mut out, v);
        }
        put_u64(&mut out, self.tenants.len() as u64);
        for t in &self.tenants {
            for v in [t.tenant, t.points, t.throttled, t.queue_full, t.refused, t.live_sessions] {
                put_u64(&mut out, v);
            }
        }
        out
    }

    /// Decodes counters written by [`ServeStats::wire_encode`].
    ///
    /// # Errors
    /// [`SnapshotError`] on truncated or malformed input.
    pub fn wire_decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader::new(bytes);
        let mut s = Self {
            connections: r.u64()?,
            frames_in: r.u64()?,
            frames_out: r.u64()?,
            bytes_in: r.u64()?,
            bytes_out: r.u64()?,
            points_accepted: r.u64()?,
            acks_out: r.u64()?,
            busy: r.u64()?,
            refused: r.u64()?,
            sessions_opened: r.u64()?,
            sessions_finalized: r.u64()?,
            sessions_restored: r.u64()?,
            snapshots_out: r.u64()?,
            crc_rejected: r.u64()?,
            oversize_rejected: r.u64()?,
            unknown_kind: r.u64()?,
            bad_version: r.u64()?,
            wrong_tenant: r.u64()?,
            late_refused: r.u64()?,
            slow_loris_closed: r.u64()?,
            tenants: Vec::new(),
        };
        let n = r.seq_len()?;
        s.tenants.reserve(n);
        for _ in 0..n {
            s.tenants.push(TenantLoad {
                tenant: r.u64()?,
                points: r.u64()?,
                throttled: r.u64()?,
                queue_full: r.u64()?,
                refused: r.u64()?,
                live_sessions: r.u64()?,
            });
        }
        r.expect_end()?;
        Ok(s)
    }

    /// The tenant's slice of the counters, if it has been seen.
    #[must_use]
    pub fn tenant(&self, tenant: u64) -> Option<&TenantLoad> {
        self.tenants.iter().find(|t| t.tenant == tenant)
    }
}

/// Tuning knobs of one [`Server`]. Start from `default()` and chain.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; `"127.0.0.1:0"` picks an ephemeral port.
    pub addr: String,
    /// Options of the underlying [`StreamEngine`].
    pub stream: StreamOptions,
    /// Live-session cap per tenant.
    pub max_sessions_per_tenant: usize,
    /// Token-bucket refill rate per tenant, points per second; `0`
    /// disables rate limiting.
    pub rate_points_per_s: f64,
    /// Token-bucket burst size per tenant.
    pub burst: f64,
    /// Bound of each tenant's pending-point queue.
    pub tenant_queue: usize,
    /// Bound of each connection's accepted-but-unacked push window.
    pub inflight_window: usize,
    /// Per-frame read deadline: a connection stalled this long mid-frame
    /// is closed (slow-loris guard); one idle this long between frames is
    /// reaped (its sessions stay live).
    pub read_timeout_s: f64,
    /// Largest payload the server will read; a bigger declared length is
    /// refused without reading it.
    pub max_payload: usize,
    /// Deadline for quiescing and draining on a [`FrameKind::Snapshot`].
    pub drain_timeout_s: f64,
    /// Seeded chaos for the engine (tests): see [`FaultPlan`].
    pub faults: Option<FaultPlan>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            stream: StreamOptions::with_threads(2).idle_timeout_s(0.0),
            max_sessions_per_tenant: 256,
            rate_points_per_s: 0.0,
            burst: 64.0,
            tenant_queue: 1024,
            inflight_window: 64,
            read_timeout_s: 10.0,
            max_payload: 1 << 20,
            drain_timeout_s: 10.0,
            faults: None,
        }
    }
}

impl ServeConfig {
    /// Sets the listen address.
    #[must_use]
    pub fn addr(mut self, addr: &str) -> Self {
        self.addr = addr.to_string();
        self
    }

    /// Sets the engine options.
    #[must_use]
    pub fn stream(mut self, stream: StreamOptions) -> Self {
        self.stream = stream;
        self
    }

    /// Sets the per-tenant live-session cap.
    #[must_use]
    pub fn max_sessions_per_tenant(mut self, n: usize) -> Self {
        self.max_sessions_per_tenant = n;
        self
    }

    /// Sets the per-tenant token-bucket rate (`0` = unlimited) and burst.
    #[must_use]
    pub fn rate_limit(mut self, points_per_s: f64, burst: f64) -> Self {
        self.rate_points_per_s = points_per_s;
        self.burst = burst;
        self
    }

    /// Sets the per-tenant pending-queue bound.
    #[must_use]
    pub fn tenant_queue(mut self, n: usize) -> Self {
        self.tenant_queue = n;
        self
    }

    /// Sets the per-connection inflight window.
    #[must_use]
    pub fn inflight_window(mut self, n: usize) -> Self {
        self.inflight_window = n;
        self
    }

    /// Sets the per-frame read deadline in seconds.
    #[must_use]
    pub fn read_timeout_s(mut self, s: f64) -> Self {
        self.read_timeout_s = s;
        self
    }

    /// Sets the payload size cap.
    #[must_use]
    pub fn max_payload(mut self, n: usize) -> Self {
        self.max_payload = n;
        self
    }

    /// Sets the snapshot drain deadline in seconds.
    #[must_use]
    pub fn drain_timeout_s(mut self, s: f64) -> Self {
        self.drain_timeout_s = s;
        self
    }

    /// Injects a seeded chaos plan into the engine (tests).
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    points_accepted: AtomicU64,
    acks_out: AtomicU64,
    busy: AtomicU64,
    refused: AtomicU64,
    sessions_opened: AtomicU64,
    sessions_finalized: AtomicU64,
    sessions_restored: AtomicU64,
    snapshots_out: AtomicU64,
    crc_rejected: AtomicU64,
    oversize_rejected: AtomicU64,
    unknown_kind: AtomicU64,
    bad_version: AtomicU64,
    wrong_tenant: AtomicU64,
    late_refused: AtomicU64,
    slow_loris_closed: AtomicU64,
}

fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

type ReplyTx = Sender<Frame>;

/// One live client session as the server tracks it.
struct SessionEntry {
    tenant: u64,
    engine_sid: SessionId,
    /// Timestamp of the last admitted point; `NEG_INFINITY` before any.
    last_t: f64,
    /// Set once Finalize is accepted; later pushes are refused.
    closing: bool,
}

struct TenantState {
    tokens: f64,
    last_refill: Instant,
    queue: VecDeque<Pending>,
    live_sessions: u64,
    points: u64,
    throttled: u64,
    queue_full: u64,
    refused: u64,
}

impl TenantState {
    fn new(burst: f64) -> Self {
        Self {
            tokens: burst,
            last_refill: Instant::now(),
            queue: VecDeque::new(),
            live_sessions: 0,
            points: 0,
            throttled: 0,
            queue_full: 0,
            refused: 0,
        }
    }
}

enum PendingKind {
    Point {
        p: GpsPoint,
        /// The session's `last_t` watermark before this point was
        /// admitted. If the engine push times out, the watermark rolls
        /// back to this so retrying the identical point can succeed —
        /// a retryable `Busy` must never turn into a final `LatePoint`.
        prev_t: f64,
    },
    Finish,
}

/// One admitted-but-not-yet-pushed command in a tenant queue.
struct Pending {
    engine_sid: SessionId,
    client_sid: u64,
    tenant: u64,
    kind: PendingKind,
    reply: ReplyTx,
    window: Arc<AtomicUsize>,
}

/// One accepted push awaiting its engine `Update` event.
struct PendingAck {
    client_sid: u64,
    tenant: u64,
    reply: ReplyTx,
    window: Arc<AtomicUsize>,
}

struct FinWaiter {
    client_sid: u64,
    tenant: u64,
    reply: ReplyTx,
}

enum Control {
    Snapshot { tenant: u64, session: u64, reply: ReplyTx },
    Restore { snap: SessionSnapshot, tenant: u64, client_sid: u64, reply: ReplyTx },
}

struct Registry {
    next_sid: SessionId,
    sessions: HashMap<u64, SessionEntry>,
    by_engine: HashMap<SessionId, u64>,
    tenants: BTreeMap<u64, TenantState>,
    acks: HashMap<SessionId, VecDeque<PendingAck>>,
    fins: HashMap<SessionId, FinWaiter>,
    draining: bool,
}

impl Registry {
    fn new() -> Self {
        Self {
            next_sid: 1,
            sessions: HashMap::new(),
            by_engine: HashMap::new(),
            tenants: BTreeMap::new(),
            acks: HashMap::new(),
            fins: HashMap::new(),
            draining: false,
        }
    }
}

/// Everything the reader threads and the pump share. The engine itself is
/// deliberately *not* here: its event receiver is single-consumer, so the
/// pump thread owns it exclusively and readers talk to it only through the
/// tenant queues and the control queue.
struct Shared<M: OnlineMatcher + 'static> {
    cfg: ServeConfig,
    matcher: Arc<M>,
    reg: Mutex<Registry>,
    control: Mutex<VecDeque<Control>>,
    counters: Arc<Counters>,
    shutdown: AtomicBool,
}

fn send_reply(tx: &ReplyTx, frame: Frame) {
    // A dead connection is fine: the writer is gone, the reply is moot.
    let _ = tx.send(frame);
}

fn refused_frame(tenant: u64, session: u64, code: RefuseCode, detail: u32) -> Frame {
    let mut payload = Vec::with_capacity(5);
    put_u8(&mut payload, code as u8);
    put_u32(&mut payload, detail);
    Frame::new(FrameKind::Refused, tenant, session, payload)
}

fn busy_frame(tenant: u64, session: u64, code: BusyCode) -> Frame {
    Frame::new(FrameKind::Busy, tenant, session, vec![code as u8])
}

/// Encodes a [`FrameKind::Push`] payload (one GPS point).
#[must_use]
pub fn push_payload(p: GpsPoint) -> Vec<u8> {
    let mut out = Vec::with_capacity(24);
    put_gps(&mut out, p);
    out
}

/// A bounced [`Server`]: owns the listener, the tenant-fair pump, and the
/// shared [`StreamEngine`]; dropping (or [`Server::stop`]) shuts all of it
/// down. Build with [`Server::start`].
pub struct Server<M: OnlineMatcher + 'static> {
    addr: SocketAddr,
    shared: Arc<Shared<M>>,
    accept: Option<JoinHandle<()>>,
    pump: Option<JoinHandle<()>>,
}

impl<M: OnlineMatcher + 'static> Server<M> {
    /// Binds `cfg.addr` and starts serving `matcher` behind a fresh
    /// [`StreamEngine`].
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn start(matcher: Arc<M>, cfg: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let engine = match cfg.faults {
            Some(plan) => StreamEngine::with_faults(matcher.clone(), cfg.stream, plan),
            None => StreamEngine::new(matcher.clone(), cfg.stream),
        };
        let shared = Arc::new(Shared {
            cfg,
            matcher,
            reg: Mutex::new(Registry::new()),
            control: Mutex::new(VecDeque::new()),
            counters: Arc::new(Counters::default()),
            shutdown: AtomicBool::new(false),
        });
        let accept = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let pump = {
            let shared = shared.clone();
            std::thread::spawn(move || pump_loop(&shared, &engine))
        };
        Ok(Self { addr, shared, accept: Some(accept), pump: Some(pump) })
    }

    /// The bound address (useful with an ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the server's counters.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        collect_stats(&self.shared)
    }

    /// Stops accepting, stops the pump, and drops the engine. Sessions not
    /// snapshotted are lost — drain with [`FrameKind::Snapshot`] first for
    /// a zero-loss bounce.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
    }
}

impl<M: OnlineMatcher + 'static> Drop for Server<M> {
    fn drop(&mut self) {
        self.halt();
    }
}

fn collect_stats<M: OnlineMatcher + 'static>(shared: &Shared<M>) -> ServeStats {
    let c = &shared.counters;
    let mut s = ServeStats {
        connections: c.connections.load(Ordering::Relaxed),
        frames_in: c.frames_in.load(Ordering::Relaxed),
        frames_out: c.frames_out.load(Ordering::Relaxed),
        bytes_in: c.bytes_in.load(Ordering::Relaxed),
        bytes_out: c.bytes_out.load(Ordering::Relaxed),
        points_accepted: c.points_accepted.load(Ordering::Relaxed),
        acks_out: c.acks_out.load(Ordering::Relaxed),
        busy: c.busy.load(Ordering::Relaxed),
        refused: c.refused.load(Ordering::Relaxed),
        sessions_opened: c.sessions_opened.load(Ordering::Relaxed),
        sessions_finalized: c.sessions_finalized.load(Ordering::Relaxed),
        sessions_restored: c.sessions_restored.load(Ordering::Relaxed),
        snapshots_out: c.snapshots_out.load(Ordering::Relaxed),
        crc_rejected: c.crc_rejected.load(Ordering::Relaxed),
        oversize_rejected: c.oversize_rejected.load(Ordering::Relaxed),
        unknown_kind: c.unknown_kind.load(Ordering::Relaxed),
        bad_version: c.bad_version.load(Ordering::Relaxed),
        wrong_tenant: c.wrong_tenant.load(Ordering::Relaxed),
        late_refused: c.late_refused.load(Ordering::Relaxed),
        slow_loris_closed: c.slow_loris_closed.load(Ordering::Relaxed),
        tenants: Vec::new(),
    };
    let reg = shared.reg.lock().expect("registry poisoned");
    for (&tenant, t) in &reg.tenants {
        s.tenants.push(TenantLoad {
            tenant,
            points: t.points,
            throttled: t.throttled,
            queue_full: t.queue_full,
            refused: t.refused,
            live_sessions: t.live_sessions,
        });
    }
    s
}

fn accept_loop<M: OnlineMatcher + 'static>(listener: &TcpListener, shared: &Arc<Shared<M>>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                bump(&shared.counters.connections);
                let shared = shared.clone();
                std::thread::spawn(move || connection_loop(stream, &shared));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

enum ReadFull {
    Full,
    /// Peer closed mid-span or between frames.
    Eof,
    /// Deadline passed; `got` bytes of the wanted span had arrived.
    TimedOut {
        got: usize,
    },
    /// Server shutdown or hard I/O error.
    Abort,
}

/// Reads exactly `buf.len()` bytes in short timeout slices so the thread
/// notices server shutdown promptly and can tell an idle peer (`got == 0`)
/// from a slow-loris stall mid-frame (`got > 0`).
fn read_full<M: OnlineMatcher + 'static>(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shared: &Shared<M>,
) -> ReadFull {
    let deadline = Instant::now() + Duration::from_secs_f64(shared.cfg.read_timeout_s.max(0.05));
    let mut got = 0;
    while got < buf.len() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return ReadFull::Abort;
        }
        match stream.read(&mut buf[got..]) {
            Ok(0) => return ReadFull::Eof,
            Ok(n) => got += n,
            Err(e) => match e.kind() {
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                    if Instant::now() > deadline {
                        return ReadFull::TimedOut { got };
                    }
                }
                std::io::ErrorKind::Interrupted => {}
                _ => return ReadFull::Abort,
            },
        }
    }
    ReadFull::Full
}

fn connection_loop<M: OnlineMatcher + 'static>(stream: TcpStream, shared: &Arc<Shared<M>>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let Ok(write_half) = stream.try_clone() else { return };
    let (tx, rx) = channel::<Frame>();
    let writer = {
        let counters = shared.counters.clone();
        std::thread::spawn(move || writer_loop(write_half, &rx, &counters))
    };
    let window = Arc::new(AtomicUsize::new(0));
    let mut stream = stream;
    loop {
        let mut header = [0u8; HEADER_LEN];
        match read_full(&mut stream, &mut header, shared) {
            ReadFull::Full => {}
            ReadFull::Eof | ReadFull::Abort | ReadFull::TimedOut { got: 0 } => break,
            ReadFull::TimedOut { .. } => {
                // Bytes of a frame arrived, then the peer stalled: the
                // slow-loris guard closes only this connection — every
                // other tenant keeps its own reader thread.
                bump(&shared.counters.slow_loris_closed);
                break;
            }
        }
        // Tenant and session sit at fixed offsets, so even a frame that
        // fails validation gets its refusal addressed correctly.
        let tenant = u64::from_le_bytes(header[7..15].try_into().expect("8 bytes"));
        let session = u64::from_le_bytes(header[15..23].try_into().expect("8 bytes"));
        if header[..4] != MAGIC {
            refuse(shared, &tx, tenant, session, RefuseCode::BadMagic, 0);
            break;
        }
        let payload_len = u32::from_le_bytes(header[23..27].try_into().expect("4 bytes")) as usize;
        if payload_len > shared.cfg.max_payload {
            // Refuse on the declared length alone — the announced bytes
            // are never read, so a hostile length cannot tie up memory.
            bump(&shared.counters.oversize_rejected);
            let detail = u32::try_from(payload_len).unwrap_or(u32::MAX);
            refuse(shared, &tx, tenant, session, RefuseCode::Oversize, detail);
            break;
        }
        let mut frame_buf = vec![0u8; HEADER_LEN + payload_len + 4];
        frame_buf[..HEADER_LEN].copy_from_slice(&header);
        match read_full(&mut stream, &mut frame_buf[HEADER_LEN..], shared) {
            ReadFull::Full => {}
            ReadFull::Eof | ReadFull::Abort => break,
            ReadFull::TimedOut { .. } => {
                bump(&shared.counters.slow_loris_closed);
                break;
            }
        }
        match Frame::decode(&frame_buf) {
            Ok(frame) => {
                bump(&shared.counters.frames_in);
                shared.counters.bytes_in.fetch_add(frame_buf.len() as u64, Ordering::Relaxed);
                if !dispatch(shared, &tx, &window, frame) {
                    break;
                }
            }
            Err(SnapshotError::Checksum) => {
                // Stream integrity is gone; refuse and resynchronize by
                // closing rather than guessing at frame boundaries.
                bump(&shared.counters.crc_rejected);
                refuse(shared, &tx, tenant, session, RefuseCode::BadCrc, 0);
                break;
            }
            Err(_) => {
                refuse(shared, &tx, tenant, session, RefuseCode::BadPayload, 0);
                break;
            }
        }
    }
    drop(tx);
    let _ = stream.shutdown(Shutdown::Read);
    let _ = writer.join();
}

fn writer_loop(mut stream: TcpStream, rx: &Receiver<Frame>, counters: &Counters) {
    while let Ok(frame) = rx.recv() {
        let Ok(bytes) = frame.encode() else { continue };
        if stream.write_all(&bytes).is_err() {
            break;
        }
        bump(&counters.frames_out);
        counters.bytes_out.fetch_add(bytes.len() as u64, Ordering::Relaxed);
    }
    let _ = stream.shutdown(Shutdown::Write);
}

fn refuse<M: OnlineMatcher + 'static>(
    shared: &Shared<M>,
    tx: &ReplyTx,
    tenant: u64,
    session: u64,
    code: RefuseCode,
    detail: u32,
) {
    bump(&shared.counters.refused);
    send_reply(tx, refused_frame(tenant, session, code, detail));
}

fn busy<M: OnlineMatcher + 'static>(
    shared: &Shared<M>,
    tx: &ReplyTx,
    tenant: u64,
    session: u64,
    code: BusyCode,
) {
    bump(&shared.counters.busy);
    send_reply(tx, busy_frame(tenant, session, code));
}

/// Handles one well-formed frame; returns `false` to close the connection.
fn dispatch<M: OnlineMatcher + 'static>(
    shared: &Shared<M>,
    tx: &ReplyTx,
    window: &Arc<AtomicUsize>,
    frame: Frame,
) -> bool {
    let (tenant, session) = (frame.tenant, frame.session);
    if frame.version != VERSION {
        bump(&shared.counters.bad_version);
        refuse(shared, tx, tenant, session, RefuseCode::BadVersion, u32::from(frame.version));
        return true;
    }
    let kind = FrameKind::from_u8(frame.kind).filter(|k| k.is_request());
    let Some(kind) = kind else {
        bump(&shared.counters.unknown_kind);
        refuse(shared, tx, tenant, session, RefuseCode::UnknownKind, u32::from(frame.kind));
        return true;
    };
    match kind {
        FrameKind::Open => handle_open(shared, tx, tenant, session),
        FrameKind::Push => handle_push(shared, tx, window, tenant, session, &frame.payload),
        FrameKind::Finalize => handle_finalize(shared, tx, tenant, session),
        FrameKind::Snapshot => {
            // Quiesce admissions immediately; the pump performs the drain
            // so it serializes with in-flight pushes and restores.
            shared.reg.lock().expect("registry poisoned").draining = true;
            let ctl = Control::Snapshot { tenant, session, reply: tx.clone() };
            shared.control.lock().expect("control poisoned").push_back(ctl);
        }
        FrameKind::Restore => match SessionSnapshot::decode(&frame.payload) {
            Ok(snap) => {
                let ctl = Control::Restore { snap, tenant, client_sid: session, reply: tx.clone() };
                shared.control.lock().expect("control poisoned").push_back(ctl);
            }
            Err(_) => refuse(shared, tx, tenant, session, RefuseCode::BadPayload, 0),
        },
        FrameKind::Stats => {
            let payload = collect_stats(shared).wire_encode();
            send_reply(tx, Frame::new(FrameKind::StatsReply, tenant, session, payload));
        }
        _ => unreachable!("is_request filtered replies"),
    }
    true
}

fn handle_open<M: OnlineMatcher + 'static>(
    shared: &Shared<M>,
    tx: &ReplyTx,
    tenant: u64,
    session: u64,
) {
    let mut reg = shared.reg.lock().expect("registry poisoned");
    if reg.draining {
        drop(reg);
        refuse(shared, tx, tenant, session, RefuseCode::Draining, 0);
        return;
    }
    if reg.sessions.contains_key(&session) {
        drop(reg);
        refuse(shared, tx, tenant, session, RefuseCode::AlreadyOpen, 0);
        return;
    }
    let burst = shared.cfg.burst;
    let cap = shared.cfg.max_sessions_per_tenant;
    let t = reg.tenants.entry(tenant).or_insert_with(|| TenantState::new(burst));
    if t.live_sessions as usize >= cap {
        t.refused += 1;
        drop(reg);
        refuse(shared, tx, tenant, session, RefuseCode::SessionLimit, 0);
        return;
    }
    t.live_sessions += 1;
    let engine_sid = reg.next_sid;
    reg.next_sid += 1;
    reg.sessions.insert(
        session,
        SessionEntry { tenant, engine_sid, last_t: f64::NEG_INFINITY, closing: false },
    );
    reg.by_engine.insert(engine_sid, session);
    reg.acks.insert(engine_sid, VecDeque::new());
    drop(reg);
    bump(&shared.counters.sessions_opened);
    send_reply(tx, Frame::new(FrameKind::Opened, tenant, session, Vec::new()));
}

fn handle_push<M: OnlineMatcher + 'static>(
    shared: &Shared<M>,
    tx: &ReplyTx,
    window: &Arc<AtomicUsize>,
    tenant: u64,
    session: u64,
    payload: &[u8],
) {
    let point = {
        let mut r = Reader::new(payload);
        match r.gps().and_then(|p| r.expect_end().map(|()| p)) {
            Ok(p) => p,
            Err(_) => {
                refuse(shared, tx, tenant, session, RefuseCode::BadPayload, 0);
                return;
            }
        }
    };
    let mut reg = shared.reg.lock().expect("registry poisoned");
    let Some(entry) = reg.sessions.get(&session) else {
        drop(reg);
        refuse(shared, tx, tenant, session, RefuseCode::UnknownSession, 0);
        return;
    };
    if entry.tenant != tenant {
        bump(&shared.counters.wrong_tenant);
        // Account the refusal against the probing tenant's fairness row
        // only if that tenant already exists: tenant ids are
        // client-asserted, so minting registry state for arbitrary probed
        // ids would let one connection grow the tenant map (and the
        // ServeStats payload) without bound.
        if let Some(t) = reg.tenants.get_mut(&tenant) {
            t.refused += 1;
        }
        drop(reg);
        refuse(shared, tx, tenant, session, RefuseCode::WrongTenant, 0);
        return;
    }
    if entry.closing {
        drop(reg);
        refuse(shared, tx, tenant, session, RefuseCode::UnknownSession, 0);
        return;
    }
    if reg.draining {
        drop(reg);
        refuse(shared, tx, tenant, session, RefuseCode::Draining, 0);
        return;
    }
    if point.t <= entry.last_t {
        bump(&shared.counters.late_refused);
        if let Some(t) = reg.tenants.get_mut(&tenant) {
            t.refused += 1;
        }
        drop(reg);
        refuse(shared, tx, tenant, session, RefuseCode::LatePoint, 0);
        return;
    }
    if window.load(Ordering::Acquire) >= shared.cfg.inflight_window {
        drop(reg);
        busy(shared, tx, tenant, session, BusyCode::Window);
        return;
    }
    let engine_sid = entry.engine_sid;
    let prev_t = entry.last_t;
    let rate = shared.cfg.rate_points_per_s;
    let (burst, queue_cap) = (shared.cfg.burst, shared.cfg.tenant_queue);
    let t = reg.tenants.entry(tenant).or_insert_with(|| TenantState::new(burst));
    if rate > 0.0 {
        let now = Instant::now();
        let dt = now.duration_since(t.last_refill).as_secs_f64();
        t.tokens = (t.tokens + dt * rate).min(burst);
        t.last_refill = now;
        if t.tokens < 1.0 {
            t.throttled += 1;
            drop(reg);
            busy(shared, tx, tenant, session, BusyCode::Throttled);
            return;
        }
        t.tokens -= 1.0;
    }
    if t.queue.len() >= queue_cap {
        t.queue_full += 1;
        drop(reg);
        busy(shared, tx, tenant, session, BusyCode::QueueFull);
        return;
    }
    t.points += 1;
    t.queue.push_back(Pending {
        engine_sid,
        client_sid: session,
        tenant,
        kind: PendingKind::Point { p: point, prev_t },
        reply: tx.clone(),
        window: window.clone(),
    });
    window.fetch_add(1, Ordering::AcqRel);
    reg.sessions.get_mut(&session).expect("checked above").last_t = point.t;
}

fn handle_finalize<M: OnlineMatcher + 'static>(
    shared: &Shared<M>,
    tx: &ReplyTx,
    tenant: u64,
    session: u64,
) {
    let mut reg = shared.reg.lock().expect("registry poisoned");
    let Some(entry) = reg.sessions.get(&session) else {
        drop(reg);
        refuse(shared, tx, tenant, session, RefuseCode::UnknownSession, 0);
        return;
    };
    if entry.tenant != tenant {
        bump(&shared.counters.wrong_tenant);
        // Account the refusal against the probing tenant's fairness row
        // only if that tenant already exists: tenant ids are
        // client-asserted, so minting registry state for arbitrary probed
        // ids would let one connection grow the tenant map (and the
        // ServeStats payload) without bound.
        if let Some(t) = reg.tenants.get_mut(&tenant) {
            t.refused += 1;
        }
        drop(reg);
        refuse(shared, tx, tenant, session, RefuseCode::WrongTenant, 0);
        return;
    }
    if entry.closing {
        drop(reg);
        refuse(shared, tx, tenant, session, RefuseCode::UnknownSession, 0);
        return;
    }
    if reg.draining {
        drop(reg);
        refuse(shared, tx, tenant, session, RefuseCode::Draining, 0);
        return;
    }
    let engine_sid = entry.engine_sid;
    if entry.last_t == f64::NEG_INFINITY {
        // No point was ever admitted, so the engine has no session to
        // finish; answer with the empty decode directly.
        reg.sessions.remove(&session);
        reg.by_engine.remove(&engine_sid);
        reg.acks.remove(&engine_sid);
        if let Some(t) = reg.tenants.get_mut(&tenant) {
            t.live_sessions = t.live_sessions.saturating_sub(1);
        }
        drop(reg);
        bump(&shared.counters.sessions_finalized);
        let empty = trmma_traj::MatchResult {
            matched: Vec::new(),
            route: trmma_traj::types::Route::default(),
        };
        send_reply(tx, final_frame(tenant, session, 0, &empty));
        return;
    }
    reg.sessions.get_mut(&session).expect("checked above").closing = true;
    let t = reg.tenants.get_mut(&tenant).expect("tenant exists for live session");
    t.queue.push_back(Pending {
        engine_sid,
        client_sid: session,
        tenant,
        kind: PendingKind::Finish,
        reply: tx.clone(),
        window: Arc::new(AtomicUsize::new(0)),
    });
}

fn final_frame(tenant: u64, session: u64, points: u64, result: &trmma_traj::MatchResult) -> Frame {
    let mut payload = Vec::new();
    put_u64(&mut payload, points);
    trmma_traj::snapshot::put_match_result(&mut payload, result);
    Frame::new(FrameKind::Final, tenant, session, payload)
}

fn ack_frame(tenant: u64, session: u64, seq: u64, update: &trmma_traj::OnlineUpdate) -> Frame {
    let mut payload = Vec::with_capacity(17 + 20);
    put_u64(&mut payload, seq);
    put_u64(&mut payload, update.stable_prefix as u64);
    match update.provisional {
        Some(m) => {
            put_u8(&mut payload, 1);
            put_matched(&mut payload, &m);
        }
        None => put_u8(&mut payload, 0),
    }
    Frame::new(FrameKind::Ack, tenant, session, payload)
}

/// The tenant-fair pump: the only thread that feeds the engine. Each cycle
/// takes at most one pending command per tenant (round-robin fairness — a
/// hot tenant's backlog cannot starve a quiet tenant's single point),
/// delivers them, then converts engine events into Ack/Final replies.
fn pump_loop<M: OnlineMatcher + 'static>(shared: &Arc<Shared<M>>, engine: &StreamEngine<M>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        let mut worked = false;
        let ctl = shared.control.lock().expect("control poisoned").pop_front();
        if let Some(ctl) = ctl {
            worked = true;
            match ctl {
                Control::Snapshot { tenant, session, reply } => {
                    handle_snapshot(shared, engine, tenant, session, &reply);
                }
                Control::Restore { snap, tenant, client_sid, reply } => {
                    handle_restore(shared, engine, snap, tenant, client_sid, &reply);
                }
            }
        }
        for item in take_round(shared) {
            worked = true;
            deliver(shared, engine, item);
        }
        for ev in engine.poll_events() {
            worked = true;
            handle_event(shared, &ev);
        }
        if !worked {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// Pops at most one pending command per tenant, in tenant-id order.
fn take_round<M: OnlineMatcher + 'static>(shared: &Shared<M>) -> Vec<Pending> {
    let mut reg = shared.reg.lock().expect("registry poisoned");
    let mut batch = Vec::new();
    for t in reg.tenants.values_mut() {
        if let Some(item) = t.queue.pop_front() {
            batch.push(item);
        }
    }
    batch
}

fn deliver<M: OnlineMatcher + 'static>(
    shared: &Shared<M>,
    engine: &StreamEngine<M>,
    item: Pending,
) {
    match item.kind {
        PendingKind::Point { p, prev_t } => {
            // Blocks up to the engine's push_timeout_s; the deadline (or a
            // dead engine) surfaces as a typed Busy, never a silent drop.
            if engine.push(item.engine_sid, p) {
                bump(&shared.counters.points_accepted);
                let waiter = PendingAck {
                    client_sid: item.client_sid,
                    tenant: item.tenant,
                    reply: item.reply,
                    window: item.window,
                };
                let mut reg = shared.reg.lock().expect("registry poisoned");
                reg.acks.entry(item.engine_sid).or_default().push_back(waiter);
            } else {
                item.window.fetch_sub(1, Ordering::AcqRel);
                // The engine never saw the point, so the admission
                // watermark must not keep its timestamp: otherwise
                // retrying after this *retryable* Busy would be refused
                // as a final LatePoint and the point would be lost.
                unadmit(shared, &item, p.t, prev_t);
                busy(shared, &item.reply, item.tenant, item.client_sid, BusyCode::PushTimeout);
            }
        }
        PendingKind::Finish => {
            let waiter =
                FinWaiter { client_sid: item.client_sid, tenant: item.tenant, reply: item.reply };
            shared.reg.lock().expect("registry poisoned").fins.insert(item.engine_sid, waiter);
            engine.finish(item.engine_sid);
        }
    }
}

/// Rolls the session's `last_t` admission watermark back past a point the
/// engine refused at its push deadline. Delivery is FIFO per tenant, so
/// if a later point of the same session is still queued, the watermark it
/// restores on failure is lowered instead (the session entry keeps the
/// latest *admitted* timestamp for ordering checks); otherwise the entry
/// itself rolls back so the client can retry the identical point.
fn unadmit<M: OnlineMatcher + 'static>(shared: &Shared<M>, item: &Pending, t: f64, prev_t: f64) {
    let mut reg = shared.reg.lock().expect("registry poisoned");
    if let Some(ts) = reg.tenants.get_mut(&item.tenant) {
        if let Some(next) = ts.queue.iter_mut().find(|q| q.engine_sid == item.engine_sid) {
            if let PendingKind::Point { prev_t: next_prev, .. } = &mut next.kind {
                *next_prev = prev_t;
            }
            return;
        }
    }
    if let Some(entry) = reg.sessions.get_mut(&item.client_sid) {
        if entry.engine_sid == item.engine_sid && entry.last_t == t {
            entry.last_t = prev_t;
        }
    }
}

fn handle_event<M: OnlineMatcher + 'static>(shared: &Shared<M>, ev: &StreamEvent) {
    match ev {
        StreamEvent::Update { session, seq, update, .. } => {
            let waiter = {
                let mut reg = shared.reg.lock().expect("registry poisoned");
                reg.acks.get_mut(session).and_then(VecDeque::pop_front)
            };
            if let Some(w) = waiter {
                w.window.fetch_sub(1, Ordering::AcqRel);
                bump(&shared.counters.acks_out);
                send_reply(&w.reply, ack_frame(w.tenant, w.client_sid, *seq as u64, update));
            }
        }
        StreamEvent::Finalized { session, points, result, .. } => {
            let waiter = {
                let mut reg = shared.reg.lock().expect("registry poisoned");
                let waiter = reg.fins.remove(session);
                reg.acks.remove(session);
                if let Some(client) = reg.by_engine.remove(session) {
                    if let Some(entry) = reg.sessions.remove(&client) {
                        if let Some(t) = reg.tenants.get_mut(&entry.tenant) {
                            t.live_sessions = t.live_sessions.saturating_sub(1);
                        }
                    }
                }
                waiter
            };
            bump(&shared.counters.sessions_finalized);
            if let Some(w) = waiter {
                send_reply(&w.reply, final_frame(w.tenant, w.client_sid, *points as u64, result));
            }
        }
    }
}

/// Retires ack waiters whose `Update` events will never arrive (the
/// snapshot settle hit `drain_timeout_s`): each waiter's inflight-window
/// slot is released — mirroring the PushTimeout cleanup in [`deliver`] —
/// and answered with a typed Busy, so the connection's window cannot leak
/// into a permanent `Busy(Window)` wall.
fn flush_ack_waiters<M: OnlineMatcher + 'static>(
    shared: &Shared<M>,
    waiters: VecDeque<PendingAck>,
) {
    for w in waiters {
        w.window.fetch_sub(1, Ordering::AcqRel);
        bump(&shared.counters.busy);
        send_reply(&w.reply, busy_frame(w.tenant, w.client_sid, BusyCode::PushTimeout));
    }
}

/// The rolling-restart drain: flush every queued command, wait for the
/// engine to settle (all acks and finals delivered), then stream one
/// `SnapshotData` per live session followed by `SnapshotDone`.
fn handle_snapshot<M: OnlineMatcher + 'static>(
    shared: &Shared<M>,
    engine: &StreamEngine<M>,
    tenant: u64,
    session: u64,
    reply: &ReplyTx,
) {
    let deadline = Instant::now() + Duration::from_secs_f64(shared.cfg.drain_timeout_s.max(0.1));
    // Admissions were cut off when the Snapshot frame was dispatched
    // (draining = true); flush what was already admitted.
    loop {
        let batch = take_round(shared);
        if batch.is_empty() {
            break;
        }
        for item in batch {
            deliver(shared, engine, item);
        }
    }
    // Settle: every accepted push acked, every finalize answered.
    loop {
        for ev in engine.poll_events() {
            handle_event(shared, &ev);
        }
        let settled = {
            let reg = shared.reg.lock().expect("registry poisoned");
            reg.fins.is_empty() && reg.acks.values().all(VecDeque::is_empty)
        };
        if settled || Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let remaining = deadline.saturating_duration_since(Instant::now());
    let snaps = engine.drain_snapshots(remaining.max(Duration::from_millis(100)));
    let mut count: u64 = 0;
    {
        let mut reg = shared.reg.lock().expect("registry poisoned");
        for mut snap in snaps {
            let Some(client) = reg.by_engine.remove(&snap.session) else { continue };
            let Some(entry) = reg.sessions.remove(&client) else { continue };
            if let Some(waiters) = reg.acks.remove(&snap.session) {
                flush_ack_waiters(shared, waiters);
            }
            if let Some(t) = reg.tenants.get_mut(&entry.tenant) {
                t.live_sessions = t.live_sessions.saturating_sub(1);
            }
            snap.session = client;
            if let Ok(bytes) = snap.encode() {
                count += 1;
                bump(&shared.counters.snapshots_out);
                send_reply(reply, Frame::new(FrameKind::SnapshotData, entry.tenant, client, bytes));
            }
        }
        // Sessions the engine never saw (opened, zero points admitted)
        // still count: synthesize a fresh-session snapshot so the
        // successor reopens them and no session is lost.
        let zero: Vec<u64> = reg
            .sessions
            .iter()
            .filter(|(_, e)| e.last_t == f64::NEG_INFINITY)
            .map(|(&c, _)| c)
            .collect();
        for client in zero {
            let entry = reg.sessions.remove(&client).expect("just listed");
            reg.by_engine.remove(&entry.engine_sid);
            if let Some(waiters) = reg.acks.remove(&entry.engine_sid) {
                flush_ack_waiters(shared, waiters);
            }
            if let Some(t) = reg.tenants.get_mut(&entry.tenant) {
                t.live_sessions = t.live_sessions.saturating_sub(1);
            }
            let mut payload = Vec::new();
            shared.matcher.snapshot_session(&shared.matcher.begin_session(), &mut payload);
            let snap = SessionSnapshot {
                session: client,
                matcher: shared.matcher.name().to_string(),
                seq: 0,
                last_t: f64::NEG_INFINITY,
                payload,
            };
            if let Ok(bytes) = snap.encode() {
                count += 1;
                bump(&shared.counters.snapshots_out);
                send_reply(reply, Frame::new(FrameKind::SnapshotData, entry.tenant, client, bytes));
            }
        }
        // Anything still waiting (sessions the engine did not hand back,
        // finalizes whose events never arrived) is retired with a typed
        // reply — window slots released, never a silent hang.
        let leftover: Vec<VecDeque<PendingAck>> =
            std::mem::take(&mut reg.acks).into_values().collect();
        for waiters in leftover {
            flush_ack_waiters(shared, waiters);
        }
        let fins: Vec<FinWaiter> = std::mem::take(&mut reg.fins).into_values().collect();
        for w in fins {
            bump(&shared.counters.refused);
            send_reply(&w.reply, refused_frame(w.tenant, w.client_sid, RefuseCode::Draining, 0));
        }
        reg.draining = false;
    }
    let mut payload = Vec::with_capacity(8);
    put_u64(&mut payload, count);
    send_reply(reply, Frame::new(FrameKind::SnapshotDone, tenant, session, payload));
}

fn handle_restore<M: OnlineMatcher + 'static>(
    shared: &Shared<M>,
    engine: &StreamEngine<M>,
    snap: SessionSnapshot,
    tenant: u64,
    client_sid: u64,
    reply: &ReplyTx,
) {
    let engine_sid = {
        let mut reg = shared.reg.lock().expect("registry poisoned");
        if reg.sessions.contains_key(&client_sid) {
            drop(reg);
            refuse(shared, reply, tenant, client_sid, RefuseCode::AlreadyOpen, 0);
            return;
        }
        let burst = shared.cfg.burst;
        let cap = shared.cfg.max_sessions_per_tenant;
        let t = reg.tenants.entry(tenant).or_insert_with(|| TenantState::new(burst));
        if t.live_sessions as usize >= cap {
            t.refused += 1;
            drop(reg);
            refuse(shared, reply, tenant, client_sid, RefuseCode::SessionLimit, 0);
            return;
        }
        t.live_sessions += 1;
        let sid = reg.next_sid;
        reg.next_sid += 1;
        // Reserve the client id before releasing the lock: a concurrent
        // Open for the same id must see AlreadyOpen, not race the engine
        // restore below and clobber this entry. `closing: true` makes the
        // placeholder refuse pushes until the restore lands.
        reg.sessions.insert(
            client_sid,
            SessionEntry { tenant, engine_sid: sid, last_t: snap.last_t, closing: true },
        );
        sid
    };
    let had_points = snap.seq > 0;
    let mut snap = snap;
    snap.session = engine_sid;
    // A zero-point snapshot (session opened, nothing pushed) is not handed
    // to the engine — like Open, the engine first sees it on its first
    // push. Everything else rehydrates through the engine.
    let restored = if had_points { engine.restore(&[snap]).is_ok() } else { true };
    {
        let mut reg = shared.reg.lock().expect("registry poisoned");
        if !restored {
            reg.sessions.remove(&client_sid);
            if let Some(t) = reg.tenants.get_mut(&tenant) {
                t.live_sessions = t.live_sessions.saturating_sub(1);
            }
            drop(reg);
            refuse(shared, reply, tenant, client_sid, RefuseCode::RestoreFailed, 0);
            return;
        }
        reg.sessions.get_mut(&client_sid).expect("reserved above").closing = false;
        reg.by_engine.insert(engine_sid, client_sid);
        reg.acks.insert(engine_sid, VecDeque::new());
    }
    bump(&shared.counters.sessions_restored);
    send_reply(reply, Frame::new(FrameKind::Restored, tenant, client_sid, Vec::new()));
}

/// Why a [`ServeClient`] call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The socket failed.
    Io(std::io::ErrorKind),
    /// A reply frame did not decode.
    Wire(SnapshotError),
    /// The server refused the request.
    Refused {
        /// Why.
        code: RefuseCode,
        /// Kind-specific detail word.
        detail: u32,
    },
    /// The server asked for a retry.
    Busy(BusyCode),
    /// The server answered with a reply the call did not expect.
    Protocol(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(k) => write!(f, "socket error: {k:?}"),
            Self::Wire(e) => write!(f, "bad reply frame: {e}"),
            Self::Refused { code, detail } => write!(f, "refused: {code:?} (detail {detail})"),
            Self::Busy(code) => write!(f, "busy: {code:?}"),
            Self::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.kind())
    }
}

impl From<SnapshotError> for ClientError {
    fn from(e: SnapshotError) -> Self {
        Self::Wire(e)
    }
}

/// A blocking client of one [`Server`] connection, fixed to one tenant.
/// Replies the synchronous helpers skip over (acks racing a `finalize`,
/// for instance) are stashed in an inbox and handed out in order by
/// [`ServeClient::recv_reply`].
pub struct ServeClient {
    stream: TcpStream,
    tenant: u64,
    inbox: VecDeque<Reply>,
    max_payload: usize,
}

impl ServeClient {
    /// Connects to `addr` as `tenant`.
    ///
    /// # Errors
    /// Propagates the connect failure.
    pub fn connect<A: ToSocketAddrs>(addr: A, tenant: u64) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, tenant, inbox: VecDeque::new(), max_payload: 1 << 20 })
    }

    /// Caps the reply payload length this client will read (default 1 MiB,
    /// matching the server's request-side default). A reply declaring a
    /// larger payload fails with a typed [`SnapshotError::Oversize`]
    /// instead of allocating whatever length the peer announced. Raise it
    /// when expecting outsized `Final` results or session snapshots.
    #[must_use]
    pub fn max_payload(mut self, n: usize) -> Self {
        self.max_payload = n;
        self
    }

    /// The tenant this connection speaks for.
    #[must_use]
    pub fn tenant(&self) -> u64 {
        self.tenant
    }

    /// Sends one raw frame (any version, kind, tenant) — the adversarial
    /// tests' hatch; typed helpers below cover the normal protocol.
    ///
    /// # Errors
    /// [`ClientError::Wire`] if the frame cannot encode, otherwise I/O.
    pub fn send_frame(&mut self, frame: &Frame) -> Result<(), ClientError> {
        let bytes = frame.encode()?;
        self.stream.write_all(&bytes)?;
        Ok(())
    }

    /// Sends pre-encoded bytes verbatim (fuzzing corrupted frames).
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }

    fn send(&mut self, kind: FrameKind, session: u64, payload: Vec<u8>) -> Result<(), ClientError> {
        let frame = Frame::new(kind, self.tenant, session, payload);
        self.send_frame(&frame)
    }

    /// Reads one reply frame off the socket (bypassing the inbox).
    ///
    /// # Errors
    /// I/O failure or a reply that does not decode.
    pub fn recv_frame(&mut self) -> Result<Frame, ClientError> {
        let mut header = [0u8; HEADER_LEN];
        self.stream.read_exact(&mut header)?;
        if header[..4] != MAGIC {
            return Err(ClientError::Wire(SnapshotError::BadMagic));
        }
        let payload_len = u32::from_le_bytes(header[23..27].try_into().expect("4 bytes")) as usize;
        if payload_len > self.max_payload {
            // Mirror the server's edge check: refuse on the declared
            // length alone, before allocating or reading the body.
            return Err(ClientError::Wire(SnapshotError::Oversize { len: payload_len }));
        }
        let mut buf = vec![0u8; HEADER_LEN + payload_len + 4];
        buf[..HEADER_LEN].copy_from_slice(&header);
        self.stream.read_exact(&mut buf[HEADER_LEN..])?;
        Ok(Frame::decode(&buf)?)
    }

    /// The next reply, inbox first.
    ///
    /// # Errors
    /// I/O failure or a reply that does not decode.
    pub fn recv_reply(&mut self) -> Result<Reply, ClientError> {
        if let Some(r) = self.inbox.pop_front() {
            return Ok(r);
        }
        let frame = self.recv_frame()?;
        Ok(Reply::parse(&frame)?)
    }

    /// Receives until `want` says yes, stashing everything else.
    fn recv_until<F: Fn(&Reply) -> bool>(&mut self, want: F) -> Result<Reply, ClientError> {
        let mut stash = Vec::new();
        let mut from_inbox = std::mem::take(&mut self.inbox);
        loop {
            let reply = match from_inbox.pop_front() {
                Some(r) => r,
                None => Reply::parse(&self.recv_frame()?)?,
            };
            if want(&reply) {
                stash.extend(from_inbox);
                self.inbox = stash.into();
                return Ok(reply);
            }
            stash.push(reply);
        }
    }

    /// Turns a terminal reply for `session` into the call's result.
    fn expect_ok(reply: &Reply, session: u64) -> Result<(), ClientError> {
        match reply {
            Reply::Refused { session: s, code, detail } if *s == session => {
                Err(ClientError::Refused { code: *code, detail: *detail })
            }
            Reply::Busy { session: s, code } if *s == session => Err(ClientError::Busy(*code)),
            _ => Ok(()),
        }
    }

    /// Opens `session`.
    ///
    /// # Errors
    /// [`ClientError::Refused`] with the server's typed code, or I/O.
    pub fn open(&mut self, session: u64) -> Result<(), ClientError> {
        self.send(FrameKind::Open, session, Vec::new())?;
        let reply = self.recv_until(|r| {
            matches!(r, Reply::Opened { session: s } | Reply::Refused { session: s, .. }
                     | Reply::Busy { session: s, .. } if *s == session)
        })?;
        Self::expect_ok(&reply, session)
    }

    /// Sends one point without waiting for its ack (windowed streaming).
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn push(&mut self, session: u64, p: GpsPoint) -> Result<(), ClientError> {
        self.send(FrameKind::Push, session, push_payload(p))
    }

    /// Sends one point and blocks for its ack.
    ///
    /// # Errors
    /// [`ClientError::Busy`] under backpressure, [`ClientError::Refused`]
    /// on a typed refusal, or I/O.
    pub fn push_wait(&mut self, session: u64, p: GpsPoint) -> Result<Reply, ClientError> {
        self.push(session, p)?;
        let reply = self.recv_until(|r| {
            matches!(r, Reply::Ack { session: s, .. } | Reply::Refused { session: s, .. }
                     | Reply::Busy { session: s, .. } if *s == session)
        })?;
        Self::expect_ok(&reply, session)?;
        Ok(reply)
    }

    /// Streams `points` into `session` with at most `window` unacked
    /// pushes, then returns the ack count. Busy replies are returned as
    /// errors (the caller owns retry policy).
    ///
    /// # Errors
    /// Typed [`ClientError::Busy`]/[`ClientError::Refused`], or I/O.
    pub fn stream_points(
        &mut self,
        session: u64,
        points: &[GpsPoint],
        window: usize,
    ) -> Result<u64, ClientError> {
        let window = window.max(1);
        let mut acked = 0u64;
        let mut inflight = 0usize;
        for &p in points {
            while inflight >= window {
                self.wait_ack(session)?;
                inflight -= 1;
                acked += 1;
            }
            self.push(session, p)?;
            inflight += 1;
        }
        while inflight > 0 {
            self.wait_ack(session)?;
            inflight -= 1;
            acked += 1;
        }
        Ok(acked)
    }

    fn wait_ack(&mut self, session: u64) -> Result<(), ClientError> {
        let reply = self.recv_until(|r| {
            matches!(r, Reply::Ack { session: s, .. } | Reply::Refused { session: s, .. }
                     | Reply::Busy { session: s, .. } if *s == session)
        })?;
        Self::expect_ok(&reply, session)
    }

    /// Finalizes `session` and returns its point count and final result —
    /// bitwise identical to the offline decode of the same points.
    ///
    /// # Errors
    /// Typed [`ClientError::Refused`], or I/O.
    pub fn finalize(
        &mut self,
        session: u64,
    ) -> Result<(u64, trmma_traj::MatchResult), ClientError> {
        self.send(FrameKind::Finalize, session, Vec::new())?;
        let reply = self.recv_until(|r| {
            matches!(r, Reply::Final { session: s, .. } | Reply::Refused { session: s, .. }
                     | Reply::Busy { session: s, .. } if *s == session)
        })?;
        Self::expect_ok(&reply, session)?;
        match reply {
            Reply::Final { points, result, .. } => Ok((points, result)),
            _ => Err(ClientError::Protocol("expected Final")),
        }
    }

    /// Drains the whole server for a rolling restart: every live session's
    /// snapshot, tagged with its owning tenant.
    ///
    /// # Errors
    /// Typed refusal or I/O.
    pub fn snapshot_all(&mut self) -> Result<Vec<(u64, SessionSnapshot)>, ClientError> {
        self.send(FrameKind::Snapshot, 0, Vec::new())?;
        let mut out = Vec::new();
        loop {
            let reply = self.recv_until(|r| {
                matches!(
                    r,
                    Reply::SnapshotData { .. } | Reply::SnapshotDone { .. } | Reply::Refused { .. }
                )
            })?;
            match reply {
                Reply::SnapshotData { tenant, snapshot, .. } => out.push((tenant, snapshot)),
                Reply::SnapshotDone { count } => {
                    if count as usize != out.len() {
                        return Err(ClientError::Protocol("snapshot count mismatch"));
                    }
                    return Ok(out);
                }
                Reply::Refused { code, detail, .. } => {
                    return Err(ClientError::Refused { code, detail })
                }
                _ => unreachable!("recv_until filtered"),
            }
        }
    }

    /// Rehydrates one drained session on this server, for `tenant`, under
    /// the session id recorded in the snapshot.
    ///
    /// # Errors
    /// Typed refusal ([`RefuseCode::RestoreFailed`], …) or I/O.
    pub fn restore(&mut self, tenant: u64, snap: &SessionSnapshot) -> Result<(), ClientError> {
        let session = snap.session;
        let frame = Frame::new(FrameKind::Restore, tenant, session, snap.encode()?);
        self.send_frame(&frame)?;
        let reply = self.recv_until(|r| {
            matches!(r, Reply::Restored { session: s } | Reply::Refused { session: s, .. }
                     | Reply::Busy { session: s, .. } if *s == session)
        })?;
        Self::expect_ok(&reply, session)
    }

    /// Fetches the server's [`ServeStats`].
    ///
    /// # Errors
    /// Typed refusal or I/O.
    pub fn stats(&mut self) -> Result<ServeStats, ClientError> {
        self.send(FrameKind::Stats, 0, Vec::new())?;
        let reply = self.recv_until(|r| matches!(r, Reply::Stats(_) | Reply::Refused { .. }))?;
        match reply {
            Reply::Stats(s) => Ok(*s),
            Reply::Refused { code, detail, .. } => Err(ClientError::Refused { code, detail }),
            _ => unreachable!("recv_until filtered"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trmma_baselines::{HmmConfig, HmmMatcher};
    use trmma_roadnet::RoutePlanner;
    use trmma_traj::dataset::{build_dataset, DatasetConfig, Split};
    use trmma_traj::types::Trajectory;
    use trmma_traj::ScratchMatcher;

    fn world() -> (Arc<HmmMatcher>, Vec<Trajectory>) {
        let ds = build_dataset(&DatasetConfig::tiny());
        let net = Arc::new(ds.net.clone());
        let planner = Arc::new(RoutePlanner::untrained(&net));
        let hmm = Arc::new(HmmMatcher::new(net, planner, HmmConfig::default()));
        let batch: Vec<Trajectory> =
            ds.samples(Split::Test, 0.2, 21).into_iter().take(3).map(|s| s.sparse).collect();
        (hmm, batch)
    }

    #[test]
    fn frames_round_trip_bitwise() {
        let p = GpsPoint { pos: trmma_geom::Vec2::new(1.5, -2.0), t: 3.25 };
        let frame = Frame::new(FrameKind::Push, 7, 42, push_payload(p));
        let bytes = frame.encode().unwrap();
        assert_eq!(&bytes[..4], b"TRMP");
        let back = Frame::decode(&bytes).unwrap();
        assert_eq!(back, frame);
        assert_eq!(back.encode().unwrap(), bytes);
        // Unknown kinds and foreign versions decode (the server refuses
        // them with typed replies); corruption does not.
        let odd = Frame { version: 9, kind: 200, tenant: 0, session: 0, payload: vec![1, 2] };
        assert_eq!(Frame::decode(&odd.encode().unwrap()).unwrap(), odd);
        for cut in 0..bytes.len() {
            assert!(Frame::decode(&bytes[..cut]).is_err());
        }
        let mut flipped = bytes.clone();
        flipped[10] ^= 0x40;
        assert_eq!(Frame::decode(&flipped), Err(SnapshotError::Checksum));
        let mut wrong_magic = bytes;
        wrong_magic[0] = b'X';
        assert_eq!(Frame::decode(&wrong_magic), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn kind_and_code_tables_are_involutions() {
        for k in 0..=u8::MAX {
            if let Some(kind) = FrameKind::from_u8(k) {
                assert_eq!(kind as u8, k);
                assert_eq!(kind.is_request(), k < 16);
            }
            if let Some(code) = RefuseCode::from_u8(k) {
                assert_eq!(code as u8, k);
            }
            if let Some(code) = BusyCode::from_u8(k) {
                assert_eq!(code as u8, k);
            }
        }
        assert!(FrameKind::from_u8(0).is_none());
        assert!(FrameKind::from_u8(99).is_none());
    }

    #[test]
    fn stats_wire_codec_round_trips() {
        let mut s = ServeStats { connections: 3, frames_in: 100, busy: 2, ..Default::default() };
        s.tenants.push(TenantLoad { tenant: 9, points: 55, throttled: 4, ..Default::default() });
        let bytes = s.wire_encode();
        assert_eq!(ServeStats::wire_decode(&bytes).unwrap(), s);
        assert!(ServeStats::wire_decode(&bytes[..bytes.len() - 1]).is_err());
        assert_eq!(s.tenant(9).unwrap().points, 55);
        assert!(s.tenant(1).is_none());
    }

    #[test]
    fn loopback_identity_and_typed_refusals() {
        let (hmm, trips) = world();
        let server = Server::start(hmm.clone(), ServeConfig::default()).unwrap();
        let addr = server.local_addr();
        let mut client = ServeClient::connect(addr, 1).unwrap();
        let trip = &trips[0];
        client.open(10).unwrap();
        // Double-open is a typed refusal, not a stall.
        let mut other = ServeClient::connect(addr, 1).unwrap();
        assert_eq!(
            other.open(10),
            Err(ClientError::Refused { code: RefuseCode::AlreadyOpen, detail: 0 })
        );
        let acks = client.stream_points(10, &trip.points, 8).unwrap();
        assert_eq!(acks, trip.points.len() as u64);
        // A non-advancing timestamp is refused at the edge.
        let late = trip.points[trip.points.len() - 1];
        assert_eq!(
            client.push_wait(10, late),
            Err(ClientError::Refused { code: RefuseCode::LatePoint, detail: 0 })
        );
        let (points, result) = client.finalize(10).unwrap();
        assert_eq!(points, trip.points.len() as u64);
        let mut scratch = hmm.make_scratch();
        assert_eq!(result, hmm.match_trajectory_with(&mut scratch, trip));
        // Zero-point sessions finalize to the empty decode.
        client.open(11).unwrap();
        let (points, result) = client.finalize(11).unwrap();
        assert_eq!(points, 0);
        assert!(result.matched.is_empty() && result.route.is_empty());
        let stats = client.stats().unwrap();
        assert_eq!(stats.points_accepted, trip.points.len() as u64);
        assert_eq!(stats.acks_out, trip.points.len() as u64);
        assert_eq!(stats.sessions_opened, 2);
        assert_eq!(stats.sessions_finalized, 2);
        assert_eq!(stats.late_refused, 1);
        assert!(stats.refused >= 2);
        assert_eq!(stats.tenant(1).unwrap().points, trip.points.len() as u64);
        server.stop();
    }

    #[test]
    fn snapshot_restore_between_servers_keeps_sessions() {
        let (hmm, trips) = world();
        let a = Server::start(hmm.clone(), ServeConfig::default()).unwrap();
        let mut ca = ServeClient::connect(a.local_addr(), 5).unwrap();
        let trip = &trips[1];
        let mid = trip.points.len() / 2;
        ca.open(77).unwrap();
        ca.stream_points(77, &trip.points[..mid], 4).unwrap();
        let snaps = ca.snapshot_all().unwrap();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].0, 5);
        assert_eq!(snaps[0].1.session, 77);
        // Server A is drained: new pushes are refused as Draining? No —
        // the drain completed, so the session is simply gone.
        assert_eq!(
            ca.push_wait(77, trip.points[mid]),
            Err(ClientError::Refused { code: RefuseCode::UnknownSession, detail: 0 })
        );
        a.stop();
        let b = Server::start(hmm.clone(), ServeConfig::default()).unwrap();
        let mut cb = ServeClient::connect(b.local_addr(), 5).unwrap();
        for (tenant, snap) in &snaps {
            cb.restore(*tenant, snap).unwrap();
        }
        cb.stream_points(77, &trip.points[mid..], 4).unwrap();
        let (points, result) = cb.finalize(77).unwrap();
        assert_eq!(points, trip.points.len() as u64);
        let mut scratch = hmm.make_scratch();
        assert_eq!(result, hmm.match_trajectory_with(&mut scratch, trip));
        assert_eq!(b.stats().sessions_restored, 1);
        b.stop();
    }
}
