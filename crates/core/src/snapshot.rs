//! Versioned, checksummed envelopes around serialized streaming sessions.
//!
//! [`crate::stream::StreamEngine`] survives worker panics and rolling
//! restarts by freezing live [`OnlineMatcher`] sessions to bytes and
//! thawing them later — possibly in another process. The matcher writes
//! only its raw decoder payload ([`OnlineMatcher::snapshot_session`]);
//! this module wraps that payload in the durable [`SessionSnapshot`]
//! envelope that makes a checkpoint safe to store and hand around:
//!
//! ```text
//! magic "TRMS" | version u16 | matcher name | session id u64 |
//! seq u64 | last_t f64-bits | payload bytes | CRC-32 u32
//! ```
//!
//! * the **magic + version** reject foreign or future formats up front;
//! * the **matcher name** (from [`MapMatcher::name`]) rejects restoring a
//!   snapshot into a different decoder, where the payload might even parse
//!   but the continued decode would be silently wrong;
//! * **seq / last_t** carry the engine-side per-session counters (events
//!   emitted, last accepted timestamp) that live outside the matcher
//!   payload but must survive a restore for event numbering and
//!   late-point drops to continue exactly where they left off;
//! * the trailing **CRC-32** (IEEE 802.3) detects torn or bit-rotted
//!   checkpoints before any of the above is trusted.
//!
//! All scalar encoding (fixed-width little-endian, `f64` as exact bit
//! patterns) comes from [`trmma_traj::snapshot`]; decoding never panics.
//!
//! [`OnlineMatcher`]: trmma_traj::online::OnlineMatcher
//! [`OnlineMatcher::snapshot_session`]: trmma_traj::online::OnlineMatcher::snapshot_session
//! [`MapMatcher::name`]: trmma_traj::api::MapMatcher::name

use trmma_traj::snapshot::{self, Reader, SnapshotError};

use crate::stream::SessionId;

/// Envelope magic: "TRMS" (TRMma Session).
pub const MAGIC: [u8; 4] = *b"TRMS";

/// The envelope format version this build reads and writes.
pub const VERSION: u16 = 1;

/// Slice-by-16 lookup tables for [`crc32`], built at compile time.
/// `CRC_TABLES[0]` is the classic byte-at-a-time table; table `k` advances
/// a byte through `k` further zero bytes, so sixteen input bytes fold in
/// one step.
const CRC_TABLES: [[u32; 256]; 16] = build_crc_tables();

const fn build_crc_tables() -> [[u32; 256]; 16] {
    let mut t = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            j += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

/// Folds one little-endian word through four [`CRC_TABLES`] lanes,
/// `lane` being the table index of the word's most significant byte.
#[inline]
const fn fold(word: u32, lane: usize) -> u32 {
    CRC_TABLES[lane + 3][(word & 0xFF) as usize]
        ^ CRC_TABLES[lane + 2][((word >> 8) & 0xFF) as usize]
        ^ CRC_TABLES[lane + 1][((word >> 16) & 0xFF) as usize]
        ^ CRC_TABLES[lane][(word >> 24) as usize]
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) of `bytes` —
/// the checksum trailing every [`SessionSnapshot`] envelope and guarding
/// every [`crate::artifact`] section. Slice-by-16: artifact images run to
/// megabytes and are checksummed on every load, so the bit-at-a-time
/// loop (8 shift/xor steps per *bit*) would dominate the zero-parse
/// cold-start path it exists to protect.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let word = |c: &[u8]| u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(16);
    for c in &mut chunks {
        crc = fold(word(&c[0..4]) ^ crc, 12)
            ^ fold(word(&c[4..8]), 8)
            ^ fold(word(&c[8..12]), 4)
            ^ fold(word(&c[12..16]), 0);
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// One checkpointed streaming session: the matcher's serialized decoder
/// state plus the engine-side counters needed to resume the stream
/// in place. Produced by `StreamEngine::drain_snapshots` and by the
/// supervisor's checkpoint path; consumed by `StreamEngine::restore`.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// The session id the checkpoint belongs to.
    pub session: SessionId,
    /// [`MapMatcher::name`] of the matcher that wrote the payload.
    ///
    /// [`MapMatcher::name`]: trmma_traj::api::MapMatcher::name
    pub matcher: String,
    /// Events emitted so far (the next `StreamEvent::Update` seq).
    pub seq: u64,
    /// Timestamp of the last accepted point (`-inf` before any), carried
    /// bit-exactly so late-point drops resume with the same cutoff.
    pub last_t: f64,
    /// The matcher's raw decoder payload
    /// ([`trmma_traj::online::OnlineMatcher::snapshot_session`]).
    pub payload: Vec<u8>,
}

impl SessionSnapshot {
    /// Serializes the envelope (format above, CRC last).
    ///
    /// # Errors
    /// [`SnapshotError::Oversize`] when the matcher name or payload is too
    /// long for its `u32` length field — refused rather than truncated,
    /// since a truncated length would decode as a *different* valid-looking
    /// envelope.
    pub fn encode(&self) -> Result<Vec<u8>, SnapshotError> {
        let mut out = Vec::with_capacity(self.payload.len() + 64);
        out.extend_from_slice(&MAGIC);
        snapshot::put_u16(&mut out, VERSION);
        snapshot::put_bytes(&mut out, self.matcher.as_bytes())?;
        snapshot::put_u64(&mut out, self.session);
        snapshot::put_u64(&mut out, self.seq);
        snapshot::put_f64(&mut out, self.last_t);
        snapshot::put_bytes(&mut out, &self.payload)?;
        let crc = crc32(&out);
        snapshot::put_u32(&mut out, crc);
        Ok(out)
    }

    /// Parses and verifies an envelope: magic, version, checksum, and
    /// structural integrity — the matcher payload itself is validated
    /// later, by the restoring matcher's
    /// [`trmma_traj::online::OnlineMatcher::restore_session`].
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let body_len = bytes.len().checked_sub(4).ok_or(SnapshotError::Truncated)?;
        let mut r = Reader::new(bytes);
        let magic = [r.u8()?, r.u8()?, r.u8()?, r.u8()?];
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u16()?;
        if version != VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let matcher = String::from_utf8(r.bytes()?.to_vec())
            .map_err(|_| SnapshotError::Malformed("matcher name not UTF-8"))?;
        let session = r.u64()?;
        let seq = r.u64()?;
        let last_t = r.f64()?;
        let payload = r.bytes()?.to_vec();
        let stored_crc = r.u32()?;
        r.expect_end()?;
        if crc32(&bytes[..body_len]) != stored_crc {
            return Err(SnapshotError::Checksum);
        }
        Ok(Self { session, matcher, seq, last_t, payload })
    }

    /// Fails with [`SnapshotError::WrongMatcher`] unless the snapshot was
    /// written by a matcher named `expected`.
    pub fn expect_matcher(&self, expected: &str) -> Result<(), SnapshotError> {
        if self.matcher == expected {
            Ok(())
        } else {
            Err(SnapshotError::WrongMatcher {
                expected: expected.to_string(),
                found: self.matcher.clone(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SessionSnapshot {
        SessionSnapshot {
            session: 42,
            matcher: "HMM".to_string(),
            seq: 17,
            last_t: 123.456,
            payload: vec![1, 2, 3, 250, 0, 9],
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_matches_the_bitwise_reference_at_every_tail_length() {
        let reference = |bytes: &[u8]| -> u32 {
            let mut crc = !0u32;
            for &b in bytes {
                crc ^= u32::from(b);
                for _ in 0..8 {
                    let mask = (crc & 1).wrapping_neg();
                    crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
                }
            }
            !crc
        };
        // Lengths 0..=64 cover empty input, tails 1..=7 and full 8-byte
        // lanes of the slice-by-8 fold.
        let data: Vec<u8> = (0..64u32).map(|i| (i.wrapping_mul(197) ^ 0x5A) as u8).collect();
        for n in 0..=data.len() {
            assert_eq!(crc32(&data[..n]), reference(&data[..n]), "length {n}");
        }
    }

    #[test]
    fn envelope_round_trips() {
        let snap = sample();
        let bytes = snap.encode().unwrap();
        assert_eq!(SessionSnapshot::decode(&bytes).unwrap(), snap);
        // -inf last_t (no point accepted yet) round-trips bit-exactly.
        let fresh = SessionSnapshot { last_t: f64::NEG_INFINITY, ..sample() };
        let decoded = SessionSnapshot::decode(&fresh.encode().unwrap()).unwrap();
        assert_eq!(decoded.last_t.to_bits(), f64::NEG_INFINITY.to_bits());
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = sample().encode().unwrap();
        // Flip one payload bit: checksum must catch it.
        for i in [6, bytes.len() / 2, bytes.len() - 5] {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let err = SessionSnapshot::decode(&bad).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Checksum
                        | SnapshotError::Malformed(_)
                        | SnapshotError::Truncated
                ),
                "byte {i}: unexpected error {err:?}"
            );
        }
        // Truncation at every prefix length: error, never panic.
        for n in 0..bytes.len() {
            assert!(SessionSnapshot::decode(&bytes[..n]).is_err(), "prefix {n} accepted");
        }
        assert_eq!(SessionSnapshot::decode(b"NOPE").unwrap_err(), SnapshotError::BadMagic);
        assert_eq!(SessionSnapshot::decode(b"NO").unwrap_err(), SnapshotError::Truncated);
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert_eq!(SessionSnapshot::decode(&wrong_magic).unwrap_err(), SnapshotError::BadMagic);
    }

    #[test]
    fn version_and_matcher_guards() {
        let mut v2 = sample().encode().unwrap();
        v2[4] = 2; // bump version field
        let tail = v2.len() - 4;
        let crc = crc32(&v2[..tail]);
        v2[tail..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(SessionSnapshot::decode(&v2).unwrap_err(), SnapshotError::BadVersion(2));

        let snap = sample();
        snap.expect_matcher("HMM").unwrap();
        let err = snap.expect_matcher("MMA").unwrap_err();
        assert_eq!(
            err,
            SnapshotError::WrongMatcher { expected: "MMA".into(), found: "HMM".into() }
        );
    }
}
