//! The paper's contribution: **MMA** map matching (§IV) and **TRMMA**
//! sparse trajectory recovery (§V).
//!
//! * [`mma::Mma`] — maps each GPS point of a sparse trajectory to a road
//!   segment by *classifying over a small candidate set* (top-`kc` nearest
//!   segments, Definition 8) instead of the whole network. Candidate
//!   embeddings combine Node2Vec-initialised id vectors with four
//!   directional cosine features (Eq. 1–2); point embeddings run the GPS
//!   sequence through a transformer and attend over the candidates
//!   (Eq. 3–8); matching is a per-candidate sigmoid score (Eq. 9) trained
//!   with binary cross-entropy (Eq. 10). Matched segments are stitched into
//!   a route by the shared statistical route planner (Algorithm 1).
//! * [`trmma::Trmma`] — recovers the missing points of a sparse trajectory
//!   *restricted to the segments of its route*: a DualFormer encodes the
//!   trajectory and route sequences and fuses them with cross-attention
//!   (Eq. 11–14); a GRU decoder sequentially classifies each missing
//!   point's segment among the route's segments — respecting route order
//!   (Eq. 17) — and regresses its position ratio (Eq. 18), trained with the
//!   multitask loss of Eq. 19–21 (Algorithm 2).
//! * [`pipeline::TrmmaPipeline`] — the end-to-end system (MMA feeding
//!   TRMMA) plus the ablation wirings of Table IV.
//! * [`batch`] — the batched, parallel inference engine: [`BatchMatcher`]
//!   and [`BatchRecovery`] fan a `&[Trajectory]` out across worker threads
//!   that share one immutable model and reuse per-worker scratch state,
//!   with output bitwise-identical to the sequential API.
//! * [`stream`] — the streaming session engine: [`StreamEngine`]
//!   multiplexes live `trmma_traj::OnlineMatcher` sessions (points arriving
//!   one at a time, interleaved across devices) over the same per-worker
//!   scratch model, behind a load-aware router ([`RouterPolicy`]:
//!   power-of-two-choices placement plus migration of watermark-stable
//!   sessions off hot workers, telemetered via [`RouterStats`]), with
//!   provisional per-point matches, stabilized-prefix watermarks, and
//!   idle-session finalize-on-timeout.
//!
//! # Example
//!
//! Stream one live trip through the session engine and confirm the
//! finalized route equals the offline decode of the same points:
//!
//! ```
//! use std::sync::Arc;
//! use trmma_core::{StreamEngine, StreamEvent, StreamOptions};
//! use trmma_core::{Mma, MmaConfig};
//! use trmma_roadnet::RoutePlanner;
//! use trmma_traj::dataset::{build_dataset, DatasetConfig, Split};
//! use trmma_traj::MapMatcher;
//!
//! let ds = build_dataset(&DatasetConfig::tiny());
//! let net = Arc::new(ds.net.clone());
//! let planner = Arc::new(RoutePlanner::untrained(&net));
//! let mma = Arc::new(Mma::new(net, planner, None, MmaConfig::small()));
//!
//! let trip = ds.samples(Split::Test, 0.2, 3)[0].sparse.clone();
//! let engine = StreamEngine::new(mma.clone(), StreamOptions::with_threads(2));
//! for &p in &trip.points {
//!     engine.push(42, p);
//! }
//! engine.finish(42);
//! let (events, stats) = engine.shutdown();
//! assert_eq!(stats.points, trip.len() as u64);
//! let finalized = events.iter().find_map(|e| match e {
//!     StreamEvent::Finalized { result, .. } => Some(result.clone()),
//!     StreamEvent::Update { .. } => None,
//! });
//! assert_eq!(finalized.as_ref(), Some(&mma.match_trajectory(&trip)));
//! ```

pub mod artifact;
pub mod batch;
pub mod mma;
pub mod pipeline;
pub mod serve;
pub mod snapshot;
pub mod stream;
pub mod trmma;

pub use artifact::{Artifact, ArtifactBuilder, ArtifactError, SectionKind, ShardsMeta};
pub use batch::{
    par_match, par_match_pooled, par_recover, BatchMatcher, BatchOptions, BatchRecovery,
    BatchTiming,
};
pub use mma::{Mma, MmaConfig, MmaScratch, MmaSession};
pub use pipeline::TrmmaPipeline;
pub use serve::{
    BusyCode, ClientError, Frame, FrameKind, RefuseCode, Reply, ServeClient, ServeConfig,
    ServeStats, Server, TenantLoad,
};
pub use snapshot::SessionSnapshot;
pub use stream::{
    FaultPlan, FinalizeReason, RecvEventError, RouterPolicy, RouterStats, SessionId, StreamEngine,
    StreamEvent, StreamOptions, StreamStats, WorkerTelemetry,
};
pub use trmma::{Trmma, TrmmaConfig};
