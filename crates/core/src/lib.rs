//! The paper's contribution: **MMA** map matching (§IV) and **TRMMA**
//! sparse trajectory recovery (§V).
//!
//! * [`mma::Mma`] — maps each GPS point of a sparse trajectory to a road
//!   segment by *classifying over a small candidate set* (top-`kc` nearest
//!   segments, Definition 8) instead of the whole network. Candidate
//!   embeddings combine Node2Vec-initialised id vectors with four
//!   directional cosine features (Eq. 1–2); point embeddings run the GPS
//!   sequence through a transformer and attend over the candidates
//!   (Eq. 3–8); matching is a per-candidate sigmoid score (Eq. 9) trained
//!   with binary cross-entropy (Eq. 10). Matched segments are stitched into
//!   a route by the shared statistical route planner (Algorithm 1).
//! * [`trmma::Trmma`] — recovers the missing points of a sparse trajectory
//!   *restricted to the segments of its route*: a DualFormer encodes the
//!   trajectory and route sequences and fuses them with cross-attention
//!   (Eq. 11–14); a GRU decoder sequentially classifies each missing
//!   point's segment among the route's segments — respecting route order
//!   (Eq. 17) — and regresses its position ratio (Eq. 18), trained with the
//!   multitask loss of Eq. 19–21 (Algorithm 2).
//! * [`pipeline::TrmmaPipeline`] — the end-to-end system (MMA feeding
//!   TRMMA) plus the ablation wirings of Table IV.
//! * [`batch`] — the batched, parallel inference engine: [`BatchMatcher`]
//!   and [`BatchRecovery`] fan a `&[Trajectory]` out across worker threads
//!   that share one immutable model and reuse per-worker scratch state,
//!   with output bitwise-identical to the sequential API.
//! * [`stream`] — the streaming session engine: [`StreamEngine`]
//!   multiplexes live `trmma_traj::OnlineMatcher` sessions (points arriving
//!   one at a time, interleaved across devices) over the same per-worker
//!   scratch model, with provisional per-point matches, stabilized-prefix
//!   watermarks, and idle-session finalize-on-timeout.

pub mod batch;
pub mod mma;
pub mod pipeline;
pub mod stream;
pub mod trmma;

pub use batch::{
    par_match, par_match_pooled, par_recover, BatchMatcher, BatchOptions, BatchRecovery,
    BatchTiming,
};
pub use mma::{Mma, MmaConfig, MmaScratch, MmaSession};
pub use pipeline::TrmmaPipeline;
pub use stream::{
    FinalizeReason, SessionId, StreamEngine, StreamEvent, StreamOptions, StreamStats,
};
pub use trmma::{Trmma, TrmmaConfig};
