//! The streaming session engine: thousands of live [`OnlineMatcher`]
//! sessions multiplexed across a worker pool behind a **load-aware
//! router**.
//!
//! The batch engine ([`crate::batch`]) answers "here are 10 000 complete
//! trajectories"; this module answers the production-shaped inverse — an
//! interleaved point stream from many concurrent devices, each device
//! wanting a provisional match per point and a final route when its trip
//! ends (or goes quiet). Large-scale matchers get their throughput from
//! keeping per-trajectory search state warm across updates (Fiedler et
//! al., 2019); here that state is the per-session decoder
//! ([`OnlineMatcher::Session`]) plus the per-worker scratch
//! (`SsspPool`/kNN heaps/autograd tape) every session on that worker
//! shares.
//!
//! **Architecture.** [`StreamEngine::new`] spawns `threads` workers, each
//! owning a bounded command queue, one scratch, and a session table.
//! [`StreamEngine::push`] routes a `(session id, point)` pair through the
//! engine-side router: a new session is *placed* on a worker by the
//! configured [`RouterPolicy`] and stays there (its points are decoded in
//! arrival order on its home worker) until it ends or is *migrated*.
//! Points of *different* sessions may arrive in any interleaving. Every
//! processed point emits a [`StreamEvent::Update`] (provisional match +
//! stabilized-prefix watermark + worker-side processing time) on the
//! engine's event channel; [`StreamEngine::finish`], idle eviction, and
//! [`StreamEngine::shutdown`] emit [`StreamEvent::Finalized`] with the
//! full offline-equivalent [`MatchResult`].
//!
//! **Routing.** The historical router was `id % threads` — stateless, but
//! under skewed session-id distributions it starves some workers while
//! others queue up (kept available as [`RouterPolicy::HashMod`] for
//! comparison). The default [`RouterPolicy::PowerOfTwo`] places each new
//! session by *power-of-two-choices*: sample two distinct workers, place
//! on the one with the lower instantaneous load (queue depth + live
//! sessions) — the classic balanced-allocations result that exponentially
//! tightens the load gap versus single-choice hashing. The router also
//! *migrates* sessions: when the load gap between the hottest and coolest
//! worker exceeds [`StreamOptions::rebalance_threshold`], the
//! least-recently-pushed session on the hot worker is moved to the cool
//! one — but only if its decoder is **watermark-stable**
//! ([`OnlineMatcher::session_stable`]): every pushed point's final match
//! is already pinned, so nothing provisional is in flight. Migration is
//! *correct* for any session (sessions are detachable by contract and
//! scratch never influences output — `tests/props_streaming.rs` forces
//! migrations at arbitrary points and asserts bitwise offline identity);
//! stability merely makes it cheap and honest. Per-worker telemetry
//! (queue-depth high-water mark, sessions placed/migrated, points
//! processed) is exposed through [`StreamEngine::router_stats`].
//!
//! **Placement is sticky.** A session's placement entry outlives the
//! session instance: explicit finish and idle eviction leave it in place,
//! so a reopened or reused session id keeps routing to the same worker
//! and its commands stay FIFO-serialized behind the previous trip's —
//! one id can never run live on two workers at once, matching the old
//! `id % threads` guarantee. Stale entries (a few dozen bytes each) are
//! reclaimed when a detach aimed at an ended session misses.
//!
//! **Migration protocol.** The router (engine side, under one lock) keeps
//! a placement table. To move session `s` from worker `A` to `B` it sends
//! `Detach(s)` down `A`'s command queue — FIFO ordering guarantees `A`
//! first decodes every point of `s` already queued — and marks `s` *in
//! transit*, buffering any arriving commands engine-side. `A` hands the
//! detached [`OnlineMatcher::Session`] back on a reply channel; on the
//! next engine call the router forwards it to `B` as `Attach`, flushes the
//! buffered commands behind it (order preserved), and re-points the
//! placement. Because `A` sends all of `s`'s updates before the detach
//! reply and `B` decodes only after the attach, per-session event order is
//! preserved end to end.
//!
//! **Lifecycle and guarantees.**
//!
//! * A session is created implicitly by the first point carrying its id
//!   and destroyed by whichever comes first: an explicit `finish`, going
//!   idle longer than [`StreamOptions::idle_timeout_s`]
//!   (finalize-on-timeout — the trip is assumed over), or engine
//!   shutdown. Each destruction finalizes the decoder and reports the
//!   [`FinalizeReason`].
//! * Within a session, points must advance in time: a point whose
//!   timestamp is not strictly newer than the session's last accepted
//!   point is counted in [`StreamStats::late_dropped`] and skipped (the
//!   incremental decoders cannot un-push evidence).
//! * Decoding is a pure function of (model, point sequence), so for any
//!   thread count, any cross-session interleaving, any router policy and
//!   any migration schedule, a session's finalized result is identical to
//!   the offline `match_trajectory` on the same points — property-tested
//!   in `tests/props_streaming.rs`.
//!
//! **Crash safety.** Worker loops run under `catch_unwind`; a panicking
//! worker is respawned in place and every session it held is rebuilt from
//! the engine-side *journal*: the router records each accepted command
//! (with a per-session monotone index), workers periodically ship
//! checkpoints of their decoder state back on the reply channel (every
//! [`StreamOptions::checkpoint_every`] accepted points), and recovery
//! restores the last checkpoint and replays the journaled tail — the
//! decode being a pure function of the point sequence makes the recovered
//! final result bitwise-identical to a fault-free run. Replayed points
//! re-emit their `Update` events (at-least-once delivery on the event
//! channel); `Finalized` results are deterministic either way. The same
//! snapshot machinery powers rolling restarts:
//! [`StreamEngine::drain_snapshots`] freezes every live session into a
//! versioned, checksummed [`SessionSnapshot`] and
//! [`StreamEngine::restore`] resumes them on a successor engine with zero
//! drops. A seeded [`FaultPlan`] can inject worker panics, command stalls
//! and reply delays for tests and the chaos benchmark; recovery counters
//! (`worker_restarts`, `sessions_recovered`, `points_replayed`) surface
//! in [`RouterStats`]. See DESIGN.md §5.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use trmma_traj::api::MatchResult;
use trmma_traj::online::{OnlineMatcher, OnlineUpdate};
use trmma_traj::snapshot::SnapshotError;
use trmma_traj::types::GpsPoint;

use crate::snapshot::SessionSnapshot;

/// Identifies one live trajectory (one device/trip) within the engine.
pub type SessionId = u64;

/// How [`StreamEngine`] assigns new sessions to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterPolicy {
    /// The legacy static router: worker `id % threads`. Stateless, but a
    /// skewed session-id distribution concentrates load on few workers.
    /// Never migrates.
    HashMod,
    /// Load-aware placement (the default): sample two distinct workers,
    /// place on the one with the lower queue depth + live-session count,
    /// and migrate watermark-stable sessions off hot workers when the
    /// load gap exceeds [`StreamOptions::rebalance_threshold`].
    PowerOfTwo,
}

impl RouterPolicy {
    /// Stable identifier used in benchmark artifacts
    /// (`BENCH_streaming.json`'s `router` column).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::HashMod => "hash_mod",
            Self::PowerOfTwo => "power_of_two",
        }
    }
}

/// Tuning knobs of the streaming engine.
///
/// Mirrors [`crate::BatchOptions`]: zero-config by default, an explicit
/// thread count via [`StreamOptions::with_threads`], and chainable builder
/// methods for the rest. The knobs cover the engine's four behaviours:
///
/// * **Backpressure** — `queue_capacity` bounds each worker's command
///   queue; [`StreamEngine::push`] blocks while the session's home worker
///   is that far behind, so a slow decoder throttles its producers instead
///   of buffering unboundedly.
/// * **Late-point drop** — within a session, points must advance in time;
///   a point whose timestamp is not strictly newer than the session's last
///   accepted point is counted in [`StreamStats::late_dropped`] and
///   skipped, never decoded.
/// * **Idle eviction** — `idle_timeout_s` finalizes sessions that go
///   quiet (the trip is assumed over); `0` disables eviction.
/// * **Routing** — `router_policy` selects session placement
///   ([`RouterPolicy::PowerOfTwo`] load-aware placement by default,
///   [`RouterPolicy::HashMod`] for the legacy `id % threads`), and
///   `rebalance_threshold` sets the hot/cool worker load gap that
///   triggers migration of watermark-stable sessions (`0` disables
///   migration).
///
/// ```
/// use trmma_core::{RouterPolicy, StreamOptions};
///
/// // Default: hardware threads, 30 s idle eviction, 1024-deep queues,
/// // load-aware routing with migration at a load gap of 16.
/// let opts = StreamOptions::default();
/// assert_eq!(opts.threads, 0); // 0 = available_parallelism
/// assert_eq!(opts.router, RouterPolicy::PowerOfTwo);
/// assert_eq!(opts.rebalance_threshold, 16);
///
/// // Builder style, mirroring `BatchOptions::with_threads`:
/// let opts = StreamOptions::with_threads(4)
///     .idle_timeout_s(5.0)            // evict sessions quiet for 5 s
///     .queue_capacity(256)            // push() blocks 256 commands deep
///     .router_policy(RouterPolicy::HashMod) // legacy id % threads
///     .rebalance_threshold(0);        // no migration
/// assert_eq!(opts.threads, 4);
/// assert_eq!(opts.effective_threads(), 4);
/// assert_eq!(opts.queue_capacity, 256);
/// assert_eq!(opts.router, RouterPolicy::HashMod);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamOptions {
    /// Worker threads; `0` uses [`std::thread::available_parallelism`].
    pub threads: usize,
    /// Sessions idle longer than this are finalized and evicted
    /// (finalize-on-timeout). `0` or non-finite disables eviction.
    pub idle_timeout_s: f64,
    /// Bound of each worker's command queue — the engine's backpressure:
    /// [`StreamEngine::push`] blocks while the target worker is this far
    /// behind.
    pub queue_capacity: usize,
    /// Session-placement policy (see [`RouterPolicy`]).
    pub router: RouterPolicy,
    /// Load gap (hottest minus coolest worker, in queued commands + live
    /// sessions) above which the router migrates one watermark-stable
    /// session per check off the hot worker. `0` disables automatic
    /// migration. Only meaningful under [`RouterPolicy::PowerOfTwo`].
    pub rebalance_threshold: usize,
    /// Accepted points between per-session checkpoints: every this many
    /// accepted pushes a worker ships a snapshot of the session's decoder
    /// state back to the router, which trims the session's replay journal
    /// to the commands after it. Smaller = less replay after a crash but
    /// more serialization on the hot path; `0` disables checkpointing
    /// (recovery then replays the whole trip from the journal).
    pub checkpoint_every: usize,
    /// Deadline for [`StreamEngine::push`]'s backpressure wait: if the
    /// target worker's queue stays full this long, push gives up and
    /// returns `false` instead of blocking indefinitely. Non-finite or
    /// `0` means wait forever (the pre-supervision behaviour).
    pub push_timeout_s: f64,
    /// How many worker panics the supervisor absorbs per worker before
    /// declaring that worker permanently failed (its sessions are
    /// recovered onto surviving workers; with no survivor left the engine
    /// reports [`RecvEventError::Disconnected`]).
    pub max_worker_restarts: u32,
}

impl Default for StreamOptions {
    fn default() -> Self {
        Self {
            threads: 0,
            idle_timeout_s: 30.0,
            queue_capacity: 1024,
            router: RouterPolicy::PowerOfTwo,
            rebalance_threshold: 16,
            checkpoint_every: 64,
            push_timeout_s: 30.0,
            max_worker_restarts: 64,
        }
    }
}

impl StreamOptions {
    /// An explicit thread count (`0` = auto), other knobs at their
    /// defaults — the same shape as [`crate::BatchOptions::with_threads`].
    ///
    /// ```
    /// use trmma_core::StreamOptions;
    /// assert_eq!(StreamOptions::with_threads(2).threads, 2);
    /// ```
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self { threads, ..Self::default() }
    }

    /// Sets the idle-eviction timeout in seconds (`0` disables eviction).
    #[must_use]
    pub fn idle_timeout_s(mut self, seconds: f64) -> Self {
        self.idle_timeout_s = seconds;
        self
    }

    /// Sets the per-worker command-queue bound (minimum 1).
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the session-placement policy.
    #[must_use]
    pub fn router_policy(mut self, policy: RouterPolicy) -> Self {
        self.router = policy;
        self
    }

    /// Sets the load gap that triggers migration (`0` disables it).
    #[must_use]
    pub fn rebalance_threshold(mut self, gap: usize) -> Self {
        self.rebalance_threshold = gap;
        self
    }

    /// Sets the per-session checkpoint cadence (`0` disables
    /// checkpointing; recovery then replays whole trips).
    #[must_use]
    pub fn checkpoint_every(mut self, accepted_points: usize) -> Self {
        self.checkpoint_every = accepted_points;
        self
    }

    /// Sets the backpressure deadline of [`StreamEngine::push`] (`0` or
    /// non-finite waits forever).
    #[must_use]
    pub fn push_timeout_s(mut self, seconds: f64) -> Self {
        self.push_timeout_s = seconds;
        self
    }

    /// Sets the per-worker panic budget of the supervisor.
    #[must_use]
    pub fn max_worker_restarts(mut self, restarts: u32) -> Self {
        self.max_worker_restarts = restarts;
        self
    }

    /// The worker count the engine will spawn.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        }
    }

    /// The idle timeout as a duration, if eviction is enabled.
    fn idle_timeout(&self) -> Option<Duration> {
        (self.idle_timeout_s.is_finite() && self.idle_timeout_s > 0.0)
            .then(|| Duration::from_secs_f64(self.idle_timeout_s))
    }
}

/// Why a session was finalized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinalizeReason {
    /// The caller ended the trip via [`StreamEngine::finish`].
    Explicit,
    /// The session went quiet longer than [`StreamOptions::idle_timeout_s`].
    IdleTimeout,
    /// The engine was shut down with the session still live.
    Shutdown,
}

/// What the engine reports back on its event channel.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// One GPS point was decoded into the session.
    Update {
        /// The session the point belonged to.
        session: SessionId,
        /// Zero-based index of the point within its session.
        seq: usize,
        /// Provisional match + stabilized-prefix watermark.
        update: OnlineUpdate,
        /// Worker-side seconds spent decoding this point (the per-point
        /// latency the streaming benchmark reports quantiles of).
        proc_s: f64,
    },
    /// A session ended; `result` is identical to the offline
    /// `match_trajectory` over the session's accepted points.
    Finalized {
        /// The session that ended.
        session: SessionId,
        /// What ended it.
        reason: FinalizeReason,
        /// Number of points the session decoded.
        points: usize,
        /// The final matched points and stitched route.
        result: MatchResult,
    },
}

/// Aggregate counters of one engine run (summed over workers at shutdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Points decoded (late-dropped points excluded).
    pub points: u64,
    /// Sessions implicitly opened by their first point.
    pub sessions_opened: u64,
    /// Sessions finalized by [`StreamEngine::finish`].
    pub finalized_explicit: u64,
    /// Sessions finalized by idle eviction.
    pub finalized_idle: u64,
    /// Sessions finalized live at shutdown.
    pub finalized_shutdown: u64,
    /// Points rejected for running backwards in time within their session.
    pub late_dropped: u64,
}

impl StreamStats {
    /// Sessions finalized for any reason.
    #[must_use]
    pub fn finalized(&self) -> u64 {
        self.finalized_explicit + self.finalized_idle + self.finalized_shutdown
    }

    fn merge(&mut self, other: StreamStats) {
        self.points += other.points;
        self.sessions_opened += other.sessions_opened;
        self.finalized_explicit += other.finalized_explicit;
        self.finalized_idle += other.finalized_idle;
        self.finalized_shutdown += other.finalized_shutdown;
        self.late_dropped += other.late_dropped;
    }
}

/// One worker's routing telemetry, snapshot by
/// [`StreamEngine::router_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerTelemetry {
    /// Commands queued to the worker and not yet processed.
    pub queue_depth: usize,
    /// High-water mark of `queue_depth` over the engine's lifetime — the
    /// imbalance signal the skewed-workload benchmark reports variance of.
    pub queue_depth_hwm: usize,
    /// Sessions currently live on the worker.
    pub live_sessions: usize,
    /// GPS points the worker has decoded.
    pub points: u64,
    /// New sessions the router placed on the worker.
    pub sessions_placed: u64,
    /// Sessions migrated onto the worker.
    pub migrated_in: u64,
    /// Sessions migrated off the worker.
    pub migrated_out: u64,
    /// Points the worker rejected for running backwards in time within
    /// their session (previously visible only in the shutdown-time
    /// [`StreamStats`]).
    pub late_dropped: u64,
    /// Sessions the worker finalized by idle eviction.
    pub idle_finalized: u64,
    /// Heap allocations the worker's scratch arenas absorbed on the
    /// per-point hot path (served from recycled buffers instead of the
    /// allocator) — see `trmma_traj::ScratchStats`.
    pub allocs_avoided: u64,
}

/// Snapshot of the router's per-worker load and migration counters.
///
/// Obtained live from [`StreamEngine::router_stats`]; all counters are
/// monotone over the engine's lifetime except `queue_depth` and
/// `live_sessions`, which are instantaneous.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterStats {
    /// The placement policy the engine runs.
    pub policy: RouterPolicy,
    /// Per-worker telemetry, indexed by worker.
    pub workers: Vec<WorkerTelemetry>,
    /// Migrations the router initiated (detach requests sent).
    pub migrations_requested: u64,
    /// Migrations that completed (session re-attached elsewhere).
    pub migrations_completed: u64,
    /// Migrations refused by the worker because the session was not
    /// watermark-stable at detach time.
    pub migrations_refused: u64,
    /// Detach requests that found no live session (it had already
    /// finished or been idle-evicted) — these reclaim the stale placement
    /// instead of migrating.
    pub migrations_missed: u64,
    /// Panicked workers the supervisor respawned in place.
    pub worker_restarts: u64,
    /// Sessions rebuilt after a worker panic (checkpoint restore + journal
    /// replay) plus sessions resumed through [`StreamEngine::restore`].
    pub sessions_recovered: u64,
    /// Journaled points re-sent to rebuild recovered sessions (each
    /// re-emits its `Update` — at-least-once delivery under faults).
    pub points_replayed: u64,
    /// Sessions whose state could not be recovered (every worker
    /// permanently failed). Zero unless the panic budget is exhausted.
    pub sessions_lost: u64,
    /// Wall-clock seconds the supervisor spent recovering from worker
    /// deaths: joining the corpse, respawning, restoring checkpoints and
    /// replaying journal tails. Divided by [`Self::worker_restarts`] this
    /// is the mean recovery latency per crash.
    pub recovery_time_s: f64,
}

fn variance(xs: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.collect();
    if v.is_empty() {
        return 0.0;
    }
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64
}

impl RouterStats {
    /// Population variance of the per-worker queue-depth high-water marks
    /// — the scalar the skewed-arrival benchmark compares across router
    /// policies (lower = better balanced).
    #[must_use]
    pub fn queue_depth_hwm_variance(&self) -> f64 {
        variance(self.workers.iter().map(|w| w.queue_depth_hwm as f64))
    }

    /// Population variance of per-worker decoded-point counts.
    #[must_use]
    pub fn points_variance(&self) -> f64 {
        variance(self.workers.iter().map(|w| w.points as f64))
    }

    /// Total sessions migrated between workers.
    #[must_use]
    pub fn migrated(&self) -> u64 {
        self.migrations_completed
    }

    /// Points dropped as late across all workers (live counterpart of
    /// [`StreamStats::late_dropped`]).
    #[must_use]
    pub fn late_dropped(&self) -> u64 {
        self.workers.iter().map(|w| w.late_dropped).sum()
    }

    /// Sessions finalized by idle eviction across all workers (live
    /// counterpart of [`StreamStats::finalized_idle`]).
    #[must_use]
    pub fn idle_finalized(&self) -> u64 {
        self.workers.iter().map(|w| w.idle_finalized).sum()
    }

    /// Heap allocations absorbed by per-worker scratch arenas across all
    /// workers (sum of [`WorkerTelemetry::allocs_avoided`]).
    #[must_use]
    pub fn allocs_avoided(&self) -> u64 {
        self.workers.iter().map(|w| w.allocs_avoided).sum()
    }
}

/// Per-worker load counters shared between the engine-side router (reads
/// for placement, writes `depth`/`depth_hwm`/`placed` on send) and the
/// worker (writes the rest as it processes commands).
#[derive(Default)]
struct WorkerLoad {
    depth: AtomicUsize,
    depth_hwm: AtomicUsize,
    live: AtomicUsize,
    points: AtomicU64,
    placed: AtomicU64,
    migrated_in: AtomicU64,
    migrated_out: AtomicU64,
    late_dropped: AtomicU64,
    idle_finalized: AtomicU64,
    allocs_avoided: AtomicU64,
}

impl WorkerLoad {
    /// The placement signal: commands not yet processed plus sessions the
    /// worker is already serving.
    fn load(&self) -> usize {
        self.depth.load(Ordering::Relaxed) + self.live.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> WorkerTelemetry {
        WorkerTelemetry {
            queue_depth: self.depth.load(Ordering::Relaxed),
            queue_depth_hwm: self.depth_hwm.load(Ordering::Relaxed),
            live_sessions: self.live.load(Ordering::Relaxed),
            points: self.points.load(Ordering::Relaxed),
            sessions_placed: self.placed.load(Ordering::Relaxed),
            migrated_in: self.migrated_in.load(Ordering::Relaxed),
            migrated_out: self.migrated_out.load(Ordering::Relaxed),
            late_dropped: self.late_dropped.load(Ordering::Relaxed),
            idle_finalized: self.idle_finalized.load(Ordering::Relaxed),
            allocs_avoided: self.allocs_avoided.load(Ordering::Relaxed),
        }
    }
}

/// Why the engine could not return an event within the deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvEventError {
    /// The engine is alive but emitted nothing before the deadline — a
    /// quiet stream, not a dead one.
    Timeout,
    /// Every worker has permanently failed (panic budget exhausted) and
    /// the event buffer is drained: no event can ever arrive again.
    Disconnected,
}

impl std::fmt::Display for RecvEventError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Timeout => write!(f, "no stream event within the deadline"),
            Self::Disconnected => write!(f, "stream engine has no live workers left"),
        }
    }
}

impl std::error::Error for RecvEventError {}

/// Panic payload of injected faults, so test harnesses can tell a
/// deliberately injected crash from a real matcher bug (see
/// [`FaultPlan::silence_injected_panics`]).
#[derive(Debug)]
pub struct InjectedPanic;

/// A seeded chaos schedule for tests and the `--chaos` benchmark sweep:
/// with probability `*_per_mille`/1000 per worker command, inject a worker
/// panic (the supervisor must recover every session), stall the command
/// (queue backpressure under the push deadline), or delay a migration
/// reply (exercising the bounded reply waits). All draws come from one
/// seeded SplitMix64 stream, so a given plan replays the same fault count
/// against the same workload shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault RNG.
    pub seed: u64,
    /// Per-command worker panic probability, in 1/1000.
    pub panic_per_mille: u32,
    /// Hard cap on injected panics over the engine's lifetime (keeps the
    /// run inside the supervisor's restart budget).
    pub max_panics: u32,
    /// Per-command stall probability, in 1/1000.
    pub stall_per_mille: u32,
    /// How long an injected stall sleeps.
    pub stall: Duration,
    /// Per-reply delay probability, in 1/1000.
    pub reply_delay_per_mille: u32,
    /// How long an injected reply delay sleeps.
    pub reply_delay: Duration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0x000C_4A05,
            panic_per_mille: 0,
            max_panics: u32::MAX,
            stall_per_mille: 0,
            stall: Duration::from_millis(2),
            reply_delay_per_mille: 0,
            reply_delay: Duration::from_millis(2),
        }
    }
}

impl FaultPlan {
    /// A plan that panics roughly once per `1000 / per_mille` commands,
    /// capped at `max_panics` total.
    #[must_use]
    pub fn panics(seed: u64, per_mille: u32, max_panics: u32) -> Self {
        Self { seed, panic_per_mille: per_mille, max_panics, ..Self::default() }
    }

    /// Installs a process-wide panic hook that swallows [`InjectedPanic`]
    /// payloads (keeping test and benchmark output readable) while
    /// delegating every real panic to the previous hook. Call once per
    /// process before running a faulty engine.
    pub fn silence_injected_panics() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                prev(info);
            }
        }));
    }
}

/// Shared mutable state of a [`FaultPlan`]: one seeded draw stream plus
/// the remaining panic budget, shared by all workers across respawns.
struct FaultState {
    plan: FaultPlan,
    rng: AtomicU64,
    panics_left: AtomicU32,
}

impl FaultState {
    fn new(plan: FaultPlan) -> Self {
        Self { plan, rng: AtomicU64::new(plan.seed), panics_left: AtomicU32::new(plan.max_panics) }
    }

    /// One per-mille draw from the shared SplitMix64 stream.
    fn draw(&self) -> u64 {
        let mut s = self.rng.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) % 1000
    }

    /// Runs the command-level faults: maybe stall, maybe panic. Called at
    /// the *top* of command processing, so an injected panic loses the
    /// command and everything behind it in the queue — exactly what the
    /// journal replay must make whole.
    fn on_command(&self) {
        if self.plan.stall_per_mille > 0 && self.draw() < u64::from(self.plan.stall_per_mille) {
            std::thread::sleep(self.plan.stall);
        }
        if self.plan.panic_per_mille > 0
            && self.draw() < u64::from(self.plan.panic_per_mille)
            && self
                .panics_left
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok()
        {
            std::panic::panic_any(InjectedPanic);
        }
    }

    /// Maybe delays a reply-channel send.
    fn on_reply(&self) {
        if self.plan.reply_delay_per_mille > 0
            && self.draw() < u64::from(self.plan.reply_delay_per_mille)
        {
            std::thread::sleep(self.plan.reply_delay);
        }
    }
}

enum Cmd<S> {
    Push {
        session: SessionId,
        point: GpsPoint,
        /// Journal index of this command (per-session, monotone across
        /// trips) — echoed back in checkpoint/ended replies so the router
        /// can trim the session's replay journal.
        idx: u64,
    },
    Finish {
        session: SessionId,
        idx: u64,
    },
    /// Hand the session's decoder state back to the router (migration or
    /// snapshot drain). With `stable_only`, refuse unless the session is
    /// watermark-stable.
    Detach {
        session: SessionId,
        stable_only: bool,
    },
    /// Adopt a session detached from another worker (`restored: false`)
    /// or rebuilt by crash recovery / [`StreamEngine::restore`]
    /// (`restored: true` — not counted as a migration).
    Attach {
        session: SessionId,
        live: Box<Live<S>>,
        restored: bool,
    },
}

/// What workers report back to the router (engine side).
enum Reply<S> {
    /// Detach succeeded; the state travels back through the router, which
    /// forwards it to the target worker.
    Detached { session: SessionId, live: Box<Live<S>> },
    /// Detach refused: the session was not watermark-stable.
    DetachRefused { session: SessionId },
    /// Detach found no such session (it was evicted or finished first).
    DetachMiss { session: SessionId },
    /// Periodic checkpoint: the session's serialized decoder state after
    /// processing command `idx`. The router keeps the latest and trims
    /// the session's journal to the commands after `idx`.
    Checkpoint { session: SessionId, idx: u64, seq: usize, last_t: f64, payload: Vec<u8> },
    /// The worker finalized a trip (explicit finish or idle eviction)
    /// whose last processed command was `idx`: the router drops the
    /// trip's checkpoint and journal prefix.
    Ended { session: SessionId, idx: u64 },
}

struct Live<S> {
    session: S,
    seq: usize,
    last_t: f64,
    last_seen: Instant,
    /// Journal index of the last Push/Finish processed for this session
    /// (echoed in checkpoint/ended replies).
    last_idx: u64,
    /// Accepted points since the last checkpoint.
    since_ckpt: usize,
}

impl<S> Live<S> {
    fn fresh(session: S) -> Self {
        Self {
            session,
            seq: 0,
            last_t: f64::NEG_INFINITY,
            last_seen: Instant::now(),
            last_idx: 0,
            since_ckpt: 0,
        }
    }
}

/// A command buffered engine-side while its session is in transit between
/// workers. The journal index was assigned when the command was accepted
/// (the command is already journaled — recovery replays the journal and
/// discards the pending buffer).
enum Pending {
    Point(u64, GpsPoint),
    Finish(u64),
}

/// One journaled command of a session.
#[derive(Clone)]
enum JCmd {
    Point(GpsPoint),
    Finish,
}

/// The engine-side crash-recovery record of one session id: the latest
/// worker checkpoint plus every accepted command after it. Invariant:
/// restoring `ckpt` (or a fresh session when `None`) and replaying `tail`
/// in order reconstructs the worker-held state exactly — late-point drops
/// and trip reopenings re-decide deterministically during replay.
struct SessionLog {
    /// Next journal index to assign (monotone per id, never reset).
    next_idx: u64,
    ckpt: Option<Ckpt>,
    /// `(idx, command)` for every accepted command after the checkpoint.
    tail: Vec<(u64, JCmd)>,
}

/// The payload + engine-side counters of one worker checkpoint.
struct Ckpt {
    /// Journal index of the last command folded into the payload.
    idx: u64,
    payload: Vec<u8>,
    seq: usize,
    last_t: f64,
}

impl SessionLog {
    fn new() -> Self {
        Self { next_idx: 0, ckpt: None, tail: Vec::new() }
    }

    /// Applies a checkpoint taken after command `ckpt.idx`.
    fn on_checkpoint(&mut self, ckpt: Ckpt) {
        self.tail.retain(|&(i, _)| i > ckpt.idx);
        self.ckpt = Some(ckpt);
    }

    /// Applies a trip end whose last processed command was `idx`;
    /// returns whether the log is now empty (safe to drop).
    fn on_ended(&mut self, idx: u64) -> bool {
        self.ckpt = None;
        self.tail.retain(|&(i, _)| i > idx);
        self.tail.is_empty()
    }
}

/// Where a session currently lives, from the router's point of view.
///
/// Placements are **sticky**: they outlive the session instance (explicit
/// finish, idle eviction), so a reused or reopened session id keeps
/// routing to the same worker — its commands stay FIFO-serialized behind
/// the previous trip's, exactly as under the old `id % threads` router.
/// (Removing the entry eagerly would race the worker: a finalize or
/// eviction on the worker with commands still in flight could let one
/// session id run live on two workers at once.) A stale entry costs a few
/// dozen bytes; finished entries are pruned once their worker's queue has
/// drained (the Finish provably processed — see
/// `StreamEngine::prune_finished`), and evicted-but-never-finished ones
/// are reclaimed when a detach aimed at them misses.
enum Placement {
    /// Decoding on `worker`; `last_push` drives the migrate-the-idlest
    /// heuristic. `finished` means a Finish was the last command forwarded
    /// — the entry is only kept to serialize a possible id reuse, and is
    /// safe to prune once the worker's queue has drained.
    On { worker: usize, last_push: Instant, finished: bool },
    /// Detach requested `from` its old worker; commands buffer in
    /// `pending` (in order, capped at the queue capacity — push blocks
    /// past that) until the state lands on `to` (or the detach is refused
    /// and the session stays on `from`).
    InTransit { from: usize, to: usize, pending: Vec<Pending> },
}

/// Engine-side router state, behind the engine's mutex. The worker
/// channels and join handles live here too (not on the engine) so the
/// supervisor can swap them atomically with the routing state when it
/// respawns a panicked worker.
struct Router<S> {
    txs: Vec<SyncSender<Cmd<S>>>,
    /// `None` while a dead worker is being joined/respawned.
    handles: Vec<Option<JoinHandle<(StreamStats, bool)>>>,
    /// Workers that exhausted the restart budget and stay down.
    failed: Vec<bool>,
    /// Stats banked from joined (panicked) worker incarnations.
    banked: StreamStats,
    place: HashMap<SessionId, Placement>,
    /// Per-session crash-recovery journals (checkpoint + command tail).
    logs: HashMap<SessionId, SessionLog>,
    replies: Receiver<Reply<S>>,
    /// SplitMix64 state for power-of-two-choices sampling (deterministic;
    /// placement affects only scheduling, never output).
    rng: u64,
    pushes: u64,
    migrations_requested: u64,
    migrations_completed: u64,
    migrations_refused: u64,
    migrations_missed: u64,
    worker_restarts: u64,
    sessions_recovered: u64,
    points_replayed: u64,
    sessions_lost: u64,
    recovery_time_s: f64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn finalize_one<M: OnlineMatcher>(
    matcher: &M,
    scratch: &mut M::Scratch,
    id: SessionId,
    live: Live<M::Session>,
    reason: FinalizeReason,
    events: &Sender<StreamEvent>,
) {
    let result = matcher.finalize(scratch, live.session);
    let _ = events.send(StreamEvent::Finalized { session: id, reason, points: live.seq, result });
}

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn worker_loop<M: OnlineMatcher>(
    matcher: &M,
    rx: &Receiver<Cmd<M::Session>>,
    events: &Sender<StreamEvent>,
    replies: &Sender<Reply<M::Session>>,
    load: &WorkerLoad,
    idle: Option<Duration>,
    checkpoint_every: usize,
    faults: Option<&FaultState>,
    stats: &mut StreamStats,
) {
    let mut scratch = matcher.make_scratch();
    let mut live: HashMap<SessionId, Live<M::Session>> = HashMap::new();
    // The tick bounds both how long a quiet worker sleeps between idle
    // sweeps and how often a busy one pays the O(live sessions) sweep.
    let tick = idle.map_or(Duration::from_millis(500), |d| {
        (d / 4).clamp(Duration::from_millis(5), Duration::from_millis(500))
    });
    let mut last_sweep = Instant::now();
    loop {
        match rx.recv_timeout(tick) {
            Ok(cmd) => {
                // Injected faults fire *before* any state change: a lost
                // command is journaled-but-unapplied, which is exactly
                // what the supervisor's replay reconstructs.
                if let Some(f) = faults {
                    f.on_command();
                }
                match cmd {
                    Cmd::Push { session, point, idx } => {
                        let entry = live.entry(session).or_insert_with(|| {
                            stats.sessions_opened += 1;
                            load.live.fetch_add(1, Ordering::Relaxed);
                            Live::fresh(matcher.begin_session())
                        });
                        entry.last_seen = Instant::now();
                        entry.last_idx = idx;
                        if point.t <= entry.last_t {
                            stats.late_dropped += 1;
                            load.late_dropped.fetch_add(1, Ordering::Relaxed);
                        } else {
                            let t0 = Instant::now();
                            let update =
                                matcher.push_point(&mut scratch, &mut entry.session, point);
                            let proc_s = t0.elapsed().as_secs_f64();
                            entry.last_t = point.t;
                            let seq = entry.seq;
                            entry.seq += 1;
                            stats.points += 1;
                            load.points.fetch_add(1, Ordering::Relaxed);
                            let _ =
                                events.send(StreamEvent::Update { session, seq, update, proc_s });
                            entry.since_ckpt += 1;
                            if entry.since_ckpt >= checkpoint_every {
                                entry.since_ckpt = 0;
                                let mut payload = Vec::new();
                                matcher.snapshot_session(&entry.session, &mut payload);
                                if let Some(f) = faults {
                                    f.on_reply();
                                }
                                let _ = replies.send(Reply::Checkpoint {
                                    session,
                                    idx,
                                    seq: entry.seq,
                                    last_t: entry.last_t,
                                    payload,
                                });
                            }
                        }
                    }
                    Cmd::Finish { session, idx } => {
                        if let Some(l) = live.remove(&session) {
                            load.live.fetch_sub(1, Ordering::Relaxed);
                            finalize_one(
                                matcher,
                                &mut scratch,
                                session,
                                l,
                                FinalizeReason::Explicit,
                                events,
                            );
                            stats.finalized_explicit += 1;
                        }
                        // Acknowledge even a no-op finish (trip already
                        // evicted): the router trims its journal on this.
                        if let Some(f) = faults {
                            f.on_reply();
                        }
                        let _ = replies.send(Reply::Ended { session, idx });
                    }
                    Cmd::Detach { session, stable_only } => {
                        if let Some(f) = faults {
                            f.on_reply();
                        }
                        match live.remove(&session) {
                            None => {
                                let _ = replies.send(Reply::DetachMiss { session });
                            }
                            Some(l) if stable_only && !matcher.session_stable(&l.session) => {
                                live.insert(session, l);
                                let _ = replies.send(Reply::DetachRefused { session });
                            }
                            Some(l) => {
                                load.live.fetch_sub(1, Ordering::Relaxed);
                                load.migrated_out.fetch_add(1, Ordering::Relaxed);
                                let _ =
                                    replies.send(Reply::Detached { session, live: Box::new(l) });
                            }
                        }
                    }
                    Cmd::Attach { session, live: l, restored } => {
                        load.live.fetch_add(1, Ordering::Relaxed);
                        if !restored {
                            load.migrated_in.fetch_add(1, Ordering::Relaxed);
                        }
                        let mut l = *l;
                        l.last_seen = Instant::now();
                        live.insert(session, l);
                    }
                }
                // Decrement *after* processing: an observer then always
                // sees the command in `depth` or its session in `live`,
                // never a spurious zero load in between.
                load.depth.fetch_sub(1, Ordering::Relaxed);
                // Publish the scratch's monotone counter as a plain store:
                // a respawned worker starts a fresh scratch, and the
                // telemetry should report the live scratch's view.
                load.allocs_avoided
                    .store(M::scratch_stats(&scratch).allocs_avoided, Ordering::Relaxed);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        if let Some(idle) = idle {
            if last_sweep.elapsed() >= tick {
                last_sweep = Instant::now();
                let now = Instant::now();
                let expired: Vec<SessionId> = live
                    .iter()
                    .filter(|(_, l)| now.duration_since(l.last_seen) >= idle)
                    .map(|(&id, _)| id)
                    .collect();
                for id in expired {
                    let l = live.remove(&id).expect("expired session is live");
                    load.live.fetch_sub(1, Ordering::Relaxed);
                    load.idle_finalized.fetch_add(1, Ordering::Relaxed);
                    let last_idx = l.last_idx;
                    finalize_one(matcher, &mut scratch, id, l, FinalizeReason::IdleTimeout, events);
                    stats.finalized_idle += 1;
                    let _ = replies.send(Reply::Ended { session: id, idx: last_idx });
                    // The router is NOT told to re-place: its sticky
                    // placement keeps routing this id here, so a later
                    // point (a new trip) reopens on this worker instead
                    // of racing onto another one.
                }
            }
        }
    }
    // Engine dropped its senders: flush every remaining session.
    for (id, l) in live.drain() {
        load.live.fetch_sub(1, Ordering::Relaxed);
        finalize_one(matcher, &mut scratch, id, l, FinalizeReason::Shutdown, events);
        stats.finalized_shutdown += 1;
    }
}

/// The next backpressure sleep of [`StreamEngine::push`] as of `now`:
/// `backoff` clamped to the time remaining before `deadline`, or `None`
/// when the deadline has already passed. The clamp is what pins the
/// observable timeout to `push_timeout_s`: without it, a retry landing
/// just before the deadline would re-sleep a full (up to 5 ms) backoff
/// step and overshoot the configured bound.
fn clamped_backoff(deadline: Option<Instant>, now: Instant, backoff: Duration) -> Option<Duration> {
    match deadline {
        None => Some(backoff),
        Some(d) => {
            let remaining = d.checked_duration_since(now)?;
            if remaining.is_zero() {
                None
            } else {
                Some(backoff.min(remaining))
            }
        }
    }
}

/// The multiplexer; see module docs for the architecture and guarantees.
pub struct StreamEngine<M: OnlineMatcher + 'static> {
    matcher: Arc<M>,
    events: Receiver<StreamEvent>,
    /// Kept so respawned workers can clone the event sender (and so the
    /// event channel outlives a full worker wipe-out).
    etx: Sender<StreamEvent>,
    /// Same, for the reply channel.
    rtx: Sender<Reply<M::Session>>,
    loads: Arc<Vec<WorkerLoad>>,
    router: Mutex<Router<M::Session>>,
    policy: RouterPolicy,
    rebalance_gap: usize,
    queue_cap: usize,
    idle: Option<Duration>,
    checkpoint_every: usize,
    push_timeout: Option<Duration>,
    max_restarts: u32,
    faults: Option<Arc<FaultState>>,
}

impl<M: OnlineMatcher + 'static> StreamEngine<M> {
    /// Spawns the worker pool around a shared matcher.
    #[must_use]
    pub fn new(matcher: Arc<M>, opts: StreamOptions) -> Self {
        Self::build(matcher, opts, None)
    }

    /// Like [`StreamEngine::new`], but with an active fault-injection
    /// plan: workers panic/stall and replies lag per `plan`, and the
    /// supervisor is expected to keep every session whole regardless.
    /// Test and benchmark harness only — a production engine runs
    /// fault-free.
    #[must_use]
    pub fn with_faults(matcher: Arc<M>, opts: StreamOptions, plan: FaultPlan) -> Self {
        Self::build(matcher, opts, Some(Arc::new(FaultState::new(plan))))
    }

    fn build(matcher: Arc<M>, opts: StreamOptions, faults: Option<Arc<FaultState>>) -> Self {
        let threads = opts.effective_threads().max(1);
        let idle = opts.idle_timeout();
        let checkpoint_every = opts.checkpoint_every.max(1);
        let queue_cap = opts.queue_capacity.max(1);
        let push_timeout = (opts.push_timeout_s > 0.0 && opts.push_timeout_s.is_finite())
            .then(|| Duration::from_secs_f64(opts.push_timeout_s));
        let (etx, events) = channel();
        let (rtx, replies) = channel();
        let loads: Arc<Vec<WorkerLoad>> =
            Arc::new((0..threads).map(|_| WorkerLoad::default()).collect());
        let mut txs = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let (tx, handle) = Self::spawn_worker(
                &matcher,
                w,
                queue_cap,
                &etx,
                &rtx,
                &loads,
                idle,
                checkpoint_every,
                faults.clone(),
            );
            txs.push(tx);
            handles.push(Some(handle));
        }
        let router = Mutex::new(Router {
            txs,
            handles,
            failed: vec![false; threads],
            banked: StreamStats::default(),
            place: HashMap::new(),
            logs: HashMap::new(),
            replies,
            rng: 0x7272_6D6D_615F_7232, // arbitrary fixed seed: "trmma_r2"
            pushes: 0,
            migrations_requested: 0,
            migrations_completed: 0,
            migrations_refused: 0,
            migrations_missed: 0,
            worker_restarts: 0,
            sessions_recovered: 0,
            points_replayed: 0,
            sessions_lost: 0,
            recovery_time_s: 0.0,
        });
        Self {
            matcher,
            events,
            etx,
            rtx,
            loads,
            router,
            policy: opts.router,
            rebalance_gap: opts.rebalance_threshold,
            queue_cap,
            idle,
            checkpoint_every,
            push_timeout,
            max_restarts: opts.max_worker_restarts,
            faults,
        }
    }

    /// Spawns one worker thread at slot `w`: a fresh bounded command
    /// channel plus a panic-trapping wrapper that returns the worker's
    /// stats and whether it died by panic.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn spawn_worker(
        matcher: &Arc<M>,
        w: usize,
        queue_cap: usize,
        etx: &Sender<StreamEvent>,
        rtx: &Sender<Reply<M::Session>>,
        loads: &Arc<Vec<WorkerLoad>>,
        idle: Option<Duration>,
        checkpoint_every: usize,
        faults: Option<Arc<FaultState>>,
    ) -> (SyncSender<Cmd<M::Session>>, JoinHandle<(StreamStats, bool)>) {
        let (tx, rx) = sync_channel(queue_cap);
        let m = matcher.clone();
        let e = etx.clone();
        let r = rtx.clone();
        let ld = loads.clone();
        let handle = std::thread::spawn(move || {
            let mut stats = StreamStats::default();
            let panicked = catch_unwind(AssertUnwindSafe(|| {
                worker_loop(
                    &*m,
                    &rx,
                    &e,
                    &r,
                    &ld[w],
                    idle,
                    checkpoint_every,
                    faults.as_deref(),
                    &mut stats,
                );
            }))
            .is_err();
            (stats, panicked)
        });
        (tx, handle)
    }

    /// The shared model.
    #[must_use]
    pub fn matcher(&self) -> &M {
        &self.matcher
    }

    /// Worker count (including permanently failed slots).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.loads.len()
    }

    /// Sends a command to `worker`, accounting queue depth; blocks while
    /// the worker's queue is full. Used for the rare, small command
    /// bursts of the migration/finish paths — the per-point hot path
    /// ([`StreamEngine::push`]) uses a lock-released `try_send` loop
    /// instead, so only these bounded sends ever hold the router lock
    /// across a wait. Returns `false` if the worker is gone (it panicked
    /// — shutdown will surface that).
    fn send_to(&self, router: &Router<M::Session>, worker: usize, cmd: Cmd<M::Session>) -> bool {
        let load = &self.loads[worker];
        let depth = load.depth.fetch_add(1, Ordering::Relaxed) + 1;
        load.depth_hwm.fetch_max(depth, Ordering::Relaxed);
        if router.txs[worker].send(cmd).is_ok() {
            true
        } else {
            load.depth.fetch_sub(1, Ordering::Relaxed);
            false
        }
    }

    /// Picks the worker for a brand-new session under the engine's policy,
    /// skipping permanently failed slots. Callers guarantee at least one
    /// worker is alive.
    #[allow(clippy::cast_possible_truncation)]
    fn place_new(&self, router: &mut Router<M::Session>, session: SessionId) -> usize {
        let alive: Vec<usize> = (0..router.txs.len()).filter(|&w| !router.failed[w]).collect();
        let n = alive.len();
        debug_assert!(n > 0, "place_new requires a live worker");
        let w = match self.policy {
            RouterPolicy::HashMod => {
                // Preserve id % threads when the full pool is alive; fold
                // onto the survivors otherwise.
                let w0 = (session % router.txs.len() as u64) as usize;
                if router.failed[w0] {
                    alive[(session % n as u64) as usize]
                } else {
                    w0
                }
            }
            RouterPolicy::PowerOfTwo => {
                if n == 1 {
                    alive[0]
                } else {
                    // Two distinct uniform picks; keep the less loaded.
                    let ai = (splitmix64(&mut router.rng) % n as u64) as usize;
                    let mut bi = (splitmix64(&mut router.rng) % (n - 1) as u64) as usize;
                    if bi >= ai {
                        bi += 1;
                    }
                    let (a, b) = (alive[ai], alive[bi]);
                    if self.loads[b].load() < self.loads[a].load() {
                        b
                    } else {
                        a
                    }
                }
            }
        };
        self.loads[w].placed.fetch_add(1, Ordering::Relaxed);
        w
    }

    /// The least-loaded worker that has not permanently failed.
    fn pick_survivor(&self, router: &Router<M::Session>) -> Option<usize> {
        (0..router.txs.len()).filter(|&w| !router.failed[w]).min_by_key(|&w| self.loads[w].load())
    }

    /// Forwards the commands buffered while a session was in transit and
    /// re-points its (sticky) placement at `worker`. With `gc_if_empty`
    /// and nothing buffered, the placement is dropped instead — the one
    /// place stale entries of ended sessions are reclaimed.
    fn settle(
        &self,
        router: &mut Router<M::Session>,
        session: SessionId,
        worker: usize,
        pending: Vec<Pending>,
        gc_if_empty: bool,
    ) {
        if gc_if_empty && pending.is_empty() {
            router.place.remove(&session);
            return;
        }
        let finished = matches!(pending.last(), Some(Pending::Finish(_)));
        for cmd in pending {
            match cmd {
                Pending::Point(idx, point) => {
                    self.send_to(router, worker, Cmd::Push { session, point, idx });
                }
                Pending::Finish(idx) => {
                    self.send_to(router, worker, Cmd::Finish { session, idx });
                }
            }
        }
        router.place.insert(session, Placement::On { worker, last_push: Instant::now(), finished });
    }

    /// Takes `session` out of transit, or `None` if it is not in transit —
    /// a reply referring to it is stale (e.g. crash recovery already
    /// re-homed the id) and must be dropped without touching the placement.
    fn take_transit(
        router: &mut Router<M::Session>,
        session: SessionId,
    ) -> Option<(usize, usize, Vec<Pending>)> {
        match router.place.get_mut(&session) {
            Some(Placement::InTransit { from, to, pending }) => {
                let out = (*from, *to, std::mem::take(pending));
                router.place.remove(&session);
                Some(out)
            }
            _ => None,
        }
    }

    /// Applies one worker reply to the routing table.
    fn apply_reply(&self, router: &mut Router<M::Session>, reply: Reply<M::Session>) {
        match reply {
            Reply::Checkpoint { session, idx, seq, last_t, payload } => {
                // A checkpoint for an untracked session means the trip
                // already ended and its journal was dropped — ignore.
                if let Some(log) = router.logs.get_mut(&session) {
                    log.on_checkpoint(Ckpt { idx, payload, seq, last_t });
                }
            }
            Reply::Ended { session, idx } => {
                if let Some(log) = router.logs.get_mut(&session) {
                    if log.on_ended(idx) {
                        router.logs.remove(&session);
                    }
                }
            }
            Reply::Detached { session, live } => {
                let Some((_, to, pending)) = Self::take_transit(router, session) else {
                    // Stale: the state was already rebuilt elsewhere (crash
                    // recovery) or the router never tracked the detach.
                    return;
                };
                router.migrations_completed += 1;
                // If the target slot died permanently while the state was
                // in flight, land on a survivor instead.
                let to = if router.failed[to] {
                    match self.pick_survivor(router) {
                        Some(w) => w,
                        None => {
                            router.sessions_lost += 1;
                            router.logs.remove(&session);
                            return;
                        }
                    }
                } else {
                    to
                };
                self.send_to(router, to, Cmd::Attach { session, live, restored: false });
                self.settle(router, session, to, pending, false);
            }
            Reply::DetachRefused { session } => {
                let Some((from, _, pending)) = Self::take_transit(router, session) else {
                    return;
                };
                router.migrations_refused += 1;
                // The session never moved: flush the buffer back to its
                // old worker and keep the placement there.
                self.settle(router, session, from, pending, false);
            }
            Reply::DetachMiss { session } => {
                let Some((_, to, pending)) = Self::take_transit(router, session) else {
                    return;
                };
                router.migrations_missed += 1;
                // The instance ended (evicted/finished) before the detach
                // arrived. With nothing buffered this reclaims the stale
                // placement; buffered commands open a fresh trip on the
                // target instead.
                let to = if router.failed[to] {
                    match self.pick_survivor(router) {
                        Some(w) => w,
                        None => {
                            router.place.remove(&session);
                            return;
                        }
                    }
                } else {
                    to
                };
                self.settle(router, session, to, pending, true);
            }
        }
    }

    /// Drains worker replies without blocking, then runs one supervision
    /// pass (respawn + recovery of any worker that died since the last
    /// call). Every engine entry point funnels through here, so a panicked
    /// worker is healed by whichever call touches the engine next.
    fn drain_replies(&self, router: &mut Router<M::Session>) {
        loop {
            let Ok(reply) = router.replies.try_recv() else { break };
            self.apply_reply(router, reply);
        }
        self.supervise(router);
    }

    /// Detects dead workers, banks their stats, respawns them in place
    /// (within the restart budget — past it the slot is marked failed) and
    /// rebuilds every session they held from its latest checkpoint plus
    /// the journaled command tail, replayed in order with the original
    /// journal indices. Replayed points re-emit their `Update` events:
    /// delivery under faults is at-least-once, but the rebuilt decoder
    /// state — and therefore every final match — is bitwise-identical to a
    /// fault-free run.
    fn supervise(&self, router: &mut Router<M::Session>) {
        let dead: Vec<usize> = (0..router.handles.len())
            .filter(|&w| router.handles[w].as_ref().is_some_and(JoinHandle::is_finished))
            .collect();
        if dead.is_empty() {
            return;
        }
        let recovery_started = Instant::now();
        for &w in &dead {
            let handle = router.handles[w].take().expect("dead worker has a handle");
            let (stats, _panicked) = handle.join().unwrap_or((StreamStats::default(), true));
            router.banked.merge(stats);
        }
        // Everything the dead workers sent happened-before the joins
        // above: fold in their last checkpoints/acks before deciding what
        // needs rebuilding.
        loop {
            let Ok(reply) = router.replies.try_recv() else { break };
            self.apply_reply(router, reply);
        }
        for &w in &dead {
            // The dead incarnation's queue and live set died with it.
            self.loads[w].depth.store(0, Ordering::Relaxed);
            self.loads[w].live.store(0, Ordering::Relaxed);
            if router.worker_restarts < u64::from(self.max_restarts) {
                router.worker_restarts += 1;
                let (tx, handle) = Self::spawn_worker(
                    &self.matcher,
                    w,
                    self.queue_cap,
                    &self.etx,
                    &self.rtx,
                    &self.loads,
                    self.idle,
                    self.checkpoint_every,
                    self.faults.clone(),
                );
                router.txs[w] = tx;
                router.handles[w] = Some(handle);
            } else {
                router.failed[w] = true;
            }
        }
        // Re-home every session the dead workers held. In-transit sessions
        // whose *source* died lost their state (it was in the worker or in
        // a dropped command): rebuild on the migration target and discard
        // the pending buffer — every pending command is already journaled.
        // (A dead *target* needs no action here: the detached state is
        // still safe on the source or in the reply channel, and the attach
        // lands on the respawned slot — or is redirected by `apply_reply`
        // if the slot failed permanently.)
        let victims: Vec<(SessionId, usize)> = router
            .place
            .iter()
            .filter_map(|(&sid, p)| match p {
                Placement::On { worker, .. } if dead.contains(worker) => Some((sid, *worker)),
                Placement::InTransit { from, to, .. } if dead.contains(from) => Some((sid, *to)),
                _ => None,
            })
            .collect();
        for (sid, target) in victims {
            // A placement with nothing journaled is sticky routing state
            // for a trip that already ended cleanly (its `Finalized` event
            // was delivered before `Ended` trimmed the journal). Reclaim
            // it here — before the survivor check — so a total worker
            // failure never double-counts a finished trip as lost.
            let stale = match router.logs.get(&sid) {
                None => true,
                Some(log) => log.ckpt.is_none() && log.tail.is_empty(),
            };
            if stale {
                router.place.remove(&sid);
                router.logs.remove(&sid);
                continue;
            }
            let target =
                if router.failed[target] { self.pick_survivor(router) } else { Some(target) };
            let ok = target.is_some_and(|t| self.recover_session(router, sid, t));
            if !ok {
                router.sessions_lost += 1;
                router.place.remove(&sid);
                router.logs.remove(&sid);
            }
        }
        router.recovery_time_s += recovery_started.elapsed().as_secs_f64();
    }

    /// Rebuilds one session onto `target`: restore its latest checkpoint
    /// (or begin fresh if none), attach, then replay the journal tail with
    /// the original indices. Returns `false` only if the checkpoint fails
    /// to restore (the caller counts the session lost).
    fn recover_session(
        &self,
        router: &mut Router<M::Session>,
        sid: SessionId,
        target: usize,
    ) -> bool {
        let Some(log) = router.logs.get(&sid) else {
            // Nothing journaled: the trip had fully ended — the placement
            // was only sticky routing state.
            router.place.remove(&sid);
            return true;
        };
        if log.ckpt.is_none() && log.tail.is_empty() {
            router.place.remove(&sid);
            router.logs.remove(&sid);
            return true;
        }
        let live = match &log.ckpt {
            Some(c) => match self.matcher.restore_session(&c.payload) {
                Ok(s) => Live {
                    session: s,
                    seq: c.seq,
                    last_t: c.last_t,
                    last_seen: Instant::now(),
                    last_idx: c.idx,
                    since_ckpt: 0,
                },
                Err(_) => return false,
            },
            None => Live::fresh(self.matcher.begin_session()),
        };
        let tail = log.tail.clone();
        self.send_to(
            router,
            target,
            Cmd::Attach { session: sid, live: Box::new(live), restored: true },
        );
        let mut finished = false;
        for (idx, cmd) in tail {
            match cmd {
                JCmd::Point(point) => {
                    finished = false;
                    router.points_replayed += 1;
                    self.send_to(router, target, Cmd::Push { session: sid, point, idx });
                }
                JCmd::Finish => {
                    finished = true;
                    self.send_to(router, target, Cmd::Finish { session: sid, idx });
                }
            }
        }
        router.sessions_recovered += 1;
        router
            .place
            .insert(sid, Placement::On { worker: target, last_push: Instant::now(), finished });
        true
    }

    /// Starts moving `session` to worker `to`; `stable_only` lets the
    /// worker refuse unless the session is watermark-stable.
    fn start_migration(
        &self,
        router: &mut Router<M::Session>,
        session: SessionId,
        to: usize,
        stable_only: bool,
    ) -> bool {
        if to >= router.txs.len() || router.failed[to] {
            return false;
        }
        let from = match router.place.get(&session) {
            Some(&Placement::On { worker, .. }) if worker != to => worker,
            _ => return false,
        };
        if !self.send_to(router, from, Cmd::Detach { session, stable_only }) {
            return false;
        }
        router.migrations_requested += 1;
        router.place.insert(session, Placement::InTransit { from, to, pending: Vec::new() });
        true
    }

    /// One rebalance check: if the hottest worker is more than the
    /// configured gap ahead of the coolest, migrate its least-recently
    /// pushed session there (watermark-stable sessions only).
    fn maybe_rebalance(&self, router: &mut Router<M::Session>) {
        if self.rebalance_gap == 0 || router.txs.len() < 2 {
            return;
        }
        let loads: Vec<usize> = self.loads.iter().map(WorkerLoad::load).collect();
        let alive = || (0..loads.len()).filter(|&w| !router.failed[w]);
        let Some(hot) = alive().max_by_key(|&w| loads[w]) else { return };
        let Some(cool) = alive().min_by_key(|&w| loads[w]) else { return };
        if loads[hot] - loads[cool] <= self.rebalance_gap {
            return;
        }
        let candidate = router
            .place
            .iter()
            .filter_map(|(&sid, p)| match p {
                Placement::On { worker, last_push, finished: false } if *worker == hot => {
                    Some((sid, *last_push))
                }
                _ => None,
            })
            .min_by_key(|&(_, t)| t)
            .map(|(sid, _)| sid);
        if let Some(sid) = candidate {
            self.start_migration(router, sid, cool, true);
        }
    }

    /// Feeds the next point of `session` (opening it if unseen), blocking
    /// (with exponential backoff, up to [`StreamOptions::push_timeout_s`])
    /// while the session's home worker queue is full. A worker panic midway
    /// is healed in place: the supervisor respawns it and this call
    /// retries. Returns `false` only when the deadline expires or every
    /// worker has permanently failed.
    pub fn push(&self, session: SessionId, point: GpsPoint) -> bool {
        // The routing decision needs the router lock, but the wait for a
        // full worker queue must not: a blocking send under the lock
        // would stall every other producer (and finish/migrate/stats) on
        // one hot worker. So: decide and try_send under the lock; on a
        // full queue, release the lock, wait briefly, re-resolve — the
        // placement may legitimately have moved (migration) meanwhile.
        let deadline = self.push_timeout.map(|d| Instant::now() + d);
        let mut backoff = Duration::from_micros(20);
        loop {
            let mut router = self.router.lock().expect("router poisoned");
            self.drain_replies(&mut router);
            if router.failed.iter().all(|&f| f) {
                return false;
            }
            let r = &mut *router;
            let worker = match r.place.get_mut(&session) {
                Some(Placement::InTransit { pending, .. }) => {
                    // The transit buffer honours the same bound as a
                    // worker queue: past it, push blocks (lock released)
                    // until the migration resolves — each retry's
                    // drain_replies drives that resolution.
                    if pending.len() >= self.queue_cap {
                        drop(router);
                        let Some(sleep) = clamped_backoff(deadline, Instant::now(), backoff) else {
                            return false;
                        };
                        std::thread::sleep(sleep);
                        backoff = (backoff * 2).min(Duration::from_millis(5));
                        continue;
                    }
                    // Accepted into the transit buffer: journal now — on a
                    // crash the journal is replayed and the buffer
                    // discarded, so buffered commands must be a subset of
                    // the journal from the moment they exist.
                    let log = r.logs.entry(session).or_insert_with(SessionLog::new);
                    let idx = log.next_idx;
                    log.next_idx += 1;
                    log.tail.push((idx, JCmd::Point(point)));
                    pending.push(Pending::Point(idx, point));
                    self.after_push(r);
                    return true;
                }
                Some(Placement::On { worker, last_push, finished }) => {
                    *last_push = Instant::now();
                    *finished = false;
                    *worker
                }
                None => {
                    let w = self.place_new(r, session);
                    r.place.insert(
                        session,
                        Placement::On { worker: w, last_push: Instant::now(), finished: false },
                    );
                    w
                }
            };
            let load = &self.loads[worker];
            let depth = load.depth.fetch_add(1, Ordering::Relaxed) + 1;
            load.depth_hwm.fetch_max(depth, Ordering::Relaxed);
            // Peek the journal index; commit the entry only once the send
            // is accepted (a retry must not journal the point twice).
            let idx = r.logs.get(&session).map_or(0, |l| l.next_idx);
            match r.txs[worker].try_send(Cmd::Push { session, point, idx }) {
                Ok(()) => {
                    let log = r.logs.entry(session).or_insert_with(SessionLog::new);
                    log.next_idx = idx + 1;
                    log.tail.push((idx, JCmd::Point(point)));
                    self.after_push(r);
                    return true;
                }
                Err(std::sync::mpsc::TrySendError::Full(_)) => {
                    load.depth.fetch_sub(1, Ordering::Relaxed);
                    drop(router);
                    // Backpressure: the worker is queue_capacity behind.
                    let Some(sleep) = clamped_backoff(deadline, Instant::now(), backoff) else {
                        return false;
                    };
                    std::thread::sleep(sleep);
                    backoff = (backoff * 2).min(Duration::from_millis(5));
                }
                Err(std::sync::mpsc::TrySendError::Disconnected(_)) => {
                    load.depth.fetch_sub(1, Ordering::Relaxed);
                    // The worker panicked between drain_replies and the
                    // send: retry — the next drain supervises the respawn.
                    drop(router);
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        return false;
                    }
                }
            }
        }
    }

    /// Post-push bookkeeping under the router lock: the push counter, the
    /// periodic rebalance check, and the periodic sweep of finished
    /// placements.
    fn after_push(&self, router: &mut Router<M::Session>) {
        router.pushes += 1;
        if self.policy == RouterPolicy::PowerOfTwo && router.pushes.is_multiple_of(64) {
            self.maybe_rebalance(router);
        }
        if router.pushes.is_multiple_of(1024) {
            self.prune_finished(router);
        }
    }

    /// Removes placements whose trip was finished AND whose worker's queue
    /// has since drained: the engine is the only sender (always under this
    /// lock), so an observed depth of 0 proves the Finish was processed
    /// and no live instance remains — removing the entry cannot split a
    /// session. Bounds the placement table by the live session count plus
    /// ids evicted-but-never-finished (those are reclaimed by detach-miss
    /// instead).
    fn prune_finished(&self, router: &mut Router<M::Session>) {
        let drained: Vec<bool> =
            self.loads.iter().map(|l| l.depth.load(Ordering::Relaxed) == 0).collect();
        router.place.retain(
            |_, p| !matches!(p, Placement::On { worker, finished: true, .. } if drained[*worker]),
        );
    }

    /// Ends `session` explicitly: its final decode arrives as a
    /// [`StreamEvent::Finalized`]. Unknown ids are ignored (the trip may
    /// already have been evicted). The placement is kept (sticky), so a
    /// later reuse of the id queues FIFO behind this trip's finalize on
    /// the same worker.
    pub fn finish(&self, session: SessionId) -> bool {
        let mut router = self.router.lock().expect("router poisoned");
        self.drain_replies(&mut router);
        let r = &mut *router;
        match r.place.get_mut(&session) {
            Some(Placement::InTransit { pending, .. }) => {
                let log = r.logs.entry(session).or_insert_with(SessionLog::new);
                let idx = log.next_idx;
                log.next_idx += 1;
                log.tail.push((idx, JCmd::Finish));
                pending.push(Pending::Finish(idx));
                true
            }
            Some(Placement::On { worker, finished, .. }) => {
                let w = *worker;
                *finished = true;
                // Journal-first: if the worker dies before (or while)
                // taking this, recovery replays the journaled finish —
                // there is no retry loop here to double-journal it.
                let log = r.logs.entry(session).or_insert_with(SessionLog::new);
                let idx = log.next_idx;
                log.next_idx += 1;
                log.tail.push((idx, JCmd::Finish));
                if !self.send_to(r, w, Cmd::Finish { session, idx }) {
                    // Worker just died: the next drain_replies replays the
                    // journal (including this finish) onto its successor.
                    self.supervise(r);
                }
                true
            }
            None => true,
        }
    }

    /// Forces `session` onto worker `to` (unconditional — used by tests
    /// and operational tooling; the automatic policy only moves
    /// watermark-stable sessions). Returns `false` when the session is
    /// unknown, already on `to`, already in transit, or `to` is out of
    /// range; the migration itself completes asynchronously.
    pub fn migrate(&self, session: SessionId, to: usize) -> bool {
        let mut router = self.router.lock().expect("router poisoned");
        self.drain_replies(&mut router);
        self.start_migration(&mut router, session, to, false)
    }

    /// Runs one rebalance check immediately (the same check `push` runs
    /// periodically): migrate the least-recently-pushed watermark-stable
    /// session off the hottest worker if the load gap warrants it.
    pub fn rebalance(&self) {
        let mut router = self.router.lock().expect("router poisoned");
        self.drain_replies(&mut router);
        self.maybe_rebalance(&mut router);
    }

    /// Snapshot of per-worker load/telemetry and migration counters.
    #[must_use]
    pub fn router_stats(&self) -> RouterStats {
        let mut router = self.router.lock().expect("router poisoned");
        self.drain_replies(&mut router);
        RouterStats {
            policy: self.policy,
            workers: self.loads.iter().map(WorkerLoad::snapshot).collect(),
            migrations_requested: router.migrations_requested,
            migrations_completed: router.migrations_completed,
            migrations_refused: router.migrations_refused,
            migrations_missed: router.migrations_missed,
            worker_restarts: router.worker_restarts,
            sessions_recovered: router.sessions_recovered,
            points_replayed: router.points_replayed,
            sessions_lost: router.sessions_lost,
            recovery_time_s: router.recovery_time_s,
        }
    }

    /// Drains every event currently buffered, without blocking. Call
    /// periodically — the event channel is unbounded, so an undrained
    /// engine buffers one update per pushed point. Also advances any
    /// in-flight migration (like every engine entry point), so a consumer
    /// that only polls still makes the router progress.
    pub fn poll_events(&self) -> Vec<StreamEvent> {
        let mut router = self.router.lock().expect("router poisoned");
        self.drain_replies(&mut router);
        drop(router);
        self.events.try_iter().collect()
    }

    /// Blocks up to `timeout` for one event. Periodically advances
    /// in-flight migrations (and worker supervision) while waiting, so a
    /// consumer blocked here cannot deadlock against a session whose
    /// commands are buffered in transit (e.g. a `finish` issued right
    /// after a `migrate`). The two empty outcomes are distinguishable:
    /// [`RecvEventError::Timeout`] means a quiet stream that may yet emit;
    /// [`RecvEventError::Disconnected`] means every worker permanently
    /// failed and the buffer is drained, so no event can ever arrive.
    pub fn recv_event_timeout(&self, timeout: Duration) -> Result<StreamEvent, RecvEventError> {
        let deadline = Instant::now() + timeout;
        loop {
            let all_failed = {
                let mut router = self.router.lock().expect("router poisoned");
                self.drain_replies(&mut router);
                router.failed.iter().all(|&f| f)
            };
            let remaining = deadline.saturating_duration_since(Instant::now());
            let slice = remaining.min(Duration::from_millis(10));
            match self.events.recv_timeout(slice) {
                Ok(e) => return Ok(e),
                // The engine holds a sender clone, so a true disconnect
                // cannot happen while it is alive; map it for completeness.
                Err(RecvTimeoutError::Disconnected) => return Err(RecvEventError::Disconnected),
                Err(RecvTimeoutError::Timeout) => {
                    if all_failed {
                        // Buffer empty (the recv just timed out) and no
                        // producer can ever exist again.
                        return Err(RecvEventError::Disconnected);
                    }
                    if remaining <= slice {
                        return Err(RecvEventError::Timeout);
                    }
                }
            }
        }
    }

    /// Waits (up to `timeout`) until the engine is quiescent: every worker
    /// queue drained and no session in transit between workers. Polling
    /// here also *drives* migration resolution. Returns whether quiescence
    /// was reached. Worker-side telemetry (points decoded, migrations) is
    /// only guaranteed complete for commands pushed before a successful
    /// quiesce — snapshot [`StreamEngine::router_stats`] after it.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let idle = {
                let mut router = self.router.lock().expect("router poisoned");
                self.drain_replies(&mut router);
                router.place.values().all(|p| !matches!(p, Placement::InTransit { .. }))
                    && self.loads.iter().all(|l| l.depth.load(Ordering::Relaxed) == 0)
            };
            if idle {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::yield_now();
        }
    }

    /// Checkpoints every live session into a portable
    /// [`SessionSnapshot`] and removes it from the engine — the handoff
    /// half of a rolling restart. A successor engine (same matcher)
    /// resumes them all with [`StreamEngine::restore`] and the continued
    /// decodes are bitwise-identical to never having stopped. In-flight
    /// migrations are resolved first; sessions whose trip already ended
    /// are skipped (there is nothing live to hand off). Worker panics
    /// during the drain are supervised and the detach re-requested, so a
    /// faulty engine still drains every recoverable session within
    /// `timeout`.
    #[must_use]
    pub fn drain_snapshots(&self, timeout: Duration) -> Vec<SessionSnapshot> {
        let deadline = Instant::now() + timeout;
        let mut out = Vec::new();
        let mut router = self.router.lock().expect("router poisoned");
        self.drain_replies(&mut router);
        // Resolve in-flight migrations so every session sits On a worker.
        while router.place.values().any(|p| matches!(p, Placement::InTransit { .. }))
            && Instant::now() < deadline
        {
            match router.replies.recv_timeout(Duration::from_millis(20)) {
                Ok(reply) => self.apply_reply(&mut router, reply),
                Err(_) => self.drain_replies(&mut router),
            }
        }
        // Ask every live session off its worker (unconditionally — this is
        // a handoff, not a rebalance, so stability doesn't matter).
        let mut draining: HashSet<SessionId> = HashSet::new();
        let targets: Vec<(SessionId, usize)> = router
            .place
            .iter()
            .filter_map(|(&sid, p)| match p {
                Placement::On { worker, finished: false, .. } => Some((sid, *worker)),
                _ => None,
            })
            .collect();
        for (sid, w) in targets {
            if self.send_to(&router, w, Cmd::Detach { session: sid, stable_only: false }) {
                draining.insert(sid);
            }
        }
        while !draining.is_empty() && Instant::now() < deadline {
            match router.replies.recv_timeout(Duration::from_millis(20)) {
                Ok(Reply::Detached { session, live }) if draining.contains(&session) => {
                    draining.remove(&session);
                    let mut payload = Vec::new();
                    self.matcher.snapshot_session(&live.session, &mut payload);
                    out.push(SessionSnapshot {
                        session,
                        matcher: self.matcher.name().to_string(),
                        seq: live.seq as u64,
                        last_t: live.last_t,
                        payload,
                    });
                    router.place.remove(&session);
                    router.logs.remove(&session);
                }
                Ok(Reply::DetachMiss { session }) if draining.contains(&session) => {
                    // The trip ended (idle eviction) between the scan and
                    // the detach: nothing live to hand off.
                    draining.remove(&session);
                    router.place.remove(&session);
                    router.logs.remove(&session);
                }
                Ok(reply) => self.apply_reply(&mut router, reply),
                Err(_) => {
                    // Supervise: a worker may have died holding sessions we
                    // are draining. Recovery re-homes them (placement goes
                    // back to On), so re-request those detaches.
                    self.drain_replies(&mut router);
                    let again: Vec<(SessionId, usize)> = draining
                        .iter()
                        .filter_map(|&sid| match router.place.get(&sid) {
                            Some(&Placement::On { worker, .. }) => Some((sid, worker)),
                            Some(&Placement::InTransit { .. }) => None,
                            None => None,
                        })
                        .collect();
                    for (sid, w) in again {
                        self.send_to(&router, w, Cmd::Detach { session: sid, stable_only: false });
                    }
                }
            }
        }
        out
    }

    /// Resumes sessions checkpointed by [`StreamEngine::drain_snapshots`]
    /// (or by the supervisor's checkpoint path) on this engine: each
    /// snapshot is validated against this engine's matcher, thawed, placed
    /// like a new session, and seeded into the crash-recovery journal so a
    /// worker panic before the first new checkpoint replays from the
    /// restored state. Returns the number of sessions resumed.
    ///
    /// # Errors
    /// [`SnapshotError::WrongMatcher`] if a snapshot was written by a
    /// different matcher; any payload decode error from the matcher's
    /// `restore_session`; [`SnapshotError::Malformed`] if the session id
    /// is already live on this engine. Sessions restored before the
    /// failing snapshot stay restored.
    pub fn restore(&self, snaps: &[SessionSnapshot]) -> Result<usize, SnapshotError> {
        let mut router = self.router.lock().expect("router poisoned");
        self.drain_replies(&mut router);
        let mut n = 0;
        for snap in snaps {
            snap.expect_matcher(self.matcher.name())?;
            if router.place.contains_key(&snap.session) || router.logs.contains_key(&snap.session) {
                return Err(SnapshotError::Malformed("session id already live on this engine"));
            }
            if router.failed.iter().all(|&f| f) {
                return Err(SnapshotError::Malformed("engine has no live workers left"));
            }
            let session_state = self.matcher.restore_session(&snap.payload)?;
            #[allow(clippy::cast_possible_truncation)]
            let live = Live {
                session: session_state,
                seq: snap.seq as usize,
                last_t: snap.last_t,
                last_seen: Instant::now(),
                last_idx: 0,
                since_ckpt: 0,
            };
            let w = self.place_new(&mut router, snap.session);
            let mut log = SessionLog::new();
            log.ckpt = Some(Ckpt {
                idx: 0,
                payload: snap.payload.clone(),
                seq: live.seq,
                last_t: live.last_t,
            });
            router.logs.insert(snap.session, log);
            self.send_to(
                &router,
                w,
                Cmd::Attach { session: snap.session, live: Box::new(live), restored: true },
            );
            router.place.insert(
                snap.session,
                Placement::On { worker: w, last_push: Instant::now(), finished: false },
            );
            router.sessions_recovered += 1;
            n += 1;
        }
        Ok(n)
    }

    /// Stops intake, finalizes every live session (reason
    /// [`FinalizeReason::Shutdown`]), joins the workers and returns the
    /// events not yet polled plus the aggregate counters. A worker panic
    /// during the wind-down is supervised like any other (its sessions are
    /// recovered and flushed by the respawned worker), not propagated.
    #[must_use]
    pub fn shutdown(self) -> (Vec<StreamEvent>, StreamStats) {
        // Settle the engine first, under a deadline: resolve in-flight
        // migrations (a session detached but not yet re-attached lives
        // only in the reply channel and would never be finalized), drain
        // the queues of live workers, and supervise any late panic so its
        // sessions are rebuilt before intake closes.
        {
            let mut router = self.router.lock().expect("router poisoned");
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                self.drain_replies(&mut router);
                let busy = router.place.values().any(|p| matches!(p, Placement::InTransit { .. }))
                    || self
                        .loads
                        .iter()
                        .enumerate()
                        .any(|(w, l)| !router.failed[w] && l.depth.load(Ordering::Relaxed) > 0);
                if !busy || Instant::now() >= deadline {
                    break;
                }
                if let Ok(reply) = router.replies.recv_timeout(Duration::from_millis(20)) {
                    self.apply_reply(&mut router, reply);
                }
            }
        }
        let Self { router, events, .. } = self;
        let Router { txs, handles, banked, .. } = router.into_inner().expect("router poisoned");
        // Dropping the senders disconnects every worker, which flushes its
        // remaining sessions and exits.
        drop(txs);
        let mut stats = banked;
        for h in handles.into_iter().flatten() {
            if let Ok((s, _panicked)) = h.join() {
                stats.merge(s);
            }
        }
        // Workers are joined, so every in-flight event is buffered by now.
        let events = events.try_iter().collect();
        (events, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use trmma_baselines::{HmmConfig, HmmMatcher, NearestMatcher};
    use trmma_roadnet::RoutePlanner;
    use trmma_traj::dataset::{build_dataset, DatasetConfig, Split};
    use trmma_traj::types::Trajectory;
    use trmma_traj::MapMatcher;

    fn world() -> (Arc<HmmMatcher>, Vec<Trajectory>) {
        let ds = build_dataset(&DatasetConfig::tiny());
        let net = Arc::new(ds.net.clone());
        let planner = Arc::new(RoutePlanner::untrained(&net));
        let hmm = Arc::new(HmmMatcher::new(net, planner, HmmConfig::default()));
        let batch: Vec<Trajectory> =
            ds.samples(Split::Test, 0.2, 21).into_iter().take(4).map(|s| s.sparse).collect();
        (hmm, batch)
    }

    fn collect_finalized(
        events: &[StreamEvent],
    ) -> HashMap<SessionId, (FinalizeReason, MatchResult)> {
        events
            .iter()
            .filter_map(|e| match e {
                StreamEvent::Finalized { session, reason, result, .. } => {
                    Some((*session, (*reason, result.clone())))
                }
                StreamEvent::Update { .. } => None,
            })
            .collect()
    }

    /// Polls `router_stats` (which also drives migration resolution) until
    /// `done` accepts a snapshot or the deadline passes; returns the last
    /// snapshot either way.
    fn wait_stats<M: OnlineMatcher + 'static>(
        engine: &StreamEngine<M>,
        done: impl Fn(&RouterStats) -> bool,
    ) -> RouterStats {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let rs = engine.router_stats();
            if done(&rs) || Instant::now() >= deadline {
                return rs;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn clamped_backoff_never_sleeps_past_the_deadline() {
        let now = Instant::now();
        let full = Duration::from_millis(5);
        // No deadline: the raw backoff, always.
        assert_eq!(clamped_backoff(None, now, full), Some(full));
        // Plenty of time left: still the raw backoff.
        assert_eq!(clamped_backoff(Some(now + Duration::from_secs(1)), now, full), Some(full));
        // Less time left than one backoff step: the sleep shrinks to
        // exactly the remainder — this is the overshoot fix.
        let rem = Duration::from_micros(700);
        assert_eq!(clamped_backoff(Some(now + rem), now, full), Some(rem));
        // At or past the deadline: no sleep, give up immediately.
        assert_eq!(clamped_backoff(Some(now), now, full), None);
        assert_eq!(clamped_backoff(Some(now - Duration::from_millis(1)), now, full), None);
    }

    #[test]
    fn push_timeout_is_not_overshot_by_backoff() {
        // One worker, stalled on every command, a 1-point queue and a short
        // push timeout: the pushes that hit the full queue must give up
        // close to the deadline, not a full 5 ms backoff step (plus
        // scheduler noise) after it. Generous margin: the clamp bounds the
        // final sleep, not OS scheduling.
        FaultPlan::silence_injected_panics();
        let (hmm, batch) = world();
        let plan = FaultPlan {
            stall_per_mille: 1000,
            stall: Duration::from_millis(50),
            ..FaultPlan::default()
        };
        let opts = StreamOptions::with_threads(1)
            .queue_capacity(1)
            .push_timeout_s(0.02)
            .idle_timeout_s(0.0);
        let engine = StreamEngine::with_faults(hmm, opts, plan);
        let points = &batch[0].points;
        let mut timed_out = 0;
        for &p in points.iter().take(6) {
            let start = Instant::now();
            let accepted = engine.push(0, p);
            let waited = start.elapsed();
            if !accepted {
                timed_out += 1;
                assert!(
                    waited < Duration::from_millis(120),
                    "push overshot its 20 ms deadline: waited {waited:?}"
                );
            }
        }
        assert!(timed_out > 0, "stalled worker never produced a timeout");
        let _ = engine.shutdown();
    }

    #[test]
    fn interleaved_sessions_finalize_to_offline_results() {
        let (hmm, batch) = world();
        let engine =
            StreamEngine::new(hmm.clone(), StreamOptions::with_threads(3).idle_timeout_s(0.0));
        // Round-robin interleave all sessions' points.
        let longest = batch.iter().map(Trajectory::len).max().unwrap();
        for i in 0..longest {
            for (sid, t) in batch.iter().enumerate() {
                if let Some(&p) = t.points.get(i) {
                    assert!(engine.push(sid as SessionId, p));
                }
            }
        }
        for sid in 0..batch.len() {
            engine.finish(sid as SessionId);
        }
        let (events, stats) = engine.shutdown();
        let finals = collect_finalized(&events);
        assert_eq!(finals.len(), batch.len());
        for (sid, t) in batch.iter().enumerate() {
            let (reason, result) = &finals[&(sid as SessionId)];
            assert_eq!(*reason, FinalizeReason::Explicit);
            assert_eq!(*result, hmm.match_trajectory(t), "session {sid} diverged from offline");
        }
        let total_points: u64 = batch.iter().map(|t| t.len() as u64).sum();
        assert_eq!(stats.points, total_points);
        assert_eq!(stats.sessions_opened, batch.len() as u64);
        assert_eq!(stats.finalized(), batch.len() as u64);
        assert_eq!(stats.late_dropped, 0);
        // One update per accepted point, each with a provisional match.
        let updates =
            events.iter().filter(|e| matches!(e, StreamEvent::Update { .. })).count() as u64;
        assert_eq!(updates, total_points);
    }

    #[test]
    fn unfinished_sessions_flush_on_shutdown() {
        let (hmm, batch) = world();
        let engine = StreamEngine::new(hmm.clone(), StreamOptions::with_threads(2));
        for (sid, t) in batch.iter().enumerate() {
            for &p in &t.points {
                engine.push(sid as SessionId, p);
            }
        }
        let (events, stats) = engine.shutdown();
        let finals = collect_finalized(&events);
        assert_eq!(finals.len(), batch.len());
        for (sid, t) in batch.iter().enumerate() {
            let (reason, result) = &finals[&(sid as SessionId)];
            assert_eq!(*reason, FinalizeReason::Shutdown);
            assert_eq!(*result, hmm.match_trajectory(t));
        }
        assert_eq!(stats.finalized_shutdown, batch.len() as u64);
    }

    #[test]
    fn idle_sessions_are_finalized_on_timeout() {
        let (hmm, batch) = world();
        let engine =
            StreamEngine::new(hmm.clone(), StreamOptions::with_threads(1).idle_timeout_s(0.05));
        let t = &batch[0];
        for &p in &t.points {
            engine.push(7, p);
        }
        // Wait (generously) for the idle sweep to fire.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut finalized = None;
        while finalized.is_none() && Instant::now() < deadline {
            for e in engine.poll_events() {
                if let StreamEvent::Finalized { session, reason, result, .. } = e {
                    finalized = Some((session, reason, result));
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let (session, reason, result) = finalized.expect("idle session never evicted");
        assert_eq!(session, 7);
        assert_eq!(reason, FinalizeReason::IdleTimeout);
        assert_eq!(result, hmm.match_trajectory(t));
        // The eviction is visible live in the router telemetry, not only
        // in the shutdown-time stats.
        let rs = engine.router_stats();
        assert_eq!(rs.idle_finalized(), 1);
        assert_eq!(rs.late_dropped(), 0);
        let (_, stats) = engine.shutdown();
        assert_eq!(stats.finalized_idle, 1);
        assert_eq!(stats.finalized(), 1);
    }

    #[test]
    fn late_points_are_dropped_not_decoded() {
        let (hmm, batch) = world();
        let engine =
            StreamEngine::new(hmm.clone(), StreamOptions::with_threads(2).idle_timeout_s(0.0));
        let t = &batch[0];
        for &p in &t.points {
            engine.push(1, p);
        }
        // Replay the first half again: all strictly older than last_t.
        let stale = t.len() / 2;
        for &p in &t.points[..stale] {
            engine.push(1, p);
        }
        engine.finish(1);
        assert!(engine.quiesce(Duration::from_secs(10)));
        // Drops are counted per worker and surface live in router stats.
        let rs = engine.router_stats();
        assert_eq!(rs.late_dropped(), stale as u64);
        assert_eq!(rs.idle_finalized(), 0);
        let (events, stats) = engine.shutdown();
        assert_eq!(stats.late_dropped, stale as u64);
        assert_eq!(stats.points, t.len() as u64);
        let finals = collect_finalized(&events);
        assert_eq!(finals[&1].1, hmm.match_trajectory(t), "late points must not perturb decode");
    }

    #[test]
    fn finish_of_unknown_session_is_a_noop() {
        let (hmm, _) = world();
        let engine = StreamEngine::new(hmm, StreamOptions::with_threads(2));
        assert!(engine.finish(99));
        let (events, stats) = engine.shutdown();
        assert!(events.is_empty());
        assert_eq!(stats, StreamStats::default());
    }

    #[test]
    fn options_builder_and_defaults() {
        let d = StreamOptions::default();
        assert_eq!(d.threads, 0);
        assert!(d.effective_threads() >= 1);
        assert_eq!(d.router, RouterPolicy::PowerOfTwo);
        assert_eq!(d.rebalance_threshold, 16);
        let o = StreamOptions::with_threads(3)
            .idle_timeout_s(0.0)
            .queue_capacity(0)
            .router_policy(RouterPolicy::HashMod)
            .rebalance_threshold(0);
        assert_eq!(o.effective_threads(), 3);
        assert_eq!(o.queue_capacity, 1, "capacity clamps to 1");
        assert!(o.idle_timeout().is_none(), "0 disables eviction");
        assert_eq!(o.router, RouterPolicy::HashMod);
        assert_eq!(o.rebalance_threshold, 0);
        assert!(StreamOptions::default().idle_timeout().is_some());
        assert_eq!(RouterPolicy::HashMod.name(), "hash_mod");
        assert_eq!(RouterPolicy::PowerOfTwo.name(), "power_of_two");
    }

    /// Session ids that all collide modulo the worker count: the adversary
    /// workload of the load-aware router.
    fn skewed_ids(n: usize, threads: usize) -> Vec<SessionId> {
        (0..n).map(|i| (i * threads) as SessionId).collect()
    }

    #[test]
    fn hash_mod_starves_workers_under_skewed_ids() {
        let (hmm, batch) = world();
        let threads = 3;
        let engine = StreamEngine::new(
            hmm.clone(),
            StreamOptions::with_threads(threads)
                .idle_timeout_s(0.0)
                .router_policy(RouterPolicy::HashMod),
        );
        let ids = skewed_ids(batch.len(), threads);
        for (t, &sid) in batch.iter().zip(&ids) {
            for &p in &t.points {
                engine.push(sid, p);
            }
        }
        let rs = engine.router_stats();
        assert_eq!(rs.policy, RouterPolicy::HashMod);
        assert_eq!(rs.workers[0].sessions_placed, batch.len() as u64);
        for w in &rs.workers[1..] {
            assert_eq!(w.sessions_placed, 0, "hash router must starve non-zero workers");
            assert_eq!(w.queue_depth_hwm, 0);
        }
        assert_eq!(rs.migrations_requested, 0, "hash router never migrates");
        for &sid in &ids {
            engine.finish(sid);
        }
        let (events, _) = engine.shutdown();
        let finals = collect_finalized(&events);
        for (t, &sid) in batch.iter().zip(&ids) {
            assert_eq!(finals[&sid].1, hmm.match_trajectory(t));
        }
    }

    #[test]
    fn power_of_two_spreads_skewed_ids() {
        let (hmm, batch) = world();
        let threads = 3;
        let engine = StreamEngine::new(
            hmm.clone(),
            StreamOptions::with_threads(threads).idle_timeout_s(0.0),
        );
        let ids = skewed_ids(batch.len(), threads);
        // One session at a time: earlier sessions are live (load > 0) when
        // later ones are placed, so p2c must route around them.
        for (t, &sid) in batch.iter().zip(&ids) {
            for &p in &t.points {
                engine.push(sid, p);
            }
        }
        let rs = engine.router_stats();
        let used = rs.workers.iter().filter(|w| w.sessions_placed > 0).count();
        assert!(
            used >= 2,
            "p2c left skewed ids on one worker: {:?}",
            rs.workers.iter().map(|w| w.sessions_placed).collect::<Vec<_>>()
        );
        let placed: u64 = rs.workers.iter().map(|w| w.sessions_placed).sum();
        assert_eq!(placed, batch.len() as u64);
        for &sid in &ids {
            engine.finish(sid);
        }
        let (events, stats) = engine.shutdown();
        assert_eq!(stats.sessions_opened, batch.len() as u64);
        let finals = collect_finalized(&events);
        for (t, &sid) in batch.iter().zip(&ids) {
            assert_eq!(finals[&sid].1, hmm.match_trajectory(t));
        }
    }

    #[test]
    fn forced_migration_preserves_offline_identity() {
        let (hmm, batch) = world();
        let engine =
            StreamEngine::new(hmm.clone(), StreamOptions::with_threads(3).idle_timeout_s(0.0));
        let t = &batch[0];
        // Bounce the session between workers on every push.
        for (i, &p) in t.points.iter().enumerate() {
            assert!(engine.push(5, p));
            engine.migrate(5, i % 3);
        }
        engine.finish(5);
        let rs = wait_stats(&engine, |rs| {
            rs.migrations_requested
                == rs.migrations_completed + rs.migrations_refused + rs.migrations_missed
        });
        assert!(rs.migrations_completed >= 1, "no migration ever completed: {rs:?}");
        assert_eq!(rs.migrations_refused, 0, "forced migration must not consult stability");
        let (events, stats) = engine.shutdown();
        assert_eq!(stats.sessions_opened, 1, "migration must not split the session");
        assert_eq!(stats.points, t.len() as u64);
        let finals = collect_finalized(&events);
        assert_eq!(finals.len(), 1);
        let (reason, result) = &finals[&5];
        assert_eq!(*reason, FinalizeReason::Explicit);
        assert_eq!(*result, hmm.match_trajectory(t), "migrated decode diverged from offline");
        let updates = events.iter().filter(|e| matches!(e, StreamEvent::Update { .. })).count();
        assert_eq!(updates, t.len(), "every point decoded exactly once across migrations");
    }

    #[test]
    fn rebalance_migrates_stable_sessions_off_hot_worker() {
        let ds = build_dataset(&DatasetConfig::tiny());
        let net = Arc::new(ds.net.clone());
        let planner = Arc::new(RoutePlanner::untrained(&net));
        // Nearest stabilizes instantly, so its sessions are always
        // migration-eligible.
        let nearest = Arc::new(NearestMatcher::new(net, planner));
        let batch: Vec<Trajectory> =
            ds.samples(Split::Test, 0.2, 22).into_iter().take(4).map(|s| s.sparse).collect();
        let engine = StreamEngine::new(
            nearest.clone(),
            StreamOptions::with_threads(3).idle_timeout_s(0.0).rebalance_threshold(1),
        );
        for (sid, t) in batch.iter().enumerate() {
            for &p in &t.points {
                engine.push(sid as SessionId, p);
            }
        }
        // Pile every session onto worker 0, then let the policy unpile.
        let mut forced = 0;
        for sid in 0..batch.len() {
            if engine.migrate(sid as SessionId, 0) {
                forced += 1;
            }
        }
        let rs = wait_stats(&engine, |rs| {
            rs.workers[0].live_sessions == batch.len() && rs.migrations_completed == forced
        });
        assert_eq!(rs.workers[0].live_sessions, batch.len(), "forced pile-up failed: {rs:?}");
        engine.rebalance();
        // `migrations_completed` bumps when the attach is *sent*; wait for
        // the target worker to have *processed* it (`migrated_in`).
        let rs = wait_stats(&engine, |rs| {
            rs.workers[1..].iter().map(|w| w.migrated_in).sum::<u64>() >= 1
        });
        assert!(rs.migrations_completed > forced, "rebalance never moved a stable session: {rs:?}");
        let off_zero: u64 = rs.workers[1..].iter().map(|w| w.migrated_in).sum();
        assert!(off_zero >= 1, "policy migration must land off the hot worker: {rs:?}");
        for sid in 0..batch.len() {
            engine.finish(sid as SessionId);
        }
        let (events, _) = engine.shutdown();
        let finals = collect_finalized(&events);
        for (sid, t) in batch.iter().enumerate() {
            assert_eq!(finals[&(sid as SessionId)].1, nearest.match_trajectory(t));
        }
    }

    #[test]
    fn rebalance_refuses_unstable_sessions() {
        use crate::{Mma, MmaConfig};
        let ds = build_dataset(&DatasetConfig::tiny());
        let net = Arc::new(ds.net.clone());
        let planner = Arc::new(RoutePlanner::untrained(&net));
        // MMA's watermark stays 0 until finalize: never migration-eligible.
        let mma = Arc::new(Mma::new(net, planner, None, MmaConfig::small()));
        let batch: Vec<Trajectory> =
            ds.samples(Split::Test, 0.2, 23).into_iter().take(2).map(|s| s.sparse).collect();
        let engine = StreamEngine::new(
            mma.clone(),
            StreamOptions::with_threads(2).idle_timeout_s(0.0).rebalance_threshold(1),
        );
        for (sid, t) in batch.iter().enumerate() {
            for &p in &t.points {
                engine.push(sid as SessionId, p);
            }
        }
        let mut forced = 0;
        for sid in 0..batch.len() {
            if engine.migrate(sid as SessionId, 0) {
                forced += 1;
            }
        }
        let rs = wait_stats(&engine, |rs| {
            rs.workers[0].live_sessions == batch.len() && rs.migrations_completed == forced
        });
        assert_eq!(rs.workers[0].live_sessions, batch.len(), "forced pile-up failed: {rs:?}");
        engine.rebalance();
        let rs = wait_stats(&engine, |rs| rs.migrations_refused >= 1);
        assert!(rs.migrations_refused >= 1, "unstable session was not refused: {rs:?}");
        for sid in 0..batch.len() {
            engine.finish(sid as SessionId);
        }
        let (events, _) = engine.shutdown();
        let finals = collect_finalized(&events);
        for (sid, t) in batch.iter().enumerate() {
            assert_eq!(finals[&(sid as SessionId)].1, mma.match_trajectory(t));
        }
    }

    /// A consumer that only waits on `recv_event_timeout` (no further
    /// pushes or stats calls) must still see the `Finalized` of a finish
    /// that was buffered behind an in-flight migration — the event wait
    /// itself drives migration resolution.
    #[test]
    fn finish_after_migrate_finalizes_without_further_engine_calls() {
        let (hmm, batch) = world();
        let engine =
            StreamEngine::new(hmm.clone(), StreamOptions::with_threads(2).idle_timeout_s(0.0));
        let t = &batch[0];
        for &p in &t.points {
            assert!(engine.push(3, p));
        }
        // The session lives on exactly one of the two workers, so one of
        // these is a real move that puts it in transit.
        assert!(engine.migrate(3, 0) || engine.migrate(3, 1));
        engine.finish(3); // likely buffered while in transit
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut finalized = None;
        while finalized.is_none() && Instant::now() < deadline {
            if let Ok(StreamEvent::Finalized { session, result, .. }) =
                engine.recv_event_timeout(Duration::from_millis(50))
            {
                finalized = Some((session, result));
            }
        }
        let (session, result) = finalized.expect("finalize stuck behind in-flight migration");
        assert_eq!(session, 3);
        assert_eq!(result, hmm.match_trajectory(t));
        let _ = engine.shutdown();
    }

    /// Sticky placement: a session id reused after `finish` must queue
    /// FIFO behind the previous trip on the same worker, so the first
    /// trip's `Finalized` event precedes every event of the second trip
    /// and both decode to their own offline references.
    #[test]
    fn reused_session_id_is_serialized_behind_previous_trip() {
        let (hmm, batch) = world();
        let engine =
            StreamEngine::new(hmm.clone(), StreamOptions::with_threads(3).idle_timeout_s(0.0));
        let (t1, t2) = (&batch[0], &batch[1]);
        for &p in &t1.points {
            assert!(engine.push(9, p));
        }
        engine.finish(9);
        // Reuse the id immediately — the Finish above may still be queued.
        for &p in &t2.points {
            assert!(engine.push(9, p));
        }
        engine.finish(9);
        let (events, stats) = engine.shutdown();
        assert_eq!(stats.sessions_opened, 2);
        assert_eq!(stats.finalized_explicit, 2);
        let finals: Vec<(usize, &MatchResult)> = events
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e {
                StreamEvent::Finalized { result, .. } => Some((i, result)),
                StreamEvent::Update { .. } => None,
            })
            .collect();
        assert_eq!(finals.len(), 2);
        assert_eq!(*finals[0].1, hmm.match_trajectory(t1));
        assert_eq!(*finals[1].1, hmm.match_trajectory(t2));
        // Every trip-2 event comes after trip 1 finalized.
        let trip2_updates: Vec<usize> = events
            .iter()
            .enumerate()
            .skip(finals[0].0 + 1)
            .filter_map(|(i, e)| matches!(e, StreamEvent::Update { .. }).then_some(i))
            .collect();
        assert_eq!(
            trip2_updates.len(),
            t2.len(),
            "all of trip 2's updates must follow trip 1's Finalized"
        );
    }

    #[test]
    fn router_stats_counters_are_consistent() {
        let (hmm, batch) = world();
        let engine =
            StreamEngine::new(hmm.clone(), StreamOptions::with_threads(2).idle_timeout_s(0.0));
        for (sid, t) in batch.iter().enumerate() {
            for &p in &t.points {
                engine.push(sid as SessionId, p);
            }
            engine.migrate(sid as SessionId, sid % 2);
        }
        let rs = wait_stats(&engine, |rs| {
            rs.migrations_requested
                == rs.migrations_completed + rs.migrations_refused + rs.migrations_missed
        });
        let migrated_in: u64 = rs.workers.iter().map(|w| w.migrated_in).sum();
        let migrated_out: u64 = rs.workers.iter().map(|w| w.migrated_out).sum();
        assert_eq!(migrated_out, rs.migrations_completed);
        assert!(migrated_in <= migrated_out, "attach cannot precede detach");
        let placed: u64 = rs.workers.iter().map(|w| w.sessions_placed).sum();
        assert_eq!(placed, batch.len() as u64);
        for sid in 0..batch.len() {
            engine.finish(sid as SessionId);
        }
        let (_, stats) = engine.shutdown();
        assert_eq!(stats.sessions_opened, batch.len() as u64);
        let total: u64 = batch.iter().map(|t| t.len() as u64).sum();
        assert_eq!(stats.points, total);
    }

    #[test]
    fn recv_event_timeout_distinguishes_quiet_from_dead() {
        let (hmm, _) = world();
        let engine = StreamEngine::new(hmm, StreamOptions::with_threads(2));
        // Healthy engine, nothing pushed: a quiet stream, not a dead one.
        assert_eq!(
            engine.recv_event_timeout(Duration::from_millis(30)),
            Err(RecvEventError::Timeout)
        );
        let _ = engine.shutdown();
    }

    /// The acceptance bar of the supervision feature: injected worker
    /// panics mid-stream lose nothing — every session is rebuilt from its
    /// checkpoint + journal and finalizes bitwise-identical to a
    /// fault-free (offline) decode.
    #[test]
    fn injected_panics_recover_every_session_bitwise() {
        FaultPlan::silence_injected_panics();
        let (hmm, batch) = world();
        let plan = FaultPlan::panics(0xBAD5EED, 250, 3);
        let engine = StreamEngine::with_faults(
            hmm.clone(),
            StreamOptions::with_threads(2).idle_timeout_s(0.0).checkpoint_every(4),
            plan,
        );
        let longest = batch.iter().map(Trajectory::len).max().unwrap();
        for i in 0..longest {
            for (sid, t) in batch.iter().enumerate() {
                if let Some(&p) = t.points.get(i) {
                    assert!(engine.push(sid as SessionId, p));
                }
            }
        }
        for sid in 0..batch.len() {
            assert!(engine.finish(sid as SessionId));
        }
        assert!(engine.quiesce(Duration::from_secs(30)));
        let rs = engine.router_stats();
        assert!(rs.worker_restarts >= 1, "the fault plan must actually fire: {rs:?}");
        assert_eq!(rs.sessions_lost, 0, "supervision must lose nothing: {rs:?}");
        assert!(rs.sessions_recovered >= 1, "dead workers held live sessions: {rs:?}");
        let (events, stats) = engine.shutdown();
        // Replayed points decode (and emit) again, so `points` may exceed
        // the input count — but never undershoot it.
        let total: u64 = batch.iter().map(|t| t.len() as u64).sum();
        assert!(stats.points >= total, "points lost: {} < {total}", stats.points);
        let finals = collect_finalized(&events);
        assert_eq!(finals.len(), batch.len(), "a session vanished: {rs:?}");
        for (sid, t) in batch.iter().enumerate() {
            let (reason, result) = &finals[&(sid as SessionId)];
            assert_eq!(*reason, FinalizeReason::Explicit);
            assert_eq!(
                *result,
                hmm.match_trajectory(t),
                "session {sid} diverged after crash recovery"
            );
        }
    }

    /// Past the restart budget the engine degrades loudly, not silently:
    /// pushes fail, the lost session is counted, and the event channel
    /// reports `Disconnected` instead of an indistinguishable timeout.
    #[test]
    fn exhausted_restart_budget_reports_dead_engine() {
        FaultPlan::silence_injected_panics();
        let (hmm, batch) = world();
        let plan = FaultPlan::panics(7, 1000, u32::MAX); // every command panics
        let engine = StreamEngine::with_faults(
            hmm,
            StreamOptions::with_threads(1).idle_timeout_s(0.0).max_worker_restarts(0),
            plan,
        );
        let t = &batch[0];
        // Keep pushing until the supervisor notices the corpse and marks
        // the only worker slot permanently failed.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut accepted = true;
        while accepted && Instant::now() < deadline {
            accepted = engine.push(5, t.points[0]);
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(!accepted, "push must fail once every worker is gone");
        let rs = engine.router_stats();
        assert_eq!(rs.worker_restarts, 0, "budget of zero allows no respawn");
        assert_eq!(rs.sessions_lost, 1, "the lost session must be counted: {rs:?}");
        assert_eq!(
            engine.recv_event_timeout(Duration::from_millis(50)),
            Err(RecvEventError::Disconnected)
        );
        let (_, stats) = engine.shutdown();
        assert_eq!(stats.points, 0, "every command panicked before decoding");
    }

    /// Regression for the Disconnected handling gap: a consumer that only
    /// calls `recv_event_timeout` (no pushes, no stats — the shape of an
    /// ingest front-end's event pump) must, after every worker has
    /// permanently failed, still observe every `Finalized` the engine
    /// produced before dying and then get `Disconnected` — never a hang,
    /// and never a finish that is neither delivered nor counted lost.
    #[test]
    fn events_only_consumer_observes_every_finish_after_total_worker_failure() {
        FaultPlan::silence_injected_panics();
        let (hmm, batch) = world();
        let plan = FaultPlan::panics(0x5EED_F00D, 120, 1);
        let engine = StreamEngine::with_faults(
            hmm,
            StreamOptions::with_threads(1)
                .idle_timeout_s(0.0)
                .max_worker_restarts(0)
                .push_timeout_s(0.2),
            plan,
        );
        // Finish each trip right after its points: early trips finalize
        // before the injected death, later ones die with the worker.
        let mut engaged = 0u64; // sessions the engine accepted points for
        for (sid, t) in batch.iter().enumerate() {
            let mut accepted = 0usize;
            for &p in &t.points {
                if !engine.push(sid as SessionId, p) {
                    break;
                }
                accepted += 1;
            }
            if accepted > 0 {
                engaged += 1;
                engine.finish(sid as SessionId);
            }
        }
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut finalized = 0u64;
        loop {
            assert!(
                Instant::now() < deadline,
                "events-only consumer hung after total worker failure"
            );
            match engine.recv_event_timeout(Duration::from_millis(50)) {
                Ok(StreamEvent::Finalized { .. }) => finalized += 1,
                Ok(StreamEvent::Update { .. }) | Err(RecvEventError::Timeout) => {}
                Err(RecvEventError::Disconnected) => break,
            }
        }
        let rs = engine.router_stats();
        assert!(rs.sessions_lost >= 1, "the injected death must cost something: {rs:?}");
        assert_eq!(
            finalized + rs.sessions_lost,
            engaged,
            "every finish must be delivered or loudly counted lost: {rs:?}"
        );
        assert!(finalized >= 1, "trips finished before the crash must still be delivered");
        let _ = engine.shutdown();
    }

    /// Rolling-restart handoff: drain a live engine to snapshots, restore
    /// them on a successor, continue the streams — the finals are
    /// bitwise-identical to never having stopped.
    #[test]
    fn drain_snapshots_then_restore_resumes_identically() {
        let (hmm, batch) = world();
        let opts = || StreamOptions::with_threads(2).idle_timeout_s(0.0);
        let first = StreamEngine::new(hmm.clone(), opts());
        for (sid, t) in batch.iter().enumerate() {
            for &p in &t.points[..t.len() / 2] {
                assert!(first.push(sid as SessionId, p));
            }
        }
        // One session mid-migration at drain time: the drain must resolve
        // it rather than skip or split it.
        first.migrate(0, 1);
        let mut snaps = first.drain_snapshots(Duration::from_secs(10));
        assert_eq!(snaps.len(), batch.len(), "every live session drains");
        assert!(
            first.drain_snapshots(Duration::from_secs(1)).is_empty(),
            "drained sessions left the engine"
        );
        let (events, _) = first.shutdown();
        assert!(
            !events.iter().any(|e| matches!(e, StreamEvent::Finalized { .. })),
            "drained sessions must not also finalize"
        );
        // The envelope survives a byte round-trip (what a process restart
        // would persist and reload).
        snaps = snaps
            .iter()
            .map(|s| {
                SessionSnapshot::decode(&s.encode().expect("envelope encodes"))
                    .expect("envelope round-trips")
            })
            .collect();
        let second = StreamEngine::new(hmm.clone(), opts());
        assert_eq!(second.restore(&snaps), Ok(batch.len()));
        for (sid, t) in batch.iter().enumerate() {
            for &p in &t.points[t.len() / 2..] {
                assert!(second.push(sid as SessionId, p));
            }
            assert!(second.finish(sid as SessionId));
        }
        let (events, stats) = second.shutdown();
        let finals = collect_finalized(&events);
        assert_eq!(finals.len(), batch.len());
        for (sid, t) in batch.iter().enumerate() {
            let (reason, result) = &finals[&(sid as SessionId)];
            assert_eq!(*reason, FinalizeReason::Explicit);
            assert_eq!(
                *result,
                hmm.match_trajectory(t),
                "session {sid} diverged across the engine handoff"
            );
        }
        // Only the post-restore points were decoded here; the updates'
        // seq numbers continued from the snapshot (no overlap, no gap).
        let second_half: u64 = batch.iter().map(|t| (t.len() - t.len() / 2) as u64).sum();
        assert_eq!(stats.points, second_half);
    }

    /// Restore guards: a snapshot from one matcher cannot thaw into
    /// another, and a live session id cannot be overwritten.
    #[test]
    fn restore_rejects_wrong_matcher_and_live_ids() {
        let (hmm, batch) = world();
        let engine = StreamEngine::new(hmm.clone(), StreamOptions::with_threads(1));
        for &p in &batch[0].points[..2] {
            assert!(engine.push(4, p));
        }
        let snaps = engine.drain_snapshots(Duration::from_secs(10));
        assert_eq!(snaps.len(), 1);
        let wrong = SessionSnapshot { matcher: "Nearest".to_string(), ..snaps[0].clone() };
        assert!(matches!(engine.restore(&[wrong]), Err(SnapshotError::WrongMatcher { .. })));
        assert_eq!(engine.restore(&snaps), Ok(1));
        assert!(engine.restore(&snaps).is_err(), "session 4 is live again");
        assert!(engine.finish(4));
        let (events, _) = engine.shutdown();
        let finals = collect_finalized(&events);
        assert_eq!(
            finals[&4].1,
            hmm.match_trajectory(&Trajectory { points: batch[0].points[..2].to_vec() })
        );
    }
}
