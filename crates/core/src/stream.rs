//! The streaming session engine: thousands of live [`OnlineMatcher`]
//! sessions multiplexed across a worker pool.
//!
//! The batch engine ([`crate::batch`]) answers "here are 10 000 complete
//! trajectories"; this module answers the production-shaped inverse — an
//! interleaved point stream from many concurrent devices, each device
//! wanting a provisional match per point and a final route when its trip
//! ends (or goes quiet). Large-scale matchers get their throughput from
//! keeping per-trajectory search state warm across updates (Fiedler et
//! al., 2019); here that state is the per-session decoder
//! ([`OnlineMatcher::Session`]) plus the per-worker scratch
//! (`SsspPool`/kNN heaps/autograd tape) every session on that worker
//! shares.
//!
//! **Architecture.** [`StreamEngine::new`] spawns `threads` workers, each
//! owning a bounded command queue, one scratch, and a session table.
//! [`StreamEngine::push`] routes a `(session id, point)` pair to the
//! worker `id % threads` — points of *different* sessions may arrive in
//! any interleaving, while each session's points stay in arrival order on
//! its home worker. Every processed point emits a
//! [`StreamEvent::Update`] (provisional match + stabilized-prefix
//! watermark + worker-side processing time) on the engine's event channel;
//! [`StreamEngine::finish`], idle eviction, and [`StreamEngine::shutdown`]
//! emit [`StreamEvent::Finalized`] with the full offline-equivalent
//! [`MatchResult`].
//!
//! **Lifecycle and guarantees.**
//!
//! * A session is created implicitly by the first point carrying its id
//!   and destroyed by whichever comes first: an explicit `finish`, going
//!   idle longer than [`StreamOptions::idle_timeout_s`]
//!   (finalize-on-timeout — the trip is assumed over), or engine
//!   shutdown. Each destruction finalizes the decoder and reports the
//!   [`FinalizeReason`].
//! * Within a session, points must advance in time: a point whose
//!   timestamp is not strictly newer than the session's last accepted
//!   point is counted in [`StreamStats::late_dropped`] and skipped (the
//!   incremental decoders cannot un-push evidence).
//! * Decoding is a pure function of (model, point sequence), so for any
//!   thread count and any cross-session interleaving, a session's
//!   finalized result is identical to the offline
//!   `match_trajectory` on the same points — property-tested in
//!   `tests/props_streaming.rs`.

use std::collections::HashMap;
use std::sync::mpsc::{channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use trmma_traj::api::MatchResult;
use trmma_traj::online::{OnlineMatcher, OnlineUpdate};
use trmma_traj::types::GpsPoint;

/// Identifies one live trajectory (one device/trip) within the engine.
pub type SessionId = u64;

/// Tuning knobs of the streaming engine.
///
/// Mirrors [`crate::BatchOptions`]: zero-config by default, an explicit
/// thread count via [`StreamOptions::with_threads`], and chainable builder
/// methods for the rest.
///
/// ```
/// use trmma_core::StreamOptions;
///
/// // Default: hardware threads, 30 s idle eviction, 1024-deep queues.
/// let opts = StreamOptions::default();
/// assert_eq!(opts.threads, 0); // 0 = available_parallelism
///
/// // Builder style, mirroring `BatchOptions::with_threads`:
/// let opts = StreamOptions::with_threads(4).idle_timeout_s(5.0).queue_capacity(256);
/// assert_eq!(opts.threads, 4);
/// assert_eq!(opts.effective_threads(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamOptions {
    /// Worker threads; `0` uses [`std::thread::available_parallelism`].
    pub threads: usize,
    /// Sessions idle longer than this are finalized and evicted
    /// (finalize-on-timeout). `0` or non-finite disables eviction.
    pub idle_timeout_s: f64,
    /// Bound of each worker's command queue — the engine's backpressure:
    /// [`StreamEngine::push`] blocks while the target worker is this far
    /// behind.
    pub queue_capacity: usize,
}

impl Default for StreamOptions {
    fn default() -> Self {
        Self { threads: 0, idle_timeout_s: 30.0, queue_capacity: 1024 }
    }
}

impl StreamOptions {
    /// An explicit thread count (`0` = auto), other knobs at their
    /// defaults — the same shape as [`crate::BatchOptions::with_threads`].
    ///
    /// ```
    /// use trmma_core::StreamOptions;
    /// assert_eq!(StreamOptions::with_threads(2).threads, 2);
    /// ```
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self { threads, ..Self::default() }
    }

    /// Sets the idle-eviction timeout in seconds (`0` disables eviction).
    #[must_use]
    pub fn idle_timeout_s(mut self, seconds: f64) -> Self {
        self.idle_timeout_s = seconds;
        self
    }

    /// Sets the per-worker command-queue bound (minimum 1).
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// The worker count the engine will spawn.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        }
    }

    /// The idle timeout as a duration, if eviction is enabled.
    fn idle_timeout(&self) -> Option<Duration> {
        (self.idle_timeout_s.is_finite() && self.idle_timeout_s > 0.0)
            .then(|| Duration::from_secs_f64(self.idle_timeout_s))
    }
}

/// Why a session was finalized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinalizeReason {
    /// The caller ended the trip via [`StreamEngine::finish`].
    Explicit,
    /// The session went quiet longer than [`StreamOptions::idle_timeout_s`].
    IdleTimeout,
    /// The engine was shut down with the session still live.
    Shutdown,
}

/// What the engine reports back on its event channel.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// One GPS point was decoded into the session.
    Update {
        /// The session the point belonged to.
        session: SessionId,
        /// Zero-based index of the point within its session.
        seq: usize,
        /// Provisional match + stabilized-prefix watermark.
        update: OnlineUpdate,
        /// Worker-side seconds spent decoding this point (the per-point
        /// latency the streaming benchmark reports quantiles of).
        proc_s: f64,
    },
    /// A session ended; `result` is identical to the offline
    /// `match_trajectory` over the session's accepted points.
    Finalized {
        /// The session that ended.
        session: SessionId,
        /// What ended it.
        reason: FinalizeReason,
        /// Number of points the session decoded.
        points: usize,
        /// The final matched points and stitched route.
        result: MatchResult,
    },
}

/// Aggregate counters of one engine run (summed over workers at shutdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Points decoded (late-dropped points excluded).
    pub points: u64,
    /// Sessions implicitly opened by their first point.
    pub sessions_opened: u64,
    /// Sessions finalized by [`StreamEngine::finish`].
    pub finalized_explicit: u64,
    /// Sessions finalized by idle eviction.
    pub finalized_idle: u64,
    /// Sessions finalized live at shutdown.
    pub finalized_shutdown: u64,
    /// Points rejected for running backwards in time within their session.
    pub late_dropped: u64,
}

impl StreamStats {
    /// Sessions finalized for any reason.
    #[must_use]
    pub fn finalized(&self) -> u64 {
        self.finalized_explicit + self.finalized_idle + self.finalized_shutdown
    }

    fn merge(&mut self, other: StreamStats) {
        self.points += other.points;
        self.sessions_opened += other.sessions_opened;
        self.finalized_explicit += other.finalized_explicit;
        self.finalized_idle += other.finalized_idle;
        self.finalized_shutdown += other.finalized_shutdown;
        self.late_dropped += other.late_dropped;
    }
}

enum Cmd {
    Push { session: SessionId, point: GpsPoint },
    Finish { session: SessionId },
}

struct Live<S> {
    session: S,
    seq: usize,
    last_t: f64,
    last_seen: Instant,
}

fn finalize_one<M: OnlineMatcher>(
    matcher: &M,
    scratch: &mut M::Scratch,
    id: SessionId,
    live: Live<M::Session>,
    reason: FinalizeReason,
    events: &Sender<StreamEvent>,
) {
    let result = matcher.finalize(scratch, live.session);
    let _ = events.send(StreamEvent::Finalized { session: id, reason, points: live.seq, result });
}

fn worker_loop<M: OnlineMatcher>(
    matcher: &M,
    rx: &Receiver<Cmd>,
    events: &Sender<StreamEvent>,
    idle: Option<Duration>,
) -> StreamStats {
    let mut scratch = matcher.make_scratch();
    let mut live: HashMap<SessionId, Live<M::Session>> = HashMap::new();
    let mut stats = StreamStats::default();
    // The tick bounds both how long a quiet worker sleeps between idle
    // sweeps and how often a busy one pays the O(live sessions) sweep.
    let tick = idle.map_or(Duration::from_millis(500), |d| {
        (d / 4).clamp(Duration::from_millis(5), Duration::from_millis(500))
    });
    let mut last_sweep = Instant::now();
    loop {
        match rx.recv_timeout(tick) {
            Ok(Cmd::Push { session, point }) => {
                let entry = live.entry(session).or_insert_with(|| {
                    stats.sessions_opened += 1;
                    Live {
                        session: matcher.begin_session(),
                        seq: 0,
                        last_t: f64::NEG_INFINITY,
                        last_seen: Instant::now(),
                    }
                });
                entry.last_seen = Instant::now();
                if point.t <= entry.last_t {
                    stats.late_dropped += 1;
                } else {
                    let t0 = Instant::now();
                    let update = matcher.push_point(&mut scratch, &mut entry.session, point);
                    let proc_s = t0.elapsed().as_secs_f64();
                    entry.last_t = point.t;
                    let seq = entry.seq;
                    entry.seq += 1;
                    stats.points += 1;
                    let _ = events.send(StreamEvent::Update { session, seq, update, proc_s });
                }
            }
            Ok(Cmd::Finish { session }) => {
                if let Some(l) = live.remove(&session) {
                    finalize_one(
                        matcher,
                        &mut scratch,
                        session,
                        l,
                        FinalizeReason::Explicit,
                        events,
                    );
                    stats.finalized_explicit += 1;
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        if let Some(idle) = idle {
            if last_sweep.elapsed() >= tick {
                last_sweep = Instant::now();
                let now = Instant::now();
                let expired: Vec<SessionId> = live
                    .iter()
                    .filter(|(_, l)| now.duration_since(l.last_seen) >= idle)
                    .map(|(&id, _)| id)
                    .collect();
                for id in expired {
                    let l = live.remove(&id).expect("expired session is live");
                    finalize_one(matcher, &mut scratch, id, l, FinalizeReason::IdleTimeout, events);
                    stats.finalized_idle += 1;
                }
            }
        }
    }
    // Engine dropped its senders: flush every remaining session.
    for (id, l) in live.drain() {
        finalize_one(matcher, &mut scratch, id, l, FinalizeReason::Shutdown, events);
        stats.finalized_shutdown += 1;
    }
    stats
}

/// The multiplexer; see module docs for the architecture and guarantees.
pub struct StreamEngine<M: OnlineMatcher + 'static> {
    matcher: Arc<M>,
    txs: Vec<SyncSender<Cmd>>,
    events: Receiver<StreamEvent>,
    handles: Vec<JoinHandle<StreamStats>>,
}

impl<M: OnlineMatcher + 'static> StreamEngine<M> {
    /// Spawns the worker pool around a shared matcher.
    #[must_use]
    pub fn new(matcher: Arc<M>, opts: StreamOptions) -> Self {
        let threads = opts.effective_threads().max(1);
        let idle = opts.idle_timeout();
        let (etx, events) = channel();
        let mut txs = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (tx, rx) = sync_channel(opts.queue_capacity.max(1));
            let m = matcher.clone();
            let e = etx.clone();
            handles.push(std::thread::spawn(move || worker_loop(&*m, &rx, &e, idle)));
            txs.push(tx);
        }
        Self { matcher, txs, events, handles }
    }

    /// The shared model.
    #[must_use]
    pub fn matcher(&self) -> &M {
        &self.matcher
    }

    /// Worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.txs.len()
    }

    #[allow(clippy::cast_possible_truncation)]
    fn route(&self, session: SessionId) -> &SyncSender<Cmd> {
        &self.txs[(session % self.txs.len() as u64) as usize]
    }

    /// Feeds the next point of `session` (opening it if unseen), blocking
    /// while the session's home worker queue is full. Returns `false` if
    /// the worker is gone (it panicked — shutdown will surface that).
    pub fn push(&self, session: SessionId, point: GpsPoint) -> bool {
        self.route(session).send(Cmd::Push { session, point }).is_ok()
    }

    /// Ends `session` explicitly: its final decode arrives as a
    /// [`StreamEvent::Finalized`]. Unknown ids are ignored (the trip may
    /// already have been evicted).
    pub fn finish(&self, session: SessionId) -> bool {
        self.route(session).send(Cmd::Finish { session }).is_ok()
    }

    /// Drains every event currently buffered, without blocking. Call
    /// periodically — the event channel is unbounded, so an undrained
    /// engine buffers one update per pushed point.
    pub fn poll_events(&self) -> Vec<StreamEvent> {
        self.events.try_iter().collect()
    }

    /// Blocks up to `timeout` for one event.
    pub fn recv_event_timeout(&self, timeout: Duration) -> Option<StreamEvent> {
        self.events.recv_timeout(timeout).ok()
    }

    /// Stops intake, finalizes every live session (reason
    /// [`FinalizeReason::Shutdown`]), joins the workers and returns the
    /// events not yet polled plus the aggregate counters.
    ///
    /// # Panics
    /// Propagates a worker panic (a matcher implementation bug).
    #[must_use]
    pub fn shutdown(self) -> (Vec<StreamEvent>, StreamStats) {
        drop(self.txs);
        let mut stats = StreamStats::default();
        for h in self.handles {
            stats.merge(h.join().expect("stream worker panicked"));
        }
        // Workers are joined, so every in-flight event is buffered by now.
        let events = self.events.try_iter().collect();
        (events, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use trmma_baselines::{HmmConfig, HmmMatcher};
    use trmma_roadnet::RoutePlanner;
    use trmma_traj::dataset::{build_dataset, DatasetConfig, Split};
    use trmma_traj::types::Trajectory;
    use trmma_traj::MapMatcher;

    fn world() -> (Arc<HmmMatcher>, Vec<Trajectory>) {
        let ds = build_dataset(&DatasetConfig::tiny());
        let net = Arc::new(ds.net.clone());
        let planner = Arc::new(RoutePlanner::untrained(&net));
        let hmm = Arc::new(HmmMatcher::new(net, planner, HmmConfig::default()));
        let batch: Vec<Trajectory> =
            ds.samples(Split::Test, 0.2, 21).into_iter().take(4).map(|s| s.sparse).collect();
        (hmm, batch)
    }

    fn collect_finalized(
        events: &[StreamEvent],
    ) -> HashMap<SessionId, (FinalizeReason, MatchResult)> {
        events
            .iter()
            .filter_map(|e| match e {
                StreamEvent::Finalized { session, reason, result, .. } => {
                    Some((*session, (*reason, result.clone())))
                }
                StreamEvent::Update { .. } => None,
            })
            .collect()
    }

    #[test]
    fn interleaved_sessions_finalize_to_offline_results() {
        let (hmm, batch) = world();
        let engine =
            StreamEngine::new(hmm.clone(), StreamOptions::with_threads(3).idle_timeout_s(0.0));
        // Round-robin interleave all sessions' points.
        let longest = batch.iter().map(Trajectory::len).max().unwrap();
        for i in 0..longest {
            for (sid, t) in batch.iter().enumerate() {
                if let Some(&p) = t.points.get(i) {
                    assert!(engine.push(sid as SessionId, p));
                }
            }
        }
        for sid in 0..batch.len() {
            engine.finish(sid as SessionId);
        }
        let (events, stats) = engine.shutdown();
        let finals = collect_finalized(&events);
        assert_eq!(finals.len(), batch.len());
        for (sid, t) in batch.iter().enumerate() {
            let (reason, result) = &finals[&(sid as SessionId)];
            assert_eq!(*reason, FinalizeReason::Explicit);
            assert_eq!(*result, hmm.match_trajectory(t), "session {sid} diverged from offline");
        }
        let total_points: u64 = batch.iter().map(|t| t.len() as u64).sum();
        assert_eq!(stats.points, total_points);
        assert_eq!(stats.sessions_opened, batch.len() as u64);
        assert_eq!(stats.finalized(), batch.len() as u64);
        assert_eq!(stats.late_dropped, 0);
        // One update per accepted point, each with a provisional match.
        let updates =
            events.iter().filter(|e| matches!(e, StreamEvent::Update { .. })).count() as u64;
        assert_eq!(updates, total_points);
    }

    #[test]
    fn unfinished_sessions_flush_on_shutdown() {
        let (hmm, batch) = world();
        let engine = StreamEngine::new(hmm.clone(), StreamOptions::with_threads(2));
        for (sid, t) in batch.iter().enumerate() {
            for &p in &t.points {
                engine.push(sid as SessionId, p);
            }
        }
        let (events, stats) = engine.shutdown();
        let finals = collect_finalized(&events);
        assert_eq!(finals.len(), batch.len());
        for (sid, t) in batch.iter().enumerate() {
            let (reason, result) = &finals[&(sid as SessionId)];
            assert_eq!(*reason, FinalizeReason::Shutdown);
            assert_eq!(*result, hmm.match_trajectory(t));
        }
        assert_eq!(stats.finalized_shutdown, batch.len() as u64);
    }

    #[test]
    fn idle_sessions_are_finalized_on_timeout() {
        let (hmm, batch) = world();
        let engine =
            StreamEngine::new(hmm.clone(), StreamOptions::with_threads(1).idle_timeout_s(0.05));
        let t = &batch[0];
        for &p in &t.points {
            engine.push(7, p);
        }
        // Wait (generously) for the idle sweep to fire.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut finalized = None;
        while finalized.is_none() && Instant::now() < deadline {
            for e in engine.poll_events() {
                if let StreamEvent::Finalized { session, reason, result, .. } = e {
                    finalized = Some((session, reason, result));
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let (session, reason, result) = finalized.expect("idle session never evicted");
        assert_eq!(session, 7);
        assert_eq!(reason, FinalizeReason::IdleTimeout);
        assert_eq!(result, hmm.match_trajectory(t));
        let (_, stats) = engine.shutdown();
        assert_eq!(stats.finalized_idle, 1);
        assert_eq!(stats.finalized(), 1);
    }

    #[test]
    fn late_points_are_dropped_not_decoded() {
        let (hmm, batch) = world();
        let engine =
            StreamEngine::new(hmm.clone(), StreamOptions::with_threads(2).idle_timeout_s(0.0));
        let t = &batch[0];
        for &p in &t.points {
            engine.push(1, p);
        }
        // Replay the first half again: all strictly older than last_t.
        let stale = t.len() / 2;
        for &p in &t.points[..stale] {
            engine.push(1, p);
        }
        engine.finish(1);
        let (events, stats) = engine.shutdown();
        assert_eq!(stats.late_dropped, stale as u64);
        assert_eq!(stats.points, t.len() as u64);
        let finals = collect_finalized(&events);
        assert_eq!(finals[&1].1, hmm.match_trajectory(t), "late points must not perturb decode");
    }

    #[test]
    fn finish_of_unknown_session_is_a_noop() {
        let (hmm, _) = world();
        let engine = StreamEngine::new(hmm, StreamOptions::with_threads(2));
        assert!(engine.finish(99));
        let (events, stats) = engine.shutdown();
        assert!(events.is_empty());
        assert_eq!(stats, StreamStats::default());
    }

    #[test]
    fn options_builder_and_defaults() {
        let d = StreamOptions::default();
        assert_eq!(d.threads, 0);
        assert!(d.effective_threads() >= 1);
        let o = StreamOptions::with_threads(3).idle_timeout_s(0.0).queue_capacity(0);
        assert_eq!(o.effective_threads(), 3);
        assert_eq!(o.queue_capacity, 1, "capacity clamps to 1");
        assert!(o.idle_timeout().is_none(), "0 disables eviction");
        assert!(StreamOptions::default().idle_timeout().is_some());
    }
}
