//! MMA: map matching as classification over a small candidate set (§IV).

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use trmma_baselines::TrainReport;
use trmma_geom::{cosine_similarity, BBox, Vec2};
use trmma_nn::{Adam, Graph, Linear, Matrix, Mlp, NodeId, Param, TransformerEncoder};
use trmma_roadnet::{RoadNetwork, RoutePlanner};
use trmma_traj::api::{
    stitch_route, Candidate, CandidateFinder, CandidateScratch, MapMatcher, MatchResult,
    ScratchMatcher,
};
use trmma_traj::online::{OnlineMatcher, OnlineUpdate};
use trmma_traj::snapshot::{self, Reader, SnapshotError};
use trmma_traj::types::{GpsPoint, MatchedPoint, Trajectory};
use trmma_traj::Sample;

/// Reusable per-worker inference state for [`Mma`]: the autograd tape, the
/// candidate-search buffers, per-trajectory candidate-set rows and the
/// per-point staging buffers of the forward pass. One instance serves any
/// number of trajectories; the batch engine keeps one per worker thread.
#[derive(Default)]
pub struct MmaScratch {
    graph: Graph,
    cand: CandidateScratch,
    /// Scratch-owned candidate rows for the offline decode, cleared and
    /// refilled per trajectory with their capacity kept.
    cand_sets: Vec<Vec<Candidate>>,
    bufs: MmaBufs,
}

impl MmaScratch {
    /// Empty scratch state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Heap allocations the scratch's reusable rows and staging buffers
    /// have absorbed so far.
    #[must_use]
    pub fn allocs_avoided(&self) -> u64 {
        self.bufs.reused
    }
}

/// Per-point staging buffers of [`Mma::forward_cached`]: the candidate-id
/// row, the flat direction-feature row and the all-zero repeat-gather index
/// row are rebuilt in place per point instead of allocated. (Tape-node
/// storage itself is deliberately *not* pooled — a matrix pool here was
/// measured slower than the allocator, DESIGN.md §3.)
#[derive(Default)]
struct MmaBufs {
    ids: Vec<usize>,
    rep0: Vec<usize>,
    /// Rebuilds that found the capacity already in place — the scratch's
    /// share of the avoided-allocation counters.
    reused: u64,
}

/// Hyper-parameters of MMA (§VI-A lists the paper's settings; defaults
/// follow them with the FFN width scaled to the synthetic data size).
#[derive(Debug, Clone)]
pub struct MmaConfig {
    /// Candidate-set size `kc` (paper: 10, from the Fig. 2 analysis).
    pub kc: usize,
    /// Segment-embedding width `d0` (Eq. 1; paper: 64).
    pub d0: usize,
    /// Candidate-MLP hidden width `d1` (Eq. 2; paper: 128).
    pub d1: usize,
    /// Embedding width `d2` shared by points and candidates (paper: 64).
    pub d2: usize,
    /// Attention-MLP hidden width `d3` (Eq. 7; paper: 256).
    pub d3: usize,
    /// Transformer depth (paper: 2) and heads (paper: 4).
    pub n_layers: usize,
    /// Attention heads.
    pub n_heads: usize,
    /// Transformer FFN width.
    pub ffn: usize,
    /// Adam learning rate (paper: 1e-3).
    pub lr: f64,
    /// Trajectories per optimiser step (gradient accumulation; the paper
    /// uses batched training). Adam's scale invariance makes accumulation
    /// equivalent to averaging.
    pub batch_size: usize,
    /// Init/shuffle seed.
    pub seed: u64,
    /// Ablation `TRMMA-C`: drop the candidate-context term of Eq. 8.
    pub use_candidate_context: bool,
    /// Ablation `TRMMA-DI`: zero the four directional cosines of Eq. 2.
    pub use_direction: bool,
    /// Include the normalised perpendicular distance as a fifth candidate
    /// feature. The paper's Eq. 2 uses only the four cosines — its corpora
    /// are large enough for the id embeddings to encode geometry — but at
    /// laptop-scale training the model cannot relearn the quantity §IV-A
    /// itself ranks candidates by, so we feed it explicitly (documented
    /// substitution, DESIGN.md §1).
    pub use_distance: bool,
}

impl Default for MmaConfig {
    fn default() -> Self {
        Self {
            kc: 10,
            d0: 64,
            d1: 128,
            d2: 64,
            d3: 128,
            n_layers: 2,
            n_heads: 4,
            ffn: 128,
            lr: 1e-3,
            batch_size: 8,
            seed: 17,
            use_candidate_context: true,
            use_direction: true,
            use_distance: true,
        }
    }
}

impl MmaConfig {
    /// A small configuration for tests and quick examples.
    #[must_use]
    pub fn small() -> Self {
        Self { d0: 24, d1: 32, d2: 24, d3: 32, ffn: 48, n_heads: 2, ..Self::default() }
    }
}

/// The MMA map matcher (Algorithm 1). See crate docs.
pub struct Mma {
    net: Arc<RoadNetwork>,
    planner: Arc<RoutePlanner>,
    finder: CandidateFinder,
    bbox: BBox,
    cfg: MmaConfig,
    /// `W_C` of Eq. 1 — segment id embedding table, Node2Vec-initialised.
    w_c: Linear,
    /// The MLP of Eq. 2.
    cand_mlp: Mlp,
    /// `W_3, b_3` — GPS feature projection.
    point_fc: Linear,
    /// The transformer of Eq. 3.
    encoder: TransformerEncoder,
    /// The attention MLP of Eq. 7.
    attn_mlp: Mlp,
    params: Vec<Param>,
}

impl Mma {
    /// Builds MMA over `net`. When `node2vec` is given (an
    /// `n × d0` matrix) the candidate table `W_C` is initialised from it per
    /// Eq. 1; otherwise Xavier initialisation is used.
    ///
    /// # Panics
    /// Panics if `node2vec` has the wrong shape.
    #[must_use]
    pub fn new(
        net: Arc<RoadNetwork>,
        planner: Arc<RoutePlanner>,
        node2vec: Option<Matrix>,
        cfg: MmaConfig,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = net.num_segments();
        let w_c = match node2vec {
            Some(m) => {
                assert_eq!(m.shape(), (n, cfg.d0), "node2vec shape must be n × d0");
                Linear::from_weights(m)
            }
            None => Linear::new_no_bias(n, cfg.d0, &mut rng),
        };
        let cand_mlp = Mlp::new(cfg.d0 + 5, cfg.d1, cfg.d2, &mut rng);
        let point_fc = Linear::new(3, cfg.d2, &mut rng);
        let encoder = TransformerEncoder::new(cfg.d2, cfg.n_heads, cfg.ffn, cfg.n_layers, &mut rng);
        let attn_mlp = Mlp::new(2 * cfg.d2, cfg.d3, 1, &mut rng);
        let mut params = Vec::new();
        params.extend(w_c.params());
        params.extend(cand_mlp.params());
        params.extend(point_fc.params());
        params.extend(encoder.params());
        params.extend(attn_mlp.params());
        let finder = CandidateFinder::new(&net, cfg.kc);
        let bbox = net.bbox();
        Self { net, planner, finder, bbox, cfg, w_c, cand_mlp, point_fc, encoder, attn_mlp, params }
    }

    /// Builds MMA on a sharded network: weights are initialised exactly as
    /// [`Mma::new`] over the underlying whole network (the RNG draws are
    /// untouched by the finder swap, so all layers are bitwise-identical),
    /// while candidate search merges the per-shard R-trees. Route stitching
    /// stays on the global planner.
    ///
    /// # Panics
    /// Panics if `node2vec` has the wrong shape.
    #[must_use]
    pub fn sharded(
        sharded: Arc<trmma_roadnet::ShardedNetwork>,
        planner: Arc<RoutePlanner>,
        node2vec: Option<Matrix>,
        cfg: MmaConfig,
    ) -> Self {
        let mut mma = Self::new(Arc::clone(sharded.net()), planner, node2vec, cfg);
        mma.finder = CandidateFinder::sharded(sharded, mma.cfg.kc);
        mma
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &MmaConfig {
        &self.cfg
    }

    /// Total scalar weights.
    #[must_use]
    pub fn num_weights(&self) -> usize {
        trmma_nn::param::total_weights(&self.params)
    }

    /// The candidate finder (shared with analyses such as Fig. 2).
    #[must_use]
    pub fn finder(&self) -> &CandidateFinder {
        &self.finder
    }

    /// Min-max normalised `[x, y, t]` features (Eq. 3's `z(0)`).
    fn norm_features(&self, traj: &Trajectory) -> Matrix {
        let w = (self.bbox.max.x - self.bbox.min.x).max(1.0);
        let h = (self.bbox.max.y - self.bbox.min.y).max(1.0);
        let t0 = traj.points.first().map_or(0.0, |p| p.t);
        let dur = traj.duration_s().max(1.0);
        let rows: Vec<Vec<f64>> = traj
            .points
            .iter()
            .map(|p| {
                vec![
                    (p.pos.x - self.bbox.min.x) / w,
                    (p.pos.y - self.bbox.min.y) / h,
                    (p.t - t0) / dur,
                ]
            })
            .collect();
        Matrix::from_rows(&rows)
    }

    /// The four directional cosine features of Eq. 2 for candidate `c` of
    /// point `i`, plus the normalised perpendicular distance (see
    /// [`MmaConfig::use_distance`]).
    fn candidate_features(&self, traj: &Trajectory, i: usize, c: &Candidate) -> [f64; 5] {
        let dist = if self.cfg.use_distance { (c.dist_m / 30.0).min(4.0) } else { 0.0 };
        if !self.cfg.use_direction {
            return [0.0, 0.0, 0.0, 0.0, dist];
        }
        let seg = self.net.segment(c.seg);
        let dir = seg.line.direction();
        let p = traj.points[i].pos;
        let to_p = p - seg.line.a;
        let to_exit = seg.line.b - p;
        let from_prev = if i > 0 { p - traj.points[i - 1].pos } else { Vec2::default() };
        let to_next =
            if i + 1 < traj.points.len() { traj.points[i + 1].pos - p } else { Vec2::default() };
        [
            cosine_similarity(dir, to_p),
            cosine_similarity(dir, to_exit),
            cosine_similarity(dir, from_prev),
            cosine_similarity(dir, to_next),
            dist,
        ]
    }

    /// Forward pass over one trajectory: per point, the candidate set and
    /// the `kc × 1` logit column (`c_j · p_i` of Eq. 9). Candidate search
    /// runs through `cand` so callers can reuse its buffers across calls.
    fn forward(
        &self,
        g: &mut Graph,
        cand: &mut CandidateScratch,
        traj: &Trajectory,
    ) -> Vec<(Vec<Candidate>, NodeId)> {
        let mut cand_sets = Vec::with_capacity(traj.len());
        for p in &traj.points {
            let mut cands = Vec::with_capacity(self.cfg.kc);
            self.finder.candidates_into(p.pos, cand, &mut cands);
            cand_sets.push(cands);
        }
        let logits = self.forward_cached(g, &mut MmaBufs::default(), &cand_sets, traj);
        cand_sets.into_iter().zip(logits).collect()
    }

    /// [`Mma::forward`] with the per-point candidate sets already known —
    /// the shape the online session uses: candidates are ranked once when a
    /// point is pushed and carried forward, so re-encoding a growing prefix
    /// never repeats a kNN search. Scores are identical either way
    /// (candidate search is a pure function of the point).
    fn forward_cached(
        &self,
        g: &mut Graph,
        bufs: &mut MmaBufs,
        cand_sets: &[Vec<Candidate>],
        traj: &Trajectory,
    ) -> Vec<NodeId> {
        assert_eq!(cand_sets.len(), traj.len(), "one candidate set per GPS point");
        if traj.is_empty() {
            return Vec::new();
        }
        // Eq. 3: point sequence encoding.
        let feats = g.input(self.norm_features(traj));
        let z1 = self.point_fc.forward(g, feats);
        let z2 = self.encoder.forward(g, z1); // ℓ × d2

        let mut out = Vec::with_capacity(traj.points.len());
        for (i, cands) in cand_sets.iter().enumerate() {
            let kc = cands.len();
            // Eq. 1–2: candidate embeddings. The id row is staged in the
            // scratch buffer — same slice content as a freshly collected
            // Vec, no allocation in steady state.
            if bufs.ids.capacity() >= kc {
                bufs.reused += 1;
            }
            bufs.ids.clear();
            bufs.ids.extend(cands.iter().map(|c| c.seg.idx()));
            let e_c = self.w_c.embed(g, &bufs.ids); // kc × d0
            let mut dir_flat = Vec::with_capacity(cands.len() * 5);
            for c in cands {
                dir_flat.extend_from_slice(&self.candidate_features(traj, i, c));
            }
            let dirs = g.input(Matrix::from_vec(cands.len(), 5, dir_flat)); // kc × 5
            let z_c = g.concat_cols(&[e_c, dirs]);
            let c_emb = self.cand_mlp.forward(g, z_c); // kc × d2

            // Eq. 7–8: candidate-context attention into the point embedding.
            let z2_i = g.slice_rows(z2, i, 1); // 1 × d2
            let p_i = if self.cfg.use_candidate_context {
                // The repeat-gather index row is all zeros by definition;
                // the staged buffer only ever grows and is never written
                // with anything else.
                if bufs.rep0.len() < kc {
                    bufs.rep0.resize(kc, 0);
                } else {
                    bufs.reused += 1;
                }
                let z2_rep = g.gather_rows(z2_i, &bufs.rep0[..kc]); // kc × d2
                let cat = g.concat_cols(&[z2_rep, c_emb]);
                let scores = self.attn_mlp.forward(g, cat); // kc × 1
                let scores_row = g.transpose(scores); // 1 × kc
                let alpha = g.softmax_rows(scores_row); // 1 × kc
                let ctx = g.matmul(alpha, c_emb); // 1 × d2
                g.add(z2_i, ctx)
            } else {
                z2_i
            };

            // Eq. 9 logits: c_j · p_i for every candidate.
            let p_col = g.transpose(p_i); // d2 × 1
            let logits = g.matmul(c_emb, p_col); // kc × 1
            out.push(logits);
        }
        out
    }

    /// Forward pass plus BCE loss (Eq. 10) for one sample. Gradients are
    /// accumulated when `backward` is set; `None` for empty trajectories.
    fn sample_loss(&self, s: &Sample, backward: bool) -> Option<f64> {
        if s.sparse.is_empty() {
            return None;
        }
        let mut g = Graph::new();
        let mut cand = CandidateScratch::new();
        let per_point = self.forward(&mut g, &mut cand, &s.sparse);
        let mut logit_cols = Vec::new();
        let mut labels = Vec::new();
        for ((cands, logits), truth) in per_point.iter().zip(&s.sparse_truth) {
            logit_cols.push(*logits);
            for c in cands {
                labels.push(if c.seg == truth.seg { 1.0 } else { 0.0 });
            }
        }
        let all_logits = g.concat_rows(&logit_cols);
        let target = Matrix::from_vec(labels.len(), 1, labels);
        let loss = g.bce_with_logits(all_logits, target);
        if backward {
            g.backward(loss);
        }
        Some(g.value(loss).get(0, 0))
    }

    fn run_epoch(&self, samples: &[Sample], order: &[usize], opt: &mut Adam) -> f64 {
        let batch = self.cfg.batch_size.max(1);
        let mut loss_sum = 0.0;
        let mut count = 0usize;
        let mut in_batch = 0usize;
        opt.zero_grad();
        for &si in order {
            if let Some(loss) = self.sample_loss(&samples[si], true) {
                loss_sum += loss;
                count += 1;
                in_batch += 1;
                if in_batch == batch {
                    opt.step();
                    opt.zero_grad();
                    in_batch = 0;
                }
            }
        }
        if in_batch > 0 {
            opt.step();
            opt.zero_grad();
        }
        loss_sum / count.max(1) as f64
    }

    /// Mean BCE loss on held-out samples (no parameter updates).
    #[must_use]
    pub fn validation_loss(&self, samples: &[Sample]) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for s in samples {
            if let Some(l) = self.sample_loss(s, false) {
                total += l;
                count += 1;
            }
        }
        total / count.max(1) as f64
    }

    /// Trains with the BCE objective of Eq. 10, one Adam step per
    /// `batch_size` trajectories; labels come from each sample's
    /// ground-truth matched points.
    pub fn train(&mut self, samples: &[Sample], epochs: usize) -> TrainReport {
        let mut opt = Adam::new(self.params.clone(), self.cfg.lr);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x51_7E);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut report = TrainReport::default();
        for _epoch in 0..epochs {
            let started = Instant::now();
            order.shuffle(&mut rng);
            let mean = self.run_epoch(samples, &order, &mut opt);
            report.epoch_losses.push(mean);
            report.epoch_times_s.push(started.elapsed().as_secs_f64());
        }
        report
    }

    /// Trains with validation-based early stopping: keeps the weights of
    /// the best validation epoch, stopping after `patience` epochs without
    /// improvement ("all methods are trained to converge" with a 30 %
    /// validation split, §VI-A).
    pub fn train_early_stop(
        &mut self,
        train: &[Sample],
        val: &[Sample],
        max_epochs: usize,
        patience: usize,
    ) -> TrainReport {
        let mut opt = Adam::new(self.params.clone(), self.cfg.lr);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x51_7E);
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut report = TrainReport::default();
        let mut best = f64::INFINITY;
        let mut best_weights = trmma_nn::snapshot(&self.params);
        let mut bad = 0usize;
        for _epoch in 0..max_epochs {
            let started = Instant::now();
            order.shuffle(&mut rng);
            let mean = self.run_epoch(train, &order, &mut opt);
            report.epoch_losses.push(mean);
            report.epoch_times_s.push(started.elapsed().as_secs_f64());
            let vl = self.validation_loss(val);
            if vl < best {
                best = vl;
                best_weights = trmma_nn::snapshot(&self.params);
                bad = 0;
            } else {
                bad += 1;
                if bad > patience {
                    break;
                }
            }
        }
        trmma_nn::restore(&self.params, &best_weights);
        report
    }

    /// Serialises the trained weights (see [`trmma_nn::serialize`]).
    #[must_use]
    pub fn save_weights(&self) -> Vec<u8> {
        trmma_nn::save_params(&self.params).to_vec()
    }

    /// Loads weights produced by [`Mma::save_weights`] into a model of the
    /// same configuration.
    ///
    /// # Errors
    /// Fails (without modifying the model) on any header/shape mismatch.
    pub fn load_weights(&mut self, blob: &[u8]) -> Result<(), trmma_nn::LoadError> {
        trmma_nn::load_params(&self.params, blob)
    }

    /// Per-point matching without route stitching (Algorithm 1 lines 1–9).
    #[must_use]
    pub fn match_points(&self, traj: &Trajectory) -> Vec<MatchedPoint> {
        self.match_points_with(&mut MmaScratch::new(), traj)
    }

    /// [`Mma::match_points`] through caller-owned scratch state: the tape is
    /// reset (arena kept) instead of reallocated, and candidate search hits
    /// warm buffers. The batch engine's per-worker hot path.
    #[must_use]
    pub fn match_points_with(
        &self,
        scratch: &mut MmaScratch,
        traj: &Trajectory,
    ) -> Vec<MatchedPoint> {
        let MmaScratch { graph, cand, cand_sets, bufs } = scratch;
        // Refill the scratch-owned candidate rows in place: rows (and the
        // outer spine) keep their capacity from the previous trajectory, so
        // in steady state the whole search stage allocates nothing.
        bufs.reused += cand_sets.len().min(traj.len()) as u64;
        cand_sets.truncate(traj.len());
        while cand_sets.len() < traj.len() {
            cand_sets.push(Vec::with_capacity(self.cfg.kc));
        }
        for (p, row) in traj.points.iter().zip(cand_sets.iter_mut()) {
            self.finder.candidates_into(p.pos, cand, row);
        }
        self.decode_cached(graph, bufs, cand_sets, traj)
    }

    /// [`MapMatcher::match_trajectory`] through caller-owned scratch state.
    /// Bitwise-identical output to the trait method — the engine's
    /// determinism property test pins this down.
    #[must_use]
    pub fn match_trajectory_with(
        &self,
        scratch: &mut MmaScratch,
        traj: &Trajectory,
    ) -> MatchResult {
        let matched = self.match_points_with(scratch, traj);
        self.stitch(matched)
    }

    /// Per-point argmax over a prefix forward pass with cached candidate
    /// sets — the shared tail of the offline (freshly searched) and online
    /// (carried forward) decodes.
    fn match_points_cached(
        &self,
        scratch: &mut MmaScratch,
        cand_sets: &[Vec<Candidate>],
        traj: &Trajectory,
    ) -> Vec<MatchedPoint> {
        let MmaScratch { graph, bufs, .. } = scratch;
        self.decode_cached(graph, bufs, cand_sets, traj)
    }

    /// The decode core under both cached entry points, on disjoint borrows
    /// of the scratch so callers can pass scratch-owned candidate rows.
    /// Each logit column is a contiguous `kc × 1` buffer; the kernel argmax
    /// replays the strict-`>` first-max scan the loop here used to do.
    fn decode_cached(
        &self,
        graph: &mut Graph,
        bufs: &mut MmaBufs,
        cand_sets: &[Vec<Candidate>],
        traj: &Trajectory,
    ) -> Vec<MatchedPoint> {
        graph.reset();
        self.forward_cached(graph, bufs, cand_sets, traj)
            .into_iter()
            .zip(cand_sets)
            .zip(&traj.points)
            .map(|((logits, cands), p)| {
                let best = trmma_nn::kernels::argmax(graph.value(logits).data());
                MatchedPoint::new(cands[best].seg, cands[best].ratio, p.t)
            })
            .collect()
    }

    fn stitch(&self, matched: Vec<MatchedPoint>) -> MatchResult {
        stitch_route(&self.net, &self.planner, matched)
    }
}

impl MapMatcher for Mma {
    fn name(&self) -> &'static str {
        "MMA"
    }

    fn match_trajectory(&self, traj: &Trajectory) -> MatchResult {
        self.match_trajectory_with(&mut MmaScratch::new(), traj)
    }
}

/// Registers MMA with the pooled batch fan-out
/// (`trmma_core::batch::par_match_pooled`), the same per-worker-scratch
/// surface the baseline matchers expose.
impl ScratchMatcher for Mma {
    type Scratch = MmaScratch;

    fn make_scratch(&self) -> MmaScratch {
        MmaScratch::new()
    }

    fn scratch_stats(scratch: &MmaScratch) -> trmma_traj::ScratchStats {
        trmma_traj::ScratchStats { allocs_avoided: scratch.allocs_avoided() }
    }

    fn match_trajectory_with(&self, scratch: &mut MmaScratch, traj: &Trajectory) -> MatchResult {
        Mma::match_trajectory_with(self, scratch, traj)
    }
}

/// Per-session streaming state of MMA: the accumulated GPS prefix plus each
/// point's ranked candidate set, searched once at push time and carried
/// forward so neither the provisional re-encodes nor the final decode ever
/// repeat a kNN query.
#[derive(Debug, Clone, Default)]
pub struct MmaSession {
    traj: Trajectory,
    cand_sets: Vec<Vec<Candidate>>,
}

impl MmaSession {
    /// Points pushed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.traj.len()
    }

    /// Whether any point has been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.traj.is_empty()
    }
}

/// MMA as an online decoder. Unlike the HMM family, MMA's transformer
/// attends over the *whole* point sequence (Eq. 3) and its features are
/// normalised by the trajectory's full extent, so every new point can in
/// principle revise every earlier match: each push re-encodes the prefix
/// (with cached candidate sets) to produce the provisional match, and the
/// stabilized-prefix watermark honestly stays at 0 until `finalize` — the
/// watermark is a per-decoder *guarantee*, not a fixed schedule.
impl OnlineMatcher for Mma {
    type Session = MmaSession;

    fn begin_session(&self) -> MmaSession {
        MmaSession::default()
    }

    fn push_point(
        &self,
        scratch: &mut MmaScratch,
        session: &mut MmaSession,
        point: GpsPoint,
    ) -> OnlineUpdate {
        let mut cands = Vec::with_capacity(self.cfg.kc);
        self.finder.candidates_into(point.pos, &mut scratch.cand, &mut cands);
        session.traj.points.push(point);
        session.cand_sets.push(cands);
        let matched = self.match_points_cached(scratch, &session.cand_sets, &session.traj);
        OnlineUpdate { provisional: matched.last().copied(), stable_prefix: 0 }
    }

    fn finalize(&self, scratch: &mut MmaScratch, session: MmaSession) -> MatchResult {
        let matched = self.match_points_cached(scratch, &session.cand_sets, &session.traj);
        self.stitch(matched)
    }

    fn session_len(&self, session: &MmaSession) -> usize {
        session.traj.len()
    }

    fn session_watermark(&self, _session: &MmaSession) -> usize {
        // Global attention: nothing stabilizes before finalize (see above).
        0
    }

    fn snapshot_session(&self, session: &MmaSession, out: &mut Vec<u8>) {
        snapshot::put_trajectory(out, &session.traj);
        snapshot::put_cand_sets(out, &session.cand_sets);
    }

    fn restore_session(&self, bytes: &[u8]) -> Result<MmaSession, SnapshotError> {
        let mut r = Reader::new(bytes);
        let traj = snapshot::read_trajectory(&mut r)?;
        let cand_sets = snapshot::read_cand_sets(&mut r)?;
        if cand_sets.len() != traj.len() {
            return Err(SnapshotError::Malformed("candidate layers != points"));
        }
        r.expect_end()?;
        Ok(MmaSession { traj, cand_sets })
    }
}

/// A cheaply cloneable handle making a shared model usable as a matcher:
/// one trained [`Mma`] behind an `Arc` can be wired into a
/// [`crate::TrmmaPipeline`] *and* a [`crate::BatchMatcher`] simultaneously
/// without duplicating weights.
#[derive(Clone)]
pub struct SharedMma(pub Arc<Mma>);

impl MapMatcher for SharedMma {
    fn name(&self) -> &'static str {
        "MMA"
    }

    fn match_trajectory(&self, traj: &Trajectory) -> MatchResult {
        self.0.match_trajectory(traj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trmma_traj::dataset::{build_dataset, DatasetConfig, Split};
    use trmma_traj::metrics::matching_metrics;

    fn setup() -> (Arc<RoadNetwork>, Arc<RoutePlanner>, trmma_traj::Dataset) {
        let ds = build_dataset(&DatasetConfig::tiny());
        let net = Arc::new(ds.net.clone());
        let planner = Arc::new(RoutePlanner::untrained(&net));
        (net, planner, ds)
    }

    #[test]
    fn untrained_mma_produces_valid_output() {
        let (net, planner, ds) = setup();
        let mma = Mma::new(net.clone(), planner, None, MmaConfig::small());
        let s = &ds.samples(Split::Test, 0.2, 1)[0];
        let res = mma.match_trajectory(&s.sparse);
        assert_eq!(res.matched.len(), s.sparse.len());
        assert!(res.route.is_valid(&net));
        for m in &res.matched {
            assert!((0.0..=1.0).contains(&m.ratio));
        }
    }

    #[test]
    fn training_reduces_bce_loss() {
        let (net, planner, ds) = setup();
        let mut mma = Mma::new(net, planner, None, MmaConfig::small());
        let train: Vec<_> = ds.samples(Split::Train, 0.2, 2).into_iter().take(10).collect();
        let report = mma.train(&train, 4);
        assert!(report.final_loss() < report.epoch_losses[0], "{:?}", report.epoch_losses);
    }

    #[test]
    fn trained_mma_beats_untrained_on_point_accuracy() {
        let (net, planner, ds) = setup();
        let train = ds.samples(Split::Train, 0.2, 3);
        let test: Vec<_> = ds.samples(Split::Test, 0.2, 4).into_iter().take(6).collect();

        let acc = |m: &Mma| -> f64 {
            let mut hit = 0usize;
            let mut total = 0usize;
            for s in &test {
                for (mp, truth) in m.match_points(&s.sparse).iter().zip(&s.sparse_truth) {
                    hit += usize::from(mp.seg == truth.seg);
                    total += 1;
                }
            }
            hit as f64 / total.max(1) as f64
        };

        let untrained = Mma::new(net.clone(), planner.clone(), None, MmaConfig::small());
        let before = acc(&untrained);
        let mut trained = Mma::new(net, planner, None, MmaConfig::small());
        trained.train(&train, 10);
        let after = acc(&trained);
        assert!(
            after > before.max(0.4),
            "training must help: before {before:.3}, after {after:.3}"
        );
    }

    #[test]
    fn route_quality_reasonable_after_training() {
        let (net, planner, ds) = setup();
        let mut mma = Mma::new(net, planner, None, MmaConfig::small());
        mma.train(&ds.samples(Split::Train, 0.2, 3), 10);
        let test: Vec<_> = ds.samples(Split::Test, 0.2, 4).into_iter().take(6).collect();
        let mut f1 = 0.0;
        for s in &test {
            let res = mma.match_trajectory(&s.sparse);
            f1 += matching_metrics(&res.route, &s.route).f1;
        }
        let mean = f1 / test.len() as f64;
        assert!(mean > 0.5, "trained MMA route F1 too low: {mean:.3}");
    }

    #[test]
    fn ablation_flags_change_behaviour() {
        let (net, planner, ds) = setup();
        let s = &ds.samples(Split::Test, 0.2, 5)[0];
        let full = Mma::new(net.clone(), planner.clone(), None, MmaConfig::small());
        let no_ctx = Mma::new(
            net.clone(),
            planner.clone(),
            None,
            MmaConfig { use_candidate_context: false, ..MmaConfig::small() },
        );
        let no_dir =
            Mma::new(net, planner, None, MmaConfig { use_direction: false, ..MmaConfig::small() });
        // Same seeds → same init; disabled paths must change the scores of
        // at least one point.
        let a = full.match_points(&s.sparse);
        let b = no_ctx.match_points(&s.sparse);
        let c = no_dir.match_points(&s.sparse);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), c.len());
    }

    #[test]
    fn node2vec_init_is_accepted() {
        let (net, planner, _) = setup();
        let cfg = MmaConfig::small();
        let emb = Matrix::zeros(net.num_segments(), cfg.d0);
        let mma = Mma::new(net, planner, Some(emb), cfg);
        assert!(mma.num_weights() > 0);
    }
}
