//! TRMMA: sparse trajectory recovery restricted to the matched route (§V).

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use trmma_baselines::TrainReport;
use trmma_geom::BBox;
use trmma_nn::{Adam, Graph, GruCell, Linear, Matrix, Mlp, NodeId, Param, TransformerEncoder};
use trmma_roadnet::{RoadNetwork, SegmentId};
use trmma_traj::types::{MatchedPoint, MatchedTrajectory, Route, Trajectory};
use trmma_traj::Sample;

/// Hyper-parameters of TRMMA (§VI-A; defaults follow the paper with widths
/// scaled to the synthetic data).
#[derive(Debug, Clone)]
pub struct TrmmaConfig {
    /// Transformer/GRU hidden width `dh` (paper: 64).
    pub dh: usize,
    /// Segment-embedding width used in `T_0` and the decoder input.
    pub d_emb: usize,
    /// DualFormer depth (paper: 4) and heads (paper: 4).
    pub n_layers: usize,
    /// Attention heads.
    pub n_heads: usize,
    /// Transformer FFN width (paper: 512).
    pub ffn: usize,
    /// Ratio-loss weight λ (Eq. 21).
    pub lambda: f64,
    /// Adam learning rate (paper: 1e-3).
    pub lr: f64,
    /// Trajectories per optimiser step (gradient accumulation; the paper
    /// trains with batch 512).
    pub batch_size: usize,
    /// Init/shuffle seed.
    pub seed: u64,
    /// Ablation `TRMMA-DF`: when false, use `R` directly as `H` (no
    /// trajectory encoder / cross-attention fusion).
    pub use_dualformer: bool,
}

impl Default for TrmmaConfig {
    fn default() -> Self {
        Self {
            dh: 64,
            d_emb: 32,
            n_layers: 2,
            n_heads: 4,
            ffn: 128,
            lambda: 2.0,
            lr: 1e-3,
            batch_size: 8,
            seed: 23,
            use_dualformer: true,
        }
    }
}

impl TrmmaConfig {
    /// A small configuration for tests and quick examples.
    #[must_use]
    pub fn small() -> Self {
        Self { dh: 24, d_emb: 12, n_layers: 1, n_heads: 2, ffn: 48, ..Self::default() }
    }
}

/// The TRMMA recovery model (Algorithm 2). See crate docs.
pub struct Trmma {
    net: Arc<RoadNetwork>,
    bbox: BBox,
    cfg: TrmmaConfig,
    /// Segment embedding for `T_0` rows and decoder inputs.
    seg_emb: Linear,
    /// `W_6, b_6` of Eq. 11.
    t_fc: Linear,
    /// `Trans_T` of Eq. 11.
    trans_t: TransformerEncoder,
    /// `W_7` of Eq. 12 (embedding table over segments).
    r_table: Linear,
    /// `b_7` of Eq. 12.
    r_bias: Param,
    /// `Trans_R` of Eq. 12.
    trans_r: TransformerEncoder,
    /// The decoder GRU (Fig. 4).
    gru: GruCell,
    /// `W_8, b_8, W_9, b_9` of Eq. 15.
    cls_mlp: Mlp,
    /// `W_10, b_10, W_11, b_11` of Eq. 18.
    ratio_mlp: Mlp,
    params: Vec<Param>,
}

impl Trmma {
    /// Builds an untrained TRMMA over `net`.
    #[must_use]
    pub fn new(net: Arc<RoadNetwork>, cfg: TrmmaConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = net.num_segments();
        let seg_emb = Linear::new_no_bias(n, cfg.d_emb, &mut rng);
        let t_fc = Linear::new(4 + cfg.d_emb, cfg.dh, &mut rng);
        let trans_t = TransformerEncoder::new(cfg.dh, cfg.n_heads, cfg.ffn, cfg.n_layers, &mut rng);
        let r_table = Linear::new_no_bias(n, cfg.dh, &mut rng);
        let r_bias = Param::new(1, cfg.dh, trmma_nn::Init::Zeros, &mut rng);
        let trans_r = TransformerEncoder::new(cfg.dh, cfg.n_heads, cfg.ffn, cfg.n_layers, &mut rng);
        // Decoder input: [H-row of the previous segment, prev ratio, gap
        // fraction, gap length]. Using the encoded route row (which carries
        // the route-positional encoding) as the segment representation lets
        // the order constraint of Eq. 17 generalise across routes; the two
        // gap features are the quantities Algorithm 2 computes at line 9
        // (`n_i` and the tick index `j`). Documented adaptation for
        // laptop-scale corpora, DESIGN.md §1.
        let gru = GruCell::new(cfg.dh + 3, cfg.dh, &mut rng);
        // The classifier additionally receives three metre-scale route
        // features per row (offset of the row relative to the constant
        // -speed anchor, to the previous point, and to the gap end) —
        // numeric forms of the route-positional information Eq. 17's order
        // constraint is built on. They anchor the decoder at the linear
        // -interpolation solution so training only has to learn the traffic
        // *corrections* (dwells, per-class speeds); without them the model
        // would need orders of magnitude more data (DESIGN.md §1).
        let cls_mlp = Mlp::new(2 * cfg.dh + 3, cfg.dh, 1, &mut rng);
        let ratio_mlp = Mlp::new(2 * cfg.dh + 3, cfg.dh, 1, &mut rng);
        let mut params = Vec::new();
        params.extend(seg_emb.params());
        params.extend(t_fc.params());
        params.extend(trans_t.params());
        params.extend(r_table.params());
        params.push(r_bias.clone());
        params.extend(trans_r.params());
        params.extend(gru.params());
        params.extend(cls_mlp.params());
        params.extend(ratio_mlp.params());
        let bbox = net.bbox();
        Self {
            net,
            bbox,
            cfg,
            seg_emb,
            t_fc,
            trans_t,
            r_table,
            r_bias,
            trans_r,
            gru,
            cls_mlp,
            ratio_mlp,
            params,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &TrmmaConfig {
        &self.cfg
    }

    /// Total scalar weights.
    #[must_use]
    pub fn num_weights(&self) -> usize {
        trmma_nn::param::total_weights(&self.params)
    }

    /// The road network the model recovers on.
    #[must_use]
    pub fn network(&self) -> &RoadNetwork {
        &self.net
    }

    /// Shared handle to the road network (for wiring batch engines and
    /// sibling models without re-loading the network).
    #[must_use]
    pub fn network_arc(&self) -> Arc<RoadNetwork> {
        self.net.clone()
    }

    /// DualFormer encoding (Eq. 11–14): returns `H` (`ℓ_R × dh`).
    fn encode(
        &self,
        g: &mut Graph,
        traj: &Trajectory,
        matched: &[MatchedPoint],
        route: &[SegmentId],
    ) -> NodeId {
        // Route side (Eq. 12).
        let r_ids: Vec<usize> = route.iter().map(|s| s.idx()).collect();
        let r_emb = self.r_table.embed(g, &r_ids);
        let r_bias = g.param(&self.r_bias);
        let r1 = g.add_row(r_emb, r_bias);
        let r = self.trans_r.forward(g, r1);
        if !self.cfg.use_dualformer {
            return r;
        }

        // Trajectory side (Eq. 11): [x, y, t, ratio] ++ emb(segment).
        let w = (self.bbox.max.x - self.bbox.min.x).max(1.0);
        let hgt = (self.bbox.max.y - self.bbox.min.y).max(1.0);
        let t0 = traj.points.first().map_or(0.0, |p| p.t);
        let dur = traj.duration_s().max(1.0);
        let rows: Vec<Vec<f64>> = traj
            .points
            .iter()
            .zip(matched)
            .map(|(p, a)| {
                vec![
                    (p.pos.x - self.bbox.min.x) / w,
                    (p.pos.y - self.bbox.min.y) / hgt,
                    (p.t - t0) / dur,
                    a.ratio,
                ]
            })
            .collect();
        let feats = g.input(Matrix::from_rows(&rows));
        let t_ids: Vec<usize> = matched.iter().map(|a| a.seg.idx()).collect();
        let t_emb = self.seg_emb.embed(g, &t_ids);
        let t0_mat = g.concat_cols(&[feats, t_emb]);
        let t1 = self.t_fc.forward(g, t0_mat);
        let t = self.trans_t.forward(g, t1);

        // Cross-attention fusion (Eq. 13–14).
        let t_t = g.transpose(t);
        let scores = g.matmul(r, t_t); // ℓ_R × ℓ
        let beta = g.softmax_rows(scores);
        let mix = g.matmul(beta, t);
        g.add(r, mix)
    }

    /// One decoder advance (Fig. 4): previous point plus gap position →
    /// new hidden state. `prev_pos` is the route position of the previous
    /// point's segment; `frac` is `j / (n_i + 1)` within the current gap,
    /// `gap_norm` a bounded encoding of the gap length `n_i`.
    #[allow(clippy::too_many_arguments)]
    fn gru_step(
        &self,
        g: &mut Graph,
        big_h: NodeId,
        h: NodeId,
        prev_pos: usize,
        prev_ratio: f64,
        frac: f64,
        gap_norm: f64,
    ) -> NodeId {
        let seg_row = g.slice_rows(big_h, prev_pos, 1);
        let extras = g.input(Matrix::row_vec(vec![prev_ratio, frac, gap_norm]));
        let x = g.concat_cols(&[seg_row, extras]);
        self.gru.step(g, x, h)
    }

    /// Classification scores `w_{·,j}` over all route segments (Eq. 15) for
    /// hidden state `h` — an `ℓ_R × 1` column. `prev_off` / `anchor_off` /
    /// `end_off` are route offsets in metres (see the constructor note on
    /// the metre-scale features).
    #[allow(clippy::too_many_arguments)]
    fn cls_scores(
        &self,
        g: &mut Graph,
        big_h: NodeId,
        h: NodeId,
        geom: &RouteGeom,
        prev_off: f64,
        anchor_off: f64,
        end_off: f64,
    ) -> NodeId {
        let route_len = geom.lens.len();
        let h_rep = g.gather_rows(h, &vec![0; route_len]);
        const S: f64 = 200.0;
        let mut flat = Vec::with_capacity(route_len * 3);
        for k in 0..route_len {
            let mid = geom.prefix[k] + geom.lens[k] / 2.0;
            flat.push(((mid - anchor_off) / S).clamp(-4.0, 4.0));
            flat.push(((geom.prefix[k] - prev_off) / S).clamp(-4.0, 4.0));
            flat.push(((geom.prefix[k] + geom.lens[k] - end_off) / S).clamp(-4.0, 4.0));
        }
        let feats = g.input(Matrix::from_vec(route_len, 3, flat));
        let cat = g.concat_cols(&[big_h, h_rep, feats]);
        self.cls_mlp.forward(g, cat)
    }

    /// Position-ratio head (Eq. 18) for hidden state `h`, given the scores
    /// column `w` from [`Trmma::cls_scores`] and the same metre-scale gap
    /// description.
    #[allow(clippy::too_many_arguments)]
    fn ratio_pred(
        &self,
        g: &mut Graph,
        big_h: NodeId,
        h: NodeId,
        w: NodeId,
        frac: f64,
        anchor_minus_prev: f64,
        gap_m: f64,
    ) -> NodeId {
        let w_row = g.transpose(w);
        let psi = g.softmax_rows(w_row); // 1 × ℓ_R
        let ctx = g.matmul(psi, big_h); // 1 × dh
        let scalars = g.input(Matrix::row_vec(vec![
            frac,
            (anchor_minus_prev / 200.0).clamp(-4.0, 4.0),
            (gap_m / 1000.0).min(5.0),
        ]));
        let cat = g.concat_cols(&[h, ctx, scalars]);
        let pre = self.ratio_mlp.forward(g, cat);
        g.sigmoid(pre)
    }

    fn run_epoch(&self, samples: &[Sample], order: &[usize], opt: &mut Adam) -> f64 {
        let batch = self.cfg.batch_size.max(1);
        let mut loss_sum = 0.0;
        let mut count = 0usize;
        let mut in_batch = 0usize;
        opt.zero_grad();
        for &si in order {
            if let Some(loss) = self.train_step(&samples[si]) {
                loss_sum += loss;
                count += 1;
                in_batch += 1;
                if in_batch == batch {
                    opt.step();
                    opt.zero_grad();
                    in_batch = 0;
                }
            }
        }
        if in_batch > 0 {
            opt.step();
            opt.zero_grad();
        }
        loss_sum / count.max(1) as f64
    }

    /// Mean multitask loss on held-out samples (no parameter updates; the
    /// gradients accumulated by the shared forward/backward path are
    /// discarded).
    #[must_use]
    pub fn validation_loss(&self, samples: &[Sample]) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for s in samples {
            if let Some(l) = self.train_step(s) {
                total += l;
                count += 1;
            }
        }
        for p in &self.params {
            p.zero_grad();
        }
        total / count.max(1) as f64
    }

    /// Trains on samples' ground-truth routes and dense trajectories with
    /// the multitask loss of Eq. 19–21; one Adam step per `batch_size`
    /// trajectories.
    pub fn train(&mut self, samples: &[Sample], epochs: usize) -> TrainReport {
        let mut opt = Adam::new(self.params.clone(), self.cfg.lr);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x7_12A);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut report = TrainReport::default();
        for _epoch in 0..epochs {
            let started = Instant::now();
            order.shuffle(&mut rng);
            let mean = self.run_epoch(samples, &order, &mut opt);
            report.epoch_losses.push(mean);
            report.epoch_times_s.push(started.elapsed().as_secs_f64());
        }
        report
    }

    /// Trains with validation-based early stopping, restoring the weights
    /// of the best validation epoch (§VI-A's "trained to converge" with
    /// the 30 % validation split).
    pub fn train_early_stop(
        &mut self,
        train: &[Sample],
        val: &[Sample],
        max_epochs: usize,
        patience: usize,
    ) -> TrainReport {
        let mut opt = Adam::new(self.params.clone(), self.cfg.lr);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x7_12A);
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut report = TrainReport::default();
        let mut best = f64::INFINITY;
        let mut best_weights = trmma_nn::snapshot(&self.params);
        let mut bad = 0usize;
        for _epoch in 0..max_epochs {
            let started = Instant::now();
            order.shuffle(&mut rng);
            let mean = self.run_epoch(train, &order, &mut opt);
            report.epoch_losses.push(mean);
            report.epoch_times_s.push(started.elapsed().as_secs_f64());
            let vl = self.validation_loss(val);
            if vl < best {
                best = vl;
                best_weights = trmma_nn::snapshot(&self.params);
                bad = 0;
            } else {
                bad += 1;
                if bad > patience {
                    break;
                }
            }
        }
        trmma_nn::restore(&self.params, &best_weights);
        report
    }

    /// Serialises the trained weights (see [`trmma_nn::serialize`]).
    #[must_use]
    pub fn save_weights(&self) -> Vec<u8> {
        trmma_nn::save_params(&self.params).to_vec()
    }

    /// Loads weights produced by [`Trmma::save_weights`] into a model of
    /// the same configuration.
    ///
    /// # Errors
    /// Fails (without modifying the model) on any header/shape mismatch.
    pub fn load_weights(&mut self, blob: &[u8]) -> Result<(), trmma_nn::LoadError> {
        trmma_nn::load_params(&self.params, blob)
    }

    /// One teacher-forced forward/backward (gradients accumulate into the
    /// params; the caller steps the optimiser). `None` when the sample is
    /// unusable.
    fn train_step(&self, sample: &Sample) -> Option<f64> {
        let route = &sample.route.segs;
        if route.is_empty() || sample.dense_truth.len() < 3 || sample.sparse.len() < 2 {
            return None;
        }
        // Route position of each dense point (monotone cursor).
        let positions = route_positions(route, &sample.dense_truth)?;
        let observed: std::collections::HashSet<usize> =
            sample.dense_indices.iter().copied().collect();

        let mut g = Graph::new();
        let big_h = self.encode(&mut g, &sample.sparse, &sample.sparse_truth, route);
        let mut h = g.mean_rows(big_h);
        let geom = RouteGeom::new(&self.net, route);

        let mut w_cols = Vec::new();
        let mut onehot_rows: Vec<Vec<f64>> = Vec::new();
        let mut ratio_preds = Vec::new();
        let mut ratio_targets = Vec::new();
        // Enclosing observed pair per tick, for the gap features.
        let mut obs_iter = sample.dense_indices.windows(2);
        let mut gap = obs_iter.next()?;
        for j in 1..sample.dense_truth.len() {
            while j > gap[1] {
                gap = obs_iter.next()?;
            }
            let span = (gap[1] - gap[0]).max(1);
            let frac = (j - gap[0]) as f64 / span as f64;
            let gap_norm = (span as f64 / 20.0).min(2.0);
            let prev = &sample.dense_truth.points[j - 1];
            h = self.gru_step(&mut g, big_h, h, positions[j - 1], prev.ratio, frac, gap_norm);
            if observed.contains(&j) {
                continue; // the point is known; no prediction loss
            }
            let obs_a = &sample.dense_truth.points[gap[0]];
            let obs_b = &sample.dense_truth.points[gap[1]];
            let off_a = geom.offset(positions[gap[0]], obs_a.ratio);
            let off_b = geom.offset(positions[gap[1]], obs_b.ratio);
            let prev_off = geom.offset(positions[j - 1], prev.ratio);
            let anchor = off_a + frac * (off_b - off_a);
            let w = self.cls_scores(&mut g, big_h, h, &geom, prev_off, anchor, off_b);
            let ratio =
                self.ratio_pred(&mut g, big_h, h, w, frac, anchor - prev_off, off_b - off_a);
            w_cols.push(w);
            let mut onehot = vec![0.0; route.len()];
            onehot[positions[j]] = 1.0;
            onehot_rows.push(onehot);
            ratio_preds.push(ratio);
            ratio_targets.push(sample.dense_truth.points[j].ratio);
        }
        if w_cols.is_empty() {
            return None;
        }
        let all_w = g.concat_rows(&w_cols);
        let flat: Vec<f64> = onehot_rows.into_iter().flatten().collect();
        let targets = Matrix::from_vec(flat.len(), 1, flat);
        let seg_loss = g.bce_with_logits(all_w, targets);
        let all_ratio = g.concat_rows(&ratio_preds);
        let ratio_loss =
            g.l1_loss(all_ratio, Matrix::from_vec(ratio_targets.len(), 1, ratio_targets));
        let scaled = g.scale(ratio_loss, self.cfg.lambda);
        let loss = g.add(seg_loss, scaled);
        g.backward(loss);
        Some(g.value(loss).get(0, 0))
    }

    /// Recovery given a map-matching result (Algorithm 2 lines 5–17).
    ///
    /// `matched` holds one matched point per sparse GPS point; `route` is
    /// the matched route. Missing points between consecutive observations
    /// are decoded sequentially, restricted to the sub-route from the
    /// previously emitted segment onward (Eq. 17).
    #[must_use]
    pub fn recover_from_match(
        &self,
        traj: &Trajectory,
        matched: &[MatchedPoint],
        route: &Route,
        epsilon_s: f64,
    ) -> MatchedTrajectory {
        self.recover_from_match_with(&mut Graph::new(), traj, matched, route, epsilon_s)
    }

    /// [`Trmma::recover_from_match`] through a caller-owned tape: the graph
    /// is reset (arena kept) instead of reallocated per trajectory. The
    /// batch engine's per-worker hot path; output is bitwise-identical to
    /// the allocating variant.
    #[must_use]
    pub fn recover_from_match_with(
        &self,
        g: &mut Graph,
        traj: &Trajectory,
        matched: &[MatchedPoint],
        route: &Route,
        epsilon_s: f64,
    ) -> MatchedTrajectory {
        if matched.is_empty() || route.is_empty() {
            return MatchedTrajectory::new(matched.to_vec());
        }
        let segs = &route.segs;
        g.reset();
        let big_h = self.encode(g, traj, matched, segs);
        let mut h = g.mean_rows(big_h);
        let geom = RouteGeom::new(&self.net, segs);

        let mut out: Vec<MatchedPoint> = Vec::new();
        let mut cursor = segs.iter().position(|&s| s == matched[0].seg).unwrap_or(0);
        out.push(matched[0]);
        let mut prev = matched[0];
        let mut prev_off = geom.offset(cursor, prev.ratio);
        for next_obs in matched.iter().skip(1) {
            let interval = next_obs.t - prev.t;
            let missing = if interval > 0.0 {
                ((interval / epsilon_s).round() as usize).saturating_sub(1)
            } else {
                0
            };
            // Upper bound of the sub-route: the recovered points of this gap
            // cannot pass the next observation (Algorithm 2 appends a_{i+1}
            // after the gap's loop, so its segment closes the sub-route).
            let gap_end = segs[cursor..]
                .iter()
                .position(|&s| s == next_obs.seg)
                .map_or(segs.len() - 1, |d| cursor + d);
            let base_t = prev.t;
            let span = (missing + 1) as f64;
            let gap_norm = (span / 20.0).min(2.0);
            let gap_start_off = prev_off;
            let off_b = geom.offset(gap_end, next_obs.ratio).max(gap_start_off);
            for j in 1..=missing {
                let frac = j as f64 / span;
                h = self.gru_step(g, big_h, h, cursor, prev.ratio, frac, gap_norm);
                let anchor = gap_start_off + frac * (off_b - gap_start_off);
                let w = self.cls_scores(g, big_h, h, &geom, prev_off, anchor, off_b);
                let col = g.value(w);
                // Eq. 17: argmax over the sub-route R[a_{j-1}.e, :],
                // bounded above by the next observation's segment.
                let mut best = cursor;
                for k in cursor..=gap_end {
                    if col.get(k, 0) > col.get(best, 0) {
                        best = k;
                    }
                }
                let ratio_node =
                    self.ratio_pred(g, big_h, h, w, frac, anchor - prev_off, off_b - gap_start_off);
                let ratio = g.value(ratio_node).get(0, 0);
                cursor = best;
                prev = MatchedPoint::new(segs[best], ratio, base_t + j as f64 * epsilon_s);
                prev_off = geom.offset(best, prev.ratio).max(prev_off);
                out.push(prev);
            }
            // Advance over the observed point.
            h = self.gru_step(g, big_h, h, cursor, prev.ratio, 1.0, gap_norm);
            cursor = gap_end.max(cursor);
            out.push(*next_obs);
            prev = *next_obs;
            prev_off = off_b;
        }
        MatchedTrajectory::new(out)
    }
}

/// Metre-scale geometry of a route: prefix offsets and segment lengths.
struct RouteGeom {
    prefix: Vec<f64>,
    lens: Vec<f64>,
}

impl RouteGeom {
    fn new(net: &RoadNetwork, segs: &[SegmentId]) -> Self {
        let mut prefix = Vec::with_capacity(segs.len());
        let mut lens = Vec::with_capacity(segs.len());
        let mut acc = 0.0;
        for &s in segs {
            let len = net.segment(s).length;
            prefix.push(acc);
            lens.push(len);
            acc += len;
        }
        Self { prefix, lens }
    }

    /// Route offset (metres from the route start) of a position.
    fn offset(&self, pos: usize, ratio: f64) -> f64 {
        self.prefix[pos] + ratio * self.lens[pos]
    }
}

/// Route position of each matched point, scanning monotonically; `None`
/// when some point's segment is absent from the route.
fn route_positions(route: &[SegmentId], dense: &MatchedTrajectory) -> Option<Vec<usize>> {
    let mut out = Vec::with_capacity(dense.len());
    let mut cursor = 0usize;
    for p in &dense.points {
        let pos = route[cursor..].iter().position(|&s| s == p.seg)? + cursor;
        out.push(pos);
        cursor = pos;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trmma_traj::dataset::{build_dataset, DatasetConfig, Split};
    use trmma_traj::metrics::recovery_metrics;

    fn setup() -> (Arc<RoadNetwork>, trmma_traj::Dataset) {
        let ds = build_dataset(&DatasetConfig::tiny());
        (Arc::new(ds.net.clone()), ds)
    }

    /// Ground-truth-driven recovery input (isolates TRMMA from matching).
    fn truth_inputs(s: &trmma_traj::Sample) -> (&Trajectory, &[MatchedPoint], Route) {
        (&s.sparse, &s.sparse_truth, s.route.clone())
    }

    #[test]
    fn untrained_recovery_shapes_are_correct() {
        let (net, ds) = setup();
        let model = Trmma::new(net, TrmmaConfig::small());
        let s = &ds.samples(Split::Test, 0.2, 1)[0];
        let (traj, matched, route) = truth_inputs(s);
        let rec = model.recover_from_match(traj, matched, &route, ds.epsilon_s);
        assert_eq!(rec.len(), s.dense_truth.len(), "ε-grid must align");
        assert!(rec.satisfies_epsilon(ds.epsilon_s, 1e-6));
        // All recovered segments lie on the route.
        for p in &rec.points {
            assert!(route.segs.contains(&p.seg));
        }
    }

    #[test]
    fn recovered_segments_follow_route_order() {
        let (net, ds) = setup();
        let model = Trmma::new(net, TrmmaConfig::small());
        let s = &ds.samples(Split::Test, 0.2, 2)[0];
        let (traj, matched, route) = truth_inputs(s);
        let rec = model.recover_from_match(traj, matched, &route, ds.epsilon_s);
        let mut cursor = 0usize;
        for p in &rec.points {
            let pos = route.segs[cursor..].iter().position(|&e| e == p.seg).map(|d| cursor + d);
            assert!(pos.is_some(), "segment order violated");
            cursor = pos.unwrap();
        }
    }

    #[test]
    fn training_reduces_loss() {
        let (net, ds) = setup();
        let mut model = Trmma::new(net, TrmmaConfig::small());
        let train: Vec<_> = ds.samples(Split::Train, 0.2, 3).into_iter().take(8).collect();
        let report = model.train(&train, 4);
        assert!(report.final_loss() < report.epoch_losses[0], "{:?}", report.epoch_losses);
    }

    #[test]
    fn trained_beats_untrained_on_accuracy() {
        let (net, ds) = setup();
        let train = ds.samples(Split::Train, 0.2, 3);
        let test: Vec<_> = ds.samples(Split::Test, 0.2, 4).into_iter().take(5).collect();
        let eval = |m: &Trmma| -> f64 {
            let mut acc = 0.0;
            for s in &test {
                let (traj, matched, route) = truth_inputs(s);
                let rec = m.recover_from_match(traj, matched, &route, ds.epsilon_s);
                acc += recovery_metrics(m.network(), &rec, &s.dense_truth, None).accuracy;
            }
            acc / test.len() as f64
        };
        let untrained = Trmma::new(net.clone(), TrmmaConfig::small());
        let before = eval(&untrained);
        let mut trained = Trmma::new(net, TrmmaConfig::small());
        trained.train(&train, 6);
        let after = eval(&trained);
        assert!(after >= before, "training hurt recovery: before {before:.3} after {after:.3}");
        // The tiny fixture plus few epochs only supports a loose bar; the
        // bench harness exercises converged quality.
        assert!(after > 0.3, "trained accuracy too low: {after:.3}");
    }

    #[test]
    fn dualformer_ablation_changes_encoding() {
        let (net, ds) = setup();
        let s = &ds.samples(Split::Test, 0.2, 5)[0];
        let full = Trmma::new(net.clone(), TrmmaConfig::small());
        let ablated =
            Trmma::new(net, TrmmaConfig { use_dualformer: false, ..TrmmaConfig::small() });
        let (traj, matched, route) = truth_inputs(s);
        let a = full.recover_from_match(traj, matched, &route, ds.epsilon_s);
        let b = ablated.recover_from_match(traj, matched, &route, ds.epsilon_s);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn weights_round_trip_preserves_predictions() {
        let (net, ds) = setup();
        let mut trained = Trmma::new(net.clone(), TrmmaConfig::small());
        let train: Vec<_> = ds.samples(Split::Train, 0.2, 3).into_iter().take(6).collect();
        trained.train(&train, 2);
        let blob = trained.save_weights();
        let mut fresh = Trmma::new(net, TrmmaConfig::small());
        fresh.load_weights(&blob).unwrap();
        let s = &ds.samples(Split::Test, 0.2, 9)[0];
        let (traj, matched, route) = truth_inputs(s);
        let a = trained.recover_from_match(traj, matched, &route, ds.epsilon_s);
        let b = fresh.recover_from_match(traj, matched, &route, ds.epsilon_s);
        assert_eq!(a, b, "loaded model must reproduce the trained model");
    }

    #[test]
    fn early_stopping_restores_best_epoch() {
        let (net, ds) = setup();
        let train: Vec<_> = ds.samples(Split::Train, 0.2, 3).into_iter().take(8).collect();
        let val: Vec<_> = ds.samples(Split::Val, 0.2, 4).into_iter().take(4).collect();
        let mut model = Trmma::new(net, TrmmaConfig::small());
        let report = model.train_early_stop(&train, &val, 6, 2);
        assert!(!report.epoch_losses.is_empty());
        assert!(report.epoch_losses.len() <= 6);
        // The restored weights score no worse on validation than a final
        // -epoch model would (they are by construction the best epoch).
        let restored = model.validation_loss(&val);
        assert!(restored.is_finite());
    }

    #[test]
    fn route_geom_offsets() {
        let (net, _ds) = setup();
        let e0 = SegmentId(0);
        let e1 = net.successors(e0)[0];
        let geom = RouteGeom::new(&net, &[e0, e1]);
        assert_eq!(geom.offset(0, 0.0), 0.0);
        let len0 = net.segment(e0).length;
        assert!((geom.offset(0, 1.0) - len0).abs() < 1e-9);
        assert!((geom.offset(1, 0.0) - len0).abs() < 1e-9);
        let len1 = net.segment(e1).length;
        assert!((geom.offset(1, 0.5) - (len0 + 0.5 * len1)).abs() < 1e-9);
    }

    #[test]
    fn route_positions_handles_repeats_and_misses() {
        use trmma_traj::types::MatchedPoint as MP;
        let route = vec![SegmentId(5), SegmentId(9), SegmentId(5)];
        let dense = MatchedTrajectory::new(vec![
            MP::new(SegmentId(5), 0.1, 0.0),
            MP::new(SegmentId(9), 0.5, 15.0),
            MP::new(SegmentId(5), 0.2, 30.0),
        ]);
        let pos = route_positions(&route, &dense).unwrap();
        assert_eq!(pos, vec![0, 1, 2]);
        let bad = MatchedTrajectory::new(vec![MP::new(SegmentId(7), 0.0, 0.0)]);
        assert!(route_positions(&route, &bad).is_none());
    }
}
