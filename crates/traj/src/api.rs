//! Shared interfaces of the pipeline: map matchers, recovery methods and
//! the candidate-segment finder (Definition 8).
//!
//! Every matcher in the repository — `Nearest`, `HMM`, `FMM` (baselines
//! crate) and `MMA` (core crate) — implements [`MapMatcher`]; every recovery
//! method — `Linear`, `Seq2SeqFull`, `TRMMA` — implements
//! [`TrajectoryRecovery`]. The benchmark harness drives everything through
//! these traits, which is what makes the paper's method-by-method tables
//! mechanical to regenerate.

use trmma_geom::Vec2;
use trmma_roadnet::{RoadNetwork, RoutePlanner, SegmentId};
use trmma_rtree::{IndexedSegment, KnnScratch, Neighbor, RTree};

use crate::types::{MatchedPoint, MatchedTrajectory, Route, Trajectory};

/// Output of map matching one trajectory: the per-point matches and the
/// stitched route (Definition 4).
#[derive(Debug, Clone, PartialEq)]
pub struct MatchResult {
    /// One matched point per input GPS point.
    pub matched: Vec<MatchedPoint>,
    /// The stitched route of the trajectory.
    pub route: Route,
}

/// Stitches per-point matches into a [`MatchResult`]: the matched segment
/// sequence is connected into a route by the shared planner, falling back
/// to the raw sequence when no connection exists. The common tail of every
/// matcher's offline and online decode.
#[must_use]
pub fn stitch_route(
    net: &RoadNetwork,
    planner: &RoutePlanner,
    matched: Vec<MatchedPoint>,
) -> MatchResult {
    let seq: Vec<SegmentId> = matched.iter().map(|m| m.seg).collect();
    let route = planner.connect(net, &seq).map(Route::new).unwrap_or_else(|| Route::new(seq));
    MatchResult { matched, route }
}

/// A map-matching method.
///
/// `Send + Sync` is part of the contract: matchers are immutable at
/// inference time and are shared by reference across the worker threads of
/// the batched inference engine (`trmma_core::batch`).
pub trait MapMatcher: Send + Sync {
    /// Short display name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Maps the GPS points of `traj` onto road segments and deduces the
    /// underlying route.
    fn match_trajectory(&self, traj: &Trajectory) -> MatchResult;
}

/// Map matching through caller-owned, per-worker scratch state.
///
/// The batched inference engine (`trmma_core::batch::par_match_pooled`)
/// creates one `Scratch` per worker thread and reuses it for every
/// trajectory that worker claims — pooled Dijkstra buffers, kNN heaps,
/// autograd tapes. The contract: [`ScratchMatcher::match_trajectory_with`]
/// must return output identical to [`MapMatcher::match_trajectory`]
/// regardless of what the scratch previously served; `tests/
/// props_baselines.rs` property-tests this for every baseline matcher.
pub trait ScratchMatcher: MapMatcher {
    /// Per-worker mutable state.
    type Scratch: Send;

    /// Creates one worker's scratch.
    fn make_scratch(&self) -> Self::Scratch;

    /// Like [`MapMatcher::match_trajectory`], reusing `scratch`'s buffers.
    fn match_trajectory_with(&self, scratch: &mut Self::Scratch, traj: &Trajectory) -> MatchResult;

    /// Work-attribution counters accumulated in `scratch` — what the
    /// engines fold into their timing / router reports. The default is
    /// all-zero for matchers whose scratch tracks nothing.
    fn scratch_stats(_scratch: &Self::Scratch) -> ScratchStats {
        ScratchStats::default()
    }
}

/// Allocation-attribution counters of a per-worker scratch (see
/// [`ScratchMatcher::scratch_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Heap allocations the scratch's arenas absorbed: buffers served from
    /// recycled storage on the per-point hot path instead of the allocator.
    pub allocs_avoided: u64,
}

/// A trajectory-recovery method (Definition 7).
///
/// `Send + Sync` for the same reason as [`MapMatcher`]: recovery models are
/// shared read-only across batch workers.
pub trait TrajectoryRecovery: Send + Sync {
    /// Short display name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Recovers the map-matched ε-sampling trajectory of sparse `traj`.
    fn recover(&self, traj: &Trajectory, epsilon_s: f64) -> MatchedTrajectory;
}

/// One candidate segment of a GPS point, with its perpendicular distance and
/// the projected position ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The candidate segment.
    pub seg: SegmentId,
    /// Perpendicular (clamped) distance from the GPS point, metres.
    pub dist_m: f64,
    /// Projection ratio of the GPS point onto the segment.
    pub ratio: f64,
}

/// Reusable buffers for [`CandidateFinder::candidates_into`]: the R-tree
/// search scratch plus the raw neighbour list.
#[derive(Debug, Default)]
pub struct CandidateScratch {
    knn: KnnScratch,
    neighbors: Vec<Neighbor>,
}

impl CandidateScratch {
    /// Empty scratch buffers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Top-`kc` nearest-segment query over an STR R-tree (Definition 8).
#[derive(Debug)]
pub struct CandidateFinder {
    tree: RTree<IndexedSegment>,
    kc: usize,
}

impl CandidateFinder {
    /// Builds the finder over `net` with candidate-set size `kc` (the paper
    /// fixes `kc = 10` after the Fig. 2 analysis).
    #[must_use]
    pub fn new(net: &RoadNetwork, kc: usize) -> Self {
        Self { tree: net.build_rtree(), kc }
    }

    /// Candidate-set size.
    #[must_use]
    pub fn kc(&self) -> usize {
        self.kc
    }

    /// The top-`kc` nearest segments to `p`, closest first.
    #[must_use]
    pub fn candidates(&self, p: Vec2) -> Vec<Candidate> {
        let mut scratch = CandidateScratch::new();
        let mut out = Vec::with_capacity(self.kc);
        self.candidates_into(p, &mut scratch, &mut out);
        out
    }

    /// The top-`kc` nearest segments to `p`, closest first, written into
    /// `out` (cleared first) through caller-owned scratch buffers.
    ///
    /// The allocation-free path of the batched inference engine: one
    /// [`CandidateScratch`] per worker serves every GPS point of every
    /// trajectory assigned to that worker.
    pub fn candidates_into(
        &self,
        p: Vec2,
        scratch: &mut CandidateScratch,
        out: &mut Vec<Candidate>,
    ) {
        self.tree.knn_into(p, self.kc, &mut scratch.knn, &mut scratch.neighbors);
        out.clear();
        out.extend(scratch.neighbors.iter().map(|n| {
            let seg = self.tree.item(n.item);
            Candidate { seg: SegmentId(seg.id), dist_m: n.dist, ratio: seg.line.project_ratio(p) }
        }));
    }

    /// The single nearest segment to `p`.
    #[must_use]
    pub fn nearest(&self, p: Vec2) -> Option<Candidate> {
        self.tree.nearest(p).map(|n| {
            let seg = self.tree.item(n.item);
            Candidate { seg: SegmentId(seg.id), dist_m: n.dist, ratio: seg.line.project_ratio(p) }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trmma_roadnet::{generate_city, NetworkConfig};

    #[test]
    fn candidates_sorted_and_sized() {
        let net = generate_city(&NetworkConfig::with_size(8, 8, 17));
        let finder = CandidateFinder::new(&net, 10);
        let p = net.segment(SegmentId(3)).line.point_at(0.4);
        let cands = finder.candidates(p);
        assert_eq!(cands.len(), 10);
        for w in cands.windows(2) {
            assert!(w[0].dist_m <= w[1].dist_m + 1e-9);
        }
        // The query point lies on segment 3, so it must be the closest (or
        // tied at zero distance).
        assert!(cands[0].dist_m < 1e-6);
        assert!(cands.iter().any(|c| c.seg == SegmentId(3)));
    }

    #[test]
    fn nearest_agrees_with_first_candidate() {
        let net = generate_city(&NetworkConfig::with_size(8, 8, 17));
        let finder = CandidateFinder::new(&net, 5);
        let p = Vec2::new(321.0, 456.0);
        let nearest = finder.nearest(p).unwrap();
        let cands = finder.candidates(p);
        assert!((nearest.dist_m - cands[0].dist_m).abs() < 1e-12);
    }

    #[test]
    fn ratio_is_projection() {
        let net = generate_city(&NetworkConfig::with_size(8, 8, 17));
        let finder = CandidateFinder::new(&net, 3);
        let seg = net.segment(SegmentId(0));
        let p = seg.line.point_at(0.7);
        let c = finder
            .candidates(p)
            .into_iter()
            .find(|c| c.seg == SegmentId(0))
            .expect("own segment among candidates");
        assert!((c.ratio - 0.7).abs() < 1e-9);
    }
}
