//! Shared interfaces of the pipeline: map matchers, recovery methods and
//! the candidate-segment finder (Definition 8).
//!
//! Every matcher in the repository — `Nearest`, `HMM`, `FMM` (baselines
//! crate) and `MMA` (core crate) — implements [`MapMatcher`]; every recovery
//! method — `Linear`, `Seq2SeqFull`, `TRMMA` — implements
//! [`TrajectoryRecovery`]. The benchmark harness drives everything through
//! these traits, which is what makes the paper's method-by-method tables
//! mechanical to regenerate.

use std::sync::Arc;

use trmma_geom::Vec2;
use trmma_roadnet::{RoadNetwork, RoutePlanner, SegmentId, ShardedNetwork};
use trmma_rtree::{IndexedSegment, KnnScratch, Neighbor, RTree};

use crate::types::{MatchedPoint, MatchedTrajectory, Route, Trajectory};

/// Output of map matching one trajectory: the per-point matches and the
/// stitched route (Definition 4).
#[derive(Debug, Clone, PartialEq)]
pub struct MatchResult {
    /// One matched point per input GPS point.
    pub matched: Vec<MatchedPoint>,
    /// The stitched route of the trajectory.
    pub route: Route,
}

/// Stitches per-point matches into a [`MatchResult`]: the matched segment
/// sequence is connected into a route by the shared planner, falling back
/// to the raw sequence when no connection exists. The common tail of every
/// matcher's offline and online decode.
#[must_use]
pub fn stitch_route(
    net: &RoadNetwork,
    planner: &RoutePlanner,
    matched: Vec<MatchedPoint>,
) -> MatchResult {
    let seq: Vec<SegmentId> = matched.iter().map(|m| m.seg).collect();
    let route = planner.connect(net, &seq).map(Route::new).unwrap_or_else(|| Route::new(seq));
    MatchResult { matched, route }
}

/// A map-matching method.
///
/// `Send + Sync` is part of the contract: matchers are immutable at
/// inference time and are shared by reference across the worker threads of
/// the batched inference engine (`trmma_core::batch`).
pub trait MapMatcher: Send + Sync {
    /// Short display name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Maps the GPS points of `traj` onto road segments and deduces the
    /// underlying route.
    fn match_trajectory(&self, traj: &Trajectory) -> MatchResult;
}

/// Map matching through caller-owned, per-worker scratch state.
///
/// The batched inference engine (`trmma_core::batch::par_match_pooled`)
/// creates one `Scratch` per worker thread and reuses it for every
/// trajectory that worker claims — pooled Dijkstra buffers, kNN heaps,
/// autograd tapes. The contract: [`ScratchMatcher::match_trajectory_with`]
/// must return output identical to [`MapMatcher::match_trajectory`]
/// regardless of what the scratch previously served; `tests/
/// props_baselines.rs` property-tests this for every baseline matcher.
pub trait ScratchMatcher: MapMatcher {
    /// Per-worker mutable state.
    type Scratch: Send;

    /// Creates one worker's scratch.
    fn make_scratch(&self) -> Self::Scratch;

    /// Like [`MapMatcher::match_trajectory`], reusing `scratch`'s buffers.
    fn match_trajectory_with(&self, scratch: &mut Self::Scratch, traj: &Trajectory) -> MatchResult;

    /// Work-attribution counters accumulated in `scratch` — what the
    /// engines fold into their timing / router reports. The default is
    /// all-zero for matchers whose scratch tracks nothing.
    fn scratch_stats(_scratch: &Self::Scratch) -> ScratchStats {
        ScratchStats::default()
    }
}

/// Allocation-attribution counters of a per-worker scratch (see
/// [`ScratchMatcher::scratch_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Heap allocations the scratch's arenas absorbed: buffers served from
    /// recycled storage on the per-point hot path instead of the allocator.
    pub allocs_avoided: u64,
}

/// A trajectory-recovery method (Definition 7).
///
/// `Send + Sync` for the same reason as [`MapMatcher`]: recovery models are
/// shared read-only across batch workers.
pub trait TrajectoryRecovery: Send + Sync {
    /// Short display name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Recovers the map-matched ε-sampling trajectory of sparse `traj`.
    fn recover(&self, traj: &Trajectory, epsilon_s: f64) -> MatchedTrajectory;
}

/// One candidate segment of a GPS point, with its perpendicular distance and
/// the projected position ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The candidate segment.
    pub seg: SegmentId,
    /// Perpendicular (clamped) distance from the GPS point, metres.
    pub dist_m: f64,
    /// Projection ratio of the GPS point onto the segment.
    pub ratio: f64,
}

/// Reusable buffers for [`CandidateFinder::candidates_into`]: the R-tree
/// search scratch plus the raw neighbour list.
#[derive(Debug, Default)]
pub struct CandidateScratch {
    knn: KnnScratch,
    neighbors: Vec<Neighbor>,
}

impl CandidateScratch {
    /// Empty scratch buffers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Where a [`CandidateFinder`] searches: one R-tree over the whole
/// network, or the per-shard trees of a [`ShardedNetwork`].
#[derive(Debug)]
enum FinderBackend {
    /// A single tree over every segment of the network.
    Whole(RTree<IndexedSegment>),
    /// One tree per shard; per-shard ties-inclusive top-`kc` results are
    /// merged and canonically re-ranked, which yields exactly the whole-
    /// network candidate set (any segment outside its shard's with-ties
    /// top-`kc` has `kc` strictly closer segments in that shard alone, so
    /// it cannot be in the global top-`kc` either).
    Sharded(Arc<ShardedNetwork>),
}

/// Top-`kc` nearest-segment query over STR R-trees (Definition 8).
///
/// Candidates are ranked **canonically** by `(distance, segment id)`:
/// nearest-first, exact distance ties broken by the smaller global segment
/// id. Ties are real on grid-like networks — every two-way road is a
/// segment pair with identical geometry — and the R-tree's own emission
/// order for tied items depends on tree structure, so the finder fetches
/// the full tie group ([`RTree::knn_with_ties_into`]) and re-ranks. This
/// makes the candidate set a pure function of the network contents,
/// independent of tree build order — and therefore identical between a
/// whole-network tree and merged per-shard trees.
#[derive(Debug)]
pub struct CandidateFinder {
    backend: FinderBackend,
    kc: usize,
}

impl CandidateFinder {
    /// Builds the finder over `net` with candidate-set size `kc` (the paper
    /// fixes `kc = 10` after the Fig. 2 analysis).
    #[must_use]
    pub fn new(net: &RoadNetwork, kc: usize) -> Self {
        Self { backend: FinderBackend::Whole(net.build_rtree()), kc }
    }

    /// Builds the finder over the per-shard trees of `sharded` — no new
    /// trees are built, and results are identical to [`CandidateFinder::new`]
    /// on the underlying whole network.
    #[must_use]
    pub fn sharded(sharded: Arc<ShardedNetwork>, kc: usize) -> Self {
        Self { backend: FinderBackend::Sharded(sharded), kc }
    }

    /// Candidate-set size.
    #[must_use]
    pub fn kc(&self) -> usize {
        self.kc
    }

    /// The top-`kc` nearest segments to `p`, closest first.
    #[must_use]
    pub fn candidates(&self, p: Vec2) -> Vec<Candidate> {
        let mut scratch = CandidateScratch::new();
        let mut out = Vec::with_capacity(self.kc);
        self.candidates_into(p, &mut scratch, &mut out);
        out
    }

    /// Appends `tree`'s ties-inclusive top-`k` around `p` to `out`.
    fn gather(
        tree: &RTree<IndexedSegment>,
        p: Vec2,
        k: usize,
        scratch: &mut CandidateScratch,
        out: &mut Vec<Candidate>,
    ) {
        tree.knn_with_ties_into(p, k, &mut scratch.knn, &mut scratch.neighbors);
        out.extend(scratch.neighbors.iter().map(|n| {
            let seg = tree.item(n.item);
            Candidate { seg: SegmentId(seg.id), dist_m: n.dist, ratio: seg.line.project_ratio(p) }
        }));
    }

    /// Canonical rank: nearest first, ties by global segment id.
    fn rank(out: &mut Vec<Candidate>, k: usize) {
        out.sort_unstable_by(|a, b| a.dist_m.total_cmp(&b.dist_m).then(a.seg.cmp(&b.seg)));
        out.truncate(k);
    }

    /// The top-`kc` nearest segments to `p` in canonical order, written
    /// into `out` (cleared first) through caller-owned scratch buffers.
    ///
    /// The allocation-free path of the batched inference engine: one
    /// [`CandidateScratch`] per worker serves every GPS point of every
    /// trajectory assigned to that worker.
    pub fn candidates_into(
        &self,
        p: Vec2,
        scratch: &mut CandidateScratch,
        out: &mut Vec<Candidate>,
    ) {
        out.clear();
        match &self.backend {
            FinderBackend::Whole(tree) => Self::gather(tree, p, self.kc, scratch, out),
            FinderBackend::Sharded(sh) => {
                for shard in sh.shards() {
                    Self::gather(shard.tree(), p, self.kc, scratch, out);
                }
            }
        }
        Self::rank(out, self.kc);
    }

    /// The single nearest segment to `p` (canonical: exact-distance ties go
    /// to the smaller segment id), or `None` on an empty network.
    #[must_use]
    pub fn nearest(&self, p: Vec2) -> Option<Candidate> {
        let mut scratch = CandidateScratch::new();
        let mut out = Vec::with_capacity(2);
        match &self.backend {
            FinderBackend::Whole(tree) => Self::gather(tree, p, 1, &mut scratch, &mut out),
            FinderBackend::Sharded(sh) => {
                for shard in sh.shards() {
                    Self::gather(shard.tree(), p, 1, &mut scratch, &mut out);
                }
            }
        }
        Self::rank(&mut out, 1);
        out.first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trmma_roadnet::{generate_city, NetworkConfig};

    #[test]
    fn candidates_sorted_and_sized() {
        let net = generate_city(&NetworkConfig::with_size(8, 8, 17));
        let finder = CandidateFinder::new(&net, 10);
        let p = net.segment(SegmentId(3)).line.point_at(0.4);
        let cands = finder.candidates(p);
        assert_eq!(cands.len(), 10);
        for w in cands.windows(2) {
            assert!(w[0].dist_m <= w[1].dist_m + 1e-9);
        }
        // The query point lies on segment 3, so it must be the closest (or
        // tied at zero distance).
        assert!(cands[0].dist_m < 1e-6);
        assert!(cands.iter().any(|c| c.seg == SegmentId(3)));
    }

    #[test]
    fn nearest_agrees_with_first_candidate() {
        let net = generate_city(&NetworkConfig::with_size(8, 8, 17));
        let finder = CandidateFinder::new(&net, 5);
        let p = Vec2::new(321.0, 456.0);
        let nearest = finder.nearest(p).unwrap();
        let cands = finder.candidates(p);
        assert!((nearest.dist_m - cands[0].dist_m).abs() < 1e-12);
    }

    #[test]
    fn sharded_finder_matches_whole_network_finder() {
        use trmma_roadnet::{GridCut, HashCut, ShardPlan};
        let net = Arc::new(generate_city(&NetworkConfig::with_size(7, 7, 23)));
        let whole = CandidateFinder::new(&net, 10);
        for cut in [
            ShardPlan::new(&net, &GridCut { tiles_x: 2, tiles_y: 2, seed: 3 }),
            ShardPlan::new(&net, &HashCut { num_shards: 6, seed: 8 }),
        ] {
            let sh = Arc::new(ShardedNetwork::build(Arc::clone(&net), cut, 400.0));
            let finder = CandidateFinder::sharded(Arc::clone(&sh), 10);
            let bbox = net.bbox();
            for i in 0..40u32 {
                // Probe a grid of points, including ones near tile borders.
                let fx = f64::from(i % 8) / 7.0;
                let fy = f64::from(i / 8) / 4.0;
                let p = Vec2::new(
                    bbox.min.x + fx * (bbox.max.x - bbox.min.x),
                    bbox.min.y + fy * (bbox.max.y - bbox.min.y),
                );
                let a = whole.candidates(p);
                let b = finder.candidates(p);
                assert_eq!(a.len(), b.len(), "point {i}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.seg, y.seg, "point {i}");
                    assert_eq!(x.dist_m.to_bits(), y.dist_m.to_bits(), "point {i}");
                    assert_eq!(x.ratio.to_bits(), y.ratio.to_bits(), "point {i}");
                }
                assert_eq!(whole.nearest(p), finder.nearest(p), "point {i}");
            }
        }
    }

    #[test]
    fn ratio_is_projection() {
        let net = generate_city(&NetworkConfig::with_size(8, 8, 17));
        let finder = CandidateFinder::new(&net, 3);
        let seg = net.segment(SegmentId(0));
        let p = seg.line.point_at(0.7);
        let c = finder
            .candidates(p)
            .into_iter()
            .find(|c| c.seg == SegmentId(0))
            .expect("own segment among candidates");
        assert!((c.ratio - 0.7).abs() < 1e-9);
    }
}
