//! Core trajectory types (Definitions 2–6).

use trmma_geom::Vec2;
use trmma_roadnet::{RoadNetwork, SegmentId};

/// A GPS observation: planar position plus timestamp in seconds
/// (Definition 2's `⟨lat, lng, t⟩` after projection).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpsPoint {
    /// Position in the local planar frame (metres).
    pub pos: Vec2,
    /// Timestamp in seconds from an arbitrary epoch.
    pub t: f64,
}

/// A GPS trajectory `T = ⟨p_1, …, p_ℓ⟩` (Definition 2).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trajectory {
    /// Time-ordered GPS points.
    pub points: Vec<GpsPoint>,
}

impl Trajectory {
    /// Number of points `ℓ`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trajectory is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total timespan in seconds (0 for < 2 points).
    #[must_use]
    pub fn duration_s(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) => b.t - a.t,
            _ => 0.0,
        }
    }

    /// Average interval between consecutive points in seconds.
    #[must_use]
    pub fn mean_interval_s(&self) -> f64 {
        if self.points.len() < 2 {
            return 0.0;
        }
        self.duration_s() / (self.points.len() - 1) as f64
    }

    /// Whether timestamps are strictly increasing.
    #[must_use]
    pub fn is_time_ordered(&self) -> bool {
        self.points.windows(2).all(|w| w[0].t < w[1].t)
    }
}

/// A route: a path on the road network (Definition 3).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Route {
    /// Segment sequence; consecutive segments are connected head-to-tail.
    pub segs: Vec<SegmentId>,
}

impl Route {
    /// Wraps a segment sequence.
    #[must_use]
    pub fn new(segs: Vec<SegmentId>) -> Self {
        Self { segs }
    }

    /// Number of segments `ℓ_R`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.segs.len()
    }

    /// Whether the route is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Total length in metres.
    #[must_use]
    pub fn length_m(&self, net: &RoadNetwork) -> f64 {
        self.segs.iter().map(|&s| net.segment(s).length).sum()
    }

    /// Validates the path property on `net`.
    #[must_use]
    pub fn is_valid(&self, net: &RoadNetwork) -> bool {
        net.is_path(&self.segs)
    }

    /// Position of `seg` in the route, if present.
    #[must_use]
    pub fn position_of(&self, seg: SegmentId) -> Option<usize> {
        self.segs.iter().position(|&s| s == seg)
    }
}

/// A map-matched point `a = (e, r, t)` (Definition 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchedPoint {
    /// The segment the point lies on.
    pub seg: SegmentId,
    /// Position ratio in `[0, 1)` from the segment entrance.
    pub ratio: f64,
    /// Timestamp in seconds.
    pub t: f64,
}

impl MatchedPoint {
    /// Creates a matched point, clamping the ratio into `[0, 1]`.
    #[must_use]
    pub fn new(seg: SegmentId, ratio: f64, t: f64) -> Self {
        Self { seg, ratio: ratio.clamp(0.0, 1.0), t }
    }

    /// Planar position obtained by interpolating along the segment.
    #[must_use]
    pub fn pos(&self, net: &RoadNetwork) -> Vec2 {
        net.segment(self.seg).line.point_at(self.ratio)
    }
}

/// A map-matched ε-sampling trajectory `T_ε = ⟨a_1, …, a_ℓε⟩`
/// (Definition 6).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MatchedTrajectory {
    /// Time-ordered matched points with constant inter-point interval ε.
    pub points: Vec<MatchedPoint>,
}

impl MatchedTrajectory {
    /// Wraps a matched-point sequence.
    #[must_use]
    pub fn new(points: Vec<MatchedPoint>) -> Self {
        Self { points }
    }

    /// Number of points `ℓ_ε`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trajectory is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The (deduplicated, order-preserving) segment sequence visited.
    #[must_use]
    pub fn segment_run(&self) -> Vec<SegmentId> {
        let mut out: Vec<SegmentId> = Vec::new();
        for p in &self.points {
            if out.last() != Some(&p.seg) {
                out.push(p.seg);
            }
        }
        out
    }

    /// Whether consecutive intervals all equal `epsilon` within `tol`
    /// seconds (the Definition 6 invariant).
    #[must_use]
    pub fn satisfies_epsilon(&self, epsilon: f64, tol: f64) -> bool {
        self.points.windows(2).all(|w| ((w[1].t - w[0].t) - epsilon).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trmma_roadnet::{generate_city, NetworkConfig};

    fn net() -> RoadNetwork {
        generate_city(&NetworkConfig::with_size(5, 5, 2))
    }

    #[test]
    fn trajectory_stats() {
        let t = Trajectory {
            points: vec![
                GpsPoint { pos: Vec2::new(0.0, 0.0), t: 0.0 },
                GpsPoint { pos: Vec2::new(10.0, 0.0), t: 15.0 },
                GpsPoint { pos: Vec2::new(20.0, 0.0), t: 30.0 },
            ],
        };
        assert_eq!(t.len(), 3);
        assert_eq!(t.duration_s(), 30.0);
        assert_eq!(t.mean_interval_s(), 15.0);
        assert!(t.is_time_ordered());
    }

    #[test]
    fn unordered_timestamps_detected() {
        let t = Trajectory {
            points: vec![
                GpsPoint { pos: Vec2::default(), t: 10.0 },
                GpsPoint { pos: Vec2::default(), t: 5.0 },
            ],
        };
        assert!(!t.is_time_ordered());
    }

    #[test]
    fn route_validity_and_length() {
        let net = net();
        let e = SegmentId(0);
        let next = net.successors(e)[0];
        let good = Route::new(vec![e, next]);
        assert!(good.is_valid(&net));
        assert!(
            (good.length_m(&net) - net.segment(e).length - net.segment(next).length).abs() < 1e-9
        );
        assert_eq!(good.position_of(next), Some(1));
        assert_eq!(good.position_of(SegmentId(9999)), None);
    }

    #[test]
    fn matched_point_interpolates() {
        let net = net();
        let e = SegmentId(0);
        let a = MatchedPoint::new(e, 0.5, 0.0);
        let line = net.segment(e).line;
        assert!(a.pos(&net).dist(line.point_at(0.5)) < 1e-9);
        // Clamping.
        assert_eq!(MatchedPoint::new(e, 7.0, 0.0).ratio, 1.0);
        assert_eq!(MatchedPoint::new(e, -7.0, 0.0).ratio, 0.0);
    }

    #[test]
    fn segment_run_deduplicates() {
        let tr = MatchedTrajectory::new(vec![
            MatchedPoint::new(SegmentId(1), 0.1, 0.0),
            MatchedPoint::new(SegmentId(1), 0.6, 15.0),
            MatchedPoint::new(SegmentId(4), 0.2, 30.0),
            MatchedPoint::new(SegmentId(1), 0.3, 45.0),
        ]);
        assert_eq!(tr.segment_run(), vec![SegmentId(1), SegmentId(4), SegmentId(1)]);
    }

    #[test]
    fn epsilon_invariant() {
        let tr = MatchedTrajectory::new(
            (0..5).map(|i| MatchedPoint::new(SegmentId(0), 0.0, 15.0 * f64::from(i))).collect(),
        );
        assert!(tr.satisfies_epsilon(15.0, 1e-9));
        assert!(!tr.satisfies_epsilon(12.0, 1e-9));
    }
}
