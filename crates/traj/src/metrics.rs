//! Evaluation metrics (§VI-A of the paper).
//!
//! * **Recovery** (Table III): Recall / Precision / F1 over the *sets* of
//!   segments visited by the recovered vs ground-truth ε-trajectory;
//!   pointwise Accuracy; MAE and RMSE of the road-network distance between
//!   aligned recovered and ground-truth points (Eq. 22).
//! * **Map matching** (Table V): Precision / Recall / F1 / Jaccard over
//!   route segment sets.
//!
//! Note on the paper's formulas: the printed definitions divide recall by
//! `|S|` (the prediction) and precision by `|Ŝ|` (the ground truth), which
//! swaps the conventional roles. We implement the conventional definitions
//! (recall against ground truth, precision against prediction) — F1 and
//! Jaccard are invariant to the choice, and the relative ordering of methods
//! is unaffected.

use std::collections::HashSet;

use trmma_roadnet::shortest::{matched_dist, DistCache, NetPos};
use trmma_roadnet::{RoadNetwork, SegmentId};

use crate::types::{MatchedTrajectory, Route};

/// Quality of a recovered ε-sampling trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RecoveryMetrics {
    /// Segment-set recall (fraction of ground-truth segments recovered).
    pub recall: f64,
    /// Segment-set precision (fraction of recovered segments correct).
    pub precision: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Pointwise segment accuracy over the ground-truth length.
    pub accuracy: f64,
    /// Mean absolute road-network distance error in metres (Eq. 22).
    pub mae: f64,
    /// Root-mean-square road-network distance error in metres (Eq. 22).
    pub rmse: f64,
}

/// Quality of a map-matched route.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MatchingMetrics {
    /// Segment-set precision.
    pub precision: f64,
    /// Segment-set recall.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Jaccard similarity `|S ∩ Ŝ| / |S ∪ Ŝ|`.
    pub jaccard: f64,
}

fn seg_set(segs: impl IntoIterator<Item = SegmentId>) -> HashSet<u32> {
    segs.into_iter().map(|s| s.0).collect()
}

fn prf(pred: &HashSet<u32>, truth: &HashSet<u32>) -> (f64, f64, f64) {
    if pred.is_empty() || truth.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let inter = pred.intersection(truth).count() as f64;
    let precision = inter / pred.len() as f64;
    let recall = inter / truth.len() as f64;
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    (precision, recall, f1)
}

/// Search-radius bound for network-distance evaluation; beyond this the
/// straight-line fallback in [`matched_dist`] kicks in. Large enough for any
/// in-city error.
const DIST_BOUND_M: f64 = 50_000.0;

/// Evaluates a recovered ε-trajectory against the ground truth.
///
/// Points are aligned positionally (both sequences share the timestamps of
/// the generation grid); a recovered sequence of the wrong length is scored
/// on the overlap and penalised through the accuracy denominator `ℓ_ε`.
#[must_use]
pub fn recovery_metrics(
    net: &RoadNetwork,
    pred: &MatchedTrajectory,
    truth: &MatchedTrajectory,
    cache: Option<&DistCache>,
) -> RecoveryMetrics {
    let pred_set = seg_set(pred.points.iter().map(|p| p.seg));
    let truth_set = seg_set(truth.points.iter().map(|p| p.seg));
    let (precision, recall, f1) = prf(&pred_set, &truth_set);

    let overlap = pred.len().min(truth.len());
    let mut correct = 0usize;
    let mut abs_sum = 0.0;
    let mut sq_sum = 0.0;
    for i in 0..overlap {
        let (p, t) = (&pred.points[i], &truth.points[i]);
        if p.seg == t.seg {
            correct += 1;
        }
        let d = matched_dist(
            net,
            NetPos::new(p.seg, p.ratio),
            NetPos::new(t.seg, t.ratio),
            DIST_BOUND_M,
            cache,
        );
        abs_sum += d;
        sq_sum += d * d;
    }
    let denom = truth.len().max(1) as f64;
    let overlap_f = overlap.max(1) as f64;
    RecoveryMetrics {
        recall,
        precision,
        f1,
        accuracy: correct as f64 / denom,
        mae: abs_sum / overlap_f,
        rmse: (sq_sum / overlap_f).sqrt(),
    }
}

/// Evaluates a map-matched route against the ground-truth route.
#[must_use]
pub fn matching_metrics(pred: &Route, truth: &Route) -> MatchingMetrics {
    let pred_set = seg_set(pred.segs.iter().copied());
    let truth_set = seg_set(truth.segs.iter().copied());
    let (precision, recall, f1) = prf(&pred_set, &truth_set);
    let union = pred_set.union(&truth_set).count() as f64;
    let inter = pred_set.intersection(&truth_set).count() as f64;
    let jaccard = if union > 0.0 { inter / union } else { 0.0 };
    MatchingMetrics { precision, recall, f1, jaccard }
}

/// Running means over per-trajectory metric scores ("we calculate the metric
/// score per trajectory and report the average over all testing
/// trajectories").
#[derive(Debug, Default, Clone)]
pub struct MetricAverager {
    n: usize,
    recovery: RecoveryMetrics,
    matching: MatchingMetrics,
}

impl MetricAverager {
    /// An empty averager.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one trajectory's recovery metrics.
    pub fn add_recovery(&mut self, m: RecoveryMetrics) {
        self.n += 1;
        self.recovery.recall += m.recall;
        self.recovery.precision += m.precision;
        self.recovery.f1 += m.f1;
        self.recovery.accuracy += m.accuracy;
        self.recovery.mae += m.mae;
        self.recovery.rmse += m.rmse;
    }

    /// Adds one trajectory's matching metrics.
    pub fn add_matching(&mut self, m: MatchingMetrics) {
        self.n += 1;
        self.matching.precision += m.precision;
        self.matching.recall += m.recall;
        self.matching.f1 += m.f1;
        self.matching.jaccard += m.jaccard;
    }

    /// Number of accumulated trajectories.
    #[must_use]
    pub fn count(&self) -> usize {
        self.n
    }

    /// Mean recovery metrics.
    #[must_use]
    pub fn mean_recovery(&self) -> RecoveryMetrics {
        let n = self.n.max(1) as f64;
        RecoveryMetrics {
            recall: self.recovery.recall / n,
            precision: self.recovery.precision / n,
            f1: self.recovery.f1 / n,
            accuracy: self.recovery.accuracy / n,
            mae: self.recovery.mae / n,
            rmse: self.recovery.rmse / n,
        }
    }

    /// Mean matching metrics.
    #[must_use]
    pub fn mean_matching(&self) -> MatchingMetrics {
        let n = self.n.max(1) as f64;
        MatchingMetrics {
            precision: self.matching.precision / n,
            recall: self.matching.recall / n,
            f1: self.matching.f1 / n,
            jaccard: self.matching.jaccard / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MatchedPoint;
    use trmma_roadnet::{generate_city, NetworkConfig};

    fn net() -> RoadNetwork {
        generate_city(&NetworkConfig::with_size(6, 6, 4))
    }

    fn mt(points: &[(u32, f64)]) -> MatchedTrajectory {
        MatchedTrajectory::new(
            points
                .iter()
                .enumerate()
                .map(|(i, &(s, r))| MatchedPoint::new(SegmentId(s), r, 15.0 * i as f64))
                .collect(),
        )
    }

    #[test]
    fn perfect_recovery_scores_one() {
        let net = net();
        let t = mt(&[(0, 0.1), (0, 0.6), (1, 0.2)]);
        let m = recovery_metrics(&net, &t, &t, None);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.mae, 0.0);
        assert_eq!(m.rmse, 0.0);
    }

    #[test]
    fn disjoint_recovery_scores_zero_overlap() {
        let net = net();
        let pred = mt(&[(0, 0.5)]);
        let truth = mt(&[(5, 0.5)]);
        let m = recovery_metrics(&net, &pred, &truth, None);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.f1, 0.0);
        assert_eq!(m.accuracy, 0.0);
        assert!(m.mae > 0.0);
    }

    #[test]
    fn accuracy_counts_positionwise() {
        let net = net();
        let pred = mt(&[(0, 0.1), (9, 0.5), (1, 0.2), (2, 0.9)]);
        let truth = mt(&[(0, 0.1), (0, 0.5), (1, 0.2), (3, 0.9)]);
        let m = recovery_metrics(&net, &pred, &truth, None);
        assert!((m.accuracy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn length_mismatch_penalised_in_accuracy() {
        let net = net();
        let pred = mt(&[(0, 0.1), (1, 0.5)]);
        let truth = mt(&[(0, 0.1), (1, 0.5), (2, 0.2), (2, 0.8)]);
        let m = recovery_metrics(&net, &pred, &truth, None);
        assert!((m.accuracy - 0.5).abs() < 1e-12, "2 correct / 4 truth");
    }

    #[test]
    fn rmse_at_least_mae() {
        let net = net();
        let pred = mt(&[(0, 0.0), (1, 0.9), (4, 0.4)]);
        let truth = mt(&[(0, 0.8), (2, 0.1), (4, 0.4)]);
        let m = recovery_metrics(&net, &pred, &truth, None);
        assert!(m.rmse >= m.mae);
    }

    #[test]
    fn matching_metrics_known_sets() {
        let pred = Route::new(vec![SegmentId(0), SegmentId(1), SegmentId(2)]);
        let truth = Route::new(vec![SegmentId(1), SegmentId(2), SegmentId(3), SegmentId(4)]);
        let m = matching_metrics(&pred, &truth);
        assert!((m.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
        assert!((m.jaccard - 2.0 / 5.0).abs() < 1e-12);
        let f1 = 2.0 * m.precision * m.recall / (m.precision + m.recall);
        assert!((m.f1 - f1).abs() < 1e-12);
    }

    #[test]
    fn empty_routes_score_zero() {
        let m = matching_metrics(&Route::default(), &Route::new(vec![SegmentId(0)]));
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
        assert_eq!(m.jaccard, 0.0);
    }

    #[test]
    fn averager_means() {
        let mut avg = MetricAverager::new();
        avg.add_matching(MatchingMetrics { precision: 1.0, recall: 0.5, f1: 0.66, jaccard: 0.5 });
        avg.add_matching(MatchingMetrics { precision: 0.0, recall: 0.5, f1: 0.0, jaccard: 0.0 });
        let m = avg.mean_matching();
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
        assert_eq!(avg.count(), 2);
    }

    #[test]
    fn cache_gives_same_results() {
        let net = net();
        let pred = mt(&[(0, 0.0), (1, 0.9), (4, 0.4)]);
        let truth = mt(&[(0, 0.8), (2, 0.1), (4, 0.4)]);
        let cache = DistCache::new();
        let a = recovery_metrics(&net, &pred, &truth, Some(&cache));
        let b = recovery_metrics(&net, &pred, &truth, None);
        assert!((a.mae - b.mae).abs() < 1e-9);
        assert!((a.rmse - b.rmse).abs() < 1e-9);
        assert!(!cache.is_empty());
    }
}
