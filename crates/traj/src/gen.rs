//! Synthetic trajectory generation and sparsification.
//!
//! The paper's protocol (§VI-A): take high-sampling (ε) trajectories with
//! known routes, then build sparse inputs by randomly sampling points so the
//! average interval becomes ε/γ. Our generator produces the high-sampling
//! side synthetically — a vehicle driving an OD route at jittered per-class
//! speeds, observed every ε seconds with Gaussian GPS noise — which makes
//! the ground truth (route + matched ε-trajectory) exact by construction
//! instead of FMM-derived as in the paper.

use rand::rngs::StdRng;
use rand::seq::index::sample as index_sample;
use rand::{Rng, SeedableRng};

use trmma_geom::Vec2;
use trmma_roadnet::shortest::node_path_by;
use trmma_roadnet::{NodeId, RoadNetwork, SegmentId};

use crate::types::{GpsPoint, MatchedPoint, MatchedTrajectory, Route, Trajectory};

/// Parameters of the trajectory generator.
#[derive(Debug, Clone)]
pub struct TrajConfig {
    /// Target (high) sampling rate ε in seconds.
    pub epsilon_s: f64,
    /// Standard deviation of Gaussian GPS noise in metres.
    pub gps_noise_m: f64,
    /// Minimum straight-line OD distance in metres.
    pub min_od_dist_m: f64,
    /// Per-trip speed multiplier drawn from `[1 − j, 1 + j]`.
    pub speed_jitter: f64,
    /// Log-uniform per-segment travel-time perturbation bound used to
    /// diversify routes between trips sharing an OD pair.
    pub route_perturb: f64,
    /// Minimum number of ε-points per trajectory (shorter trips retry).
    pub min_points: usize,
    /// Maximum number of ε-points per trajectory (longer trips truncate).
    pub max_points: usize,
    /// Probability of a dwell (traffic light / stop sign) when crossing an
    /// intersection. Dwells are what make real recovery harder than linear
    /// interpolation: progress along the route is *not* proportional to
    /// time, and the delay pattern is learnable from the route context.
    pub stop_prob: f64,
    /// Dwell duration range in seconds.
    pub dwell_s: (f64, f64),
}

impl Default for TrajConfig {
    fn default() -> Self {
        Self {
            epsilon_s: 15.0,
            gps_noise_m: 8.0,
            min_od_dist_m: 1_200.0,
            speed_jitter: 0.25,
            route_perturb: 0.4,
            min_points: 12,
            max_points: 120,
            stop_prob: 0.35,
            dwell_s: (5.0, 40.0),
        }
    }
}

/// A generated high-sampling trajectory with exact ground truth.
#[derive(Debug, Clone)]
pub struct RawTrajectory {
    /// Noisy GPS observations at every ε tick.
    pub dense_gps: Trajectory,
    /// Exact map-matched position for every tick (the ground-truth `T̂_ε`).
    pub dense_truth: MatchedTrajectory,
    /// The route driven (the ground-truth `R̂`).
    pub route: Route,
}

/// A sparse training/evaluation sample derived from a [`RawTrajectory`].
#[derive(Debug, Clone)]
pub struct Sample {
    /// The sparse noisy input trajectory `T`.
    pub sparse: Trajectory,
    /// Ground-truth matched point for every sparse GPS point.
    pub sparse_truth: Vec<MatchedPoint>,
    /// Ground-truth ε-sampling trajectory (recovery target).
    pub dense_truth: MatchedTrajectory,
    /// Ground-truth route.
    pub route: Route,
    /// Index of each sparse point within `dense_truth`.
    pub dense_indices: Vec<usize>,
}

/// Samples a standard normal via Box–Muller (rand 0.8 core has no normal
/// distribution without `rand_distr`; two uniforms suffice here).
fn sample_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Deterministic per-(trip, segment) travel-time perturbation factor in
/// `[e^{−p}, e^{p}]`, via a cheap hash so route search stays allocation-free.
fn perturb_factor(trip_seed: u64, seg: SegmentId, p: f64) -> f64 {
    let mut h = trip_seed ^ (u64::from(seg.0).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    ((2.0 * unit - 1.0) * p).exp()
}

/// Generates one trajectory; `None` when no acceptable OD pair/route was
/// found after a bounded number of attempts.
#[must_use]
pub fn generate_trajectory(
    net: &RoadNetwork,
    cfg: &TrajConfig,
    rng: &mut StdRng,
) -> Option<RawTrajectory> {
    for _attempt in 0..24 {
        let src = NodeId(rng.gen_range(0..net.num_nodes() as u32));
        let dst = NodeId(rng.gen_range(0..net.num_nodes() as u32));
        if src == dst || net.node_pos(src).dist(net.node_pos(dst)) < cfg.min_od_dist_m {
            continue;
        }
        let trip_seed: u64 = rng.gen();
        let Some((_, segs)) = node_path_by(net, src, dst, |s| {
            net.segment(s).travel_time_s() * perturb_factor(trip_seed, s, cfg.route_perturb)
        }) else {
            continue;
        };
        if segs.is_empty() {
            continue;
        }
        let speed_factor = rng.gen_range(1.0 - cfg.speed_jitter..1.0 + cfg.speed_jitter);
        let Some(raw) = drive_route(net, cfg, &segs, speed_factor, rng) else {
            continue;
        };
        return Some(raw);
    }
    None
}

/// Drives `segs` at jittered speeds with random dwells at intersections,
/// emitting one matched point (and one noisy GPS point) every ε seconds.
fn drive_route(
    net: &RoadNetwork,
    cfg: &TrajConfig,
    segs: &[SegmentId],
    speed_factor: f64,
    rng: &mut StdRng,
) -> Option<RawTrajectory> {
    let mut truth = Vec::new();
    let mut gps = Vec::new();
    let mut seg_idx = 0usize;
    let mut offset_m = 0.0f64; // distance into current segment
    let mut dwell_s = 0.0f64; // remaining stop time at the current position
    let mut t = 0.0f64;
    while seg_idx < segs.len() && truth.len() < cfg.max_points {
        let seg = net.segment(segs[seg_idx]);
        let ratio = (offset_m / seg.length).clamp(0.0, 1.0);
        truth.push(MatchedPoint::new(segs[seg_idx], ratio, t));
        let true_pos = seg.line.point_at(ratio);
        let noisy = Vec2::new(
            true_pos.x + sample_normal(rng) * cfg.gps_noise_m,
            true_pos.y + sample_normal(rng) * cfg.gps_noise_m,
        );
        gps.push(GpsPoint { pos: noisy, t });

        // Advance ε seconds of (driving | dwelling), hopping segments as
        // needed. Speed jitter consumes time proportionally to distance at
        // the jittered speed.
        let mut remaining = cfg.epsilon_s;
        loop {
            if dwell_s > 0.0 {
                let pause = dwell_s.min(remaining);
                dwell_s -= pause;
                remaining -= pause;
                if remaining <= 0.0 {
                    break;
                }
            }
            let seg = net.segment(segs[seg_idx]);
            let speed = seg.class.speed_mps() * speed_factor;
            let step = remaining * speed;
            if offset_m + step < seg.length {
                offset_m += step;
                break;
            }
            remaining -= (seg.length - offset_m) / speed.max(1e-9);
            offset_m = 0.0;
            seg_idx += 1;
            if seg_idx >= segs.len() {
                break;
            }
            // Crossing an intersection: possible traffic stop.
            if rng.gen::<f64>() < cfg.stop_prob {
                dwell_s = rng.gen_range(cfg.dwell_s.0..cfg.dwell_s.1);
            }
            if remaining <= 0.0 {
                break;
            }
        }
        t += cfg.epsilon_s;
    }
    if truth.len() < cfg.min_points {
        return None;
    }
    // Truncate the route to the part actually driven.
    let last_seg = truth.last().expect("non-empty").seg;
    let driven_end = segs.iter().position(|&s| s == last_seg).unwrap_or(segs.len() - 1);
    Some(RawTrajectory {
        dense_gps: Trajectory { points: gps },
        dense_truth: MatchedTrajectory::new(truth),
        route: Route::new(segs[..=driven_end].to_vec()),
    })
}

/// Generates `n` trajectories deterministically from `seed`.
#[must_use]
pub fn generate_corpus(
    net: &RoadNetwork,
    cfg: &TrajConfig,
    n: usize,
    seed: u64,
) -> Vec<RawTrajectory> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let mut failures = 0usize;
    while out.len() < n && failures < 8 * n + 64 {
        match generate_trajectory(net, cfg, &mut rng) {
            Some(t) => out.push(t),
            None => failures += 1,
        }
    }
    out
}

/// Sparsifies a raw trajectory: keeps the endpoints, samples interior points
/// so the expected interval is ε/γ (the paper's protocol), preserving order.
///
/// # Panics
/// Panics unless `0 < gamma <= 1`.
#[must_use]
pub fn sparsify(raw: &RawTrajectory, gamma: f64, rng: &mut StdRng) -> Sample {
    assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
    let n = raw.dense_truth.len();
    assert!(n >= 2, "raw trajectory too short");
    let interior = n - 2;
    let keep_interior = ((interior as f64) * gamma).round() as usize;
    let mut indices: Vec<usize> = vec![0];
    if keep_interior > 0 && interior > 0 {
        let mut picked: Vec<usize> = index_sample(rng, interior, keep_interior.min(interior))
            .into_iter()
            .map(|i| i + 1)
            .collect();
        picked.sort_unstable();
        indices.extend(picked);
    }
    indices.push(n - 1);

    let sparse = Trajectory { points: indices.iter().map(|&i| raw.dense_gps.points[i]).collect() };
    let sparse_truth = indices.iter().map(|&i| raw.dense_truth.points[i]).collect();
    Sample {
        sparse,
        sparse_truth,
        dense_truth: raw.dense_truth.clone(),
        route: raw.route.clone(),
        dense_indices: indices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trmma_roadnet::{generate_city, NetworkConfig};

    fn setup() -> (RoadNetwork, TrajConfig) {
        let net = generate_city(&NetworkConfig::with_size(10, 10, 3));
        let cfg = TrajConfig { min_points: 8, ..TrajConfig::default() };
        (net, cfg)
    }

    #[test]
    fn generated_truth_lies_on_route() {
        let (net, cfg) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let raw = generate_trajectory(&net, &cfg, &mut rng).expect("generation");
        assert!(raw.route.is_valid(&net), "route must be a path");
        for p in &raw.dense_truth.points {
            assert!(raw.route.segs.contains(&p.seg), "truth point off-route");
            assert!((0.0..=1.0).contains(&p.ratio));
        }
    }

    #[test]
    fn truth_follows_route_order() {
        let (net, cfg) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let raw = generate_trajectory(&net, &cfg, &mut rng).unwrap();
        let mut last = 0usize;
        for p in &raw.dense_truth.points {
            let pos = raw.route.position_of(p.seg).expect("on route");
            assert!(pos >= last, "segments must advance monotonically");
            last = pos;
        }
    }

    #[test]
    fn epsilon_spacing_exact() {
        let (net, cfg) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let raw = generate_trajectory(&net, &cfg, &mut rng).unwrap();
        assert!(raw.dense_truth.satisfies_epsilon(cfg.epsilon_s, 1e-9));
        assert_eq!(raw.dense_gps.len(), raw.dense_truth.len());
    }

    #[test]
    fn gps_noise_is_bounded_in_probability() {
        let (net, cfg) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let raw = generate_trajectory(&net, &cfg, &mut rng).unwrap();
        let mut total = 0.0;
        for (g, a) in raw.dense_gps.points.iter().zip(&raw.dense_truth.points) {
            total += g.pos.dist(a.pos(&net));
        }
        let mean = total / raw.dense_gps.len() as f64;
        // Mean |N(0,σ)| 2-D displacement ≈ σ·sqrt(π/2) ≈ 1.25σ; allow slack.
        assert!(mean > 0.2 * cfg.gps_noise_m && mean < 3.0 * cfg.gps_noise_m, "mean {mean}");
    }

    #[test]
    fn corpus_is_deterministic() {
        let (net, cfg) = setup();
        let a = generate_corpus(&net, &cfg, 5, 77);
        let b = generate_corpus(&net, &cfg, 5, 77);
        assert_eq!(a.len(), 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.route.segs, y.route.segs);
            assert_eq!(x.dense_truth.points.len(), y.dense_truth.points.len());
        }
    }

    #[test]
    fn route_perturbation_diversifies() {
        let (net, cfg) = setup();
        let corpus = generate_corpus(&net, &cfg, 20, 5);
        let distinct: std::collections::HashSet<Vec<u32>> =
            corpus.iter().map(|r| r.route.segs.iter().map(|s| s.0).collect()).collect();
        assert!(distinct.len() > 10, "routes too uniform: {}", distinct.len());
    }

    #[test]
    fn sparsify_keeps_endpoints_and_order() {
        let (net, cfg) = setup();
        let mut rng = StdRng::seed_from_u64(6);
        let raw = generate_trajectory(&net, &cfg, &mut rng).unwrap();
        let s = sparsify(&raw, 0.1, &mut rng);
        assert_eq!(s.dense_indices[0], 0);
        assert_eq!(*s.dense_indices.last().unwrap(), raw.dense_truth.len() - 1);
        assert!(s.dense_indices.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(s.sparse.len(), s.sparse_truth.len());
        assert!(s.sparse.is_time_ordered());
    }

    #[test]
    fn sparsify_interval_scales_with_gamma() {
        let net = generate_city(&NetworkConfig::with_size(16, 16, 3));
        let cfg = TrajConfig {
            epsilon_s: 5.0,
            min_points: 40,
            max_points: 200,
            min_od_dist_m: 2_000.0,
            ..TrajConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let raw = (0..60)
            .find_map(|_| generate_trajectory(&net, &cfg, &mut rng))
            .expect("long trajectory");
        let s01 = sparsify(&raw, 0.1, &mut rng);
        let s05 = sparsify(&raw, 0.5, &mut rng);
        let i01 = s01.sparse.mean_interval_s();
        let i05 = s05.sparse.mean_interval_s();
        assert!(i01 > i05, "smaller gamma must mean longer intervals");
        // Expected interval ε/γ within generous tolerance.
        assert!((i01 / (cfg.epsilon_s / 0.1) - 1.0).abs() < 0.5, "i01 {i01}");
        assert!((i05 / (cfg.epsilon_s / 0.5) - 1.0).abs() < 0.3, "i05 {i05}");
    }

    #[test]
    fn gamma_one_keeps_everything() {
        let (net, cfg) = setup();
        let mut rng = StdRng::seed_from_u64(8);
        let raw = generate_trajectory(&net, &cfg, &mut rng).unwrap();
        let s = sparsify(&raw, 1.0, &mut rng);
        assert_eq!(s.sparse.len(), raw.dense_truth.len());
    }

    #[test]
    fn perturb_factor_deterministic_and_bounded() {
        let f1 = perturb_factor(42, SegmentId(7), 0.4);
        let f2 = perturb_factor(42, SegmentId(7), 0.4);
        assert_eq!(f1, f2);
        for seg in 0..100 {
            let f = perturb_factor(1, SegmentId(seg), 0.4);
            assert!(f >= (-0.4f64).exp() && f <= 0.4f64.exp());
        }
    }
}
