//! Named dataset configurations and deterministic splits.
//!
//! Four configurations mirror the paper's PT / XA / BJ / CD corpora
//! (Table II) at laptop scale: the sampling rate ε, relative network sizes,
//! block granularity and GPS noise levels follow the originals; trajectory
//! counts are scaled down by the `scale` knob (benches raise it). The split
//! is the paper's 40 % / 30 % / 30 % train/validation/test.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use trmma_roadnet::{generate_city, NetworkConfig, RoadNetwork};

use crate::gen::{generate_corpus, sparsify, RawTrajectory, Sample, TrajConfig};

/// Which partition of a dataset to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Split {
    /// 40 % — model fitting.
    Train,
    /// 30 % — hyper-parameter tuning / early stopping.
    Val,
    /// 30 % — reported metrics.
    Test,
}

/// Full recipe for a dataset.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Display name (used in experiment tables).
    pub name: String,
    /// Road-network recipe.
    pub net: NetworkConfig,
    /// Trajectory generator recipe.
    pub traj: TrajConfig,
    /// Number of high-sampling trajectories to generate.
    pub n_trajectories: usize,
    /// Default sparsity ratio γ (interval of sparse input = ε/γ).
    pub default_gamma: f64,
    /// Master seed.
    pub seed: u64,
}

impl DatasetConfig {
    /// Porto-like: ε = 15 s, mid-size network, moderate noise.
    #[must_use]
    pub fn porto_like(scale: f64) -> Self {
        Self {
            name: "PT".into(),
            net: NetworkConfig {
                nx: 14,
                ny: 12,
                spacing_m: 170.0,
                seed: 101,
                ..NetworkConfig::default()
            },
            traj: TrajConfig { epsilon_s: 15.0, gps_noise_m: 8.0, ..TrajConfig::default() },
            n_trajectories: scaled(260, scale),
            default_gamma: 0.1,
            seed: 1001,
        }
    }

    /// Xi'an-like: ε = 12 s, compact dense network, low noise.
    #[must_use]
    pub fn xian_like(scale: f64) -> Self {
        Self {
            name: "XA".into(),
            net: NetworkConfig {
                nx: 10,
                ny: 10,
                spacing_m: 150.0,
                seed: 102,
                ..NetworkConfig::default()
            },
            traj: TrajConfig { epsilon_s: 12.0, gps_noise_m: 6.0, ..TrajConfig::default() },
            n_trajectories: scaled(300, scale),
            default_gamma: 0.1,
            seed: 1002,
        }
    }

    /// Beijing-like: ε = 60 s, the largest network, the noisiest GPS.
    #[must_use]
    pub fn beijing_like(scale: f64) -> Self {
        Self {
            name: "BJ".into(),
            net: NetworkConfig {
                nx: 18,
                ny: 18,
                spacing_m: 240.0,
                seed: 103,
                ..NetworkConfig::default()
            },
            traj: TrajConfig {
                epsilon_s: 60.0,
                gps_noise_m: 15.0,
                min_od_dist_m: 2_000.0,
                min_points: 10,
                max_points: 60,
                ..TrajConfig::default()
            },
            n_trajectories: scaled(260, scale),
            default_gamma: 0.1,
            seed: 1003,
        }
    }

    /// Chengdu-like: ε = 12 s, mid-size dense network.
    #[must_use]
    pub fn chengdu_like(scale: f64) -> Self {
        Self {
            name: "CD".into(),
            net: NetworkConfig {
                nx: 12,
                ny: 12,
                spacing_m: 160.0,
                seed: 104,
                ..NetworkConfig::default()
            },
            traj: TrajConfig { epsilon_s: 12.0, gps_noise_m: 6.0, ..TrajConfig::default() },
            n_trajectories: scaled(320, scale),
            default_gamma: 0.1,
            seed: 1004,
        }
    }

    /// All four paper-shaped configurations.
    #[must_use]
    pub fn all_four(scale: f64) -> Vec<Self> {
        vec![
            Self::porto_like(scale),
            Self::xian_like(scale),
            Self::beijing_like(scale),
            Self::chengdu_like(scale),
        ]
    }

    /// A deliberately tiny configuration for unit/integration tests.
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            name: "TINY".into(),
            net: NetworkConfig::with_size(8, 8, 9),
            traj: TrajConfig {
                epsilon_s: 15.0,
                min_points: 10,
                max_points: 40,
                ..TrajConfig::default()
            },
            n_trajectories: 40,
            default_gamma: 0.2,
            seed: 900,
        }
    }
}

fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64) * scale).round().max(8.0) as usize
}

/// Table II-style dataset statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetStats {
    /// Number of trajectories.
    pub n_trajectories: usize,
    /// Sampling rate ε in seconds.
    pub epsilon_s: f64,
    /// Mean points per (dense) trajectory.
    pub avg_points: f64,
    /// Mean trajectory length in metres.
    pub avg_length_m: f64,
    /// Mean travel time in seconds.
    pub avg_travel_time_s: f64,
    /// `|E|`.
    pub n_segments: usize,
    /// `|V|`.
    pub n_intersections: usize,
    /// Bounding-box area in km².
    pub area_km2: f64,
}

/// A generated dataset: network, high-sampling corpus and split indices.
#[derive(Debug)]
pub struct Dataset {
    /// Display name.
    pub name: String,
    /// The road network.
    pub net: RoadNetwork,
    /// Target sampling rate ε in seconds.
    pub epsilon_s: f64,
    /// Default γ for this dataset.
    pub default_gamma: f64,
    raws: Vec<RawTrajectory>,
    train_idx: Vec<usize>,
    val_idx: Vec<usize>,
    test_idx: Vec<usize>,
}

/// Builds a dataset: generates the network and corpus, then splits
/// 40/30/30 deterministically from the config seed.
#[must_use]
pub fn build_dataset(cfg: &DatasetConfig) -> Dataset {
    let net = generate_city(&cfg.net);
    let raws = generate_corpus(&net, &cfg.traj, cfg.n_trajectories, cfg.seed);
    let mut order: Vec<usize> = (0..raws.len()).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xA5A5_5A5A);
    order.shuffle(&mut rng);
    let n = order.len();
    let train_end = (n as f64 * 0.4).round() as usize;
    let val_end = (n as f64 * 0.7).round() as usize;
    Dataset {
        name: cfg.name.clone(),
        net,
        epsilon_s: cfg.traj.epsilon_s,
        default_gamma: cfg.default_gamma,
        train_idx: order[..train_end].to_vec(),
        val_idx: order[train_end..val_end].to_vec(),
        test_idx: order[val_end..].to_vec(),
        raws,
    }
}

impl Dataset {
    /// High-sampling trajectories of one split.
    #[must_use]
    pub fn raws(&self, split: Split) -> Vec<&RawTrajectory> {
        self.indices(split).iter().map(|&i| &self.raws[i]).collect()
    }

    /// All high-sampling trajectories.
    #[must_use]
    pub fn all_raws(&self) -> &[RawTrajectory] {
        &self.raws
    }

    fn indices(&self, split: Split) -> &[usize] {
        match split {
            Split::Train => &self.train_idx,
            Split::Val => &self.val_idx,
            Split::Test => &self.test_idx,
        }
    }

    /// Sparse samples of one split at sparsity `gamma` (deterministic in
    /// `seed`). Re-invoking with a different γ re-sparsifies the same
    /// high-sampling trajectories, which is exactly the paper's
    /// varying-sparsity protocol (Figs. 7 and 11).
    #[must_use]
    pub fn samples(&self, split: Split, gamma: f64, seed: u64) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.indices(split).iter().map(|&i| sparsify(&self.raws[i], gamma, &mut rng)).collect()
    }

    /// Table II statistics for this dataset.
    #[must_use]
    pub fn stats(&self) -> DatasetStats {
        let n = self.raws.len();
        let mut pts = 0.0;
        let mut len_m = 0.0;
        let mut time_s = 0.0;
        for r in &self.raws {
            pts += r.dense_truth.len() as f64;
            len_m += r.route.length_m(&self.net);
            time_s += r.dense_gps.duration_s();
        }
        let bb = self.net.bbox();
        let area = ((bb.max.x - bb.min.x) * (bb.max.y - bb.min.y)) / 1e6;
        let nf = n.max(1) as f64;
        DatasetStats {
            n_trajectories: n,
            epsilon_s: self.epsilon_s,
            avg_points: pts / nf,
            avg_length_m: len_m / nf,
            avg_travel_time_s: time_s / nf,
            n_segments: self.net.num_segments(),
            n_intersections: self.net.num_nodes(),
            area_km2: area,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_sizes_are_40_30_30() {
        let ds = build_dataset(&DatasetConfig::tiny());
        let n = ds.all_raws().len();
        assert!(n > 0);
        let (tr, va, te) =
            (ds.raws(Split::Train).len(), ds.raws(Split::Val).len(), ds.raws(Split::Test).len());
        assert_eq!(tr + va + te, n);
        assert!((tr as f64 / n as f64 - 0.4).abs() < 0.1, "train {tr}/{n}");
    }

    #[test]
    fn splits_are_disjoint() {
        let ds = build_dataset(&DatasetConfig::tiny());
        let mut seen = std::collections::HashSet::new();
        for split in [Split::Train, Split::Val, Split::Test] {
            for r in ds.raws(split) {
                // Pointer identity distinguishes raws.
                assert!(seen.insert(r as *const RawTrajectory));
            }
        }
    }

    #[test]
    fn samples_deterministic_per_seed() {
        let ds = build_dataset(&DatasetConfig::tiny());
        let a = ds.samples(Split::Test, 0.2, 5);
        let b = ds.samples(Split::Test, 0.2, 5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.dense_indices, y.dense_indices);
        }
        let c = ds.samples(Split::Test, 0.2, 6);
        let differs = a.iter().zip(&c).any(|(x, y)| x.dense_indices != y.dense_indices);
        assert!(differs, "different seeds should sparsify differently");
    }

    #[test]
    fn stats_are_sane() {
        let ds = build_dataset(&DatasetConfig::tiny());
        let s = ds.stats();
        assert_eq!(s.n_trajectories, ds.all_raws().len());
        assert!(s.avg_points >= 10.0);
        assert!(s.avg_length_m > 200.0);
        assert!(s.avg_travel_time_s > 0.0);
        assert!(s.area_km2 > 0.1);
        assert_eq!(s.epsilon_s, 15.0);
    }

    #[test]
    fn four_configs_have_paper_epsilons() {
        let cfgs = DatasetConfig::all_four(0.2);
        let eps: Vec<f64> = cfgs.iter().map(|c| c.traj.epsilon_s).collect();
        assert_eq!(eps, vec![15.0, 12.0, 60.0, 12.0]);
        let names: Vec<&str> = cfgs.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["PT", "XA", "BJ", "CD"]);
    }
}
