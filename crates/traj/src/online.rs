//! Streaming (online) map matching: incremental decoders behind a
//! session-per-device interface.
//!
//! The batch engine serves complete, pre-collected trajectories; production
//! traffic is the opposite shape — GPS points arrive one at a time from many
//! concurrent devices, and each device wants a match *now*, refined as more
//! evidence arrives. The map-matching literature treats this online /
//! incremental mode as first-class, distinct from offline global decoding
//! (Chao et al., 2019): the decoder must keep its search state warm between
//! updates instead of re-decoding from scratch.
//!
//! [`OnlineMatcher`] is that contract. A *session* holds one trajectory's
//! decoder state (the Viterbi beam and backpointers for the HMM family, the
//! accumulated point/candidate history for MMA); the per-worker *scratch*
//! ([`ScratchMatcher::Scratch`]) holds the reusable search buffers shared by
//! every session a worker serves (warm Dijkstra pools, kNN heaps, autograd
//! tapes). Each [`OnlineMatcher::push_point`] returns an [`OnlineUpdate`]:
//! the *provisional* match of the newest point (what the decoder would
//! answer if the stream ended now) plus the *stabilized prefix watermark* —
//! the number of leading points whose final match can no longer change, no
//! matter what arrives later.
//!
//! **Offline as replay.** Feeding a whole trajectory through
//! `begin_session` → `push_point`* → `finalize` must produce output
//! identical to [`MapMatcher::match_trajectory`] — the offline decode *is*
//! the online decode replayed; `tests/props_streaming.rs` property-tests
//! this for every implementation in the repository.
//!
//! **Sessions are detachable.** A session owns its entire decode history
//! and borrows nothing from the scratch that last advanced it, so a
//! streaming engine may *migrate* a live session to a different worker
//! (different scratch) between any two pushes without changing a single
//! output bit — see [`OnlineMatcher::session_stable`] for the eligibility
//! test the load-aware router uses.
//!
//! [`MapMatcher::match_trajectory`]: crate::api::MapMatcher::match_trajectory

use crate::api::{MatchResult, ScratchMatcher};
use crate::snapshot::SnapshotError;
use crate::types::{GpsPoint, MatchedPoint};

/// What one [`OnlineMatcher::push_point`] call tells the caller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineUpdate {
    /// Best-known match of the point just pushed — the match the decoder
    /// would commit to if the stream ended here. `None` only when the
    /// decoder found no candidate at all (empty road network).
    pub provisional: Option<MatchedPoint>,
    /// Stabilized-prefix watermark: the first `stable_prefix` points of the
    /// session have reached their final match — [`OnlineMatcher::finalize`]
    /// is guaranteed to return exactly those matches for them regardless of
    /// any points still to come. Monotonically non-decreasing over a
    /// session's lifetime.
    pub stable_prefix: usize,
}

/// An incremental map matcher: the decoder as a resumable state machine.
///
/// Implementations split their mutable state in two:
///
/// * **Session** — per-trajectory decoder state, created by
///   [`OnlineMatcher::begin_session`] and advanced one GPS point at a time.
///   A session is *detachable*: it owns everything the decode depends on
///   (the Viterbi lattice, MMA's accumulated candidate sets) and borrows
///   nothing from the scratch it last ran on, so it is `Send` and a
///   streaming engine can hold thousands and **migrate** them between
///   workers mid-stream — any scratch continues the decode bitwise
///   identically.
/// * **Scratch** — per-*worker* search buffers (inherited from
///   [`ScratchMatcher`]): one scratch serves every session on that worker,
///   exactly as it serves every trajectory in the batch engine. Scratch
///   contents are pure caches (warm Dijkstra pools, kNN heaps, autograd
///   tapes) and never influence decoder output.
///
/// The contract, property-tested in `tests/props_streaming.rs`:
///
/// 1. *Replay equivalence*: pushing a trajectory's points in order and
///    finalizing returns output identical to
///    [`MapMatcher::match_trajectory`] on the whole trajectory.
/// 2. *Watermark soundness*: once an update reports `stable_prefix = w`,
///    the first `w` matched points of any future `finalize` equal what
///    `finalize` would return right now.
/// 3. *Scratch independence*: pushing the same points through the same
///    session with different (or fresh) scratches yields identical
///    updates and an identical finalize — the property migration rests on.
///
/// [`MapMatcher::match_trajectory`]: crate::api::MapMatcher::match_trajectory
pub trait OnlineMatcher: ScratchMatcher {
    /// Per-session decoder state.
    type Session: Send;

    /// Opens a fresh session (no points yet).
    fn begin_session(&self) -> Self::Session;

    /// Feeds the next GPS point of the session's trajectory; returns the
    /// provisional match and the stabilized-prefix watermark.
    fn push_point(
        &self,
        scratch: &mut Self::Scratch,
        session: &mut Self::Session,
        point: GpsPoint,
    ) -> OnlineUpdate;

    /// Closes the session: runs the final (global) decode over everything
    /// pushed and stitches the route — identical to the offline
    /// [`MapMatcher::match_trajectory`] on the same points.
    ///
    /// [`MapMatcher::match_trajectory`]: crate::api::MapMatcher::match_trajectory
    fn finalize(&self, scratch: &mut Self::Scratch, session: Self::Session) -> MatchResult;

    /// Number of points pushed into `session` so far.
    fn session_len(&self, session: &Self::Session) -> usize;

    /// The session's current stabilized-prefix watermark — the value the
    /// last [`OnlineUpdate::stable_prefix`] reported (`0` before any push).
    fn session_watermark(&self, session: &Self::Session) -> usize;

    /// Whether every pushed point has reached its final match
    /// (`watermark == len`). A stable session's decode cannot be revised
    /// by its own history, only extended by future points — the
    /// eligibility test a load-aware streaming router applies before
    /// migrating a session off a hot worker (migration is *correct*
    /// regardless, because sessions are detachable; stability makes it
    /// *cheap*, nothing provisional is in flight).
    fn session_stable(&self, session: &Self::Session) -> bool {
        self.session_watermark(session) >= self.session_len(session)
    }

    /// Serializes the session's complete decoder state into `out`, using
    /// the wire primitives of [`crate::snapshot`]. Because sessions are
    /// detachable (they borrow nothing from any scratch), the byte string
    /// is the *whole* decode: restoring it on any worker of any process
    /// running the same matcher configuration continues the stream
    /// bitwise-identically — the contract crash recovery and rolling
    /// restarts rest on, property-tested in `tests/props_snapshot.rs`.
    ///
    /// Implementations append raw payload bytes only; the engine wraps them
    /// in a versioned, checksummed envelope (`trmma_core::snapshot`) that
    /// also records which matcher produced them.
    fn snapshot_session(&self, session: &Self::Session, out: &mut Vec<u8>);

    /// Reconstructs a session from bytes written by
    /// [`OnlineMatcher::snapshot_session`]. The restored session must be
    /// indistinguishable from the original: same `session_len`, same
    /// `session_watermark`, and every future `push_point`/`finalize`
    /// bit-for-bit equal to what the original would have produced.
    ///
    /// Fails with [`SnapshotError`] (never panics) on truncated or
    /// structurally invalid input.
    fn restore_session(&self, bytes: &[u8]) -> Result<Self::Session, SnapshotError>;
}
