//! Trajectory data model, synthetic data pipeline and evaluation metrics.
//!
//! Implements Definitions 2–7 of the paper and the full data side of its
//! experimental setup (§VI-A):
//!
//! * [`types`] — GPS points, trajectories, routes, map-matched points and
//!   ε-sampling trajectories;
//! * [`gen`] — the synthetic trajectory generator standing in for the PT /
//!   XA / BJ / CD taxi corpora: OD-pair routes on a road network, constant
//!   per-segment speeds with per-trip jitter, exact map-matched ground truth
//!   at the target sampling rate ε, Gaussian GPS noise, and random
//!   sparsification to average interval ε/γ (the paper's protocol);
//! * [`dataset`] — the four named dataset configurations mirroring Table II
//!   at laptop scale, with deterministic train/validation/test splits
//!   (40/30/30 as in the paper);
//! * [`metrics`] — MAE/RMSE over road-network distance (Eq. 22), Precision /
//!   Recall / F1 / Accuracy for recovery, and Precision / Recall / F1 /
//!   Jaccard for map matching;
//! * [`online`] — the streaming interface: [`OnlineMatcher`] sessions fed
//!   one GPS point at a time, with provisional matches and a
//!   stabilized-prefix watermark.
//!
//! # Example
//!
//! Build the tiny synthetic dataset and draw sparse samples with exact
//! map-matched ground truth — the input every experiment starts from:
//!
//! ```
//! use trmma_traj::dataset::{build_dataset, DatasetConfig, Split};
//!
//! let ds = build_dataset(&DatasetConfig::tiny());
//! let samples = ds.samples(Split::Test, 0.2, 42);
//! assert!(!samples.is_empty());
//! let s = &samples[0];
//! // One ground-truth matched point per sparse GPS point…
//! assert_eq!(s.sparse.len(), s.sparse_truth.len());
//! // …and the true route is a connected path in the network.
//! assert!(s.route.is_valid(&ds.net));
//! ```

pub mod api;
pub mod dataset;
pub mod gen;
pub mod io;
pub mod metrics;
pub mod online;
pub mod snapshot;
pub mod types;

pub use api::{
    stitch_route, Candidate, CandidateFinder, CandidateScratch, MapMatcher, MatchResult,
    ScratchMatcher, ScratchStats, TrajectoryRecovery,
};
pub use dataset::{build_dataset, Dataset, DatasetConfig, Split};
pub use gen::{sparsify, RawTrajectory, Sample, TrajConfig};
pub use metrics::{matching_metrics, recovery_metrics, MatchingMetrics, RecoveryMetrics};
pub use online::{OnlineMatcher, OnlineUpdate};
pub use snapshot::SnapshotError;
pub use types::{GpsPoint, MatchedPoint, MatchedTrajectory, Route, Trajectory};
