//! Wire primitives of the session-snapshot format.
//!
//! A crash-safe streaming deployment must be able to freeze a live
//! [`OnlineMatcher`] session — the Viterbi lattice of an HMM-family
//! decoder, MMA's accumulated candidate sets — into bytes and thaw it
//! later, on another worker or another process, continuing the decode
//! **bitwise-identically**. This module provides the codec layer those
//! payloads are written in; the versioned, checksummed *envelope* around a
//! payload (magic, matcher kind, engine-side counters, CRC) lives in
//! `trmma_core::snapshot`, next to the engine that emits it.
//!
//! Two rules make restores bitwise-exact and portable:
//!
//! * every `f64` travels as its IEEE-754 bit pattern
//!   ([`f64::to_bits`]/[`f64::from_bits`]) — no text round-trip, no
//!   rounding, NaN payloads and signed zeros preserved;
//! * all integers are fixed-width little-endian; `usize` quantities travel
//!   as `u64` (the in-memory sentinel `usize::MAX` used by the Viterbi
//!   backpointers round-trips as `u64::MAX`).
//!
//! Decoding never panics: every [`Reader`] accessor returns
//! [`SnapshotError`] on truncated or malformed input, so a corrupt or
//! truncated snapshot is reported, not unwound through a worker thread.
//!
//! [`OnlineMatcher`]: crate::online::OnlineMatcher

use trmma_geom::Vec2;
use trmma_roadnet::SegmentId;

use crate::api::{Candidate, MatchResult};
use crate::types::{GpsPoint, MatchedPoint, Route, Trajectory};

/// Why a snapshot could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer ended before the announced data did.
    Truncated,
    /// The envelope does not start with the snapshot magic.
    BadMagic,
    /// The envelope's format version is not understood by this build.
    BadVersion(u16),
    /// The envelope checksum does not match its contents.
    Checksum,
    /// The snapshot was produced by a different matcher than the one
    /// restoring it.
    WrongMatcher {
        /// The matcher asked to restore.
        expected: String,
        /// The matcher named in the snapshot.
        found: String,
    },
    /// Structurally invalid payload (inconsistent lengths, trailing bytes).
    Malformed(&'static str),
    /// A section is too large for its fixed-width length field. Raised by
    /// the *writer*: a length that does not fit `u32` must fail the encode
    /// rather than be truncated into a wrong-but-plausible prefix length.
    Oversize {
        /// The actual byte length that did not fit.
        len: usize,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "snapshot truncated"),
            Self::BadMagic => write!(f, "not a session snapshot (bad magic)"),
            Self::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            Self::Checksum => write!(f, "snapshot checksum mismatch"),
            Self::WrongMatcher { expected, found } => {
                write!(f, "snapshot is for matcher {found:?}, not {expected:?}")
            }
            Self::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            Self::Oversize { len } => {
                write!(f, "snapshot section of {len} bytes exceeds the u32 length field")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a `u16`, little-endian.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32`, little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64`, little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `usize` as a `u64` (`usize::MAX` ↔ `u64::MAX`).
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// Appends an `f64` as its exact IEEE-754 bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Checks that `len` fits the codec's `u32` length fields.
///
/// # Errors
/// [`SnapshotError::Oversize`] when it does not — the writer must refuse
/// rather than truncate the length into a wrong-but-plausible value.
pub fn check_u32_len(len: usize) -> Result<u32, SnapshotError> {
    u32::try_from(len).map_err(|_| SnapshotError::Oversize { len })
}

/// Appends a length-prefixed byte string (`u32` length).
///
/// # Errors
/// [`SnapshotError::Oversize`] when `bytes` is longer than `u32::MAX` —
/// nothing is appended in that case, so a failed encode leaves `out`
/// unchanged rather than half-written.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) -> Result<(), SnapshotError> {
    put_u32(out, check_u32_len(bytes.len())?);
    out.extend_from_slice(bytes);
    Ok(())
}

/// Appends a GPS point (position bits + timestamp bits).
pub fn put_gps(out: &mut Vec<u8>, p: GpsPoint) {
    put_f64(out, p.pos.x);
    put_f64(out, p.pos.y);
    put_f64(out, p.t);
}

/// Appends a candidate (segment id, distance bits, ratio bits).
pub fn put_candidate(out: &mut Vec<u8>, c: &Candidate) {
    put_u32(out, c.seg.0);
    put_f64(out, c.dist_m);
    put_f64(out, c.ratio);
}

/// Appends a matched point (segment id, ratio bits, timestamp bits).
pub fn put_matched(out: &mut Vec<u8>, m: &MatchedPoint) {
    put_u32(out, m.seg.0);
    put_f64(out, m.ratio);
    put_f64(out, m.t);
}

/// A bounds-checked cursor over snapshot bytes; every accessor fails with
/// [`SnapshotError::Truncated`] instead of panicking on short input.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte has been consumed — snapshots carry no
    /// trailing garbage.
    pub fn expect_end(&self) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::Malformed("trailing bytes"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a `usize` stored as `u64` (`u64::MAX` ↔ `usize::MAX`).
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?).map_err(|_| SnapshotError::Malformed("usize overflow"))
    }

    /// Reads a length field used to size an allocation, rejecting values
    /// that could not possibly fit in the remaining bytes (corrupt lengths
    /// must not trigger huge allocations).
    pub fn seq_len(&mut self) -> Result<usize, SnapshotError> {
        let n = self.usize()?;
        // Every encoded element is at least one byte.
        if n > self.remaining() {
            return Err(SnapshotError::Truncated);
        }
        Ok(n)
    }

    /// Reads an `f64` from its exact bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Reads a GPS point.
    pub fn gps(&mut self) -> Result<GpsPoint, SnapshotError> {
        Ok(GpsPoint { pos: Vec2::new(self.f64()?, self.f64()?), t: self.f64()? })
    }

    /// Reads a candidate.
    pub fn candidate(&mut self) -> Result<Candidate, SnapshotError> {
        Ok(Candidate { seg: SegmentId(self.u32()?), dist_m: self.f64()?, ratio: self.f64()? })
    }

    /// Reads a matched point **without** re-clamping the ratio: the encoder
    /// wrote an already-constructed point, and restore must reproduce its
    /// bits exactly.
    pub fn matched(&mut self) -> Result<MatchedPoint, SnapshotError> {
        let seg = SegmentId(self.u32()?);
        let ratio = self.f64()?;
        let t = self.f64()?;
        Ok(MatchedPoint { seg, ratio, t })
    }
}

/// Encodes a trajectory (point count + points).
pub fn put_trajectory(out: &mut Vec<u8>, traj: &Trajectory) {
    put_usize(out, traj.points.len());
    for &p in &traj.points {
        put_gps(out, p);
    }
}

/// Decodes a trajectory written by [`put_trajectory`].
pub fn read_trajectory(r: &mut Reader<'_>) -> Result<Trajectory, SnapshotError> {
    let n = r.seq_len()?;
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        points.push(r.gps()?);
    }
    Ok(Trajectory { points })
}

/// Encodes a per-point candidate list-of-lists (layer count, then each
/// layer's candidate count + candidates).
pub fn put_cand_sets(out: &mut Vec<u8>, sets: &[Vec<Candidate>]) {
    put_usize(out, sets.len());
    for set in sets {
        put_usize(out, set.len());
        for c in set {
            put_candidate(out, c);
        }
    }
}

/// Decodes candidate sets written by [`put_cand_sets`].
pub fn read_cand_sets(r: &mut Reader<'_>) -> Result<Vec<Vec<Candidate>>, SnapshotError> {
    let layers = r.seq_len()?;
    let mut sets = Vec::with_capacity(layers);
    for _ in 0..layers {
        let n = r.seq_len()?;
        let mut set = Vec::with_capacity(n);
        for _ in 0..n {
            set.push(r.candidate()?);
        }
        sets.push(set);
    }
    Ok(sets)
}

/// Encodes a route (segment count + segment ids).
pub fn put_route(out: &mut Vec<u8>, route: &Route) {
    put_usize(out, route.segs.len());
    for &s in &route.segs {
        put_u32(out, s.0);
    }
}

/// Decodes a route written by [`put_route`].
pub fn read_route(r: &mut Reader<'_>) -> Result<Route, SnapshotError> {
    let n = r.seq_len()?;
    let mut segs = Vec::with_capacity(n);
    for _ in 0..n {
        segs.push(SegmentId(r.u32()?));
    }
    Ok(Route { segs })
}

/// Encodes a full match result (matched points + stitched route). This is
/// the payload of a `Final` reply on the ingest wire: the bytes must round
/// trip bitwise so a remote client can compare against an offline decode.
pub fn put_match_result(out: &mut Vec<u8>, res: &MatchResult) {
    put_usize(out, res.matched.len());
    for m in &res.matched {
        put_matched(out, m);
    }
    put_route(out, &res.route);
}

/// Decodes a match result written by [`put_match_result`].
pub fn read_match_result(r: &mut Reader<'_>) -> Result<MatchResult, SnapshotError> {
    let n = r.seq_len()?;
    let mut matched = Vec::with_capacity(n);
    for _ in 0..n {
        matched.push(r.matched()?);
    }
    let route = read_route(r)?;
    Ok(MatchResult { matched, route })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_bitwise() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xAB);
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_usize(&mut buf, usize::MAX);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::NEG_INFINITY);
        put_f64(&mut buf, f64::from_bits(0x7FF8_0000_0000_1234)); // NaN payload
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.usize().unwrap(), usize::MAX);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap(), f64::NEG_INFINITY);
        assert_eq!(r.f64().unwrap().to_bits(), 0x7FF8_0000_0000_1234);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 7);
        let mut r = Reader::new(&buf[..5]);
        assert_eq!(r.u64(), Err(SnapshotError::Truncated));
        // A corrupt length field cannot demand more than the buffer holds.
        let mut buf = Vec::new();
        put_usize(&mut buf, 1 << 40);
        let mut r = Reader::new(&buf);
        assert_eq!(r.seq_len(), Err(SnapshotError::Truncated));
    }

    #[test]
    fn composites_round_trip() {
        let traj = Trajectory {
            points: vec![
                GpsPoint { pos: Vec2::new(1.5, -2.25), t: 10.0 },
                GpsPoint { pos: Vec2::new(0.0, 3.0), t: 11.5 },
            ],
        };
        let sets = vec![
            vec![Candidate { seg: SegmentId(3), dist_m: 1.25, ratio: 0.5 }],
            vec![],
            vec![
                Candidate { seg: SegmentId(0), dist_m: 0.0, ratio: 0.0 },
                Candidate { seg: SegmentId(u32::MAX), dist_m: f64::MAX, ratio: 1.0 },
            ],
        ];
        let m = MatchedPoint { seg: SegmentId(9), ratio: 0.75, t: 1e9 };
        let mut buf = Vec::new();
        put_trajectory(&mut buf, &traj);
        put_cand_sets(&mut buf, &sets);
        put_matched(&mut buf, &m);
        let mut r = Reader::new(&buf);
        assert_eq!(read_trajectory(&mut r).unwrap(), traj);
        assert_eq!(read_cand_sets(&mut r).unwrap(), sets);
        assert_eq!(r.matched().unwrap(), m);
        r.expect_end().unwrap();
        assert_eq!(Reader::new(&buf).expect_end(), Err(SnapshotError::Malformed("trailing bytes")));
    }

    #[test]
    fn match_results_round_trip_bitwise() {
        let res = MatchResult {
            matched: vec![
                MatchedPoint { seg: SegmentId(3), ratio: 0.0, t: -0.0 },
                MatchedPoint { seg: SegmentId(u32::MAX), ratio: 1.0, t: 1e12 },
            ],
            route: Route::new(vec![SegmentId(3), SegmentId(4), SegmentId(u32::MAX)]),
        };
        let mut buf = Vec::new();
        put_match_result(&mut buf, &res);
        let mut r = Reader::new(&buf);
        let back = read_match_result(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back, res);
        assert_eq!(back.matched[0].t.to_bits(), (-0.0f64).to_bits());
        // Truncation anywhere inside is an error, never a panic.
        for cut in 0..buf.len() {
            assert!(read_match_result(&mut Reader::new(&buf[..cut])).is_err());
        }
    }

    #[test]
    fn length_fields_error_at_the_u32_boundary_instead_of_truncating() {
        // The check itself is exact at the boundary…
        assert_eq!(check_u32_len(0), Ok(0));
        assert_eq!(check_u32_len(u32::MAX as usize), Ok(u32::MAX));
        #[cfg(target_pointer_width = "64")]
        {
            let over = u32::MAX as usize + 1;
            assert_eq!(check_u32_len(over), Err(SnapshotError::Oversize { len: over }));
            assert!(check_u32_len(over).unwrap_err().to_string().contains("4294967296"));
        }
        // …and put_bytes routes every length through it before writing
        // anything (a failed encode leaves the buffer untouched by
        // construction: the length check precedes the first append).
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"ok").unwrap();
        assert_eq!(buf.len(), 4 + 2);
        let mut r = Reader::new(&buf);
        assert_eq!(r.bytes().unwrap(), b"ok");
        r.expect_end().unwrap();
    }

    #[test]
    fn errors_display() {
        let e = SnapshotError::WrongMatcher { expected: "HMM".into(), found: "MMA".into() };
        assert!(e.to_string().contains("MMA"));
        assert!(SnapshotError::BadVersion(9).to_string().contains('9'));
        assert!(!SnapshotError::Checksum.to_string().is_empty());
        assert!(!SnapshotError::BadMagic.to_string().is_empty());
        assert!(!SnapshotError::Truncated.to_string().is_empty());
        assert!(!SnapshotError::Malformed("x").to_string().is_empty());
        assert!(SnapshotError::Oversize { len: 5 }.to_string().contains('5'));
    }
}
