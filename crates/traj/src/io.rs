//! Trajectory interchange: a minimal CSV-like text format so user-supplied
//! GPS logs can enter the pipeline and recovered trajectories can leave it.
//!
//! GPS trajectories (`x_m,y_m,t_s` records, one trajectory per `#traj`
//! block):
//!
//! ```text
//! #traj
//! 12.5,88.0,0
//! 14.1,120.2,15
//! ```
//!
//! Matched trajectories add the segment id and ratio:
//! `seg_id,ratio,t_s`.

use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

use trmma_geom::Vec2;
use trmma_roadnet::SegmentId;

use crate::types::{GpsPoint, MatchedPoint, MatchedTrajectory, Trajectory};

/// Errors raised while reading trajectory files.
#[derive(Debug)]
pub enum TrajIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed record with its 1-based line number.
    Parse {
        /// Line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
}

impl fmt::Display for TrajIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrajIoError::Io(e) => write!(f, "i/o error: {e}"),
            TrajIoError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for TrajIoError {}

impl From<std::io::Error> for TrajIoError {
    fn from(e: std::io::Error) -> Self {
        TrajIoError::Io(e)
    }
}

/// Writes GPS trajectories.
///
/// # Errors
/// Propagates writer failures.
pub fn write_trajectories<W: Write>(trajs: &[Trajectory], mut w: W) -> Result<(), TrajIoError> {
    for t in trajs {
        writeln!(w, "#traj")?;
        for p in &t.points {
            writeln!(w, "{},{},{}", p.pos.x, p.pos.y, p.t)?;
        }
    }
    Ok(())
}

/// Reads GPS trajectories written by [`write_trajectories`].
///
/// # Errors
/// Returns [`TrajIoError::Parse`] on malformed records.
pub fn read_trajectories<R: Read>(r: R) -> Result<Vec<Trajectory>, TrajIoError> {
    let reader = BufReader::new(r);
    let mut out: Vec<Trajectory> = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with("//") {
            continue;
        }
        if line == "#traj" {
            out.push(Trajectory::default());
            continue;
        }
        let current = out.last_mut().ok_or_else(|| TrajIoError::Parse {
            line: line_no,
            msg: "record before any #traj header".into(),
        })?;
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 3 {
            return Err(TrajIoError::Parse { line: line_no, msg: "expected x,y,t".into() });
        }
        let parse = |s: &str, what: &str| -> Result<f64, TrajIoError> {
            s.trim()
                .parse()
                .map_err(|_| TrajIoError::Parse { line: line_no, msg: format!("bad {what} `{s}`") })
        };
        current.points.push(GpsPoint {
            pos: Vec2::new(parse(fields[0], "x")?, parse(fields[1], "y")?),
            t: parse(fields[2], "t")?,
        });
    }
    Ok(out)
}

/// Writes matched ε-trajectories.
///
/// # Errors
/// Propagates writer failures.
pub fn write_matched<W: Write>(trajs: &[MatchedTrajectory], mut w: W) -> Result<(), TrajIoError> {
    for t in trajs {
        writeln!(w, "#traj")?;
        for p in &t.points {
            writeln!(w, "{},{},{}", p.seg.0, p.ratio, p.t)?;
        }
    }
    Ok(())
}

/// Reads matched ε-trajectories written by [`write_matched`].
///
/// # Errors
/// Returns [`TrajIoError::Parse`] on malformed records.
pub fn read_matched<R: Read>(r: R) -> Result<Vec<MatchedTrajectory>, TrajIoError> {
    let reader = BufReader::new(r);
    let mut out: Vec<MatchedTrajectory> = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with("//") {
            continue;
        }
        if line == "#traj" {
            out.push(MatchedTrajectory::default());
            continue;
        }
        let current = out.last_mut().ok_or_else(|| TrajIoError::Parse {
            line: line_no,
            msg: "record before any #traj header".into(),
        })?;
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 3 {
            return Err(TrajIoError::Parse { line: line_no, msg: "expected seg,ratio,t".into() });
        }
        let seg: u32 = fields[0].trim().parse().map_err(|_| TrajIoError::Parse {
            line: line_no,
            msg: format!("bad segment id `{}`", fields[0]),
        })?;
        let parse = |s: &str, what: &str| -> Result<f64, TrajIoError> {
            s.trim()
                .parse()
                .map_err(|_| TrajIoError::Parse { line: line_no, msg: format!("bad {what} `{s}`") })
        };
        current.points.push(MatchedPoint::new(
            SegmentId(seg),
            parse(fields[1], "ratio")?,
            parse(fields[2], "t")?,
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trajs() -> Vec<Trajectory> {
        vec![
            Trajectory {
                points: vec![
                    GpsPoint { pos: Vec2::new(1.5, -2.0), t: 0.0 },
                    GpsPoint { pos: Vec2::new(3.25, 4.0), t: 15.0 },
                ],
            },
            Trajectory { points: vec![GpsPoint { pos: Vec2::new(0.0, 0.0), t: 7.0 }] },
        ]
    }

    #[test]
    fn gps_round_trip() {
        let trajs = sample_trajs();
        let mut buf = Vec::new();
        write_trajectories(&trajs, &mut buf).unwrap();
        let loaded = read_trajectories(buf.as_slice()).unwrap();
        assert_eq!(loaded, trajs);
    }

    #[test]
    fn matched_round_trip() {
        let trajs = vec![MatchedTrajectory::new(vec![
            MatchedPoint::new(SegmentId(4), 0.25, 0.0),
            MatchedPoint::new(SegmentId(9), 0.75, 15.0),
        ])];
        let mut buf = Vec::new();
        write_matched(&trajs, &mut buf).unwrap();
        let loaded = read_matched(buf.as_slice()).unwrap();
        assert_eq!(loaded, trajs);
    }

    #[test]
    fn rejects_record_before_header() {
        let err = read_trajectories("1,2,3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TrajIoError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn rejects_wrong_arity_and_bad_numbers() {
        let err = read_trajectories("#traj\n1,2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TrajIoError::Parse { line: 2, .. }));
        let err = read_matched("#traj\nx,0.5,3\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("segment id"));
    }

    #[test]
    fn empty_input_gives_no_trajectories() {
        assert!(read_trajectories("".as_bytes()).unwrap().is_empty());
        assert!(read_matched("// comment only\n".as_bytes()).unwrap().is_empty());
    }
}
