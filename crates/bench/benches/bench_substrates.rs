//! Microbenchmarks of the substrates: R-tree queries, shortest paths,
//! UBODT construction (FMM's precompute), route planning, and the autograd
//! engine (ablation bench `bench_ubodt` / `bench_decoder_width` support).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use trmma_baselines::Ubodt;
use trmma_geom::Vec2;
use trmma_nn::{Graph, Matrix, TransformerEncoder};
use trmma_roadnet::shortest::{node_dist, Weight};
use trmma_roadnet::{generate_city, NetworkConfig, NodeId, RoutePlanner, SegmentId};

fn bench_rtree(c: &mut Criterion) {
    let net = generate_city(&NetworkConfig::with_size(24, 24, 5));
    let tree = net.build_rtree();
    let mut rng = StdRng::seed_from_u64(1);
    let bb = net.bbox();
    let queries: Vec<Vec2> = (0..256)
        .map(|_| Vec2::new(rng.gen_range(bb.min.x..bb.max.x), rng.gen_range(bb.min.y..bb.max.y)))
        .collect();
    let mut group = c.benchmark_group("rtree");
    for k in [1usize, 10] {
        group.bench_with_input(BenchmarkId::new("knn", k), &k, |b, &k| {
            let mut i = 0;
            b.iter(|| {
                let q = queries[i % queries.len()];
                i += 1;
                black_box(tree.knn(q, k))
            });
        });
    }
    group.finish();
}

fn bench_shortest_paths(c: &mut Criterion) {
    let net = generate_city(&NetworkConfig::with_size(24, 24, 5));
    let n = net.num_nodes() as u32;
    c.bench_function("dijkstra/early_exit", |b| {
        let mut i = 0u32;
        b.iter(|| {
            let src = NodeId(i % n);
            let dst = NodeId((i * 7 + 13) % n);
            i += 1;
            black_box(node_dist(&net, src, dst, Weight::Length, f64::INFINITY))
        });
    });
}

fn bench_ubodt(c: &mut Criterion) {
    let net = generate_city(&NetworkConfig::with_size(12, 12, 5));
    let mut group = c.benchmark_group("ubodt_build");
    group.sample_size(10);
    for delta in [500.0f64, 1500.0] {
        group.bench_with_input(BenchmarkId::from_parameter(delta as u64), &delta, |b, &d| {
            b.iter(|| black_box(Ubodt::build(&net, d)));
        });
    }
    group.finish();
}

fn bench_planner(c: &mut Criterion) {
    let net = generate_city(&NetworkConfig::with_size(20, 20, 5));
    let planner = RoutePlanner::untrained(&net);
    let n = net.num_segments() as u32;
    c.bench_function("planner/plan", |b| {
        let mut i = 0u32;
        b.iter(|| {
            let src = SegmentId(i % n);
            let dst = SegmentId((i * 31 + 97) % n);
            i += 1;
            black_box(planner.plan(&net, src, dst))
        });
    });
}

fn bench_autograd(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let enc = TransformerEncoder::new(32, 4, 64, 2, &mut rng);
    let input = Matrix::from_vec(16, 32, (0..16 * 32).map(|_| rng.gen_range(-1.0..1.0)).collect());
    c.bench_function("autograd/transformer_fwd_bwd", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let x = g.input(input.clone());
            let y = enc.forward(&mut g, x);
            let sq = g.mul(y, y);
            let loss = g.sum_all(sq);
            g.backward(loss);
            black_box(g.value(loss).get(0, 0))
        });
    });
}

criterion_group!(
    benches,
    bench_rtree,
    bench_shortest_paths,
    bench_ubodt,
    bench_planner,
    bench_autograd
);
criterion_main!(benches);
