//! Per-trajectory recovery latency: Linear vs the full-network seq2seq vs
//! TRMMA (the microbenchmark behind Fig. 5's shape) — the decoder-width
//! contrast (`ℓ_R` route segments vs all `|E|` segments) is the paper's
//! central efficiency argument.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use trmma_baselines::{LinearRecovery, NearestMatcher, Seq2SeqConfig, Seq2SeqFull};
use trmma_core::{Mma, MmaConfig, Trmma, TrmmaConfig, TrmmaPipeline};
use trmma_roadnet::RoutePlanner;
use trmma_traj::dataset::{build_dataset, DatasetConfig, Split};
use trmma_traj::{Sample, TrajectoryRecovery};

struct Setup {
    samples: Vec<Sample>,
    epsilon: f64,
    linear: LinearRecovery<NearestMatcher>,
    seq2seq: Seq2SeqFull,
    trmma: TrmmaPipeline,
}

fn setup() -> Setup {
    let ds = build_dataset(&DatasetConfig::tiny());
    let net = Arc::new(ds.net.clone());
    let planner = Arc::new(RoutePlanner::untrained(&net));
    let train = ds.samples(Split::Train, 0.2, 7);
    let take = train.len().min(8);
    let samples = ds.samples(Split::Test, 0.2, 8);

    let linear = LinearRecovery::new(
        net.clone(),
        NearestMatcher::new(net.clone(), planner.clone()),
        "Linear",
    );
    let mut seq2seq = Seq2SeqFull::new(
        net.clone(),
        Seq2SeqConfig { d_model: 24, d_emb: 12, ..Seq2SeqConfig::default() },
    );
    seq2seq.train(&train[..take], 1);
    let mut mma = Mma::new(net.clone(), planner.clone(), None, MmaConfig::small());
    mma.train(&train[..take], 2);
    let mut model = Trmma::new(net, TrmmaConfig::small());
    model.train(&train[..take], 2);
    let trmma = TrmmaPipeline::new(Box::new(mma), model, "TRMMA");
    Setup { samples, epsilon: ds.epsilon_s, linear, seq2seq, trmma }
}

fn bench_recovery(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("recover_trajectory");
    group.sample_size(15);
    let run = |m: &dyn TrajectoryRecovery, samples: &[Sample], eps: f64, i: &mut usize| {
        let t = &samples[*i % samples.len()].sparse;
        *i += 1;
        black_box(m.recover(t, eps).len())
    };
    group.bench_function("linear", |b| {
        let mut i = 0;
        b.iter(|| run(&s.linear, &s.samples, s.epsilon, &mut i));
    });
    group.bench_function("seq2seq_full_network", |b| {
        let mut i = 0;
        b.iter(|| run(&s.seq2seq, &s.samples, s.epsilon, &mut i));
    });
    group.bench_function("trmma_route_restricted", |b| {
        let mut i = 0;
        b.iter(|| run(&s.trmma, &s.samples, s.epsilon, &mut i));
    });
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
