//! Per-trajectory map-matching latency: Nearest vs HMM vs FMM vs MMA
//! (the microbenchmark behind Fig. 9's shape).

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use trmma_baselines::{FmmMatcher, HmmConfig, HmmMatcher, NearestMatcher};
use trmma_core::{Mma, MmaConfig};
use trmma_roadnet::RoutePlanner;
use trmma_traj::dataset::{build_dataset, DatasetConfig, Split};
use trmma_traj::{MapMatcher, Sample};

struct Setup {
    samples: Vec<Sample>,
    nearest: NearestMatcher,
    hmm: HmmMatcher,
    fmm: FmmMatcher,
    mma: Mma,
}

fn setup() -> Setup {
    let ds = build_dataset(&DatasetConfig::tiny());
    let net = Arc::new(ds.net.clone());
    let planner = Arc::new(RoutePlanner::untrained(&net));
    let train = ds.samples(Split::Train, 0.2, 7);
    let samples = ds.samples(Split::Test, 0.2, 8);
    let mut mma = Mma::new(net.clone(), planner.clone(), None, MmaConfig::small());
    mma.train(&train[..train.len().min(8)], 2);
    Setup {
        samples,
        nearest: NearestMatcher::new(net.clone(), planner.clone()),
        hmm: HmmMatcher::new(net.clone(), planner.clone(), HmmConfig::default()),
        fmm: FmmMatcher::new(net, planner, HmmConfig::default()),
        mma,
    }
}

fn bench_matchers(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("match_trajectory");
    group.sample_size(20);
    let run = |m: &dyn MapMatcher, samples: &[Sample], i: &mut usize| {
        let t = &samples[*i % samples.len()].sparse;
        *i += 1;
        black_box(m.match_trajectory(t).route.len())
    };
    group.bench_function("nearest", |b| {
        let mut i = 0;
        b.iter(|| run(&s.nearest, &s.samples, &mut i));
    });
    group.bench_function("hmm", |b| {
        let mut i = 0;
        b.iter(|| run(&s.hmm, &s.samples, &mut i));
    });
    group.bench_function("fmm", |b| {
        let mut i = 0;
        b.iter(|| run(&s.fmm, &s.samples, &mut i));
    });
    group.bench_function("mma", |b| {
        let mut i = 0;
        b.iter(|| run(&s.mma, &s.samples, &mut i));
    });
    group.finish();
}

criterion_group!(benches, bench_matchers);
criterion_main!(benches);
