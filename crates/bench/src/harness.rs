//! Dataset/model preparation shared by all experiment binaries.

use std::sync::Arc;
use std::time::Instant;

use trmma_baselines::{Seq2SeqConfig, Seq2SeqFull, TrainReport};
use trmma_core::{Mma, MmaConfig, Trmma, TrmmaConfig};
use trmma_node2vec::{train_embeddings, Node2VecConfig};
use trmma_roadnet::{RoadNetwork, RoutePlanner};
use trmma_traj::dataset::{build_dataset, Dataset, DatasetConfig, Split};
use trmma_traj::Sample;

/// Experiment-wide configuration, read from the environment (see crate
/// docs for the variables).
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Dataset scale factor.
    pub scale: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Use paper-size model widths instead of the small profile.
    pub paper_profile: bool,
    /// Dataset names to run.
    pub datasets: Vec<String>,
}

impl ExpConfig {
    /// Reads the configuration from the environment.
    #[must_use]
    pub fn from_env() -> Self {
        let scale = std::env::var("TRMMA_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(0.25);
        let epochs = std::env::var("TRMMA_EPOCHS").ok().and_then(|v| v.parse().ok()).unwrap_or(5);
        let paper_profile = std::env::var("TRMMA_PROFILE").is_ok_and(|v| v == "paper");
        let datasets = std::env::var("TRMMA_DATASETS")
            .map(|v| v.split(',').map(|s| s.trim().to_uppercase()).collect())
            .unwrap_or_else(|_| vec!["PT".into(), "XA".into(), "BJ".into(), "CD".into()]);
        Self { scale, epochs, paper_profile, datasets }
    }

    /// The dataset configs selected by `TRMMA_DATASETS`.
    #[must_use]
    pub fn dataset_configs(&self) -> Vec<DatasetConfig> {
        DatasetConfig::all_four(self.scale)
            .into_iter()
            .filter(|c| self.datasets.iter().any(|d| d == &c.name))
            .collect()
    }

    /// MMA model widths for the profile.
    #[must_use]
    pub fn mma_config(&self) -> MmaConfig {
        if self.paper_profile {
            MmaConfig::default()
        } else {
            MmaConfig::small()
        }
    }

    /// TRMMA model widths for the profile.
    #[must_use]
    pub fn trmma_config(&self) -> TrmmaConfig {
        if self.paper_profile {
            TrmmaConfig::default()
        } else {
            TrmmaConfig::small()
        }
    }

    /// Seq2Seq baseline widths for the profile.
    #[must_use]
    pub fn seq2seq_config(&self) -> Seq2SeqConfig {
        if self.paper_profile {
            Seq2SeqConfig::default()
        } else {
            Seq2SeqConfig { d_model: 24, d_emb: 12, ..Seq2SeqConfig::default() }
        }
    }
}

/// A prepared dataset: network, fitted route planner, Node2Vec embeddings
/// and train/test sparse samples at a given γ.
pub struct Bundle {
    /// The generated dataset (owns the network and the dense corpus).
    pub ds: Dataset,
    /// Shared handle to the network.
    pub net: Arc<RoadNetwork>,
    /// Route planner fitted on the training routes (the paper's shared
    /// "DA-based" routine).
    pub planner: Arc<RoutePlanner>,
    /// Pre-trained Node2Vec segment embeddings (`W_G` of Eq. 1).
    pub node2vec: trmma_nn::Matrix,
    /// Training samples (sparse at γ).
    pub train: Vec<Sample>,
    /// Test samples (sparse at γ).
    pub test: Vec<Sample>,
    /// The γ the samples were produced with.
    pub gamma: f64,
}

impl Bundle {
    /// Builds a bundle for `cfg` at sparsity `gamma`.
    #[must_use]
    pub fn prepare(cfg: &DatasetConfig, gamma: f64, d0: usize) -> Self {
        let ds = build_dataset(cfg);
        let net = Arc::new(ds.net.clone());
        let train = ds.samples(Split::Train, gamma, 71);
        let test = ds.samples(Split::Test, gamma, 72);
        let mut planner = RoutePlanner::untrained(&net);
        for s in &train {
            planner.observe(&s.route.segs);
        }
        let n2v_cfg = Node2VecConfig { dim: d0, ..Node2VecConfig::default() };
        let node2vec = train_embeddings(&net, &n2v_cfg);
        Self { ds, net, planner: Arc::new(planner), node2vec, train, test, gamma }
    }

    /// Re-samples train/test at a different γ (for the sparsity sweeps).
    #[must_use]
    pub fn resample(&self, gamma: f64) -> (Vec<Sample>, Vec<Sample>) {
        (self.ds.samples(Split::Train, gamma, 71), self.ds.samples(Split::Test, gamma, 72))
    }
}

/// Trains MMA on the bundle; returns the model and its training report.
#[must_use]
pub fn trained_mma(bundle: &Bundle, cfg: MmaConfig, epochs: usize) -> (Mma, TrainReport) {
    let cfg = MmaConfig { d0: bundle.node2vec.cols(), ..cfg };
    let mut mma =
        Mma::new(bundle.net.clone(), bundle.planner.clone(), Some(bundle.node2vec.clone()), cfg);
    let report = mma.train(&bundle.train, epochs);
    (mma, report)
}

/// Trains TRMMA on the bundle.
#[must_use]
pub fn trained_trmma(bundle: &Bundle, cfg: TrmmaConfig, epochs: usize) -> (Trmma, TrainReport) {
    let mut model = Trmma::new(bundle.net.clone(), cfg);
    let report = model.train(&bundle.train, epochs);
    (model, report)
}

/// Trains the full-network seq2seq baseline on the bundle.
#[must_use]
pub fn trained_seq2seq(
    bundle: &Bundle,
    cfg: Seq2SeqConfig,
    epochs: usize,
) -> (Seq2SeqFull, TrainReport) {
    let mut model = Seq2SeqFull::new(bundle.net.clone(), cfg);
    let report = model.train(&bundle.train, epochs);
    (model, report)
}

/// Evaluates a recovery method over the test set: mean per-trajectory
/// metrics plus total inference seconds (metric computation excluded from
/// the timing).
#[must_use]
pub fn eval_recovery(
    net: &RoadNetwork,
    method: &dyn trmma_traj::TrajectoryRecovery,
    test: &[Sample],
    epsilon_s: f64,
) -> (trmma_traj::RecoveryMetrics, f64) {
    let cache = trmma_roadnet::shortest::DistCache::new();
    let mut avg = trmma_traj::metrics::MetricAverager::new();
    let mut infer_s = 0.0;
    for s in test {
        let (rec, dt) = timed(|| method.recover(&s.sparse, epsilon_s));
        infer_s += dt;
        avg.add_recovery(trmma_traj::recovery_metrics(net, &rec, &s.dense_truth, Some(&cache)));
    }
    (avg.mean_recovery(), infer_s)
}

/// Mean per-trajectory route metrics of `results` against their samples'
/// true routes — the one aggregation all matching evaluators share, so the
/// sequential, engine and pooled paths cannot drift apart.
fn mean_matching_metrics(
    results: &[trmma_traj::MatchResult],
    test: &[Sample],
) -> trmma_traj::MatchingMetrics {
    let mut avg = trmma_traj::metrics::MetricAverager::new();
    for (res, s) in results.iter().zip(test) {
        avg.add_matching(trmma_traj::matching_metrics(&res.route, &s.route));
    }
    avg.mean_matching()
}

/// Evaluates a map matcher over the test set: mean per-trajectory route
/// metrics plus total inference seconds.
#[must_use]
pub fn eval_matching(
    matcher: &dyn trmma_traj::MapMatcher,
    test: &[Sample],
) -> (trmma_traj::MatchingMetrics, f64) {
    let mut results = Vec::with_capacity(test.len());
    let mut infer_s = 0.0;
    for s in test {
        let (res, dt) = timed(|| matcher.match_trajectory(&s.sparse));
        infer_s += dt;
        results.push(res);
    }
    (mean_matching_metrics(&results, test), infer_s)
}

/// Evaluates a scratch-capable matcher through the pooled batch fan-out
/// (`par_match_pooled`: one warm `SsspPool`/kNN scratch per worker): mean
/// route metrics plus the batch wall-clock seconds. The pooled analogue of
/// [`eval_matching`] for the baseline rows of fig. 9 / Table V — output is
/// identical to the sequential loop (property-tested in
/// `tests/props_baselines.rs`), only the wall-clock parallelises.
#[must_use]
pub fn eval_matching_pooled<M: trmma_traj::ScratchMatcher + Sync>(
    matcher: &M,
    test: &[Sample],
    opts: trmma_core::BatchOptions,
) -> (trmma_traj::MatchingMetrics, f64) {
    let batch: Vec<_> = test.iter().map(|s| s.sparse.clone()).collect();
    let (results, timing) = trmma_core::par_match_pooled(matcher, &batch, opts);
    (mean_matching_metrics(&results, test), timing.wall_s)
}

/// Evaluates the batched recovery engine over the test set: mean
/// per-trajectory metrics plus the batch wall-clock seconds (metric
/// computation excluded). The parallel analogue of [`eval_recovery`].
#[must_use]
pub fn eval_recovery_batch(
    net: &RoadNetwork,
    engine: &trmma_core::BatchRecovery,
    test: &[Sample],
    epsilon_s: f64,
) -> (trmma_traj::RecoveryMetrics, f64) {
    let batch: Vec<_> = test.iter().map(|s| s.sparse.clone()).collect();
    let (recovered, timing) = engine.recover_batch_timed(&batch, epsilon_s);
    let cache = trmma_roadnet::shortest::DistCache::new();
    let mut avg = trmma_traj::metrics::MetricAverager::new();
    for (rec, s) in recovered.iter().zip(test) {
        avg.add_recovery(trmma_traj::recovery_metrics(net, rec, &s.dense_truth, Some(&cache)));
    }
    (avg.mean_recovery(), timing.wall_s)
}

/// Evaluates the batched matcher over the test set: mean route metrics plus
/// the batch wall-clock seconds. The parallel analogue of [`eval_matching`].
#[must_use]
pub fn eval_matching_batch(
    engine: &trmma_core::BatchMatcher,
    test: &[Sample],
) -> (trmma_traj::MatchingMetrics, f64) {
    let batch: Vec<_> = test.iter().map(|s| s.sparse.clone()).collect();
    let (results, timing) = engine.match_batch_timed(&batch);
    (mean_matching_metrics(&results, test), timing.wall_s)
}

/// Wall-clock seconds for `f`, returned alongside its output.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Seconds per 1000 items given `elapsed` seconds over `n` items (the
/// paper's Figs. 5 and 9 unit).
#[must_use]
pub fn per_1000(elapsed_s: f64, n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    elapsed_s / n as f64 * 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_1000_scales() {
        assert_eq!(per_1000(2.0, 100), 20.0);
        assert_eq!(per_1000(1.0, 0), 0.0);
    }

    #[test]
    fn env_defaults() {
        let cfg =
            ExpConfig { scale: 0.25, epochs: 5, paper_profile: false, datasets: vec!["PT".into()] };
        assert_eq!(cfg.dataset_configs().len(), 1);
        assert_eq!(cfg.dataset_configs()[0].name, "PT");
    }

    #[test]
    fn bundle_prepares_consistent_views() {
        let cfg = DatasetConfig::tiny();
        let bundle = Bundle::prepare(&cfg, 0.2, 16);
        assert!(!bundle.train.is_empty());
        assert!(!bundle.test.is_empty());
        assert_eq!(bundle.node2vec.shape().0, bundle.net.num_segments());
        let (tr2, te2) = bundle.resample(0.5);
        assert_eq!(tr2.len(), bundle.train.len());
        assert_eq!(te2.len(), bundle.test.len());
        // Higher γ keeps more points.
        let before: usize = bundle.train.iter().map(|s| s.sparse.len()).sum();
        let after: usize = tr2.iter().map(|s| s.sparse.len()).sum();
        assert!(after > before);
    }
}
