//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§VI). Each table/figure is a binary under `src/bin/`; shared
//! preparation (datasets, trained models, timing, reporting) lives here.
//!
//! Scale knobs (environment variables, read once per process):
//!
//! * `TRMMA_SCALE`   — dataset scale factor (default 0.25; 1.0 ≈ a few
//!   hundred trajectories per dataset).
//! * `TRMMA_EPOCHS`  — training epochs for learned models (default 5).
//! * `TRMMA_PROFILE` — `small` (default) or `paper` model widths.
//! * `TRMMA_DATASETS`— comma list among `PT,XA,BJ,CD` (default all four).
//!
//! Every binary prints the paper-style rows to stdout *and* appends a JSON
//! artifact under `target/experiments/` so EXPERIMENTS.md numbers are
//! reproducible. The two committed artifacts (`BENCH_inference.json`,
//! `BENCH_streaming.json`) are documented field-by-field in the repo-root
//! `BENCHMARKS.md`.
//!
//! # Example
//!
//! The reporting building blocks are plain values — a paper-style table
//! and a dependency-free JSON tree:
//!
//! ```
//! use trmma_bench::{json, Table, Value};
//!
//! let mut t = Table::new(&["Method", "F1"]);
//! t.row(vec!["MMA".into(), "94.35".into()]);
//! assert!(t.render().contains("94.35"));
//!
//! let doc = json!({ "method": "MMA", "f1": 0.9435 });
//! assert!(matches!(doc, Value::Object(_)));
//! ```

pub mod artifacts;
pub mod batch_bench;
pub mod harness;
pub mod json;
pub mod remote_bench;
pub mod report;
pub mod stream_bench;

pub use harness::{trained_mma, trained_seq2seq, trained_trmma, Bundle, ExpConfig};
pub use json::Value;
pub use report::{write_json, Table};
