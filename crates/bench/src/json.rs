//! Dependency-free JSON values and serialisation for experiment artifacts.
//!
//! The experiment binaries emit small flat JSON records (method, dataset,
//! metric values). This module provides the [`Value`] tree, the [`crate::json!`]
//! object/array literal macro and a pretty printer — the subset of
//! `serde_json` the harness needs, without the dependency.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// Conversion into a [`Value`] by reference (what the [`crate::json!`] macro uses,
/// so object fields never move out of borrowed structs).
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Value {
        Value::String((*self).to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! to_json_number {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            #[allow(clippy::cast_precision_loss, clippy::cast_lossless)]
            fn to_json(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

to_json_number!(f64, f32, usize, u64, u32, u16, u8, i64, i32, i16, i8);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        self.as_ref().map_or(Value::Null, ToJson::to_json)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_token(x: f64) -> String {
    if !x.is_finite() {
        // JSON has no NaN/Infinity; `null` is what serde_json emits too.
        return "null".to_string();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(x) => out.push_str(&number_token(*x)),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Pretty-prints `v` with two-space indentation.
#[must_use]
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_pretty(v, 0, &mut out);
    out
}

/// Builds a [`Value`] from an object/array literal, e.g.
/// `json!({ "method": m.name(), "f1": metrics.f1 })`. Field values go
/// through [`ToJson`] by reference, so borrowed data is not moved.
#[macro_export]
macro_rules! json {
    ({ $($k:literal : $v:expr),* $(,)? }) => {
        $crate::json::Value::Object(vec![
            $( ($k.to_string(), $crate::json::ToJson::to_json(&$v)) ),*
        ])
    };
    ([ $($v:expr),* $(,)? ]) => {
        $crate::json::Value::Array(vec![
            $( $crate::json::ToJson::to_json(&$v) ),*
        ])
    };
    ($v:expr) => {
        $crate::json::ToJson::to_json(&$v)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_literal_round_trips() {
        let name = String::from("TRMMA");
        let v = json!({ "method": name, "f1": 0.9435, "n": 42usize, "ok": true });
        // The macro borrows: `name` is still usable.
        assert_eq!(name, "TRMMA");
        let s = to_string_pretty(&v);
        assert!(s.contains("\"method\": \"TRMMA\""));
        assert!(s.contains("\"f1\": 0.9435"));
        assert!(s.contains("\"n\": 42"));
        assert!(s.contains("\"ok\": true"));
    }

    #[test]
    fn arrays_and_nesting_render() {
        let v = Value::Array(vec![json!({ "a": 1.0 }), json!({ "a": 2.5 })]);
        let s = to_string_pretty(&v);
        assert!(s.starts_with("[\n"));
        assert!(s.ends_with(']'));
        assert!(s.contains("\"a\": 1"));
        assert!(s.contains("\"a\": 2.5"));
        assert!(s.contains("},"), "array elements must be comma-separated");
    }

    #[test]
    fn strings_are_escaped() {
        let v = json!({ "k": "a\"b\\c\nd" });
        let s = to_string_pretty(&v);
        assert!(s.contains(r#""a\"b\\c\nd""#));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(number_token(f64::NAN), "null");
        assert_eq!(number_token(f64::INFINITY), "null");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&Value::Array(vec![])), "[]");
        assert_eq!(to_string_pretty(&Value::Object(vec![])), "{}");
        assert_eq!(to_string_pretty(&Value::Null), "null");
    }
}
