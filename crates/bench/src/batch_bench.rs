//! Batched-inference benchmark: throughput and latency of the parallel
//! engine versus the sequential path, across thread counts.
//!
//! Produces the rows behind `BENCH_inference.json`: for each task
//! (matching, recovery), a `sequential_api` baseline row (the plain
//! per-trajectory API with fresh allocations, as a client without the
//! engine would call it) plus one `batch_engine` row per thread count,
//! with trajectories per second, p50/p99 per-trajectory latency, and the
//! speedup over the sequential baseline. Every engine run is validated to
//! be identical to the sequential output before its row is emitted.

use std::sync::Arc;
use std::time::Instant;

use trmma_core::{
    par_match_pooled, BatchMatcher, BatchOptions, BatchRecovery, BatchTiming, Mma, Trmma,
};
use trmma_roadnet::shortest::CacheStats;
use trmma_roadnet::TransitionProvider;
use trmma_traj::types::Trajectory;
use trmma_traj::{MapMatcher, ScratchMatcher};

use crate::json::Value;

/// The counter delta `after − before` of one measured run — the
/// route-distance-oracle lookups a row accumulated (from
/// [`TransitionProvider::stats`]).
pub(crate) fn cache_delta(before: CacheStats, after: CacheStats) -> CacheStats {
    CacheStats {
        hits: after.hits.saturating_sub(before.hits),
        misses: after.misses.saturating_sub(before.misses),
        warm_hits: after.warm_hits.saturating_sub(before.warm_hits),
        nodes_expanded: after.nodes_expanded.saturating_sub(before.nodes_expanded),
        heap_pushes: after.heap_pushes.saturating_sub(before.heap_pushes),
        allocs_avoided: after.allocs_avoided.saturating_sub(before.allocs_avoided),
        evictions: after.evictions.saturating_sub(before.evictions),
    }
}

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct InferenceRow {
    /// `"matching"` or `"recovery"`.
    pub task: String,
    /// The method measured: `"MMA"`, `"MMA+TRMMA"`, or a baseline matcher
    /// name (`"HMM"`, `"FMM"`, `"LHMM"`).
    pub method: String,
    /// `"sequential_api"` (baseline) or `"batch_engine"`.
    pub mode: String,
    /// Worker threads used (1 for the sequential baseline).
    pub threads: usize,
    /// Trajectories per second over the batch wall-clock.
    pub traj_per_s: f64,
    /// Median per-trajectory latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-trajectory latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile per-trajectory latency, milliseconds.
    pub p999_ms: f64,
    /// Worst single-trajectory latency observed, milliseconds.
    pub max_ms: f64,
    /// Throughput relative to this task's sequential baseline.
    pub speedup: f64,
    /// Whether the run's output matched the sequential reference exactly.
    pub identical: bool,
    /// Heap allocations absorbed by per-worker scratch arenas during this
    /// row's best run (from [`BatchTiming::allocs_avoided`]); 0 for the
    /// sequential baseline, which allocates fresh per call.
    pub allocs_avoided: u64,
    /// Transition-oracle cache counters accumulated during this row's runs
    /// (all repeats), when the method has a [`TransitionProvider`]. `None`
    /// for methods without a route-distance oracle (MMA's learned scoring).
    pub cache: Option<CacheStats>,
    /// Deployment variant measured: `"monolithic"` (one whole-network
    /// R-tree / distance table) or `"sharded"` (grid-cut tiles stitched by
    /// a boundary overlay). Set by [`tag_variant`]; rows from runs without
    /// a `--shards` sweep keep the `"monolithic"` default.
    pub variant: String,
    /// Resident bytes of the variant's candidate-search and route-distance
    /// structures (whole R-tree + UBODT table, or the sum over shard
    /// R-trees/intra tables plus the overlay). `None` until tagged.
    pub resident_bytes: Option<usize>,
    /// Per-shard resident-bytes accounting in shard-id order; `None` for
    /// monolithic rows.
    pub shard_resident_bytes: Option<Vec<usize>>,
}

impl InferenceRow {
    fn from_timing(
        task: &str,
        method: &str,
        mode: &str,
        threads: usize,
        timing: &BatchTiming,
        base: f64,
        identical: bool,
    ) -> Self {
        let tput = timing.throughput();
        Self {
            task: task.to_string(),
            method: method.to_string(),
            mode: mode.to_string(),
            threads,
            traj_per_s: tput,
            p50_ms: timing.latency_quantile(0.5) * 1e3,
            p99_ms: timing.latency_quantile(0.99) * 1e3,
            p999_ms: timing.latency_quantile(0.999) * 1e3,
            max_ms: timing.latency_quantile(1.0) * 1e3,
            speedup: if base > 0.0 { tput / base } else { 1.0 },
            identical,
            allocs_avoided: timing.allocs_avoided,
            cache: None,
            variant: "monolithic".to_string(),
            resident_bytes: None,
            shard_resident_bytes: None,
        }
    }

    fn with_cache(mut self, cache: Option<CacheStats>) -> Self {
        self.cache = cache;
        self
    }
}

/// Tags measured rows with their deployment variant and memory accounting.
/// Applied by the benchmark binaries after the sweep, so the sharded and
/// monolithic runs share the row-producing functions above unchanged.
#[must_use]
pub fn tag_variant(
    mut rows: Vec<InferenceRow>,
    variant: &str,
    resident_bytes: usize,
    shard_resident_bytes: Option<Vec<usize>>,
) -> Vec<InferenceRow> {
    for r in &mut rows {
        r.variant = variant.to_string();
        r.resident_bytes = Some(resident_bytes);
        r.shard_resident_bytes.clone_from(&shard_resident_bytes);
    }
    rows
}

/// Times a sequential per-item loop into a [`BatchTiming`].
fn timed_loop<R>(n: usize, mut f: impl FnMut(usize) -> R) -> (Vec<R>, BatchTiming) {
    let started = Instant::now();
    let mut results = Vec::with_capacity(n);
    let mut per_item_s = Vec::with_capacity(n);
    for i in 0..n {
        let t0 = Instant::now();
        results.push(f(i));
        per_item_s.push(t0.elapsed().as_secs_f64());
    }
    (
        results,
        BatchTiming { per_item_s, wall_s: started.elapsed().as_secs_f64(), allocs_avoided: 0 },
    )
}

/// Thread counts to sweep: 1, then powers of two up to the hardware.
#[must_use]
pub fn default_thread_counts() -> Vec<usize> {
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut counts = vec![1];
    let mut t = 2;
    while t < hw {
        counts.push(t);
        t *= 2;
    }
    if hw > 1 {
        counts.push(hw);
    }
    counts
}

fn best_of<R>(repeats: usize, mut run: impl FnMut() -> (R, BatchTiming)) -> (R, BatchTiming) {
    assert!(repeats > 0);
    let mut best = run();
    for _ in 1..repeats {
        let next = run();
        if next.1.throughput() > best.1.throughput() {
            best = next;
        }
    }
    best
}

/// Benchmarks batched map matching across `thread_counts`, validating each
/// parallel run against the sequential reference.
#[must_use]
pub fn bench_matching(
    mma: &Arc<Mma>,
    batch: &[Trajectory],
    thread_counts: &[usize],
    repeats: usize,
) -> Vec<InferenceRow> {
    let (reference, seq_timing) =
        best_of(repeats, || timed_loop(batch.len(), |i| mma.match_trajectory(&batch[i])));
    let base = seq_timing.throughput();
    let mut rows = vec![InferenceRow::from_timing(
        "matching",
        "MMA",
        "sequential_api",
        1,
        &seq_timing,
        base,
        true,
    )];
    for &threads in thread_counts {
        let engine = BatchMatcher::new(mma.clone(), BatchOptions::with_threads(threads));
        let (results, timing) = best_of(repeats, || engine.match_batch_timed(batch));
        let identical = results == reference;
        rows.push(InferenceRow::from_timing(
            "matching",
            "MMA",
            "batch_engine",
            threads,
            &timing,
            base,
            identical,
        ));
    }
    rows
}

/// Benchmarks a scratch-capable baseline matcher across `thread_counts`
/// through [`par_match_pooled`] (one warm `SsspPool`/kNN scratch per
/// worker), validating each parallel run against the sequential per-call
/// reference. Produces the baseline thread-scaling rows of
/// `BENCH_inference.json`. When the matcher's [`TransitionProvider`] is
/// given, each row also records the oracle's hit/miss counter delta over
/// its runs, so cache efficacy is tracked across PRs.
#[must_use]
pub fn bench_baseline_matching<M: ScratchMatcher + Sync>(
    matcher: &M,
    batch: &[Trajectory],
    thread_counts: &[usize],
    repeats: usize,
    provider: Option<&TransitionProvider>,
) -> Vec<InferenceRow> {
    let method = matcher.name();
    let snap = || provider.map_or_else(CacheStats::default, TransitionProvider::stats);
    let before = snap();
    let (reference, seq_timing) =
        best_of(repeats, || timed_loop(batch.len(), |i| matcher.match_trajectory(&batch[i])));
    let seq_cache = provider.map(|_| cache_delta(before, snap()));
    let base = seq_timing.throughput();
    let mut rows = vec![InferenceRow::from_timing(
        "matching",
        method,
        "sequential_api",
        1,
        &seq_timing,
        base,
        true,
    )
    .with_cache(seq_cache)];
    for &threads in thread_counts {
        let opts = BatchOptions::with_threads(threads);
        let before = snap();
        let (results, timing) = best_of(repeats, || par_match_pooled(matcher, batch, opts));
        let row_cache = provider.map(|_| cache_delta(before, snap()));
        let identical = results == reference;
        rows.push(
            InferenceRow::from_timing(
                "matching",
                method,
                "batch_engine",
                threads,
                &timing,
                base,
                identical,
            )
            .with_cache(row_cache),
        );
    }
    rows
}

/// Benchmarks the batched MMA → TRMMA recovery pipeline across
/// `thread_counts`, validating each parallel run against the sequential
/// reference.
#[must_use]
pub fn bench_recovery(
    mma: &Arc<Mma>,
    model: &Arc<Trmma>,
    batch: &[Trajectory],
    epsilon_s: f64,
    thread_counts: &[usize],
    repeats: usize,
) -> Vec<InferenceRow> {
    let (reference, seq_timing) = best_of(repeats, || {
        timed_loop(batch.len(), |i| {
            let r = mma.match_trajectory(&batch[i]);
            model.recover_from_match(&batch[i], &r.matched, &r.route, epsilon_s)
        })
    });
    let base = seq_timing.throughput();
    let mut rows = vec![InferenceRow::from_timing(
        "recovery",
        "MMA+TRMMA",
        "sequential_api",
        1,
        &seq_timing,
        base,
        true,
    )];
    for &threads in thread_counts {
        let engine =
            BatchRecovery::new(mma.clone(), model.clone(), BatchOptions::with_threads(threads));
        let (results, timing) = best_of(repeats, || engine.recover_batch_timed(batch, epsilon_s));
        let identical = results == reference;
        rows.push(InferenceRow::from_timing(
            "recovery",
            "MMA+TRMMA",
            "batch_engine",
            threads,
            &timing,
            base,
            identical,
        ));
    }
    rows
}

/// Serialises rows into the `BENCH_inference.json` document. Records the
/// host's available parallelism so speedups are read in context (on a
/// single-core host the engine can only win by scratch reuse, not
/// parallelism; the thread-scaling rows need cores to scale).
#[must_use]
pub fn rows_to_json(rows: &[InferenceRow], batch_size: usize, dataset: &str) -> Value {
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    Value::Object(vec![
        ("dataset".to_string(), Value::String(dataset.to_string())),
        ("batch_size".to_string(), crate::json!(batch_size)),
        ("host_threads".to_string(), crate::json!(host)),
        (
            "rows".to_string(),
            Value::Array(
                rows.iter()
                    .map(|r| {
                        crate::json!({
                            "task": r.task,
                            "method": r.method,
                            "mode": r.mode,
                            "threads": r.threads,
                            "traj_per_s": r.traj_per_s,
                            "p50_ms": r.p50_ms,
                            "p99_ms": r.p99_ms,
                            "p999_ms": r.p999_ms,
                            "max_ms": r.max_ms,
                            "speedup_vs_sequential": r.speedup,
                            "identical_to_sequential": r.identical,
                            "allocs_avoided": r.allocs_avoided,
                            "cache_hits": r.cache.map(|c| c.hits),
                            "cache_misses": r.cache.map(|c| c.misses),
                            "cache_warm_hits": r.cache.map(|c| c.warm_hits),
                            "cache_nodes_expanded": r.cache.map(|c| c.nodes_expanded),
                            "cache_heap_pushes": r.cache.map(|c| c.heap_pushes),
                            "cache_allocs_avoided": r.cache.map(|c| c.allocs_avoided),
                            "cache_evictions": r.cache.map(|c| c.evictions),
                            "variant": r.variant,
                            "resident_bytes": r.resident_bytes,
                            "shard_resident_bytes": r.shard_resident_bytes,
                        })
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use trmma_core::{MmaConfig, TrmmaConfig};
    use trmma_roadnet::RoutePlanner;
    use trmma_traj::dataset::{build_dataset, DatasetConfig, Split};

    #[test]
    fn bench_rows_are_valid_and_identical() {
        let ds = build_dataset(&DatasetConfig::tiny());
        let net = Arc::new(ds.net.clone());
        let planner = Arc::new(RoutePlanner::untrained(&net));
        let mma = Arc::new(Mma::new(net.clone(), planner, None, MmaConfig::small()));
        let model = Arc::new(Trmma::new(net, TrmmaConfig::small()));
        let batch: Vec<Trajectory> =
            ds.samples(Split::Test, 0.2, 9).into_iter().take(6).map(|s| s.sparse).collect();

        let rows = bench_recovery(&mma, &model, &batch, ds.epsilon_s, &[1, 2], 1);
        assert_eq!(rows.len(), 3, "sequential baseline + one row per thread count");
        assert_eq!(rows[0].mode, "sequential_api");
        for r in &rows {
            assert!(r.identical, "output diverged in {} at {} threads", r.mode, r.threads);
            assert!(r.traj_per_s > 0.0);
            assert!(r.p50_ms <= r.p99_ms + 1e-9);
            assert!(r.p99_ms <= r.p999_ms + 1e-9);
            assert!(r.p999_ms <= r.max_ms + 1e-9);
        }
        assert!((rows[0].speedup - 1.0).abs() < 1e-9, "the baseline's own speedup is 1");

        let mrows = bench_matching(&mma, &batch, &[1], 1);
        assert_eq!(mrows.len(), 2);
        assert!(mrows.iter().all(|r| r.identical));

        let v = rows_to_json(&rows, batch.len(), "TINY");
        let s = crate::json::to_string_pretty(&v);
        assert!(s.contains("\"task\": \"recovery\""));
        assert!(s.contains("\"method\": \"MMA+TRMMA\""));
        assert!(s.contains("\"identical_to_sequential\": true"));
    }

    #[test]
    fn baseline_rows_are_valid_and_identical() {
        use trmma_baselines::{HmmConfig, HmmMatcher};
        let ds = build_dataset(&DatasetConfig::tiny());
        let net = Arc::new(ds.net.clone());
        let planner = Arc::new(RoutePlanner::untrained(&net));
        let hmm = HmmMatcher::new(net, planner, HmmConfig::default());
        let batch: Vec<Trajectory> =
            ds.samples(Split::Test, 0.2, 10).into_iter().take(5).map(|s| s.sparse).collect();
        let rows = bench_baseline_matching(&hmm, &batch, &[1, 2], 1, Some(hmm.provider()));
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].mode, "sequential_api");
        for r in &rows {
            assert_eq!(r.method, "HMM");
            assert!(r.identical, "pooled HMM diverged at {} threads", r.threads);
            assert!(r.traj_per_s > 0.0);
            let cache = r.cache.expect("provider stats recorded per row");
            assert!(cache.hits + cache.misses > 0, "HMM must consult its oracle");
        }
        // The first (sequential) row pays the cold misses; later rows reuse
        // the shared cache, so their miss count cannot exceed the first's.
        assert!(rows[0].cache.unwrap().misses >= rows[1].cache.unwrap().misses);
        // Pooled rows run through per-worker scratch, so the lattice arena
        // must have absorbed allocations; the sequential row cannot.
        assert_eq!(rows[0].allocs_avoided, 0);
        assert!(rows[1].allocs_avoided > 0, "pooled HMM rows must reuse arena buffers");
        let s = crate::json::to_string_pretty(&rows_to_json(&rows, batch.len(), "TINY"));
        assert!(s.contains("\"cache_hits\":"));
        assert!(s.contains("\"cache_misses\":"));
        assert!(s.contains("\"cache_warm_hits\":"));
        assert!(s.contains("\"cache_nodes_expanded\":"));
        assert!(s.contains("\"allocs_avoided\":"));
    }

    #[test]
    fn variant_tagging_lands_in_rows_and_json() {
        let timing =
            BatchTiming { per_item_s: vec![0.001, 0.002], wall_s: 0.003, allocs_avoided: 0 };
        let row =
            InferenceRow::from_timing("matching", "HMM", "batch_engine", 2, &timing, 1.0, true);
        assert_eq!(row.variant, "monolithic");
        assert_eq!(row.resident_bytes, None);

        let mono = tag_variant(vec![row.clone()], "monolithic", 4096, None);
        assert_eq!(mono[0].resident_bytes, Some(4096));
        assert!(mono[0].shard_resident_bytes.is_none());

        let sharded = tag_variant(vec![row], "sharded", 3000, Some(vec![1000, 2000]));
        assert_eq!(sharded[0].variant, "sharded");
        assert_eq!(sharded[0].shard_resident_bytes.as_deref(), Some(&[1000, 2000][..]));

        let rows: Vec<InferenceRow> = mono.into_iter().chain(sharded).collect();
        let s = crate::json::to_string_pretty(&rows_to_json(&rows, 2, "TINY"));
        assert!(s.contains("\"variant\": \"monolithic\""));
        assert!(s.contains("\"variant\": \"sharded\""));
        assert!(s.contains("\"resident_bytes\": 4096"));
        assert!(s.contains("\"shard_resident_bytes\": ["));
    }

    #[test]
    fn thread_count_sweep_shape() {
        let counts = default_thread_counts();
        assert_eq!(counts[0], 1);
        assert!(counts.windows(2).all(|w| w[0] < w[1]), "{counts:?} not increasing");
    }
}
