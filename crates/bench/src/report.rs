//! Table printing and JSON artifact output.

use std::fs;
use std::path::PathBuf;

/// A simple aligned text table printed to stdout in the paper's row format.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(ToString::to_string).collect(), rows: Vec::new() }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Directory for experiment artifacts (`target/experiments`).
#[must_use]
pub fn experiments_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(target).join("experiments")
}

/// Writes a JSON artifact for an experiment; best-effort (failures are
/// reported to stderr, not fatal — the stdout table is the primary output).
pub fn write_json(name: &str, value: &crate::json::Value) {
    let dir = experiments_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warn: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    let s = crate::json::to_string_pretty(value);
    if let Err(e) = fs::write(&path, s) {
        eprintln!("warn: cannot write {}: {e}", path.display());
    } else {
        eprintln!("artifact: {}", path.display());
    }
}

/// Writes the batched-inference benchmark document to
/// `BENCH_inference.json` in the repository root (override the path with
/// `TRMMA_BENCH_OUT`), so the perf trajectory of the engine is versioned
/// alongside the code. Best-effort like [`write_json`].
pub fn write_bench_inference(value: &crate::json::Value) {
    let path = std::env::var("TRMMA_BENCH_OUT").unwrap_or_else(|_| "BENCH_inference.json".into());
    let s = crate::json::to_string_pretty(value);
    if let Err(e) = fs::write(&path, s) {
        eprintln!("warn: cannot write {path}: {e}");
    } else {
        eprintln!("artifact: {path}");
    }
}

/// Writes the streaming benchmark document to `BENCH_streaming.json` in
/// the repository root (override with `TRMMA_BENCH_STREAMING_OUT`) — the
/// committed perf trajectory of the streaming engine. Best-effort like
/// [`write_json`].
pub fn write_bench_streaming(value: &crate::json::Value) {
    let path = std::env::var("TRMMA_BENCH_STREAMING_OUT")
        .unwrap_or_else(|_| "BENCH_streaming.json".into());
    let s = crate::json::to_string_pretty(value);
    if let Err(e) = fs::write(&path, s) {
        eprintln!("warn: cannot write {path}: {e}");
    } else {
        eprintln!("artifact: {path}");
    }
}

/// Formats a fraction as a percentage with two decimals (paper style).
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.2}", 100.0 * x)
}

/// Formats metres with one decimal (paper style for MAE/RMSE).
#[must_use]
pub fn meters(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats seconds with two decimals.
#[must_use]
pub fn secs(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["Method", "F1"]);
        t.row(vec!["MMA".into(), "94.35".into()]);
        t.row(vec!["Nearest".into(), "82.42".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Method"));
        assert!(lines[2].ends_with("94.35"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.9435), "94.35");
        assert_eq!(meters(84.1023), "84.1");
        assert_eq!(secs(0.876), "0.88");
    }
}
